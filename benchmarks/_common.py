"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper as
printed rows (run pytest with ``-s`` to see them), wraps its harness in
``benchmark.pedantic(..., rounds=1)`` so ``pytest --benchmark-only``
drives it, and attaches the headline numbers to
``benchmark.extra_info`` so they land in pytest-benchmark's JSON.

Environment:

``REPRO_BENCH_FULL=1``
    Extend message-size sweeps to the paper's full 256K-32M range
    (default stops at 8M to keep the suite fast).
"""

from __future__ import annotations

from repro.analysis.bench import full_sweep_enabled, sweep_sizes
from repro.utils.tables import format_table

FULL = full_sweep_enabled()

#: Fig 5/9/10 message sweep — the same definition `python -m repro
#: bench` runs, so the figures and the trajectory measure one matrix.
SIZES = sweep_sizes(full=FULL)


def emit(benchmark, title: str, headers, rows, floatfmt=".1f", **extra):
    """Print the regenerated table and stash headline numbers."""
    text = format_table(headers, rows, floatfmt=floatfmt, title=title)
    print("\n" + text + "\n")
    benchmark.extra_info.update(extra)
    return text


def once(benchmark, fn, *args, **kwargs):
    """Run the harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
