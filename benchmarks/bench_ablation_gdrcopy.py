"""Ablation 2: GDRCopy vs cudaMemcpy for the compressed-size read
(MPC-OPT optimization 3).

Everything else held at OPT settings.  The saving is a near-constant
~19us x (send + recv paths) per message — decisive for small messages,
noise at 32M (paper: 'reduce the cost from 20us to 1-5us').
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes


def build():
    gdr = CompressionConfig.mpc_opt()
    memcpy = gdr.with_(use_gdrcopy=False)
    rows_g = osu_latency("longhorn", sizes=SIZES, config=gdr, payload="wave")
    rows_m = osu_latency("longhorn", sizes=SIZES, config=memcpy, payload="wave")
    return [
        [fmt_bytes(g.nbytes), m.latency_us, g.latency_us,
         (m.latency - g.latency) * 1e6]
        for g, m in zip(rows_g, rows_m)
    ]


def test_ablation_gdrcopy(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Ablation - size retrieval via cudaMemcpy vs GDRCopy (us)",
         ["size", "cudaMemcpy", "GDRCopy", "delta_us"],
         rows)
    for row in rows:
        assert row[2] < row[1]
        # per-message saving ~ (20 - ~1.5)us on the sender path
        assert 5.0 < row[3] < 60.0
