"""Ablation 3: MPC-OPT partition count (kernel decomposition).

Reproduces the tuning experiment behind Section IV's "we fine-tune the
number of partitions for different message sizes": small messages want
one kernel, large ones want many concurrent small-block kernels.
"""

from _common import emit, once

from repro.compression.perfmodel import MPC_V100
from repro.core import CompressionConfig, partitions_for_message
from repro.core.tuning import sweep_partitions
from repro.omb import osu_latency
from repro.utils.units import KiB, MiB, fmt_bytes

SIZES = [256 * KiB, 2 * MiB, 8 * MiB]
PARTS = [1, 2, 4, 8]


def build_measured():
    out = []
    for size in SIZES:
        row = [fmt_bytes(size)]
        for p in PARTS:
            cfg = CompressionConfig.mpc_opt(partitions=p)
            r = osu_latency("longhorn", sizes=[size], config=cfg, payload="wave")[0]
            row.append(r.latency_us)
        row.append(partitions_for_message(size))
        out.append(row)
    return out


def test_ablation_partitions_measured(benchmark):
    rows = once(benchmark, build_measured)
    emit(benchmark,
         "Ablation - MPC-OPT latency vs partition count (Longhorn, us)",
         ["size"] + [f"p={p}" for p in PARTS] + ["tuned"],
         rows)
    # Large messages: more partitions help.
    big = rows[-1]
    assert big[4] < big[1], "8 partitions must beat 1 at 8M"
    # Small messages: the optimum sits at few partitions (p=1/p=2 are
    # near break-even at 256K; p=8 is clearly worse).
    small = rows[0]
    assert min(small[1], small[2]) < small[4]


def test_ablation_partitions_model(benchmark):
    """The analytic sweep agrees with the tuned schedule."""
    def build():
        out = []
        for size in (256 * KiB, 1 * MiB, 8 * MiB, 32 * MiB):
            sweep = sweep_partitions(MPC_V100, size, 80, candidates=PARTS)
            best = min(sweep, key=sweep.get)
            out.append([fmt_bytes(size)] + [sweep[p] * 1e6 for p in PARTS] + [best])
        return out

    rows = once(benchmark, build)
    emit(benchmark,
         "Ablation - model-predicted compression time vs partitions (us)",
         ["size"] + [f"p={p}" for p in PARTS] + ["best"],
         rows)
    assert rows[0][-1] <= 2      # small -> few partitions
    assert rows[-1][-1] >= 4     # big -> many partitions
