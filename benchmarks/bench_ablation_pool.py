"""Ablation 1: the pre-allocated buffer pool (MPC-OPT optimization 1-2).

Isolates cudaMalloc-in-critical-path from the other optimizations:
both configs use GDRCopy and partitioning; only the pool flag differs.
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes


def build():
    with_pool = CompressionConfig.mpc_opt()
    without_pool = with_pool.with_(use_buffer_pool=False)
    rows_on = osu_latency("longhorn", sizes=SIZES, config=with_pool, payload="wave")
    rows_off = osu_latency("longhorn", sizes=SIZES, config=without_pool, payload="wave")
    out = []
    for on, off in zip(rows_on, rows_off):
        out.append([
            fmt_bytes(on.nbytes), off.latency_us, on.latency_us,
            off.breakdown.get("malloc", 0.0) * 1e6 / 2,
            100 * (1 - on.latency / off.latency),
        ])
    return out


def test_ablation_buffer_pool(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Ablation - buffer pool on/off (MPC, Longhorn inter-node, us)",
         ["size", "no-pool", "pool", "malloc_us(no-pool)", "saving %"],
         rows)
    for row in rows:
        assert row[2] < row[1], "pool must always help"
    # cudaMalloc dominates small messages (paper: 83.4% at 256KB).
    assert rows[0][3] / rows[0][1] > 0.3
