"""Ablation 4: the compression-engagement threshold.

The framework compresses only messages above a size threshold (step 1
of the paper's data flow).  Too low a threshold drags small messages
through kernels that cost more than the wire saving; too high a
threshold forfeits large-message wins.
"""

from _common import emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import KiB, MiB, fmt_bytes

THRESHOLDS = [16 * KiB, 128 * KiB, 1 * MiB, 8 * MiB]
SIZES = [64 * KiB, 512 * KiB, 4 * MiB]


def build():
    out = []
    for size in SIZES:
        row = [fmt_bytes(size)]
        base = osu_latency("frontera-liquid", sizes=[size]) [0].latency_us
        row.append(base)
        for thr in THRESHOLDS:
            cfg = CompressionConfig.zfp_opt(8, threshold=thr)
            r = osu_latency("frontera-liquid", sizes=[size], config=cfg,
                            payload="wave")[0]
            row.append(r.latency_us)
        out.append(row)
    return out


def test_ablation_threshold(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Ablation - ZFP-OPT(8) latency vs compression threshold (us)",
         ["msg size", "baseline"] + [fmt_bytes(t) for t in THRESHOLDS],
         rows)
    # 4M messages: a threshold above them forfeits the win.
    big = rows[-1]
    assert big[2] < big[5], "engaging compression must beat the 8M threshold at 4M"
    # 64K messages: compressing them (16K threshold) must hurt vs not
    # (1M threshold), because kernels + handshake exceed the wire time.
    small = rows[0]
    assert small[2] > small[4]
