"""Ablation 5: ZFP rate vs AWP accuracy (the paper's rate-selection
caveat).

"More speedup can be achieved for ZFP-OPT with a lower rate due to a
higher compression ratio.  However, it would generate incorrect output
as it exceeds the lowest precision AWP-ODC can tolerate."
"""

from _common import emit, once

from repro.apps.awp import run_awp
from repro.core import CompressionConfig

KW = dict(machine="frontera-liquid", gpus=4, gpus_per_node=2,
          local_shape=(32, 32, 128), steps=6)
RATES = [16, 8, 6, 4]


def build():
    base = run_awp(**KW, config=CompressionConfig.disabled())
    rows = []
    for rate in RATES:
        r = run_awp(**KW, config=CompressionConfig.zfp_opt(rate, threshold=20 * 1024))
        rel_err = abs(r.energy - base.energy) / (abs(base.energy) + 1e-30)
        rows.append([rate, 32.0 / rate, r.time_per_step * 1e6,
                     base.time_per_step * 1e6, rel_err])
    return rows


def test_ablation_zfp_rate_accuracy(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Ablation - ZFP rate vs AWP step time and solution error",
         ["rate", "ratio", "step_us", "baseline_step_us", "energy_rel_err"],
         rows, floatfmt=".4f")
    errs = {r[0]: r[4] for r in rows}
    assert errs[16] < 1e-3, "rate 16 must be physically tolerable"
    assert errs[4] > 100 * errs[16], "rate 4 must break the solution"
    assert errs[4] > errs[8] > errs[16], "error monotone in compression"
