"""Extension: the full Table I codec field on one dataset.

The paper implements MPC and ZFP; we additionally provide working GFC,
SZ-style and FPC-style codecs so every GPU row of Table I is runnable.
This bench compares them all on msg_sweep3d under the same pt2pt
transfer (Section IX: "we plan to study various GPU-based compression
algorithms").
"""

import numpy as np
from _common import emit, once

from repro.compression import get_compressor
from repro.core import CompressionConfig
from repro.datasets import generate
from repro.omb import osu_latency
from repro.utils.units import MiB


def build():
    data = generate("msg_sweep3d", scale=0.05, seed=1)
    rows = []
    for name, params, lossless in [
        ("mpc", {"dimensionality": 1}, True),
        ("zfp", {"rate": 16}, False),
        ("zfp", {"rate": 8}, False),
        ("sz", {"error_bound": 1e-3}, False),
        ("gfc", {}, True),
        ("fpc", {}, True),
    ]:
        codec = get_compressor(name, **params)
        payload = data.astype(np.float64) if name == "gfc" else data
        comp = codec.compress(payload)
        restored = codec.decompress(comp)
        err = float(np.abs(restored.astype(np.float64)
                           - payload.astype(np.float64)).max())
        label = name + ("" if not params else str(sorted(params.values())))
        rows.append([label, comp.ratio, err, "yes" if lossless else "no"])
    return rows


def test_ext_codec_field(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Extension - all Table I codecs on msg_sweep3d (ratio / max error)",
         ["codec", "ratio", "max_abs_err", "lossless"],
         rows, floatfmt=".4g")
    by = {r[0]: r for r in rows}
    assert by["mpc[1]"][2] == 0.0
    assert by["gfc"][2] == 0.0
    assert by["fpc"][2] == 0.0
    assert by["sz[0.001]"][2] <= 1e-3
    assert by["zfp[8]"][1] > by["zfp[16]"][1]


def test_ext_sz_in_transport(benchmark):
    """SZ plugged into the MPI framework end to end (the registry makes
    codecs interchangeable)."""
    def run():
        base = osu_latency("frontera-liquid", sizes=[4 * MiB], payload="wave")[0]
        sz = osu_latency(
            "frontera-liquid", sizes=[4 * MiB], payload="wave",
            config=CompressionConfig(enabled=True, algorithm="sz"),
        )[0]
        return [[r.latency_us for r in (base, sz)]]

    rows = once(benchmark, run)
    emit(benchmark, "Extension - SZ as the transport codec (4M wave, us)",
         ["baseline_us", "sz_us"], rows)
