"""Extensions from the paper's Section IX (future work), implemented.

1. Compressed MPI_Alltoall and MPI_Allreduce — "we plan to ... explore
   the designs to accelerate various communication patterns like
   Alltoall and Allreduce".
2. The adaptive on/off policy — "the dynamic design to automatically
   determine the use of compression ... based on the compression costs
   and communication time".
"""

import numpy as np
from _common import emit, once

from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb import osu_allreduce, osu_alltoall
from repro.utils.units import MiB


def build_collectives():
    rows = []
    for op, fn in (("alltoall", osu_alltoall), ("allreduce", osu_allreduce)):
        base = fn(machine="frontera-liquid", nodes=4, ppn=2, nbytes=8 * MiB,
                  payload="dataset:msg_sppm")
        comp = fn(machine="frontera-liquid", nodes=4, ppn=2, nbytes=8 * MiB,
                  payload="dataset:msg_sppm", config=CompressionConfig.mpc_opt())
        rows.append([op, base.latency_us, comp.latency_us,
                     100 * (1 - comp.latency / base.latency)])
    return rows


def test_ext_alltoall_allreduce(benchmark):
    rows = once(benchmark, build_collectives)
    emit(benchmark,
         "Future work - compressed Alltoall / Allreduce (8M sppm, us)",
         ["op", "baseline", "mpc-opt", "reduction %"],
         rows)
    assert rows[0][3] > 0, "alltoall must gain from compression"


def _mixed_traffic(comm):
    """Alternating compressible and incompressible large messages."""
    rng = np.random.default_rng(7)
    compressible = np.full((4 * MiB) // 4, 1.0, dtype=np.float32)
    incompressible = rng.integers(0, 1 << 32, (4 * MiB) // 4,
                                  dtype=np.uint64).astype(np.uint32).view(np.float32)
    for i in range(6):
        data = compressible if i % 2 == 0 else incompressible
        if comm.rank == 0:
            yield from comm.send(data, 1)
        else:
            yield from comm.recv(0)
    return comm.now


def build_adaptive():
    cluster = Cluster(machine_preset("longhorn"), nodes=1, gpus_per_node=2)
    rows = []
    for label, cfg in [
        ("baseline", CompressionConfig.disabled()),
        ("always-compress", CompressionConfig.mpc_opt()),
        ("adaptive", CompressionConfig.mpc_opt().with_(adaptive=True)),
    ]:
        r = cluster.run(_mixed_traffic, config=cfg)
        rows.append([label, r.elapsed * 1e6])
    return rows


def test_ext_adaptive_policy(benchmark):
    rows = once(benchmark, build_adaptive)
    emit(benchmark,
         "Future work - adaptive compression on NVLink with mixed traffic (us)",
         ["policy", "total_us"],
         rows)
    by = {r[0]: r[1] for r in rows}
    # On fast NVLink, always-compressing loses; adaptive must learn to
    # hold back and land at or below the always-compress cost.
    assert by["adaptive"] <= by["always-compress"]
