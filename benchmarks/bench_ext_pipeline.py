"""Extension: pipelined rendezvous (chunked overlap).

The paper's design compresses the whole message, combines partitions,
then transfers.  MVAPICH2-GDR pipelines large messages in chunks; doing
the same for compressed traffic overlaps compression, wire and
decompression.

Finding: pipelining is a big win exactly when the *wire* is the
bottleneck — fixed-rate ZFP (ratio 4) jumps from ~38% to ~68% latency
reduction, recovering most of the distance to the paper's Fig 9 band.
For MPC on OMB dummy data (ratio ~31) the wire is already negligible
and the transfer is *kernel*-bound: sequential half-device chunks
forfeit MPC-OPT's concurrent-kernel aggregate speedup, so the combined
scheme stays faster.  The right policy is per-message, based on the
expected ratio — exactly the kind of decision the adaptive monitor
(Sec IX future work) should make.
"""

from _common import emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import MiB, fmt_bytes

SIZES = [2 * MiB, 8 * MiB, 16 * MiB]
CONFIGS = [
    ("baseline", CompressionConfig.disabled()),
    ("zfp8", CompressionConfig.zfp_opt(8)),
    ("zfp8+pipe", CompressionConfig.zfp_opt(8).with_(pipeline=True, partitions=8)),
    ("mpc-opt", CompressionConfig.mpc_opt()),
    ("mpc+pipe", CompressionConfig.mpc_opt(partitions=8).with_(pipeline=True)),
]


def build():
    table = {}
    for label, cfg in CONFIGS:
        rows = osu_latency("frontera-liquid", sizes=SIZES, config=cfg,
                           payload="omb")
        table[label] = [r.latency_us for r in rows]
    return [
        [fmt_bytes(s)] + [table[l][i] for l, _ in CONFIGS]
        for i, s in enumerate(SIZES)
    ]


def test_ext_pipelined_rendezvous(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Extension - pipelined compressed rendezvous (Frontera inter-node, us)",
         ["size"] + [l for l, _ in CONFIGS], rows,
         zfp8_pipe_reduction=1 - rows[-1][3] / rows[-1][1])
    for row in rows:
        # Wire-bound ZFP: pipelining always wins.
        assert row[3] < row[2], "pipelining must beat combined ZFP"
        # Kernel-bound MPC on ratio-31 dummy data: combined concurrent
        # kernels win — the documented counter-case.
        assert row[5] > row[4], "combined MPC expected to win on dummy data"
    # At 16M the pipelined ZFP reduction approaches the paper's band.
    assert 1 - rows[-1][3] / rows[-1][1] > 0.5
