"""Extension: ZFP's 2-D block mode for 2-D payloads.

The paper uses the 1-D array type; upstream ZFP's 2-D mode (4x4
blocks, separable lifting) decorrelates along both axes of a field.
On smooth 2-D data — like the Dask chunks of Section VII-B — it buys
roughly an order of magnitude lower error at the same fixed rate.
"""

import numpy as np
from _common import emit, once

from repro.compression import ZfpCompressor
from repro.compression.zfp2d import Zfp2dCompressor


def build():
    x, y = np.meshgrid(np.linspace(0, 6, 512), np.linspace(0, 4, 512))
    img = (np.sin(x) * np.cos(y) + 0.1 * np.sin(5 * x + 3 * y)).astype(np.float32)
    rows = []
    for rate in (4, 8, 16):
        c2 = Zfp2dCompressor(rate)
        err2 = float(np.abs(c2.decompress(c2.compress(img)) - img).max())
        c1 = ZfpCompressor(rate)
        flat = c1.decompress(c1.compress(img.reshape(-1))).reshape(img.shape)
        err1 = float(np.abs(flat - img).max())
        rows.append([rate, 32.0 / rate, err1, err2, err1 / err2])
    return rows


def test_ext_zfp2d_accuracy(benchmark):
    rows = once(benchmark, build)
    emit(benchmark,
         "Extension - ZFP 1-D vs 2-D mode on a smooth 512x512 field",
         ["rate", "ratio", "max_err_1D", "max_err_2D", "improvement x"],
         rows, floatfmt=".3g",
         improvement_rate8=rows[1][4])
    for row in rows:
        assert row[3] < row[2], "2-D mode must be more accurate at equal rate"
    assert rows[0][4] > 5, "expect a large gain at the most aggressive rate"
