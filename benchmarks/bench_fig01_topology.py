"""Figure 1: intra- vs inter-node GPU link disparity (Sierra node).

Regenerates the bandwidth table behind the paper's motivating figure:
3-lane NVLink 75 GB/s vs IB EDR 12.5 GB/s (6x disparity).
"""

from _common import emit, once

from repro.network.presets import IB_EDR, IB_FDR, IB_HDR, NVLINK3, PCIE4_X8, XBUS, machine_preset
from repro.network.topology import Topology
from repro.sim import Simulator


def build():
    sim = Simulator()
    topo = Topology(sim, machine_preset("sierra"), nodes=2, gpus_per_node=4)
    rows = []
    for spec, where in [
        (NVLINK3, "GPU<->GPU intra-node"),
        (XBUS, "CPU<->CPU (X-Bus)"),
        (PCIE4_X8, "CPU<->HCA (PCIe Gen4 x8)"),
        (IB_EDR, "node<->node (IB EDR)"),
        (IB_FDR, "node<->node (IB FDR, Frontera)"),
        (IB_HDR, "node<->node (IB HDR)"),
    ]:
        rows.append([spec.name, where, spec.bandwidth / 1e9, spec.latency * 1e6])
    disparity = topo.path_bandwidth(0, 1) / topo.path_bandwidth(0, 4)
    return rows, disparity


def test_fig01_topology(benchmark):
    rows, disparity = once(benchmark, build)
    rows.append(["disparity", "NVLink / IB-EDR", disparity, 0.0])
    emit(
        benchmark,
        "Fig 1 - Sierra-class node link bandwidths (paper: 75 vs 12.5 GB/s, 6x)",
        ["link", "where", "GB/s", "latency_us"],
        rows,
        nvlink_over_ib=disparity,
    )
    assert disparity == 6.0
