"""Figure 2: the motivation.

(a) inter-node D-D bandwidth saturates the IB network for large
messages (we show achieved vs peak);
(b) AWP-ODC computation vs communication time remains comm-heavy as
GPU count grows.
"""

from _common import emit, once

from repro.apps.awp import run_awp
from repro.core import CompressionConfig
from repro.omb import osu_bw
from repro.utils.units import KiB, MiB, fmt_bytes


def build_bw():
    sizes = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 8 * MiB]
    rows = osu_bw("longhorn", sizes=sizes, window=8)
    peak = 12.5
    return [
        [fmt_bytes(r.nbytes), r.breakdown["bandwidth"] / 1e9, peak]
        for r in rows
    ]


def test_fig02a_internode_bandwidth(benchmark):
    rows = once(benchmark, build_bw)
    emit(
        benchmark,
        "Fig 2a - inter-node D-D bandwidth vs message size (Longhorn, IB EDR)",
        ["size", "achieved GB/s", "peak GB/s"],
        rows,
        floatfmt=".2f",
        saturation=rows[-1][1] / rows[-1][2],
    )
    # Large messages saturate the link (paper: "well optimized to
    # saturate the bandwidth").
    assert rows[-1][1] > 0.9 * rows[-1][2]


def build_awp():
    rows = []
    for gpus in (4, 8, 16):
        r = run_awp("frontera-liquid", gpus=gpus, gpus_per_node=4,
                    local_shape=(64, 64, 256), steps=3,
                    config=CompressionConfig.disabled(), surrogate=True)
        rows.append([gpus, r.compute_time_per_step * 1e3,
                     r.comm_time_per_step * 1e3, 100 * r.comm_fraction])
    return rows


def test_fig02b_awp_breakdown(benchmark):
    rows = once(benchmark, build_awp)
    emit(
        benchmark,
        "Fig 2b - AWP-ODC computation vs communication per step (ms)",
        ["GPUs", "compute ms", "comm ms", "comm %"],
        rows,
        floatfmt=".2f",
        comm_pct_16gpu=rows[-1][3],
    )
    # Communication stays a significant share and grows with scale.
    assert rows[-1][3] > 10.0
    assert rows[-1][2] >= rows[0][2]
