"""Figure 5: latency of naively integrating the compression algorithms.

The headline negative result: the naive integration (cudaMalloc +
cudaMemcpy + per-message cudaGetDeviceProperties in the critical path)
is *slower* than sending uncompressed data.
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes


def build():
    configs = [
        ("baseline", CompressionConfig.disabled()),
        ("naive-mpc", CompressionConfig.naive_mpc()),
        ("naive-zfp16", CompressionConfig.naive_zfp(16)),
    ]
    series = {}
    for label, cfg in configs:
        rows = osu_latency("longhorn", sizes=SIZES, config=cfg, payload="wave")
        series[label] = [r.latency_us for r in rows]
    out = []
    for i, size in enumerate(SIZES):
        out.append([fmt_bytes(size)] + [series[l][i] for l, _ in configs])
    return out


def test_fig05_naive_integration(benchmark):
    rows = once(benchmark, build)
    emit(
        benchmark,
        "Fig 5 - inter-node D-D latency, naive integration (Longhorn, us)",
        ["size", "baseline", "naive-MPC", "naive-ZFP(16)"],
        rows,
        naive_mpc_slowdown_1m=rows[2][2] / rows[2][1],
    )
    # The paper's observation: naive integration loses at every size.
    for row in rows:
        assert row[2] > row[1], "naive MPC must be slower than baseline"
        assert row[3] > row[1], "naive ZFP must be slower than baseline"
