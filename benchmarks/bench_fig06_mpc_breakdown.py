"""Figure 6: breakdown of inter-node latency using MPC, naive vs OPT.

Components: memory allocation (cudaMalloc), compressed-size data
copies, compression/decompression kernels, combine, network+other.
The OPT scheme must eliminate the allocation term, shrink the copy
term ~10x and cut kernel time via multi-stream decomposition (paper:
"up to 4X improvement compared to the naive integration").
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes

CATS = ["malloc", "data_copy", "compression_kernel", "decompression_kernel",
        "combine", "network"]


def build(cfg):
    rows = osu_latency("longhorn", sizes=SIZES, config=cfg, payload="wave")
    out = []
    for r in rows:
        bd = r.breakdown
        out.append(
            [fmt_bytes(r.nbytes)]
            + [bd.get(c, 0.0) * 1e6 / 2 for c in CATS]  # per one-way
            + [r.latency_us]
        )
    return out


def test_fig06a_mpc_naive_breakdown(benchmark):
    rows = once(benchmark, build, CompressionConfig.naive_mpc())
    emit(
        benchmark,
        "Fig 6a - MPC naive integration latency breakdown (us, one-way)",
        ["size"] + CATS + ["total"],
        rows,
        malloc_share_256k=rows[0][1] / rows[0][-1],
    )
    # Paper: cudaMalloc occupies a huge share at 256KB (83.4% there).
    assert rows[0][1] / rows[0][-1] > 0.4


def test_fig06b_mpc_opt_breakdown(benchmark):
    naive = build(CompressionConfig.naive_mpc())
    rows = once(benchmark, build, CompressionConfig.mpc_opt())
    emit(
        benchmark,
        "Fig 6b - MPC-OPT latency breakdown (us, one-way)",
        ["size"] + CATS + ["total"],
        rows,
        improvement_vs_naive=naive[-1][-1] / rows[-1][-1],
    )
    for n_row, o_row in zip(naive, rows):
        assert o_row[1] == 0.0, "MPC-OPT must not cudaMalloc"
        assert o_row[2] < n_row[2] / 3, "GDRCopy must cut the size-copy cost"
        assert o_row[-1] < n_row[-1], "OPT must beat naive at every size"
    # Paper: up to 4x improvement over naive.
    assert max(n[-1] / o[-1] for n, o in zip(naive, rows)) > 2.0
