"""Figure 8: breakdown of inter-node latency using ZFP, naive vs OPT
(Frontera Liquid).

The naive integration calls cudaGetDeviceProperties (~1840us) per
kernel launch inside get_max_grid_dims; ZFP-OPT caches the attribute
(~1us once).  zfp_stream/zfp_field creation (~9us) is present in both.
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes

CATS = ["zfp_stream_field", "get_max_grid_dims", "malloc",
        "compression_kernel", "decompression_kernel", "network"]


def build(cfg):
    rows = osu_latency("frontera-liquid", sizes=SIZES, config=cfg, payload="wave")
    out = []
    for r in rows:
        bd = r.breakdown
        out.append(
            [fmt_bytes(r.nbytes)]
            + [bd.get(c, 0.0) * 1e6 / 2 for c in CATS]
            + [r.latency_us]
        )
    return out


def test_fig08a_zfp_naive_breakdown(benchmark):
    rows = once(benchmark, build, CompressionConfig.naive_zfp(16))
    emit(
        benchmark,
        "Fig 8a - ZFP naive integration latency breakdown (us, one-way)",
        ["size"] + CATS + ["total"],
        rows,
        grid_dims_us=rows[0][2],
    )
    for row in rows:
        # get_max_grid_dims dominates every message size (paper: ~1840us
        # per call, compress + decompress)
        assert row[2] > 1500.0
        assert row[2] > row[4] + row[5]


def test_fig08b_zfp_opt_breakdown(benchmark):
    naive = build(CompressionConfig.naive_zfp(16))
    rows = once(benchmark, build, CompressionConfig.zfp_opt(16))
    emit(
        benchmark,
        "Fig 8b - ZFP-OPT latency breakdown (us, one-way)",
        ["size"] + CATS + ["total"],
        rows,
        grid_dims_after_caching_us=rows[0][2],
        speedup_vs_naive_256k=naive[0][-1] / rows[0][-1],
    )
    for n_row, o_row in zip(naive, rows):
        assert o_row[2] < 2.0, "cached attribute query must be ~1us total"
        assert o_row[-1] < n_row[-1]
    # Paper: function time cut from ~4000us to ~1us; at small sizes the
    # total drops several-fold.
    assert naive[0][-1] / rows[0][-1] > 3.0
