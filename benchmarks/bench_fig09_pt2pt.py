"""Figure 9: point-to-point D-D latency, four panels.

(a) Longhorn inter-node (V100, IB EDR)
(b) Frontera Liquid inter-node (RTX 5000, IB FDR)
(c) Longhorn intra-node (NVLink)
(d) Frontera Liquid intra-node (PCIe)

Configs: baseline, MPC-OPT, ZFP-OPT rates 16/8/4.  Payload is the
OSU-style constant fill (the paper's "dummy data" with its very high
MPC ratio).

Shape checks (paper):
 - inter-node: both schemes win at large sizes, lower ZFP rate wins more;
 - NVLink: MPC-OPT never wins; ZFP-OPT only at the largest sizes, if at all;
 - PCIe: both win at large sizes.

Note (EXPERIMENTS.md): with kernels calibrated to Table III, absolute
reductions land below the paper's 62-83% and break-even sits at larger
messages; orderings and win/lose outcomes are preserved.
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes

CONFIGS = [
    ("baseline", CompressionConfig.disabled()),
    ("mpc-opt", CompressionConfig.mpc_opt()),
    ("zfp16", CompressionConfig.zfp_opt(16)),
    ("zfp8", CompressionConfig.zfp_opt(8)),
    ("zfp4", CompressionConfig.zfp_opt(4)),
]


def sweep(machine, inter_node):
    table = {}
    for label, cfg in CONFIGS:
        rows = osu_latency(machine, sizes=SIZES, config=cfg,
                           inter_node=inter_node, payload="omb")
        table[label] = [r.latency_us for r in rows]
    return [
        [fmt_bytes(s)] + [table[l][i] for l, _ in CONFIGS]
        for i, s in enumerate(SIZES)
    ]


def _largest(rows):
    return {l: rows[-1][i + 1] for i, (l, _) in enumerate(CONFIGS)}


def test_fig09a_longhorn_inter(benchmark):
    rows = once(benchmark, sweep, "longhorn", True)
    emit(benchmark, "Fig 9a - Longhorn inter-node latency (us)",
         ["size"] + [l for l, _ in CONFIGS], rows,
         mpc_opt_reduction=1 - _largest(rows)["mpc-opt"] / _largest(rows)["baseline"])
    big = _largest(rows)
    assert big["mpc-opt"] < big["baseline"]        # paper: 62.5% at 32M
    assert big["zfp4"] < big["zfp8"] < big["zfp16"]  # lower rate = better


def test_fig09b_frontera_inter(benchmark):
    rows = once(benchmark, sweep, "frontera-liquid", True)
    emit(benchmark, "Fig 9b - Frontera Liquid inter-node latency (us)",
         ["size"] + [l for l, _ in CONFIGS], rows,
         zfp4_reduction=1 - _largest(rows)["zfp4"] / _largest(rows)["baseline"])
    big = _largest(rows)
    assert big["mpc-opt"] < big["baseline"]        # paper: 77.1%
    assert big["zfp4"] < big["baseline"]           # paper: 83.1%
    assert big["zfp4"] < big["zfp16"]


def test_fig09c_longhorn_intra_nvlink(benchmark):
    rows = once(benchmark, sweep, "longhorn", False)
    emit(benchmark, "Fig 9c - Longhorn intra-node (NVLink) latency (us)",
         ["size"] + [l for l, _ in CONFIGS], rows)
    # Paper: "Using MPC-OPT has not yielded any benefit" on NVLink.
    for row in rows:
        assert row[2] >= row[1] * 0.98


def test_fig09d_frontera_intra_pcie(benchmark):
    rows = once(benchmark, sweep, "frontera-liquid", False)
    emit(benchmark, "Fig 9d - Frontera intra-node (PCIe) latency (us)",
         ["size"] + [l for l, _ in CONFIGS], rows,
         zfp4_reduction=1 - _largest(rows)["zfp4"] / _largest(rows)["baseline"])
    big = _largest(rows)
    # Paper: PCIe is slow enough for both schemes to win at large sizes.
    assert big["zfp4"] < big["baseline"]
    assert big["mpc-opt"] < big["baseline"]
