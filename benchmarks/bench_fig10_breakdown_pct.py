"""Figure 10: percentage breakdown of compression / communication /
decompression for MPC-OPT and ZFP-OPT(rate:4) on Frontera Liquid.

Paper shape: MPC-OPT's kernel shares grow with message size; ZFP-OPT's
decompression share stays small and roughly constant; MPC-OPT's
communication share is *lower* than ZFP-OPT's because of the dummy
data's very high MPC ratio.
"""

from _common import SIZES, emit, once

from repro.core import CompressionConfig
from repro.omb import osu_latency
from repro.utils.units import fmt_bytes


def build(cfg):
    rows = osu_latency("frontera-liquid", sizes=SIZES, config=cfg, payload="omb")
    out = []
    for r in rows:
        bd = r.breakdown
        compr = bd.get("compression_kernel", 0.0) + bd.get("combine", 0.0)
        decompr = bd.get("decompression_kernel", 0.0)
        comm = bd.get("network", 0.0)
        other = max(1e-30, 2 * r.latency - compr - decompr - comm)
        total = compr + decompr + comm + other
        out.append([
            fmt_bytes(r.nbytes),
            100 * compr / total, 100 * comm / total,
            100 * decompr / total, 100 * other / total,
        ])
    return out


def test_fig10a_mpc_opt_pct(benchmark):
    rows = once(benchmark, build, CompressionConfig.mpc_opt())
    emit(benchmark,
         "Fig 10a - MPC-OPT latency breakdown (% of one-way latency)",
         ["size", "compression%", "comm%", "decompression%", "other%"],
         rows)
    # Kernels dominate on dummy data (high ratio -> tiny comm share).
    assert rows[-1][1] + rows[-1][3] > rows[-1][2]


def test_fig10b_zfp_opt_pct(benchmark):
    mpc_rows = build(CompressionConfig.mpc_opt())
    rows = once(benchmark, build, CompressionConfig.zfp_opt(4))
    emit(benchmark,
         "Fig 10b - ZFP-OPT(rate:4) latency breakdown (%)",
         ["size", "compression%", "comm%", "decompression%", "other%"],
         rows)
    # Paper: MPC's comm share < ZFP's at large sizes (dummy-data ratio
    # ~31 vs ZFP's fixed 8).
    assert mpc_rows[-1][2] < rows[-1][2]
    # ZFP decompression is comparatively cheap (TPd 730 vs TPc 450 Gb/s).
    assert rows[-1][3] < rows[-1][1]
