"""Figure 11: MPI_Bcast and MPI_Allgather on the 8 Table III datasets
(8 nodes x 2 ppn, Frontera Liquid).

The paper modifies OMB to transmit real dataset contents; MPC-OPT's
gain tracks the dataset's ratio (max on msg_sppm), while ZFP-OPT's
gain is nearly dataset-independent (fixed rate).
"""

import os

from _common import emit, once

from repro.core import CompressionConfig
from repro.datasets import dataset_names
from repro.omb import osu_allgather, osu_bcast
from repro.utils.units import MiB

NBYTES = 4 * MiB
CONFIGS = [
    ("baseline", None),
    ("mpc-opt", CompressionConfig.mpc_opt()),
    ("zfp16", CompressionConfig.zfp_opt(16)),
    ("zfp8", CompressionConfig.zfp_opt(8)),
    ("zfp4", CompressionConfig.zfp_opt(4)),
]
# the full 8-dataset sweep is slow; default to 4 representative ones
DATASETS = dataset_names() if os.environ.get("REPRO_BENCH_FULL") == "1" else [
    "msg_bt", "msg_sppm", "msg_sweep3d", "obs_info",
]


def build(op):
    fn = osu_bcast if op == "bcast" else osu_allgather
    out = []
    for ds in DATASETS:
        row = [ds]
        for label, cfg in CONFIGS:
            r = fn(machine="frontera-liquid", nodes=8, ppn=2, nbytes=NBYTES,
                   payload=f"dataset:{ds}", config=cfg)
            row.append(r.latency_us)
        out.append(row)
    return out


def _labels():
    return [l for l, _ in CONFIGS]


def test_fig11a_bcast(benchmark):
    rows = once(benchmark, build, "bcast")
    emit(benchmark,
         "Fig 11a - MPI_Bcast latency on datasets (8 nodes x 2 ppn, us)",
         ["dataset"] + _labels(), rows)
    by = {r[0]: dict(zip(_labels(), r[1:])) for r in rows}
    # MPC's best gain is on msg_sppm (highest ratio), worst on msg_bt.
    gain = lambda d: 1 - by[d]["mpc-opt"] / by[d]["baseline"]
    assert gain("msg_sppm") > gain("msg_bt")
    assert gain("msg_sppm") > 0.1  # paper: 57%; see EXPERIMENTS.md on calibration
    # ZFP-OPT(4) helps on every dataset by a similar factor (fixed rate).
    zgains = [1 - by[d]["zfp4"] / by[d]["baseline"] for d in by]
    assert min(zgains) > 0.1
    assert max(zgains) - min(zgains) < 0.35


def test_fig11b_allgather(benchmark):
    rows = once(benchmark, build, "allgather")
    emit(benchmark,
         "Fig 11b - MPI_Allgather latency on datasets (8 nodes x 2 ppn, us)",
         ["dataset"] + _labels(), rows)
    by = {r[0]: dict(zip(_labels(), r[1:])) for r in rows}
    gain = lambda d, c: 1 - by[d][c] / by[d]["baseline"]
    # MPC's gain tracks the ratio: best on sppm, can be negative on the
    # ~1.33-ratio datasets (below the FDR break-even, see EXPERIMENTS.md).
    assert gain("msg_sppm", "mpc-opt") > gain("msg_bt", "mpc-opt")
    assert gain("msg_sppm", "zfp4") > 0.05
