"""Figure 12: AWP-ODC weak scaling on Frontera Liquid.

GPU computing flops (higher is better) for baseline / MPC-OPT /
ZFP-OPT(16) / ZFP-OPT(8) at 2 and 4 GPUs/node.  Paper: up to 19%
(MPC-OPT) and 37% (ZFP-OPT rate:8) at 64 GPUs.

Surrogate faces (paper-scale halo messages, faces-only memory) with an
explicit 4-partition MPC-OPT, matching the tuned schedule at these
message sizes.  REPRO_BENCH_FULL=1 extends to 64 GPUs.
"""

import os

from _common import emit, once

from repro.apps.awp import run_awp
from repro.core import CompressionConfig

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
GPUS = [4, 8, 16, 32, 64] if FULL else [4, 8, 16]
LOCAL = (96, 96, 512)  # faces: 2*96*512*4 = 384 KiB
CONFIGS = [
    ("baseline", CompressionConfig.disabled()),
    ("mpc-opt", CompressionConfig.mpc_opt(partitions=4)),
    ("zfp16", CompressionConfig.zfp_opt(16)),
    ("zfp8", CompressionConfig.zfp_opt(8)),
]


def build(gpus_per_node):
    rows = []
    for gpus in GPUS:
        if gpus < gpus_per_node:
            continue
        row = [gpus]
        for label, cfg in CONFIGS:
            r = run_awp("frontera-liquid", gpus=gpus, gpus_per_node=gpus_per_node,
                        local_shape=LOCAL, steps=3, config=cfg, surrogate=True)
            row.append(r.gflops / 1000.0)  # TFLOP/s
        rows.append(row)
    return rows


def _check(rows):
    last = rows[-1]
    base, mpc, z16, z8 = last[1], last[2], last[3], last[4]
    assert mpc > base, "MPC-OPT must improve flops at scale"
    assert z8 > base, "ZFP-OPT(8) must improve flops at scale"
    assert z8 >= z16 * 0.98, "lower rate >= higher rate"


def test_fig12a_2gpus_per_node(benchmark):
    rows = once(benchmark, build, 2)
    emit(benchmark,
         "Fig 12a - AWP weak scaling, Frontera, 2 GPUs/node (TFLOP/s)",
         ["GPUs"] + [l for l, _ in CONFIGS], rows, floatfmt=".3f",
         mpc_gain=rows[-1][2] / rows[-1][1] - 1,
         zfp8_gain=rows[-1][4] / rows[-1][1] - 1)
    _check(rows)


def test_fig12b_4gpus_per_node(benchmark):
    rows = once(benchmark, build, 4)
    emit(benchmark,
         "Fig 12b - AWP weak scaling, Frontera, 4 GPUs/node (TFLOP/s)",
         ["GPUs"] + [l for l, _ in CONFIGS], rows, floatfmt=".3f",
         mpc_gain=rows[-1][2] / rows[-1][1] - 1,
         zfp8_gain=rows[-1][4] / rows[-1][1] - 1)
    _check(rows)
