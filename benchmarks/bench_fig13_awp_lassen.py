"""Figure 13: AWP-ODC weak scaling on Lassen, 4 GPUs/node.

(a) GPU computing flops (higher better), (b) run time per time step
(lower better).  Paper: MPC-OPT +18% at 512 GPUs, ZFP-OPT(8) +35% at
128 GPUs; run-time/step improvements 15% / 26%.

Default sweep 8..64 GPUs; REPRO_BENCH_FULL=1 goes to 512.
"""

import os

from _common import emit, once

from repro.apps.awp import run_awp
from repro.core import CompressionConfig

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
GPUS = [8, 16, 32, 64, 128, 256, 512] if FULL else [8, 16, 32, 64]
LOCAL = (96, 96, 512)
CONFIGS = [
    ("baseline", CompressionConfig.disabled()),
    ("mpc-opt", CompressionConfig.mpc_opt(partitions=4)),
    ("zfp16", CompressionConfig.zfp_opt(16)),
    ("zfp8", CompressionConfig.zfp_opt(8)),
]


def build():
    flops_rows, tps_rows = [], []
    for gpus in GPUS:
        frow, trow = [gpus], [gpus]
        for label, cfg in CONFIGS:
            r = run_awp("lassen", gpus=gpus, gpus_per_node=4,
                        local_shape=LOCAL, steps=3, config=cfg, surrogate=True)
            frow.append(r.gflops / 1000.0)
            trow.append(r.time_per_step * 1e3)
        flops_rows.append(frow)
        tps_rows.append(trow)
    return flops_rows, tps_rows


def test_fig13_awp_lassen(benchmark):
    flops_rows, tps_rows = once(benchmark, build)
    labels = [l for l, _ in CONFIGS]
    emit(benchmark, "Fig 13a - AWP on Lassen, 4 GPUs/node (TFLOP/s)",
         ["GPUs"] + labels, flops_rows, floatfmt=".3f",
         mpc_gain_at_max=flops_rows[-1][2] / flops_rows[-1][1] - 1,
         zfp8_gain_at_max=flops_rows[-1][4] / flops_rows[-1][1] - 1)
    emit(benchmark, "Fig 13b - AWP on Lassen, run time per step (ms)",
         ["GPUs"] + labels, tps_rows, floatfmt=".3f")
    last_f = flops_rows[-1]
    assert last_f[2] > last_f[1], "MPC-OPT gains flops at scale"
    assert last_f[4] > last_f[1], "ZFP-OPT(8) gains flops at scale"
    last_t = tps_rows[-1]
    assert last_t[2] < last_t[1] and last_t[4] < last_t[1]
    # Aggregate flops must scale with GPU count (weak scaling).
    assert flops_rows[-1][1] > 3 * flops_rows[0][1]
