"""Figure 14: Dask transpose-sum benchmark on the RI2 cluster.

(a) execution time, (b) aggregate throughput, for 2-8 workers
(1 GPU/node), baseline vs ZFP-OPT rates 16 and 8.  Paper: average
1.18x speedup (rate 8) and up to 1.56x aggregate throughput at 8
workers.
"""

from _common import emit, once

from repro.apps.dasklite import transpose_sum_benchmark
from repro.core import CompressionConfig

WORKERS = [2, 4, 6, 8]
DIMS, CHUNK = 5120, 1024  # scaled from the paper's 10K x 10K / 1K
CONFIGS = [
    ("baseline", None),
    ("zfp16", CompressionConfig.zfp_opt(16)),
    ("zfp8", CompressionConfig.zfp_opt(8)),
]


def build():
    time_rows, thr_rows = [], []
    for nw in WORKERS:
        trow, hrow = [nw], [nw]
        for label, cfg in CONFIGS:
            r = transpose_sum_benchmark(n_workers=nw, dims=DIMS, chunk=CHUNK,
                                        machine="ri2", config=cfg)
            trow.append(r.execution_time * 1e3)
            hrow.append(r.aggregate_throughput / 1e9)
        time_rows.append(trow)
        thr_rows.append(hrow)
    return time_rows, thr_rows


def test_fig14_dask_transpose_sum(benchmark):
    time_rows, thr_rows = once(benchmark, build)
    labels = [l for l, _ in CONFIGS]
    emit(benchmark, "Fig 14a - Dask x + x.T execution time (ms, lower better)",
         ["workers"] + labels, time_rows, floatfmt=".2f")
    speedups = [r[1] / r[3] for r in time_rows]
    thr_gain = thr_rows[-1][3] / thr_rows[-1][1]
    emit(benchmark, "Fig 14b - Dask aggregate throughput (GB/s, higher better)",
         ["workers"] + labels, thr_rows, floatfmt=".1f",
         avg_speedup_zfp8=sum(speedups) / len(speedups),
         throughput_gain_8w=thr_gain)
    # Paper: avg 1.18x (2-8 workers) and 1.56x throughput at 8 workers.
    assert sum(speedups) / len(speedups) > 1.05
    assert thr_gain > 1.1
