"""The reproduction scorecard: every headline claim re-measured.

One stop to judge the reproduction: paper value vs. measured value vs.
shape verdict for ten headline claims spanning Table III and Figures
5-14 (plus the pipelining extension).
"""

from _common import emit, once

from repro.analysis.scorecard import render_scorecard, run_scorecard


def test_scorecard(benchmark):
    results = once(benchmark, run_scorecard)
    print("\n" + render_scorecard(results) + "\n")
    benchmark.extra_info.update(
        {r.claim.claim_id: round(r.measured, 3) for r in results}
    )
    bad = [r.claim.claim_id for r in results if not r.shape_ok]
    assert not bad, f"claims losing their shape: {bad}"
