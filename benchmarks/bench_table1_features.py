"""Table I: comparison between compression techniques.

Regenerated from the registry's feature metadata; the two "Proposed"
rows are the only ones with efficient MPI (on-the-fly) support.
"""

from _common import emit, once

from repro.compression import feature_table


def test_table1_features(benchmark):
    rows = once(benchmark, feature_table)
    emit(
        benchmark,
        "Table I - compression technique features",
        ["design", "lossless", "lossy", "gpu", "single", "double",
         "high-tp", "mpi", "implemented-here"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["Proposed MPC-OPT"][7] == "yes"
    assert by_name["Proposed ZFP-OPT"][7] == "yes"
    assert by_name["MPC"][7] == "no"
    assert by_name["ZFP"][7] == "no"
