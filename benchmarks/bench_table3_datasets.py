"""Table III: per-dataset compression ratio and throughput.

Compression *ratios* are real (the synthetic datasets are compressed
with the actual codecs and the best MPC dimensionality, as the paper
fine-tunes).  GPU throughputs are the calibrated V100 kernel model;
the host-side numpy codec throughputs are also timed for reference
(they are not the paper's quantity — the model is).
"""

import numpy as np
from _common import emit, once

from repro.compression import MpcCompressor, ZfpCompressor, kernel_cost_model_for
from repro.datasets import dataset_names, generate
from repro.datasets.catalog import get_spec

SCALE = 0.05  # fraction of the paper's dataset sizes to generate


def build():
    mpc_model = kernel_cost_model_for("mpc")
    zfp_model = kernel_cost_model_for("zfp")
    rows = []
    worst_rel_err = 0.0
    for name in dataset_names():
        spec = get_spec(name)
        data = generate(name, scale=SCALE, seed=1)
        best_dim = MpcCompressor.best_dimensionality(data, range(1, 5))
        cr_mpc = MpcCompressor(best_dim).compress(data).ratio
        cr_zfp = ZfpCompressor(16).compress(data).ratio
        n = data.nbytes
        tp = lambda t: n / t / 1e9 * 8  # Gb/s
        rows.append([
            name, spec.size_mb, 100 * len(np.unique(data)) / data.size,
            tp(zfp_model.compress_time(n, 80, 80)),
            tp(zfp_model.decompress_time(n, 80, 80)),
            cr_zfp,
            tp(mpc_model.compress_time(n, 80, 80)),
            tp(mpc_model.decompress_time(n, 80, 80)),
            cr_mpc,
            spec.cr_mpc,
        ])
        worst_rel_err = max(worst_rel_err, abs(cr_mpc - spec.cr_mpc) / spec.cr_mpc)
    return rows, worst_rel_err


def test_table3_datasets(benchmark):
    rows, worst = once(benchmark, build)
    emit(
        benchmark,
        "Table III - performance and compression ratio of MPC and ZFP "
        "(CRs measured; TPs from the calibrated V100 model)",
        ["dataset", "MB(paper)", "unique%", "TPc-ZFP", "TPd-ZFP", "CR-ZFP",
         "TPc-MPC", "TPd-MPC", "CR-MPC", "CR-MPC(paper)"],
        rows,
        floatfmt=".2f",
        worst_cr_rel_err=worst,
    )
    assert worst < 0.15  # every dataset's MPC ratio within 15% of the paper


def test_table3_host_codec_throughput_mpc(benchmark):
    """Real (host numpy) MPC codec throughput on msg_bt — a genuine
    pytest-benchmark timing, for regression tracking."""
    data = generate("msg_bt", scale=0.02, seed=1)
    codec = MpcCompressor(1)
    result = benchmark(codec.compress, data)
    benchmark.extra_info["ratio"] = result.ratio


def test_table3_host_codec_throughput_zfp(benchmark):
    data = generate("msg_bt", scale=0.02, seed=1)
    codec = ZfpCompressor(16)
    result = benchmark(codec.compress, data)
    benchmark.extra_info["ratio"] = result.ratio
