"""Benchmark suite configuration."""

import sys
from pathlib import Path

# Allow `from _common import ...` regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
