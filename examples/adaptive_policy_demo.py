#!/usr/bin/env python
"""The paper's future work, implemented: adaptive compression.

Section IX proposes a "dynamic design to automatically determine the
use of compression ... based on the compression costs and
communication time assisted by a real-time monitor".  This demo runs
mixed traffic (alternating compressible / incompressible 4 MiB
messages) over fast NVLink, where compression is usually a loss, and
shows the online policy learning to skip it.

Run:  python examples/adaptive_policy_demo.py
"""

import numpy as np

from repro import quick_cluster
from repro.core import CompressionConfig
from repro.utils import format_table
from repro.utils.units import MiB


def traffic(comm, messages):
    for data in messages:
        if comm.rank == 0:
            yield from comm.send(data, 1)
        else:
            yield from comm.recv(0)
    return comm.now


def main():
    rng = np.random.default_rng(0)
    n = (4 * MiB) // 4
    smooth = np.cumsum(rng.standard_normal(n).astype(np.float32) * 1e-4).astype(np.float32)
    noise = rng.integers(0, 1 << 32, n, dtype=np.uint64).astype(np.uint32).view(np.float32)
    messages = [smooth if i % 2 == 0 else noise for i in range(10)]

    cluster = quick_cluster("longhorn", nodes=1, gpus_per_node=2)  # NVLink

    rows = []
    for label, cfg in [
        ("baseline (never compress)", CompressionConfig.disabled()),
        ("always compress (MPC-OPT)", CompressionConfig.mpc_opt()),
        ("adaptive monitor", CompressionConfig.mpc_opt().with_(adaptive=True)),
    ]:
        r = cluster.run(traffic, config=cfg, args=(messages,))
        rows.append([label, r.elapsed * 1e6])

    print(format_table(
        ["policy", "total time us"],
        rows,
        title="10 x 4 MiB mixed messages over NVLink (compression rarely pays)",
    ))
    print("\nThe adaptive monitor explores briefly, observes that kernel cost "
          "exceeds the NVLink wire saving, and converges to the baseline.")


if __name__ == "__main__":
    main()
