#!/usr/bin/env python
"""AWP-ODC weak scaling with on-the-fly compression (paper Fig 12).

Runs the wave-propagation mini-app on a growing Frontera-style cluster
and reports the paper's "GPU computing flops" metric per configuration.
Uses the real (numpy) stencil at a small per-GPU grid, so the halo
payloads are genuine wave fields and lossless compression provably
leaves the physics bit-identical.

Run:  python examples/awp_weak_scaling.py
"""

from repro.apps.awp import run_awp
from repro.core import CompressionConfig
from repro.utils import format_table


def main():
    configs = [
        ("baseline", CompressionConfig.disabled()),
        ("MPC-OPT", CompressionConfig.mpc_opt(threshold=20 * 1024)),
        ("ZFP-OPT r16", CompressionConfig.zfp_opt(16, threshold=20 * 1024)),
        ("ZFP-OPT r8", CompressionConfig.zfp_opt(8, threshold=20 * 1024)),
    ]
    rows = []
    energies = {}
    for gpus in (4, 8, 16):
        for label, cfg in configs:
            r = run_awp(
                machine="frontera-liquid",
                gpus=gpus,
                gpus_per_node=4,
                local_shape=(32, 32, 128),  # per-GPU grid (weak scaling)
                steps=5,
                config=cfg,
            )
            rows.append([
                gpus, label, r.gflops, r.time_per_step * 1e3,
                100 * r.comm_fraction,
            ])
            energies[(gpus, label)] = r.energy

    print(format_table(
        ["GPUs", "config", "GFLOP/s", "ms/step", "comm %"],
        rows,
        title="AWP weak scaling on Frontera-Liquid-style cluster (4 GPUs/node)",
    ))

    # Lossless compression cannot change the physics:
    same = energies[(16, "baseline")] == energies[(16, "MPC-OPT")]
    print(f"\nMPC-OPT solution bit-identical to baseline: {same}")
    drift = abs(energies[(16, 'ZFP-OPT r16')] - energies[(16, 'baseline')])
    print(f"ZFP-OPT(16) energy drift: {drift:.3e} "
          f"(tolerable; rate 4 would break the run — see the paper)")


if __name__ == "__main__":
    main()
