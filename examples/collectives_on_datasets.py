#!/usr/bin/env python
"""Collectives over real-dataset payloads (paper Fig 11).

Broadcasts each Table III dataset across an 8-node x 2-GPU
Frontera-style cluster and prints the latency per compression scheme.
MPC's gain tracks each dataset's compressibility (its star is
msg_sppm); fixed-rate ZFP gains are dataset-independent.

Run:  python examples/collectives_on_datasets.py
"""

from repro.core import CompressionConfig
from repro.omb import osu_bcast
from repro.utils import format_table
from repro.utils.units import MiB

DATASETS = ["msg_bt", "msg_sppm", "msg_sweep3d", "num_plasma"]
CONFIGS = [
    ("baseline", None),
    ("MPC-OPT", CompressionConfig.mpc_opt()),
    ("ZFP-OPT r8", CompressionConfig.zfp_opt(8)),
    ("ZFP-OPT r4", CompressionConfig.zfp_opt(4)),
]


def main():
    rows = []
    for ds in DATASETS:
        row = [ds]
        base = None
        for label, cfg in CONFIGS:
            r = osu_bcast(machine="frontera-liquid", nodes=8, ppn=2,
                          nbytes=4 * MiB, payload=f"dataset:{ds}", config=cfg)
            if base is None:
                base = r.latency
            row.append(r.latency_us)
        row.append(100 * (1 - row[2] / row[1]))  # MPC gain %
        rows.append(row)

    print(format_table(
        ["dataset", "baseline us", "MPC-OPT us", "ZFP8 us", "ZFP4 us",
         "MPC gain %"],
        rows,
        title="MPI_Bcast of 4 MiB dataset payloads (8 nodes x 2 GPUs, IB FDR)",
    ))
    print("\nNote msg_sppm (ratio ~8) vs msg_bt (ratio ~1.3): the lossless "
          "scheme's win is the data's compressibility; ZFP's is fixed.")


if __name__ == "__main__":
    main()
