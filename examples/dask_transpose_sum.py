#!/usr/bin/env python
"""Dask-style distributed transpose-sum with compression (paper Fig 14).

The paper's data-science workload: a chunked 2-D array distributed
across GPU workers computes ``y = x + x.T``, forcing mirror chunks to
cross the network.  ZFP-OPT compresses those transfers.

Run:  python examples/dask_transpose_sum.py
"""

from repro.apps.dasklite import transpose_sum_benchmark
from repro.core import CompressionConfig
from repro.utils import format_table


def main():
    configs = [
        ("baseline", None),
        ("ZFP-OPT r16", CompressionConfig.zfp_opt(16)),
        ("ZFP-OPT r8", CompressionConfig.zfp_opt(8)),
    ]
    rows = []
    for workers in (2, 4, 8):
        base_time = None
        for label, cfg in configs:
            r = transpose_sum_benchmark(
                n_workers=workers, dims=4096, chunk=1024,
                machine="ri2", config=cfg,
            )
            if base_time is None:
                base_time = r.execution_time
            rows.append([
                workers, label,
                r.execution_time * 1e3,
                r.aggregate_throughput / 1e9,
                base_time / r.execution_time,
                r.bytes_on_wire / 1e6,
            ])

    print(format_table(
        ["workers", "config", "exec ms", "agg GB/s", "speedup", "wire MB"],
        rows,
        title="cuPy-style x + x.T across Dask-like workers (RI2: V100, IB EDR)",
    ))
    print("\nPaper reference: 1.18x average speedup, up to 1.56x aggregate "
          "throughput with ZFP-OPT(rate:8) at 8 workers.")


if __name__ == "__main__":
    main()
