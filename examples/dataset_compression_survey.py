#!/usr/bin/env python
"""Survey the codecs on the Table III datasets (paper Sec II).

Generates each synthetic dataset, compresses it with MPC (best
dimensionality), ZFP at rates 16/8/4, and the FPC-style CPU codec, and
prints ratios plus real (host) codec runtimes.

Run:  python examples/dataset_compression_survey.py
"""

import time

import numpy as np

from repro.compression import FpcCompressor, MpcCompressor, ZfpCompressor
from repro.datasets import dataset_names, generate
from repro.datasets.catalog import get_spec
from repro.utils import format_table


def timed_ratio(codec, data):
    t0 = time.perf_counter()
    comp = codec.compress(data)
    dt = time.perf_counter() - t0
    return comp.ratio, data.nbytes / dt / 1e6  # MB/s of host throughput


def main():
    rows = []
    for name in dataset_names():
        spec = get_spec(name)
        data = generate(name, scale=0.03, seed=1)
        dim = MpcCompressor.best_dimensionality(data, range(1, 5))
        cr_mpc, tp_mpc = timed_ratio(MpcCompressor(dim), data)
        cr_z16, _ = timed_ratio(ZfpCompressor(16), data)
        cr_z8, _ = timed_ratio(ZfpCompressor(8), data)
        cr_fpc, tp_fpc = timed_ratio(FpcCompressor(), data)
        uniq = 100 * len(np.unique(data)) / data.size
        rows.append([
            name, data.nbytes // (1 << 10), uniq, dim,
            cr_mpc, spec.cr_mpc, cr_z16, cr_z8, cr_fpc, tp_mpc,
        ])

    print(format_table(
        ["dataset", "KiB", "uniq%", "dim", "CR-MPC", "paper", "CR-ZFP16",
         "CR-ZFP8", "CR-FPC", "host MB/s"],
        rows,
        title="Compression survey on the Table III synthetic datasets",
    ))
    print("\nMPC ratios are tuned to match the paper's Table III; "
          "ZFP's fixed-rate ratios are exact by construction (32/rate).")


if __name__ == "__main__":
    main()
