#!/usr/bin/env python
"""Quickstart: on-the-fly compressed GPU point-to-point messaging.

Builds a two-node Longhorn-style cluster (V100 + IB EDR), sends an 8 MiB
wave-like array between GPUs under several compression configurations,
and prints the one-way latency plus the latency breakdown for each —
a miniature of the paper's Figure 9a.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import quick_cluster
from repro.core import CompressionConfig
from repro.utils import fmt_bytes, format_table


def pingpong(comm, data):
    """Classic osu_latency kernel: rank 0 <-> rank 1 round trip."""
    peer = 1 - comm.rank
    if comm.rank == 0:
        yield from comm.send(data, peer)
        yield from comm.recv(peer)
    else:
        got = yield from comm.recv(peer)
        yield from comm.send(got, peer)
    return comm.now


def main():
    cluster = quick_cluster("longhorn", nodes=2, gpus_per_node=1)

    # A smooth, compressible signal — like mid-simulation HPC data.
    rng = np.random.default_rng(42)
    data = np.cumsum(rng.standard_normal(2 << 20).astype(np.float32) * 1e-3)
    data = data.astype(np.float32)
    print(f"payload: {fmt_bytes(data.nbytes)} of smooth float32 data\n")

    configs = [
        CompressionConfig.disabled(),
        CompressionConfig.naive_mpc(),    # Fig 5: the naive integration
        CompressionConfig.mpc_opt(),      # Sec IV: the proposed scheme
        CompressionConfig.zfp_opt(16),    # lossy, ratio 2
        CompressionConfig.zfp_opt(8),     # lossy, ratio 4
    ]

    rows = []
    for cfg in configs:
        result = cluster.run(pingpong, config=cfg, args=(data,))
        one_way_us = result.elapsed / 2 * 1e6
        bd = result.breakdown()
        rows.append([
            cfg.label,
            one_way_us,
            bd.get("compression_kernel", 0.0) * 1e6,
            bd.get("network", 0.0) * 1e6,
            bd.get("decompression_kernel", 0.0) * 1e6,
            bd.get("malloc", 0.0) * 1e6,
        ])

    print(format_table(
        ["configuration", "one-way us", "compress us", "wire us",
         "decompress us", "cudaMalloc us"],
        rows,
        title="8 MiB inter-node D-D latency (Longhorn-style: V100, IB EDR)",
    ))
    print("\nNote how the naive integration loses to the baseline while "
          "MPC-OPT/ZFP-OPT win — the paper's central result.")


if __name__ == "__main__":
    main()
