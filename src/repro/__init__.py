"""repro — On-the-fly GPU message compression for MPI libraries.

A full reproduction of *"Designing High-Performance MPI Libraries with
On-the-fly Compression for Modern GPU Clusters"* (Q. Zhou et al.,
IPDPS 2021) as a pure-Python library.

The package is organised as a stack of substrates with the paper's
contribution at the top:

``repro.sim``
    Deterministic discrete-event simulation engine (processes, events,
    resources) — the clock everything else runs on.
``repro.gpu``
    Simulated GPU devices: SM occupancy, CUDA streams, device buffers,
    calibrated cost models for cudaMalloc / cudaMemcpy / GDRCopy /
    driver attribute queries, and pre-allocated buffer pools.
``repro.network``
    Interconnect models (InfiniBand EDR/FDR/HDR, NVLink, PCIe, X-Bus)
    and cluster topologies with routing and link contention.
``repro.mpi``
    A GPU-aware MPI runtime on top of the simulator: communicators,
    eager/rendezvous protocols with RTS/CTS handshakes, requests, and
    collectives.
``repro.compression``
    Real, bit-exact compressor implementations — MPC (lossless), ZFP
    (fixed-rate lossy), FPC-style delta codec — plus GPU kernel
    throughput models calibrated to the paper's Table III.
``repro.core``
    The paper's contribution: the on-the-fly message compression
    framework (header piggybacking on RTS), the naive integration, and
    the optimized MPC-OPT / ZFP-OPT schemes.
``repro.datasets``
    Synthetic generators for the eight HPC datasets of Table III.
``repro.apps``
    AWP-ODC-like wave-propagation mini-app and a Dask-like chunked
    array framework used for the application-level evaluation.
``repro.omb``
    OSU-Micro-Benchmark-style latency/bandwidth/collective harnesses.
``repro.analysis``
    Result records and table formatting used by the benchmark suite.

Quickstart::

    from repro import quick_cluster
    from repro.core import CompressionConfig
    from repro.omb import osu_latency

    cluster = quick_cluster("frontera-liquid", nodes=2, gpus_per_node=1)
    cfg = CompressionConfig.zfp_opt(rate=8)
    rows = osu_latency(cluster, sizes=[1 << 20, 8 << 20], config=cfg)
"""

from repro._version import __version__
from repro.cluster import quick_cluster

__all__ = ["__version__", "quick_cluster"]
