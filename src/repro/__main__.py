"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``machines``              list the cluster presets
``codecs``                list codecs and the Table I feature matrix
``latency``               osu_latency sweep on a preset
``bcast`` / ``allgather`` /
``alltoall`` / ``allreduce``  collective latency with dataset payloads
``awp``                   AWP weak-scaling point
``dask``                  the transpose-sum benchmark
``table3``                dataset compression survey
``profile``               INAM-style communication profile of a run
``explain``               critical-path report for the slowest messages
``bench``                 benchmark-trajectory snapshot + regression gate
``perf``                  host-performance snapshot + relative regression gate
``trace``                 export a trace of one workload (Chrome JSON or
                          binary RPRT), or convert between the formats
``chaos``                 fault-injection sweep with bit-exactness checks
``check``                 linter + trace sanitizer + buffer asan + happens-before

Examples::

    python -m repro latency --machine longhorn --config zfp8 --sizes 1M,8M
    python -m repro bcast --dataset msg_sppm --config mpc-opt
    python -m repro awp --gpus 16 --config zfp8
    python -m repro trace latency --codec mpc --out trace.json
    python -m repro trace latency --codec mpc --out trace.rprt
    python -m repro trace convert trace.rprt trace.json
    python -m repro explain --codec mpc --size 4M
    python -m repro explain --trace trace.rprt
    python -m repro bench --quick --out BENCH_dev.json --compare BENCH_main.json
    python -m repro perf --quick --compare tests/data/HOSTPERF_baseline.json
    python -m repro chaos --config mpc-opt --corrupt-rate 0.05 --seed 3
    python -m repro check --lint
    python -m repro check --trace trace.json --format json
"""

from __future__ import annotations

import argparse
import sys

from repro.core import CompressionConfig
from repro.utils import fmt_bytes, format_table, parse_size


def _config(name: str) -> CompressionConfig:
    # Single source of truth for config names: the bench scenario matrix
    # (repro.analysis.bench) uses the same vocabulary.
    from repro.analysis.bench import named_config

    try:
        return named_config(name)
    except KeyError as exc:
        raise SystemExit(str(exc))


def cmd_machines(args) -> None:
    from repro.network.presets import MACHINES

    rows = [[p.name, p.device.name, p.max_gpus_per_node,
             p.intra_link.name, p.intra_link.bandwidth / 1e9,
             p.inter_link.name, p.inter_link.bandwidth / 1e9]
            for p in MACHINES.values()]
    print(format_table(
        ["machine", "gpu", "gpus/node", "intra", "GB/s", "inter", "GB/s"], rows))


def cmd_codecs(args) -> None:
    from repro.compression import feature_table

    print(format_table(
        ["design", "lossless", "lossy", "gpu", "single", "double",
         "high-tp", "mpi", "implemented"],
        feature_table(), title="Table I"))


def cmd_latency(args) -> None:
    from repro.omb import osu_latency

    sizes = [parse_size(s) for s in args.sizes.split(",")]
    rows = osu_latency(args.machine, sizes=sizes, config=_config(args.config),
                       payload=args.payload, inter_node=not args.intra)
    print(format_table(
        ["size", "latency_us"],
        [[fmt_bytes(r.nbytes), r.latency_us] for r in rows],
        title=f"osu_latency on {args.machine} [{args.config}]"))


def cmd_collective(args, op: str) -> None:
    from repro.omb import osu_allgather, osu_allreduce, osu_alltoall, osu_bcast

    fn = {"bcast": osu_bcast, "allgather": osu_allgather,
          "alltoall": osu_alltoall, "allreduce": osu_allreduce}[op]
    config = _config(args.config)
    if getattr(args, "rehop", False):
        config = config.with_(keep_compressed=False)
    kwargs = {}
    if op == "allreduce":
        kwargs["algorithm"] = args.algorithm
    r = fn(machine=args.machine, nodes=args.nodes, ppn=args.ppn,
           nbytes=parse_size(args.size), payload=f"dataset:{args.dataset}",
           config=config, **kwargs)
    algo = f"/{r.algorithm}" if getattr(r, "algorithm", None) else ""
    print(f"{op}{algo} {args.dataset} {args.size} on {args.nodes}x{args.ppn} "
          f"[{args.config}]: {r.latency_us:.1f} us")


def cmd_awp(args) -> None:
    from repro.apps.awp import run_awp

    r = run_awp(machine=args.machine, gpus=args.gpus, gpus_per_node=args.ppn,
                local_shape=(64, 64, 256), steps=args.steps,
                config=_config(args.config), surrogate=args.gpus > 16)
    print(f"AWP {args.gpus} GPUs [{args.config}]: {r.gflops:.1f} GFLOP/s, "
          f"{r.time_per_step * 1e3:.2f} ms/step, comm {r.comm_fraction:.0%}")


def cmd_dask(args) -> None:
    from repro.apps.dasklite import transpose_sum_benchmark

    r = transpose_sum_benchmark(n_workers=args.workers, dims=args.dims,
                                chunk=args.chunk, config=_config(args.config))
    print(f"Dask x+x.T {args.workers} workers [{args.config}]: "
          f"{r.execution_time * 1e3:.2f} ms, "
          f"{r.aggregate_throughput / 1e9:.1f} GB/s aggregate")


def cmd_table3(args) -> None:
    import numpy as np

    from repro.compression import MpcCompressor, ZfpCompressor
    from repro.datasets import dataset_names, generate
    from repro.datasets.catalog import get_spec

    rows = []
    for name in dataset_names():
        data = generate(name, scale=args.scale, seed=1)
        dim = MpcCompressor.best_dimensionality(data, range(1, 5))
        rows.append([
            name, 100 * len(np.unique(data)) / data.size,
            MpcCompressor(dim).compress(data).ratio, get_spec(name).cr_mpc,
            ZfpCompressor(16).compress(data).ratio,
        ])
    print(format_table(
        ["dataset", "unique%", "CR-MPC", "paper", "CR-ZFP16"], rows))


def cmd_profile(args) -> None:
    import json

    import numpy as np

    from repro.analysis import CommProfile
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset

    if args.trace:
        from repro.analysis.rprt import RprtError

        try:
            profile = CommProfile.from_trace_file(args.trace)
        except (OSError, RprtError, ValueError) as exc:
            raise SystemExit(f"cannot read {args.trace}: {exc}")
    else:
        cluster = Cluster(machine_preset(args.machine), nodes=args.nodes,
                          gpus_per_node=args.ppn)
        data = np.cumsum(np.ones(parse_size(args.size) // 4, dtype=np.float32))

        def rank_fn(comm):
            out = yield from comm.allgather(data)
            return len(out)

        res = cluster.run(rank_fn, config=_config(args.config))
        profile = CommProfile.from_result(res)
    if args.format == "json":
        text = json.dumps(profile.as_dict(), indent=1, sort_keys=True) + "\n"
    else:
        text = profile.report() + "\n"
    if args.out:
        try:
            with open(args.out, "w") as fh:
                fh.write(text)
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out}: {exc}")
        print(f"wrote {args.out} [{args.format}]")
    else:
        print(text, end="")


# Codec shorthands for `repro trace`; full _CONFIGS names also work.
_CODECS = {"mpc": "mpc-opt", "zfp": "zfp8", "none": "baseline"}


def _trace_convert(args) -> None:
    from repro.analysis.rprt import RprtError
    from repro.analysis.traceio import convert

    if len(args.paths) != 2:
        raise SystemExit("usage: repro trace convert SRC DST [--format ...]")
    src, dst = args.paths
    try:
        stats = convert(src, dst, to=args.format)
    except (OSError, RprtError, ValueError) as exc:
        raise SystemExit(f"cannot convert {src}: {exc}")
    if stats["format"] == "rprt":
        print(f"wrote {dst} [rprt]: {stats['stored_bytes']} bytes stored "
              f"({stats['raw_bytes']} raw, {stats['ratio']:.2f}x block "
              f"compression)")
    else:
        print(f"wrote {dst} [json]: {stats['events']} events")


def cmd_trace(args) -> None:
    from repro.analysis import write_chrome_trace
    from repro.analysis.rprt import write_trace_rprt
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset
    from repro.omb.payload import make_payload

    if args.workload == "convert":
        _trace_convert(args)
        return
    if args.paths:
        raise SystemExit(f"unexpected arguments: {' '.join(args.paths)}")

    config = _config(_CODECS.get(args.codec, args.codec))
    nbytes = parse_size(args.size)
    data = make_payload(args.payload, nbytes, seed=1)

    if args.workload == "latency":
        cluster = Cluster(machine_preset(args.machine), nodes=2, gpus_per_node=1)

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send(data, dest=1, tag=7)
                return nbytes
            received = yield from comm.recv(source=0, tag=7)
            return received.nbytes
    else:
        cluster = Cluster(machine_preset(args.machine), nodes=2, gpus_per_node=2)

        def rank_fn(comm):
            if args.workload == "bcast":
                out = yield from comm.bcast(data, root=0)
                return out.nbytes
            out = yield from comm.allgather(data)
            return len(out)

    res = cluster.run(rank_fn, config=config)
    fmt = args.format
    if fmt is None:
        fmt = "rprt" if args.out.lower().endswith(".rprt") else "json"
    try:
        if fmt == "rprt":
            stats = write_trace_rprt(res.tracer, args.out, elapsed=res.elapsed)
        else:
            write_chrome_trace(res.tracer, args.out, elapsed=res.elapsed)
    except OSError as exc:
        raise SystemExit(f"cannot write {args.out}: {exc}")
    n_spans = len(res.tracer.records)
    extra = (f", {stats['ratio']:.2f}x block compression"
             if fmt == "rprt" else "")
    print(f"wrote {args.out} [{fmt}]: {n_spans} spans, "
          f"{res.elapsed * 1e6:.1f} us simulated "
          f"[{args.workload}, {args.codec}, {args.machine}]{extra}")


def cmd_explain(args) -> None:
    from repro.analysis import CritPathAnalyzer
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset
    from repro.omb.payload import make_payload

    if args.trace:
        from repro.analysis.rprt import RprtError
        from repro.analysis.traceio import load_trace_records

        try:
            records = load_trace_records(args.trace)
        except (OSError, RprtError, ValueError) as exc:
            raise SystemExit(f"cannot read {args.trace}: {exc}")
        print(CritPathAnalyzer(records).explain(n=args.top))
        return

    config = _config(_CODECS.get(args.codec, args.codec))
    nbytes = parse_size(args.size)
    data = make_payload(args.payload, nbytes, seed=1)
    cluster = Cluster(machine_preset(args.machine), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
            return nbytes
        received = yield from comm.recv(source=0, tag=7)
        return received.nbytes

    res = cluster.run(rank_fn, config=config)
    print(CritPathAnalyzer(res.tracer).explain(n=args.top))


def cmd_bench(args) -> None:
    from repro.analysis import bench

    if args.against:
        current = bench.load(args.against)
    else:
        current = bench.collect(quick=args.quick, label=args.label,
                                only=args.scenario,
                                record_wall=args.record_wall,
                                asan=args.asan, scale=args.scale,
                                progress=lambda name: print(f"  running {name} ..."))
        out = args.out or f"BENCH_{args.label}.json"
        try:
            bench.write(current, out)
        except OSError as exc:
            raise SystemExit(f"cannot write {out}: {exc}")
        print(f"wrote {out}: {len(current['scenarios'])} scenarios "
              f"[{current['mode']}]")
    if args.compare:
        try:
            baseline = bench.load(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}")
        cmp = bench.compare(current, baseline)
        print(cmp.report())
        if not cmp.ok:
            raise SystemExit(1)


def cmd_perf(args) -> None:
    from repro.analysis import hostperf

    if args.selftest:
        failures = hostperf.selftest()
        if failures:
            for f in failures:
                print(f"selftest FAILED: {f}")
            raise SystemExit(1)
        print("hostperf selftest OK: injected regressions gate, "
              "improvements do not")
        return
    if args.against:
        current = hostperf.load(args.against)
    else:
        current = hostperf.collect(quick=args.quick, label=args.label,
                                   reps=args.reps, only=args.only,
                                   progress=lambda name: print(f"  timing {name} ..."))
        out = args.out or f"HOSTPERF_{args.label}.json"
        try:
            hostperf.write(current, out)
        except OSError as exc:
            raise SystemExit(f"cannot write {out}: {exc}")
        print(f"wrote {out}: {len(current['benchmarks'])} benchmarks "
              f"[{current['mode']}, median of {current['reps']}]")
    if args.compare:
        try:
            baseline = hostperf.load(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}")
        cmp = hostperf.compare(current, baseline, threshold=args.threshold)
        print(cmp.report())
        if not cmp.ok and not args.advisory:
            raise SystemExit(1)


def cmd_chaos(args) -> None:
    from repro.errors import ConfigError, ResilienceError
    from repro.faults import FaultPlan
    from repro.faults.chaos import run_chaos, run_chaos_sweep
    from repro.faults.plan import RankFailure

    rank_failures = []
    for i, rank in enumerate(args.kill_rank):
        at = args.kill_at[i] if i < len(args.kill_at) else None
        after = (args.kill_after_sends[i]
                 if i < len(args.kill_after_sends) else None)
        if at is None and after is None:
            raise SystemExit(
                f"--kill-rank {rank} needs a paired --kill-at or "
                f"--kill-after-sends")
        try:
            rank_failures.append(RankFailure(rank=rank, at_time=at,
                                             after_sends=after))
        except ConfigError as exc:
            raise SystemExit(str(exc))
    plan = FaultPlan(
        seed=args.seed,
        corrupt_rate=args.corrupt_rate,
        drop_rate=args.drop_rate,
        oom_rate=args.oom_rate,
        pool_fail_rate=args.pool_fail_rate,
        compress_fail_rate=args.compress_fail_rate,
        decompress_corrupt_rate=args.decompress_corrupt_rate,
        rank_failures=tuple(rank_failures),
    )
    sizes = tuple(parse_size(s) for s in args.sizes.split(","))
    common = dict(machine=args.machine, sizes=sizes,
                  config=_config(args.config),
                  payload=args.payload, iterations=args.iters,
                  workload=args.workload, nodes=args.nodes,
                  gpus_per_node=args.ppn,
                  checkpoint_every=args.checkpoint_every)
    try:
        if args.seed_sweep > 0:
            report = run_chaos_sweep(n_seeds=args.seed_sweep,
                                     base_seed=args.seed, plan=plan, **common)
        else:
            report = run_chaos(plan=plan, **common)
    except ValueError as exc:
        raise SystemExit(str(exc))
    except ResilienceError as exc:
        raise SystemExit(
            f"chaos run unrecoverable under {plan.describe()}: {exc}")
    print(report.summary())
    if not report.ok:
        raise SystemExit(1)


def cmd_check(args) -> None:
    from repro.check import run_check

    code = run_check(lint=args.lint,
                     trace=args.trace is not None and not args.hb,
                     asan=args.asan, selftest=args.selftest, hb=args.hb,
                     trace_files=args.trace or (), paths=args.path,
                     fmt=args.format)
    if code:
        raise SystemExit(code)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines")
    sub.add_parser("codecs")

    p = sub.add_parser("latency")
    p.add_argument("--machine", default="longhorn")
    p.add_argument("--config", default="baseline")
    p.add_argument("--sizes", default="256K,1M,4M")
    p.add_argument("--payload", default="omb")
    p.add_argument("--intra", action="store_true")

    for op in ("bcast", "allgather", "alltoall", "allreduce"):
        p = sub.add_parser(op)
        p.add_argument("--machine", default="frontera-liquid")
        p.add_argument("--nodes", type=int, default=8)
        p.add_argument("--ppn", type=int, default=2)
        p.add_argument("--size", default="4M")
        p.add_argument("--dataset", default="msg_sppm")
        p.add_argument("--config", default="mpc-opt")
        p.add_argument("--rehop", action="store_true",
                       help="decode+re-encode at every hop (ablation of "
                            "keep-compressed forwarding)")
        if op == "allreduce":
            p.add_argument("--algorithm", default=None,
                           help="ring | recursive_doubling | reduce_bcast "
                                "(default: auto by rank count)")

    p = sub.add_parser("awp")
    p.add_argument("--machine", default="frontera-liquid")
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--ppn", type=int, default=4)
    p.add_argument("--steps", type=int, default=3)
    p.add_argument("--config", default="baseline")

    p = sub.add_parser("dask")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--dims", type=int, default=4096)
    p.add_argument("--chunk", type=int, default=1024)
    p.add_argument("--config", default="zfp8")

    p = sub.add_parser("table3")
    p.add_argument("--scale", type=float, default=0.03)

    p = sub.add_parser("profile")
    p.add_argument("--machine", default="longhorn")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--ppn", type=int, default=2)
    p.add_argument("--size", default="2M")
    p.add_argument("--config", default="mpc-opt")
    p.add_argument("--trace", default=None, metavar="TRACE",
                   help="profile an exported trace file (Chrome JSON or "
                        "RPRT) instead of running a workload")
    p.add_argument("--out", default=None,
                   help="write the profile to FILE instead of stdout")
    p.add_argument("--format", choices=("text", "json"), default="text")

    p = sub.add_parser("explain")
    p.add_argument("--codec", default="mpc",
                   help="mpc | zfp | none, or any config name")
    p.add_argument("--machine", default="longhorn")
    p.add_argument("--size", default="1M")
    p.add_argument("--payload", default="omb")
    p.add_argument("--trace", default=None, metavar="TRACE",
                   help="explain an exported trace file (Chrome JSON or "
                        "RPRT) instead of running a workload")
    p.add_argument("--top", type=int, default=5)

    p = sub.add_parser("bench")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized matrix (small sweeps)")
    p.add_argument("--label", default="local")
    p.add_argument("--out", default=None,
                   help="snapshot path (default BENCH_<label>.json)")
    p.add_argument("--scenario", default=None,
                   help="only run scenarios whose name contains this")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="diff against a baseline snapshot; exit 1 on drift")
    p.add_argument("--against", default=None, metavar="CURRENT.json",
                   help="compare an existing snapshot instead of re-running")
    p.add_argument("--record-wall", action="store_true",
                   help="include advisory host wall-clock (breaks "
                        "byte-identical snapshots)")
    p.add_argument("--asan", action="store_true",
                   help="run scenarios under the buffer sanitizer "
                        "(pure bookkeeping; snapshots unchanged)")
    p.add_argument("--scale", action="store_true",
                   help="run the 1k+-rank scale matrix instead "
                        "(gate against tests/data/BENCH_scale_baseline.json)")

    p = sub.add_parser("perf")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized matrix (two sizes per codec)")
    p.add_argument("--label", default="local")
    p.add_argument("--out", default=None,
                   help="snapshot path (default HOSTPERF_<label>.json)")
    p.add_argument("--only", default=None,
                   help="only run benchmarks whose name contains this")
    p.add_argument("--reps", type=int, default=5,
                   help="median-of-k repetitions per benchmark")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="diff against a baseline; exit 1 past --threshold "
                        "(unless --advisory)")
    p.add_argument("--against", default=None, metavar="CURRENT.json",
                   help="compare an existing snapshot instead of re-running")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="relative regression threshold (default 0.30)")
    p.add_argument("--advisory", action="store_true",
                   help="report regressions but always exit 0")
    p.add_argument("--selftest", action="store_true",
                   help="prove the gate flags an injected synthetic regression")

    p = sub.add_parser("trace")
    p.add_argument("workload",
                   choices=("latency", "bcast", "allgather", "convert"),
                   help="workload to trace, or 'convert' to translate an "
                        "existing trace between JSON and RPRT")
    p.add_argument("paths", nargs="*", metavar="SRC DST",
                   help="source and destination files (convert only)")
    p.add_argument("--codec", default="mpc",
                   help="mpc | zfp | none, or any config name")
    p.add_argument("--machine", default="longhorn")
    p.add_argument("--size", default="1M")
    p.add_argument("--payload", default="omb")
    p.add_argument("--format", choices=("json", "rprt"), default=None,
                   help="export container (default: by --out extension, "
                        "else json; for convert: by DST extension, else "
                        "the opposite of SRC)")
    p.add_argument("--out", default="trace.json")

    p = sub.add_parser("check")
    p.add_argument("--lint", action="store_true",
                   help="run only the determinism linter")
    p.add_argument("--trace", nargs="*", metavar="TRACE", default=None,
                   help="run only the trace sanitizer; with files, check "
                        "exported traces (Chrome JSON or RPRT) instead of "
                        "in-process runs")
    p.add_argument("--asan", action="store_true",
                   help="run only the buffer sanitizer smoke")
    p.add_argument("--hb", action="store_true",
                   help="run the happens-before analysis (races, message "
                        "races, deadlock cycles, WireImage typestate) "
                        "over --trace files or the in-process smokes")
    p.add_argument("--selftest", action="store_true",
                   help="prove each pass fails on the known-bad fixtures")
    p.add_argument("--path", nargs="*", default=(),
                   help="lint these files/dirs instead of the repro package")
    p.add_argument("--format", choices=("text", "json"), default="text")

    p = sub.add_parser("chaos")
    p.add_argument("--machine", default="longhorn")
    p.add_argument("--config", default="mpc-opt")
    p.add_argument("--workload", default="pt2pt",
                   choices=("pt2pt", "bcast", "allgather", "allreduce", "awp"),
                   help="collective workloads fault the relayed "
                        "keep-compressed hops too; bcast/allreduce/awp "
                        "support fail-stop rank kills")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--ppn", type=int, default=1,
                   help="ranks per node (collectives default to 2)")
    p.add_argument("--sizes", default="256K,1M")
    p.add_argument("--payload", default="omb")
    p.add_argument("--iters", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--corrupt-rate", type=float, default=0.05)
    p.add_argument("--drop-rate", type=float, default=0.0)
    p.add_argument("--oom-rate", type=float, default=0.0)
    p.add_argument("--pool-fail-rate", type=float, default=0.0)
    p.add_argument("--compress-fail-rate", type=float, default=0.0)
    p.add_argument("--decompress-corrupt-rate", type=float, default=0.0)
    p.add_argument("--kill-rank", type=int, action="append", default=[],
                   help="fail-stop this global rank mid-run (repeatable); "
                        "pairs positionally with --kill-at/--kill-after-sends")
    p.add_argument("--kill-at", type=float, action="append", default=[],
                   help="sim time (s) at which the paired --kill-rank dies")
    p.add_argument("--kill-after-sends", type=int, action="append",
                   default=[],
                   help="kill the paired --kill-rank on its Nth message send")
    p.add_argument("--checkpoint-every", type=int, default=2,
                   help="checkpoint cadence (steps) for fail-stop workloads")
    p.add_argument("--seed-sweep", type=int, default=0, metavar="N",
                   help="repeat the run across N seeds and print aggregate "
                        "recovery statistics")

    args = parser.parse_args(argv)
    {
        "machines": cmd_machines,
        "codecs": cmd_codecs,
        "latency": cmd_latency,
        "bcast": lambda a: cmd_collective(a, "bcast"),
        "allgather": lambda a: cmd_collective(a, "allgather"),
        "alltoall": lambda a: cmd_collective(a, "alltoall"),
        "allreduce": lambda a: cmd_collective(a, "allreduce"),
        "awp": cmd_awp,
        "dask": cmd_dask,
        "table3": cmd_table3,
        "profile": cmd_profile,
        "explain": cmd_explain,
        "bench": cmd_bench,
        "perf": cmd_perf,
        "trace": cmd_trace,
        "chaos": cmd_chaos,
        "check": cmd_check,
    }[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
