"""Experiment records, reporting helpers and INAM-style profiling."""

from repro.analysis.profile import CommProfile, LinkStats
from repro.analysis.report import ExperimentRecord, comparison_table, reduction_pct

__all__ = [
    "ExperimentRecord",
    "comparison_table",
    "reduction_pct",
    "CommProfile",
    "LinkStats",
]
