"""Experiment records, reporting helpers, metrics and INAM-style profiling."""

from repro.analysis.critpath import CollectivePath, CritPathAnalyzer, MessagePath
from repro.analysis.export import to_chrome_trace, write_chrome_trace
from repro.analysis.metrics import HistogramStat, MetricsRegistry
from repro.analysis.profile import CommProfile, LinkStats
from repro.analysis.report import ExperimentRecord, comparison_table, reduction_pct
from repro.analysis.rprt import (RprtError, RprtReader, RprtWriter, is_rprt,
                                 write_trace_rprt)
from repro.analysis.traceio import convert, iter_trace_records, load_trace_records

__all__ = [
    "ExperimentRecord",
    "comparison_table",
    "reduction_pct",
    "CommProfile",
    "LinkStats",
    "MetricsRegistry",
    "HistogramStat",
    "CritPathAnalyzer",
    "MessagePath",
    "CollectivePath",
    "to_chrome_trace",
    "write_chrome_trace",
    "RprtError",
    "RprtReader",
    "RprtWriter",
    "is_rprt",
    "write_trace_rprt",
    "convert",
    "iter_trace_records",
    "load_trace_records",
]
