"""Continuous benchmark trajectory: deterministic scenario matrix,
schema-versioned ``BENCH_*.json`` snapshots, and regression gating.

The paper's claims are curves — pt2pt latency per codec configuration,
collective latency, application speedup — and this repository's
simulation is fully deterministic, so a benchmark run can be captured
as an *exact* JSON snapshot and later runs diffed against it with zero
tolerance on every simulated metric.  ``python -m repro bench`` wraps
this module; CI runs the quick matrix on every push and fails when any
simulated number drifts from the committed baseline
(``tests/data/BENCH_baseline.json``).

Design points:

* **One source of truth for scenarios** — the message-size sweeps and
  codec-config names used by the pytest-benchmark suite
  (``benchmarks/_common.py``) come from here, so the figures and the
  trajectory measure the same thing.
* **Byte-identical snapshots** — nothing wall-clock-dependent is
  written by default: timestamps, hostnames and wall durations are
  excluded, floats are rounded to fixed precision, keys are sorted.
  Two same-seed runs of :func:`collect` serialize identically.
  Wall-clock capture is opt-in (``record_wall=True``) and compared
  *advisorily* only — a wall drift warns, never gates.
* **Critical-path attribution rides along** — each pt2pt scenario
  embeds the Fig 10 bucket percentages computed by
  :class:`~repro.analysis.critpath.CritPathAnalyzer`, so a regression
  report shows not just *that* latency moved but *where* the moved
  microseconds sit (kernel vs. wire vs. protocol).

Snapshot schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "label": "<free-form>",
      "mode": "quick" | "full" | "scale",
      "scenarios": {
        "<name>": {
          "kind": "pt2pt" | "collective" | "awp" | "chaos",
          "params": {...},          # enough to re-run the scenario
          "metrics": {"<metric>": <number>, ...},   # simulated, gated
          "attribution": {...},     # optional, gated
          "counters": {...},        # metrics-registry extract, gated
          "wall": {...}             # optional, advisory only
        }
      }
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.envconfig import env_flag
from repro.utils.units import KiB, MiB

__all__ = [
    "SCHEMA_VERSION", "Scenario", "scenario_matrix", "scale_matrix",
    "sweep_sizes",
    "full_sweep_enabled", "named_config", "CONFIG_NAMES",
    "collect", "dumps", "write", "compare", "load",
    "Drift", "Comparison",
]

SCHEMA_VERSION = 1

#: Fig 5/9/10 message sweep (paper: 256K..32M; default stops at 8M)
_SWEEP = (256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB)
_SWEEP_FULL = _SWEEP + (16 * MiB, 32 * MiB)
#: the quick (CI / --quick) subset
QUICK_SIZES = (256 * KiB, 1 * MiB)

#: pt2pt codec configurations tracked by the trajectory
PT2PT_CONFIGS = ("baseline", "naive-mpc", "mpc-opt", "zfp8", "zfp8-pipe")


def full_sweep_enabled() -> bool:
    """``REPRO_BENCH_FULL=1`` extends sweeps to the paper's full range."""
    return env_flag("REPRO_BENCH_FULL")


def sweep_sizes(full: Optional[bool] = None) -> list[int]:
    """The canonical message-size sweep (shared with ``benchmarks/``)."""
    if full is None:
        full = full_sweep_enabled()
    return list(_SWEEP_FULL if full else _SWEEP)


def _named_configs() -> dict[str, Callable]:
    from repro.core import CompressionConfig

    return {
        "baseline": CompressionConfig.disabled,
        "naive-mpc": CompressionConfig.naive_mpc,
        "naive-zfp": CompressionConfig.naive_zfp,
        "mpc-opt": CompressionConfig.mpc_opt,
        "zfp16": lambda: CompressionConfig.zfp_opt(16),
        "zfp8": lambda: CompressionConfig.zfp_opt(8),
        "zfp4": lambda: CompressionConfig.zfp_opt(4),
        "zfp8-pipe": lambda: CompressionConfig.zfp_opt(8).with_(
            pipeline=True, partitions=8),
        "adaptive": lambda: CompressionConfig.mpc_opt().with_(adaptive=True),
    }


#: every config name accepted by the CLI and the scenario matrix
CONFIG_NAMES = tuple(sorted(_named_configs()))


def named_config(name: str):
    """Resolve a config name (the CLI's ``--config`` vocabulary)."""
    try:
        return _named_configs()[name]()
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; choose from {list(CONFIG_NAMES)}")


@dataclass(frozen=True)
class Scenario:
    """One entry of the benchmark matrix."""

    name: str
    kind: str
    params: dict = field(default_factory=dict)


def scenario_matrix(quick: bool = True) -> list[Scenario]:
    """The curated matrix: pt2pt per codec config, two collectives, one
    AWP weak-scaling point, and a chaos-overhead delta."""
    sizes = list(QUICK_SIZES) if quick else sweep_sizes(full=None)
    out = [
        Scenario(f"pt2pt/{cfg}", "pt2pt",
                 {"machine": "longhorn", "config": cfg, "sizes": sizes,
                  "payload": "omb"})
        for cfg in PT2PT_CONFIGS
    ]
    coll = 256 * KiB if quick else 1 * MiB
    for op in ("bcast", "allgather"):
        out.append(Scenario(
            f"{op}/mpc-opt", "collective",
            {"machine": "frontera-liquid", "op": op, "nodes": 2, "ppn": 2,
             "nbytes": coll, "payload": "dataset:msg_sppm",
             "config": "mpc-opt"}))
    # Keep-compressed vs per-hop-recompress ablation, per topology
    # preset: the multi-hop collectives relay wire images by default
    # ("keep"); "rehop" decodes and re-encodes at every hop.
    for machine in ("frontera-liquid", "longhorn"):
        for op in ("bcast", "allgather"):
            for mode, keep in (("keep", True), ("rehop", False)):
                out.append(Scenario(
                    f"coll-ablation/{op}/{machine}/{mode}", "collective",
                    {"machine": machine, "op": op, "nodes": 2, "ppn": 2,
                     "nbytes": coll, "payload": "dataset:msg_sppm",
                     "config": "mpc-opt", "keep_compressed": keep}))
    # osu_allreduce: the two real algorithms under MPC-OPT (the ring
    # engages the hZCCL-style compressed-domain reduction) plus the
    # uncompressed baseline for scale.  4x the collective size so the
    # ring's per-rank chunks (nbytes / 4 ranks) stay above the
    # compression threshold.
    for name, cfg, algo in (
        ("allreduce/mpc-opt/ring", "mpc-opt", "ring"),
        ("allreduce/mpc-opt/rdouble", "mpc-opt", "recursive_doubling"),
        ("allreduce/baseline/ring", "baseline", "ring"),
    ):
        out.append(Scenario(
            name, "collective",
            {"machine": "frontera-liquid", "op": "allreduce", "nodes": 2,
             "ppn": 2, "nbytes": 4 * coll, "payload": "dataset:msg_sppm",
             "config": cfg, "algorithm": algo}))
    out.append(Scenario(
        "awp/4gpu-mpc-opt", "awp",
        {"machine": "frontera-liquid", "gpus": 4, "ppn": 2,
         "steps": 2, "local_shape": [16, 16, 64] if quick else [32, 32, 128],
         "config": "mpc-opt"}))
    out.append(Scenario(
        "chaos/mpc-opt-corrupt", "chaos",
        {"machine": "longhorn", "config": "mpc-opt", "sizes": [256 * KiB],
         "iterations": 2, "corrupt_rate": 0.2, "seed": 1,
         "payload": "omb"}))
    return out


def scale_matrix() -> list[Scenario]:
    """The large-rank matrix behind ``repro bench --scale`` and CI's
    scale-smoke job: hierarchical-topology runs sized so the whole
    matrix finishes inside a CI wall-clock budget, yet big enough that
    an engine or routing regression shows up as either a simulated-
    metric drift (gated, zero tolerance) or a budget blowout.

    Scale scenarios run untraced with zero warm-up — at 1024 ranks a
    ring allgather is ~1M rendezvous messages, and span recording plus
    a second warm-up invocation are what separate minutes from hours
    of host time.  The small 64-rank point exists so the tier-1 tests
    can exercise the same code path in milliseconds.
    """
    return [
        Scenario(
            "scale/allgather-64/fat-tree", "collective",
            {"machine": "fat-tree", "op": "allgather", "nodes": 16,
             "ppn": 4, "nbytes": 4096, "payload": "omb",
             "config": "baseline", "warmup": 0, "trace": False}),
        Scenario(
            "scale/allgather-1024/fat-tree", "collective",
            {"machine": "fat-tree", "op": "allgather", "nodes": 256,
             "ppn": 4, "nbytes": 4096, "payload": "omb",
             "config": "baseline", "warmup": 0, "trace": False}),
        Scenario(
            "scale/awp-4096/dragonfly", "awp",
            {"machine": "dragonfly", "gpus": 4096, "ppn": 4, "steps": 2,
             "local_shape": [16, 16, 64], "config": "baseline",
             "surrogate": True, "trace": False}),
    ]


# -- scenario runners -------------------------------------------------------

def _r(x: float, places: int = 6) -> float:
    """Fixed-precision rounding for snapshot floats (still exact across
    same-seed runs; keeps the JSON diffable by humans)."""
    return round(float(x), places)


def _registry_extract(metrics) -> dict:
    """The trajectory-worthy slice of a run's metrics registry."""
    out = {
        "mpi.sends": _r(metrics.counter_total("mpi.sends"), 0),
        "wire.bytes": _r(metrics.counter_total("wire.bytes"), 0),
        "pool.hit": _r(metrics.counter_total("pool.hit"), 0),
        "pool.miss": _r(metrics.counter_total("pool.miss"), 0),
    }
    bytes_in = metrics.counter_total("compress.bytes_in")
    bytes_out = metrics.counter_total("compress.bytes_out")
    if bytes_out:
        out["compression_ratio"] = _r(bytes_in / bytes_out, 4)
    hist = metrics.histogram("compress.kernel_us", codec="mpc")
    if not hist.count:
        hist = metrics.histogram("compress.kernel_us", codec="zfp")
    if hist.count:
        out["compress.kernel_us.p50"] = _r(hist.p50, 3)
        out["compress.kernel_us.p99"] = _r(hist.p99, 3)
    return out


def _histogram_extract(metrics) -> dict:
    """Full per-label histogram dump (per-rank queue depths, kernel
    timings) — bucket counts plus the streaming summary, rounded for
    diffability.  Rides in the snapshot as a non-gated ``histograms``
    section and is laid out columnar in RPRT snapshots."""
    out = {}
    for name, hist in sorted(metrics.as_dict()["histograms"].items()):
        out[name] = {
            "count": hist["count"],
            "sum": _r(hist["sum"], 4),
            "min": _r(hist["min"], 4),
            "max": _r(hist["max"], 4),
            "p50": _r(hist["p50"], 4),
            "p95": _r(hist["p95"], 4),
            "p99": _r(hist["p99"], 4),
            "buckets": hist["buckets"],
        }
    return out


def _run_pt2pt(params: dict) -> dict:
    from repro.analysis.critpath import CritPathAnalyzer
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset
    from repro.omb.payload import make_payload
    from repro.omb.pt2pt import _pingpong

    config = named_config(params["config"])
    cluster = Cluster(machine_preset(params["machine"]), nodes=2,
                      gpus_per_node=1)
    metrics: dict[str, float] = {}
    last = None
    for nbytes in params["sizes"]:
        data = make_payload(params["payload"], nbytes)
        res = cluster.run(_pingpong, config=config, args=(data, 1, 1))
        metrics[f"latency_us[{nbytes}]"] = _r(res.values[0] * 1e6)
        last = res
    result = {"kind": "pt2pt", "params": params, "metrics": metrics,
              "counters": _registry_extract(last.tracer.metrics),
              "histograms": _histogram_extract(last.tracer.metrics)}
    attribution = CritPathAnalyzer(last.tracer).aggregate_attribution()
    result["attribution"] = {k: _r(v, 4) for k, v in attribution.items()}
    return result


def _run_collective(params: dict) -> dict:
    from repro.omb.collective import (osu_allgather, osu_allreduce,
                                      osu_alltoall, osu_bcast)

    fns = {"bcast": osu_bcast, "allgather": osu_allgather,
           "alltoall": osu_alltoall, "allreduce": osu_allreduce}
    fn = fns[params["op"]]
    config = named_config(params["config"])
    if "keep_compressed" in params:
        config = config.with_(keep_compressed=params["keep_compressed"])
    kwargs = {}
    if params["op"] == "allreduce" and params.get("algorithm"):
        kwargs["algorithm"] = params["algorithm"]
    if "warmup" in params:
        kwargs["warmup"] = params["warmup"]
    if "trace" in params:
        kwargs["trace"] = params["trace"]
    row = fn(machine=params["machine"], nodes=params["nodes"],
             ppn=params["ppn"], nbytes=params["nbytes"],
             payload=params["payload"], config=config, **kwargs)
    return {"kind": "collective", "params": params,
            "metrics": {"latency_us": _r(row.latency_us)}}


def _run_awp(params: dict) -> dict:
    from repro.apps.awp import run_awp

    r = run_awp(machine=params["machine"], gpus=params["gpus"],
                gpus_per_node=params["ppn"],
                local_shape=tuple(params["local_shape"]),
                steps=params["steps"], config=named_config(params["config"]),
                surrogate=params.get("surrogate", False),
                trace=params.get("trace", True))
    return {"kind": "awp", "params": params, "metrics": {
        "time_per_step_us": _r(r.time_per_step * 1e6),
        "comm_fraction_pct": _r(100.0 * r.comm_fraction, 4),
        "gflops": _r(r.gflops, 4),
    }}


def _run_chaos(params: dict) -> dict:
    from repro.faults import FaultPlan
    from repro.faults.chaos import run_chaos

    plan = FaultPlan(seed=params["seed"], corrupt_rate=params["corrupt_rate"])
    report = run_chaos(machine=params["machine"],
                       sizes=tuple(params["sizes"]),
                       config=named_config(params["config"]), plan=plan,
                       payload=params["payload"],
                       iterations=params["iterations"])
    res = report.results[0]
    return {"kind": "chaos", "params": params, "metrics": {
        "mismatches": _r(report.total_mismatches, 0),
        "overhead_us": _r(res.overhead * 1e6),
        "faults_injected": _r(sum(res.faults_injected.values()), 0),
        "retransmits": _r(res.recovery_events.get("retransmit", 0), 0),
    }}


_RUNNERS = {"pt2pt": _run_pt2pt, "collective": _run_collective,
            "awp": _run_awp, "chaos": _run_chaos}


def collect(quick: bool = True, label: str = "local",
            only: Optional[str] = None, record_wall: bool = False,
            progress: Optional[Callable[[str], None]] = None,
            asan: bool = False, scale: bool = False) -> dict:
    """Run the scenario matrix and build the snapshot document.

    ``only`` filters scenarios by substring.  ``record_wall`` adds an
    advisory per-scenario host wall-clock section (breaks byte-identity
    between runs — leave off for gating snapshots).  ``asan`` runs
    every scenario under the buffer sanitizer; it is pure bookkeeping,
    so the snapshot stays byte-identical either way.  ``scale`` swaps
    in :func:`scale_matrix` (the 1k+-rank hierarchical-topology runs;
    gated against ``tests/data/BENCH_scale_baseline.json``) and stamps
    ``mode: "scale"`` so scale snapshots never compare against the
    quick/full baselines by accident.
    """
    from repro.check.asan import asan_scope

    doc = {"schema_version": SCHEMA_VERSION, "label": label,
           "mode": "scale" if scale else ("quick" if quick else "full"),
           "scenarios": {}}
    with asan_scope(asan):
        for sc in (scale_matrix() if scale else scenario_matrix(quick)):
            if only and only not in sc.name:
                continue
            if progress:
                progress(sc.name)
            # Advisory host wall-clock only; never enters gated snapshots
            # (record_wall defaults off), so the wall-clock read is safe.
            t0 = time.perf_counter()  # repro: allow-RPR001
            result = _RUNNERS[sc.kind](sc.params)
            if record_wall:
                result["wall"] = {"seconds": time.perf_counter() - t0}  # repro: allow-RPR001
            doc["scenarios"][sc.name] = result
    return doc


# -- serialization ----------------------------------------------------------

def dumps(doc: dict) -> str:
    """Canonical serialization: sorted keys, fixed indent, trailing
    newline — byte-identical across same-seed runs."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def write(doc: dict, path) -> None:
    """Write a snapshot — canonical JSON, or a binary RPRT container
    (with the numeric metrics additionally laid out columnar) when
    ``path`` ends in ``.rprt``."""
    if str(path).lower().endswith(".rprt"):
        from repro.analysis.rprt import write_snapshot_rprt

        write_snapshot_rprt(doc, path, kind="bench")
        return
    with open(path, "w") as fh:
        fh.write(dumps(doc))


def load(path) -> dict:
    from repro.analysis.rprt import is_rprt, read_snapshot_rprt

    if is_rprt(path):
        doc = read_snapshot_rprt(path)
    else:
        with open(path) as fh:
            doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} unsupported "
            f"(expected {SCHEMA_VERSION})")
    return doc


# -- comparison / regression gating -----------------------------------------

@dataclass(frozen=True)
class Drift:
    """One metric that moved (or appeared/vanished) vs. the baseline."""

    scenario: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    advisory: bool = False

    def describe(self) -> str:
        tag = "advisory" if self.advisory else "DRIFT"
        if self.baseline is None:
            return f"[{tag}] {self.scenario}: {self.metric} missing from baseline"
        if self.current is None:
            return f"[{tag}] {self.scenario}: {self.metric} missing from current"
        delta = self.current - self.baseline
        rel = 100.0 * delta / self.baseline if self.baseline else float("inf")
        return (f"[{tag}] {self.scenario}: {self.metric} "
                f"{self.baseline} -> {self.current} ({rel:+.2f}%)")


@dataclass
class Comparison:
    """Outcome of :func:`compare`."""

    drifts: list[Drift] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no *gating* drift exists (advisory ones allowed)."""
        return not any(not d.advisory for d in self.drifts)

    def report(self) -> str:
        lines = [f"compared {self.checked} metrics: "
                 + ("OK" if self.ok else
                    f"{sum(not d.advisory for d in self.drifts)} drift(s)")]
        lines += [f"  {d.describe()}" for d in self.drifts]
        return "\n".join(lines)


def _gated_sections(result: dict):
    """(section, metric, value) triples that gate; wall is advisory."""
    for section in ("metrics", "attribution", "counters"):
        for key, value in (result.get(section) or {}).items():
            yield section, key, value


def compare(current: dict, baseline: dict) -> Comparison:
    """Diff two snapshots.  Zero tolerance on every simulated metric —
    the simulation is deterministic, so *any* movement is a real change
    to the performance model or the protocol.  ``wall`` sections are
    advisory: reported, never gating.  Scenarios present only in
    ``current`` are new coverage and do not gate."""
    cmp = Comparison()
    for meta in ("schema_version", "mode"):
        if current.get(meta) != baseline.get(meta):
            cmp.drifts.append(Drift("<header>", meta,
                                    baseline.get(meta), current.get(meta)))
    for name, base in sorted(baseline.get("scenarios", {}).items()):
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            cmp.drifts.append(Drift(name, "<scenario>", 1.0, None))
            continue
        for section, key, bval in _gated_sections(base):
            cmp.checked += 1
            cval = (cur.get(section) or {}).get(key)
            if cval is None:
                cmp.drifts.append(Drift(name, f"{section}.{key}", bval, None))
            elif cval != bval:
                cmp.drifts.append(Drift(name, f"{section}.{key}", bval, cval))
        for section, key, cval in _gated_sections(cur):
            if (base.get(section) or {}).get(key) is None:
                cmp.drifts.append(Drift(name, f"{section}.{key}", None, cval,
                                        advisory=True))
        bwall = (base.get("wall") or {}).get("seconds")
        cwall = (cur.get("wall") or {}).get("seconds")
        if bwall and cwall and cwall > 1.5 * bwall:
            cmp.drifts.append(Drift(name, "wall.seconds", _r(bwall, 3),
                                    _r(cwall, 3), advisory=True))
    return cmp
