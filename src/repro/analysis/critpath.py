"""Critical-path latency attribution from structured traces.

PR 1's hierarchical spans (``span_id``/``parent_id``, rank/track lanes)
make a run's trace a forest: every rendezvous message's seven pipeline
steps, the kernels/copies/pool operations they caused, and the wire
legs underneath them.  This module turns that DAG into *answers*:

* **where did each microsecond of a message go** — the critical path of
  a message is the unique chain of activity that determined its
  end-to-end latency.  :class:`CritPathAnalyzer` sweeps the message's
  makespan ``[t0, t1]`` backwards from completion: at every instant the
  innermost span still covering that instant is the *service* being
  performed on the path; instants covered by no span are *wait* time,
  attributed to the span whose completion the path was waiting on.
  The resulting :class:`Segment` list tiles ``[t0, t1]`` exactly —
  segment durations sum to the end-to-end simulated latency, and every
  segment references a real span in the trace (the invariant
  ``tests/test_critpath.py`` pins down).

* **per-resource decomposition** — each segment lands on the lane its
  span occupies (``main``, ``gpu``, ``stream<k>``, ``link:<label>``),
  splitting end-to-end latency into wait vs. service time per resource.

* **Fig 10 from the trace alone** — :meth:`MessagePath.attribution`
  buckets the critical path into compression / communication /
  decompression / other percentages, reproducing the paper's breakdown
  figures from the span tree rather than ad-hoc counters.

Usage::

    res = cluster.run(rank_fn, config=cfg)
    cp = CritPathAnalyzer(res.tracer)
    for msg in cp.slowest_messages(3):
        print(msg.seq, msg.latency * 1e6, msg.attribution())
    print(cp.explain())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.tables import format_table
from repro.utils.units import fmt_bytes

__all__ = ["Segment", "MessagePath", "CollectivePath", "CritPathAnalyzer",
           "ATTRIBUTION_BUCKETS"]

#: Fig 10's aggregation of span categories into report buckets.
ATTRIBUTION_BUCKETS = {
    "compression_kernel": "compression",
    "combine": "compression",
    "reduction_kernel": "compression",
    "decompression_kernel": "decompression",
    "network": "communication",
}


@dataclass(frozen=True)
class Segment:
    """One slice of a critical path.

    ``kind`` is ``"service"`` (the span was actively running) or
    ``"wait"`` (nothing on the path was running; ``span`` is the span
    whose completion unblocked the path).  Either way ``span`` is a real
    :class:`~repro.sim.trace.TraceRecord` from the trace.
    """

    t_start: float
    t_end: float
    kind: str
    span: object  # TraceRecord
    step: Optional[str] = None  # enclosing pipeline step label, if any

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def resource(self) -> str:
        """The lane this slice occupies (``main``/``gpu``/``stream<k>``/
        ``link:<label>``)."""
        return self.span.track or "main"


def _sweep(spans, t0: float, t1: float) -> list[Segment]:
    """Tile ``[t0, t1]`` with service/wait segments (backward walk).

    ``spans`` are the candidate records; zero-duration spans (resilience
    markers) can never be selected.  The walk is deterministic: ties on
    coverage break by ``(t_start, span_id)`` — the innermost,
    most-recently-opened span wins.
    """
    live = [s for s in spans if s.duration > 0 and s.t_end > t0 and s.t_start < t1]
    segments: list[Segment] = []
    cur = t1
    while cur > t0:
        covering = [s for s in live if s.t_start < cur <= s.t_end]
        if covering:
            span = max(covering, key=lambda s: (s.t_start, s.span_id))
            lo = max(span.t_start, t0)
            segments.append(Segment(lo, cur, "service", span))
        else:
            lo = max((s.t_end for s in live if s.t_end < cur), default=t0)
            lo = max(lo, t0)
            # Waiting for whatever ran next on the path; at the very
            # start of the window fall back to the earliest span.
            waited = segments[-1].span if segments else min(
                live, key=lambda s: (s.t_start, s.span_id))
            segments.append(Segment(lo, cur, "wait", waited))
        cur = lo
    segments.reverse()
    return segments


def _with_steps(segments: list[Segment], by_id: dict) -> list[Segment]:
    """Annotate each segment with its enclosing ``pipeline`` step."""
    out = []
    for seg in segments:
        rec = seg.span
        step = None
        while rec is not None:
            if rec.category == "pipeline":
                step = rec.label
                break
            rec = by_id.get(rec.parent_id)
        out.append(Segment(seg.t_start, seg.t_end, seg.kind, seg.span, step))
    return out


class _Path:
    """Aggregations shared by message and collective critical paths."""

    segments: tuple
    t_start: float
    t_end: float

    @property
    def latency(self) -> float:
        """End-to-end simulated seconds (== sum of segment durations)."""
        return self.t_end - self.t_start

    def service_time(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == "service")

    def wait_time(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == "wait")

    def by_category(self) -> dict[str, float]:
        """category -> critical-path seconds (waits under ``wait``)."""
        out: dict[str, float] = {}
        for s in self.segments:
            key = s.span.category if s.kind == "service" else "wait"
            out[key] = out.get(key, 0.0) + s.duration
        return out

    def by_step(self) -> dict[str, float]:
        """pipeline step -> critical-path seconds (waits attributed to
        the step they were waiting on; spans outside any step -> ``-``)."""
        out: dict[str, float] = {}
        for s in self.segments:
            out[s.step or "-"] = out.get(s.step or "-", 0.0) + s.duration
        return out

    def by_resource(self) -> dict[str, dict[str, float]]:
        """lane -> {"service": s, "wait": s} decomposition."""
        out: dict[str, dict[str, float]] = {}
        for s in self.segments:
            slot = out.setdefault(s.resource, {"service": 0.0, "wait": 0.0})
            slot[s.kind] += s.duration
        return out

    def attribution(self) -> dict[str, float]:
        """Fig 10-style percentage buckets, summing to 100 (for a
        non-empty path): compression / communication / decompression /
        other, computed on the critical path alone."""
        out = {"compression": 0.0, "communication": 0.0,
               "decompression": 0.0, "other": 0.0}
        for s in self.segments:
            bucket = "other"
            if s.kind == "service":
                bucket = ATTRIBUTION_BUCKETS.get(s.span.category, "other")
            out[bucket] += s.duration
        total = self.latency
        if total > 0:
            out = {k: 100.0 * v / total for k, v in out.items()}
        return out


@dataclass
class MessagePath(_Path):
    """Critical path of one rendezvous message (keyed by ``seq``)."""

    seq: int
    src: Optional[int]
    dst: Optional[int]
    nbytes: Optional[int]        # original payload bytes (sender side)
    wire_nbytes: Optional[int]   # bytes that crossed the fabric
    t_start: float
    t_end: float
    segments: tuple

    def describe(self) -> str:
        size = fmt_bytes(self.nbytes) if self.nbytes else "?"
        return (f"seq {self.seq}: rank {self.src} -> {self.dst}, {size} "
                f"payload, {self.latency * 1e6:.1f} us end-to-end")


@dataclass
class CollectivePath(_Path):
    """Critical path of one rank's participation in a collective."""

    label: str
    rank: Optional[int]
    t_start: float
    t_end: float
    segments: tuple

    def describe(self) -> str:
        return (f"{self.label} rank {self.rank}: "
                f"{self.latency * 1e6:.1f} us")


class CritPathAnalyzer:
    """Walks a tracer's span DAG and attributes end-to-end latency."""

    def __init__(self, tracer):
        self._records = list(tracer.records)
        self._by_id = {r.span_id: r for r in self._records}
        self._children: dict = {}
        for r in self._records:
            self._children.setdefault(r.parent_id, []).append(r)

    # -- message stitching --------------------------------------------------
    def _message_spans(self) -> dict[int, list]:
        """seq -> the message's pipeline spans plus their descendants."""
        out: dict[int, list] = {}
        for rec in self._records:
            if rec.category != "pipeline" or "seq" not in rec.meta:
                continue
            group = out.setdefault(int(rec.meta["seq"]), [])
            group.append(rec)
            stack = list(self._children.get(rec.span_id, []))
            while stack:
                child = stack.pop()
                group.append(child)
                stack.extend(self._children.get(child.span_id, []))
        return out

    def messages(self) -> list[MessagePath]:
        """One :class:`MessagePath` per rendezvous message, by ``seq``.

        Eager/self sends record no pipeline spans and do not appear.
        The path window runs from the first span of the message to the
        completion of decompression/restore (``receiver_complete``);
        post-delivery cleanup (``sender_release``) is off the path.
        """
        out = []
        for seq, spans in sorted(self._message_spans().items()):
            steps = {r.label: r for r in spans if r.category == "pipeline"}
            t0 = min(r.t_start for r in spans)
            done = [r for r in spans if r.category == "pipeline"
                    and r.label == "receiver_complete"]
            t1 = max(r.t_end for r in done) if done else max(r.t_end for r in spans)
            sender = steps.get("sender_prepare")
            receiver = steps.get("receiver_prepare") or steps.get("receiver_complete")
            segments = _with_steps(_sweep(spans, t0, t1), self._by_id)
            wire = [r for r in spans if r.category == "pipeline"
                    and r.label == "wire_transfer" and "nbytes" in r.meta]
            out.append(MessagePath(
                seq=seq,
                src=sender.rank if sender else None,
                dst=receiver.rank if receiver else
                    (sender.meta.get("dst") if sender else None),
                nbytes=sender.meta.get("nbytes") if sender else None,
                wire_nbytes=sum(int(r.meta["nbytes"]) for r in wire) or None,
                t_start=t0, t_end=t1, segments=tuple(segments),
            ))
        return out

    def collectives(self) -> list[CollectivePath]:
        """One :class:`CollectivePath` per ``collective`` span (i.e. per
        rank per collective call), swept over that span's descendants."""
        out = []
        for rec in self._records:
            if rec.category != "collective" or rec.duration <= 0:
                continue
            spans = [rec]
            stack = list(self._children.get(rec.span_id, []))
            while stack:
                child = stack.pop()
                spans.append(child)
                stack.extend(self._children.get(child.span_id, []))
            segments = _with_steps(
                _sweep(spans, rec.t_start, rec.t_end), self._by_id)
            out.append(CollectivePath(
                label=rec.label, rank=rec.rank,
                t_start=rec.t_start, t_end=rec.t_end,
                segments=tuple(segments),
            ))
        out.sort(key=lambda p: (p.t_start, p.rank if p.rank is not None else -1))
        return out

    # -- reporting ----------------------------------------------------------
    def slowest_messages(self, n: int = 5) -> list[MessagePath]:
        return sorted(self.messages(), key=lambda m: -m.latency)[:n]

    def aggregate_attribution(self) -> dict[str, float]:
        """Fig 10 buckets over *all* messages' critical paths, weighted
        by latency (percentages summing to 100 when messages exist)."""
        totals = {"compression": 0.0, "communication": 0.0,
                  "decompression": 0.0, "other": 0.0}
        weight = 0.0
        for msg in self.messages():
            for seg in msg.segments:
                bucket = "other"
                if seg.kind == "service":
                    bucket = ATTRIBUTION_BUCKETS.get(seg.span.category, "other")
                totals[bucket] += seg.duration
            weight += msg.latency
        if weight > 0:
            totals = {k: 100.0 * v / weight for k, v in totals.items()}
        return totals

    def explain(self, n: int = 5) -> str:
        """Human-readable report on the slowest ``n`` messages: where
        each one's end-to-end latency went, step by step."""
        msgs = self.slowest_messages(n)
        if not msgs:
            return ("no rendezvous messages in trace "
                    "(eager/self sends record no pipeline spans)")
        sections = []
        for msg in msgs:
            rows = []
            agg: dict[tuple, list[float]] = {}
            for seg in msg.segments:
                key = (seg.step or "-",
                       seg.span.category if seg.kind == "service" else "wait",
                       seg.resource if seg.kind == "service" else "-")
                slot = agg.setdefault(key, [0.0, 0.0])
                slot[0] += seg.duration
                slot[1] = max(slot[1], seg.t_end)
            order = sorted(agg.items(), key=lambda kv: kv[1][1])
            for (step, cat, res), (dur, _) in order:
                rows.append([step, cat, res, dur * 1e6,
                             100.0 * dur / msg.latency])
            attr = msg.attribution()
            table = format_table(
                ["step", "activity", "lane", "time_us", "share %"], rows,
                title=msg.describe())
            buckets = " / ".join(
                f"{k} {attr[k]:.1f}%" for k in
                ("compression", "communication", "decompression", "other"))
            sections.append(f"{table}\n  critical-path attribution: {buckets}")
        return "\n\n".join(sections)
