"""Chrome-trace / Perfetto export of structured traces.

Converts a :class:`~repro.sim.trace.Tracer`'s records into the Chrome
Trace Event JSON format (the ``traceEvents`` array of complete-``"X"``
events), viewable in ``chrome://tracing`` or https://ui.perfetto.dev:

* one *process* (pid) per MPI rank, named ``rank <r>``;
* one *thread* (tid) per track within the rank — ``main`` for
  protocol/pipeline steps, ``gpu`` for driver and memory operations,
  ``stream<k>`` for each CUDA stream;
* one shared ``network`` process whose threads are the fabric links;
* timestamps are **simulated** microseconds, so two same-seed runs
  export byte-identical traces (the determinism tests assert this).

Span hierarchy (``span_id`` / ``parent_id``) and the raw meta ride along
in each event's ``args``; the run's metrics registry is embedded under
``otherData.metrics``.

:func:`write_chrome_trace` **streams**: events are generated and
serialized one at a time straight to the file handle (the document dict
is never materialized), yet the bytes are identical to
``json.dump(to_chrome_trace(...), indent=1, sort_keys=True)`` — the
golden-trace test pins this.  The pid/tid table and metadata-event
helpers are shared with :mod:`repro.analysis.rprt`, whose binary
container reconstructs the very same events.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional

__all__ = ["to_chrome_trace", "write_chrome_trace",
           "NETWORK_PID", "UNATTRIBUTED_PID",
           "pid_of", "chrome_metadata_events", "chrome_time",
           "json_safe_meta", "iter_x_events", "write_chrome_json"]

#: pid hosting one thread per fabric link
NETWORK_PID = 1_000_000
#: pid for spans with neither a rank nor a link track
UNATTRIBUTED_PID = 1_000_001


def pid_of(rank: Optional[int], track: Optional[str]) -> tuple[int, str]:
    """Map a span's (rank, track) attribution to its (pid, thread name)
    in the exported trace."""
    track = track or "main"
    if track.startswith("link:"):
        return NETWORK_PID, track[5:]
    if rank is not None:
        return int(rank), track
    return UNATTRIBUTED_PID, track


def _pid_track(rec) -> tuple[int, str]:
    return pid_of(rec.rank, rec.track)


def _json_safe(value):
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


def json_safe_meta(meta: dict) -> dict:
    """A span's meta dict reduced to JSON-clean values, keys sorted —
    exactly the form the exporter writes into an event's ``args``."""
    return {k: _json_safe(v) for k, v in sorted(meta.items())}


def chrome_time(t_seconds: float) -> float:
    """Simulated seconds -> the exported microsecond value (the 1e-6 us
    rounding makes the JSON human-diffable without losing ordering)."""
    return round(t_seconds * 1e6, 6)


def _process_name(pid: int) -> str:
    if pid == NETWORK_PID:
        return "network"
    if pid == UNATTRIBUTED_PID:
        return "sim"
    return f"rank {pid}"


def chrome_metadata_events(pairs: Iterable[tuple[int, str]]):
    """Deterministic pid/tid table plus the ``M`` metadata events for a
    set of (pid, thread-name) pairs: "main" first within each pid, then
    alphabetical, so track 0 is always the protocol lane.  Returns
    ``(tids, events)``."""
    ordered = sorted(set(pairs), key=lambda pt: (pt[0], pt[1] != "main", pt[1]))
    tids: dict[tuple[int, str], int] = {}
    per_pid_count: dict[int, int] = {}
    for pid, name in ordered:
        tids[(pid, name)] = per_pid_count.get(pid, 0)
        per_pid_count[pid] = per_pid_count.get(pid, 0) + 1

    events: list[dict] = []
    for pid in sorted(per_pid_count):
        events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                       "args": {"name": _process_name(pid)}})
    for (pid, name), tid in sorted(tids.items(), key=lambda kv: (kv[0][0], kv[1])):
        events.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                       "args": {"name": name}})
    return tids, events


def iter_x_events(records, tids: dict) -> Iterator[dict]:
    """Generate the ``X`` event dicts for time-sorted records, one at a
    time (nothing is accumulated)."""
    for rec in records:
        pid, tname = _pid_track(rec)
        args = {"span_id": rec.span_id}
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        args.update(json_safe_meta(rec.meta))
        yield {
            "name": rec.label or rec.category,
            "cat": rec.category,
            "ph": "X",
            "pid": pid,
            "tid": tids[(pid, tname)],
            "ts": chrome_time(rec.t_start),
            "dur": chrome_time(rec.duration),
            "args": args,
        }


def _sorted_records(tracer):
    return sorted(tracer.records, key=lambda r: (r.t_start, r.t_end, r.span_id))


def _other_data(metrics_dict: dict, elapsed: Optional[float]) -> dict:
    other = {"metrics": metrics_dict}
    if elapsed is not None:
        other["elapsed_seconds"] = elapsed
    return other


def to_chrome_trace(tracer, elapsed: Optional[float] = None) -> dict:
    """Build the Chrome-trace document (a plain dict) from a tracer."""
    recs = _sorted_records(tracer)
    tids, events = chrome_metadata_events(_pid_track(r) for r in recs)
    events.extend(iter_x_events(recs, tids))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": _other_data(tracer.metrics.as_dict(), elapsed),
    }


def write_chrome_json(fh, other: dict, events: Iterable[dict]) -> int:
    """Stream a Chrome-trace document to a text file handle, byte-for-
    byte what ``json.dump(doc, fh, indent=1, sort_keys=True)`` plus a
    trailing newline would produce, without ever holding the event list.
    Returns the number of events written.

    ``json`` never emits a raw newline inside a serialized value (they
    are escaped), so re-indenting an embedded dump is a plain string
    replace.
    """
    fh.write('{\n "displayTimeUnit": "ms",\n "otherData": ')
    fh.write(json.dumps(other, indent=1, sort_keys=True).replace("\n", "\n "))
    fh.write(',\n "traceEvents": [')
    n = 0
    for ev in events:
        fh.write("," if n else "")
        fh.write("\n  ")
        fh.write(json.dumps(ev, indent=1, sort_keys=True)
                 .replace("\n", "\n  "))
        n += 1
    fh.write("\n ]\n}\n" if n else "]\n}\n")
    return n


def write_chrome_trace(tracer, path, elapsed: Optional[float] = None) -> None:
    """Stream the Chrome-trace JSON to ``path``.

    Events are serialized one at a time (peak memory is one event, not
    the document) and the output is byte-identical to serializing
    :func:`to_chrome_trace` with ``indent=1, sort_keys=True``.
    """
    recs = _sorted_records(tracer)
    tids, meta_events = chrome_metadata_events(_pid_track(r) for r in recs)

    def events():
        yield from meta_events
        yield from iter_x_events(recs, tids)

    with open(path, "w") as fh:
        write_chrome_json(fh, _other_data(tracer.metrics.as_dict(), elapsed),
                          events())
