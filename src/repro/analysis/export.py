"""Chrome-trace / Perfetto export of structured traces.

Converts a :class:`~repro.sim.trace.Tracer`'s records into the Chrome
Trace Event JSON format (the ``traceEvents`` array of complete-``"X"``
events), viewable in ``chrome://tracing`` or https://ui.perfetto.dev:

* one *process* (pid) per MPI rank, named ``rank <r>``;
* one *thread* (tid) per track within the rank — ``main`` for
  protocol/pipeline steps, ``gpu`` for driver and memory operations,
  ``stream<k>`` for each CUDA stream;
* one shared ``network`` process whose threads are the fabric links;
* timestamps are **simulated** microseconds, so two same-seed runs
  export byte-identical traces (the determinism tests assert this).

Span hierarchy (``span_id`` / ``parent_id``) and the raw meta ride along
in each event's ``args``; the run's metrics registry is embedded under
``otherData.metrics``.
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = ["to_chrome_trace", "write_chrome_trace",
           "NETWORK_PID", "UNATTRIBUTED_PID"]

#: pid hosting one thread per fabric link
NETWORK_PID = 1_000_000
#: pid for spans with neither a rank nor a link track
UNATTRIBUTED_PID = 1_000_001


def _pid_track(rec) -> tuple[int, str]:
    track = rec.track or "main"
    if track.startswith("link:"):
        return NETWORK_PID, track[5:]
    if rec.rank is not None:
        return int(rec.rank), track
    return UNATTRIBUTED_PID, track


def _json_safe(value):
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


def _process_name(pid: int) -> str:
    if pid == NETWORK_PID:
        return "network"
    if pid == UNATTRIBUTED_PID:
        return "sim"
    return f"rank {pid}"


def to_chrome_trace(tracer, elapsed: Optional[float] = None) -> dict:
    """Build the Chrome-trace document (a plain dict) from a tracer."""
    recs = sorted(tracer.records, key=lambda r: (r.t_start, r.t_end, r.span_id))

    # Deterministic pid/tid table: "main" first within each pid, then
    # alphabetical, so track 0 is always the protocol lane.
    pairs = sorted({_pid_track(r) for r in recs},
                   key=lambda pt: (pt[0], pt[1] != "main", pt[1]))
    tids: dict[tuple[int, str], int] = {}
    per_pid_count: dict[int, int] = {}
    for pid, name in pairs:
        tids[(pid, name)] = per_pid_count.get(pid, 0)
        per_pid_count[pid] = per_pid_count.get(pid, 0) + 1

    events: list[dict] = []
    for pid in sorted(per_pid_count):
        events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                       "args": {"name": _process_name(pid)}})
    for (pid, name), tid in sorted(tids.items(), key=lambda kv: (kv[0][0], kv[1])):
        events.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                       "args": {"name": name}})

    for rec in recs:
        pid, tname = _pid_track(rec)
        args = {"span_id": rec.span_id}
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        for k, v in sorted(rec.meta.items()):
            args[k] = _json_safe(v)
        events.append({
            "name": rec.label or rec.category,
            "cat": rec.category,
            "ph": "X",
            "pid": pid,
            "tid": tids[(pid, tname)],
            "ts": round(rec.t_start * 1e6, 6),
            "dur": round(rec.duration * 1e6, 6),
            "args": args,
        })

    other = {"metrics": tracer.metrics.as_dict()}
    if elapsed is not None:
        other["elapsed_seconds"] = elapsed
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(tracer, path, elapsed: Optional[float] = None) -> dict:
    """Write the Chrome-trace JSON to ``path``; returns the document."""
    doc = to_chrome_trace(tracer, elapsed=elapsed)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc
