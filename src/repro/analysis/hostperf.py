"""Host-performance regression harness: microbench matrix, schema-
versioned ``HOSTPERF_*.json`` snapshots, and relative-threshold gating.

This is the *wall-clock* counterpart of :mod:`repro.analysis.bench`:
``bench`` gates **simulated** results with zero tolerance (the
simulation is deterministic), while ``hostperf`` tracks how fast the
*host* executes the hot paths — codec kernels, the event loop, span
bookkeeping, and the end-to-end ``bench --quick`` run.  Host timing is
inherently noisy, so comparisons use median-of-k timing and a
configurable **relative** threshold instead of byte identity, and CI
runs the comparison in advisory mode.

Every benchmark here exercises real code on deterministic data:

* ``codec/*`` — encode/decode of each registry codec over two dataset
  families and two sizes, reported in MB/s of raw input;
* ``engine/events`` — raw event-loop throughput (timeout-chain
  processes, no tracer);
* ``engine/spans`` — the same loop with hierarchical span bookkeeping,
  isolating tracer overhead;
* ``engine/scale/*`` — collective-shaped event loops at 256 and 1024
  ranks (lockstep rounds with same-instant wakeups, spawn churn,
  fan-in gates and interrupt storms), the workload the calendar
  scheduler and micro-event freelist exist for.  Events/sec is
  calibrated by one instrumented run and timed on the bare loop; a
  separate pass records tracemalloc peak heap;
* ``e2e/bench-quick`` — wall seconds of the full quick benchmark
  matrix, the number a developer actually waits on.

Engine benchmarks also report ``peak_heap_bytes`` (tracemalloc peak,
measured in its own untimed pass so instrumentation overhead never
contaminates the timing) — ``*_bytes`` metrics gate like times: bigger
is worse.

Snapshot schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "label": "<free-form>",
      "mode": "quick" | "full",
      "reps": <k>,
      "benchmarks": {
        "<name>": {
          "kind": "codec" | "engine" | "e2e",
          "params": {...},
          "metrics": {"<metric>": <number>, ...}
        }
      }
    }

Metric naming carries the comparison direction: ``*_s`` metrics are
times (bigger is worse), ``*_per_s`` metrics are rates (smaller is
worse).  :func:`compare` uses exactly that convention.

Wall-clock reads below are pragma'd for the determinism linter: this
module *is* the sanctioned wall-clock consumer — its measurements never
feed simulated results, only advisory host-speed tracking.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, Optional

import numpy as np

from repro.utils.units import KiB, MiB

__all__ = [
    "SCHEMA_VERSION", "Microbench", "benchmark_matrix", "collect",
    "dumps", "write", "load", "compare", "selftest",
    "PerfDrift", "PerfComparison",
]

SCHEMA_VERSION = 1

#: codec configurations tracked by the matrix — chosen to cover every
#: bit-assembly path: byte-aligned and odd-rate ZFP 1-D, float64 ZFP,
#: the 2-D codec, both MPC stride regimes, and the CPU comparators.
CODEC_CONFIGS = (
    ("zfp8-f32", "zfp", {"rate": 8}, "float32"),
    ("zfp7-f32", "zfp", {"rate": 7}, "float32"),
    ("zfp16-f64", "zfp", {"rate": 16}, "float64"),
    ("zfp2d8-f32", "zfp2d", {"rate": 8}, "float32"),
    ("mpc-d1-f32", "mpc", {"dimensionality": 1}, "float32"),
    ("mpc-d3-f64", "mpc", {"dimensionality": 3}, "float64"),
    ("fpc-f64", "fpc", {}, "float64"),
    ("gfc-f64", "gfc", {}, "float64"),
    ("sz-f32", "sz", {"error_bound": 1e-3}, "float32"),
)

DATASETS = ("smooth", "rough")
QUICK_SIZES = (256 * KiB, 2 * MiB)
FULL_SIZES = (256 * KiB, 2 * MiB, 16 * MiB)


@dataclass(frozen=True)
class Microbench:
    """One entry of the host-performance matrix."""

    name: str
    kind: str
    params: dict = field(default_factory=dict)


def benchmark_matrix(quick: bool = True) -> list[Microbench]:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    out = [
        Microbench(f"codec/{cname}/{ds}/{nbytes // KiB}K", "codec",
                   {"codec": codec, "codec_params": params, "dtype": dtype,
                    "dataset": ds, "nbytes": nbytes})
        for (cname, codec, params, dtype) in CODEC_CONFIGS
        for ds in DATASETS
        for nbytes in sizes
    ]
    scale = 1 if quick else 4
    out.append(Microbench("engine/events", "engine",
                          {"procs": 100 * scale, "steps": 60, "traced": False}))
    out.append(Microbench("engine/spans", "engine",
                          {"procs": 100 * scale, "steps": 60, "traced": True}))
    out.append(Microbench("engine/scale/256", "engine-scale",
                          {"ranks": 256, "rounds": 16}))
    out.append(Microbench("engine/scale/1024", "engine-scale",
                          {"ranks": 1024, "rounds": 8}))
    out.append(Microbench("e2e/bench-quick", "e2e", {"only": None}))
    return out


# -- dataset + codec helpers -------------------------------------------------

def _make_data(dataset: str, nbytes: int, dtype: str, codec: str) -> np.ndarray:
    n = nbytes // np.dtype(dtype).itemsize
    seed = zlib.crc32(f"{dataset}/{nbytes}/{dtype}".encode())
    rng = np.random.default_rng(seed)
    if dataset == "smooth":
        x = np.arange(n)
        data = (np.sin(x / 17.0) * 3.0 + x / 500.0).astype(dtype)
    else:
        data = (rng.standard_normal(n) * 1e4).astype(dtype)
    if codec == "zfp2d":
        cols = 256
        return data[: (n // cols) * cols].reshape(-1, cols)
    return data


def _codec_for(name: str, params: dict):
    from repro.compression import get_compressor
    from repro.compression.zfp2d import Zfp2dCompressor

    if name == "zfp2d":
        return Zfp2dCompressor(**params)
    return get_compressor(name, **params)


# -- timing core -------------------------------------------------------------

def _time_median(fn: Callable[[], None], reps: int) -> float:
    """Median wall seconds of ``reps`` runs (after one warmup)."""
    fn()  # warmup: page in, JIT numpy ufunc caches
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()  # repro: allow-RPR001 — host-perf timing is the measured quantity here, never a simulated result
        fn()
        samples.append(time.perf_counter() - t0)  # repro: allow-RPR001 — see above
    return median(samples)


def _r(x: float, places: int = 6) -> float:
    return round(float(x), places)


def _run_codec(params: dict, reps: int) -> dict:
    data = _make_data(params["dataset"], params["nbytes"], params["dtype"],
                      params["codec"])
    codec = _codec_for(params["codec"], params["codec_params"])
    comp = codec.compress(data)
    enc_s = _time_median(lambda: codec.compress(data), reps)
    dec_s = _time_median(lambda: codec.decompress(comp), reps)
    nbytes = data.nbytes
    return {
        "encode_s": _r(enc_s), "decode_s": _r(dec_s),
        "encode_mb_per_s": _r(nbytes / enc_s / 1e6, 2),
        "decode_mb_per_s": _r(nbytes / dec_s / 1e6, 2),
        "ratio": _r(nbytes / max(1, comp.nbytes), 3),
    }


def _peak_heap(fn: Callable[[], None]) -> int:
    """tracemalloc peak of one ``fn()`` run.

    Runs in its own pass, never inside the timed reps: tracing
    allocations roughly doubles host time, which would corrupt the
    ``run_s``/``events_per_s`` numbers."""
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _run_engine(params: dict, reps: int) -> dict:
    from repro.sim import Simulator, Tracer

    procs, steps, traced = params["procs"], params["steps"], params["traced"]

    def one_run() -> None:
        sim = Simulator()
        tracer = Tracer(sim) if traced else None

        def worker(sim):
            for i in range(steps):
                if tracer is not None:
                    with tracer.open_span("hostperf", "step", rank=0):
                        yield sim.timeout(1e-6)
                    tracer.span(sim.now, sim.now, "hostperf", "leaf", rank=0)
                else:
                    yield sim.timeout(1e-6)

        for _ in range(procs):
            sim.process(worker(sim))
        sim.run()

    t = _time_median(one_run, reps)
    n_events = procs * (steps + 1)  # one init event + one per timeout
    return {"run_s": _r(t), "events_per_s": _r(n_events / t, 0),
            "peak_heap_bytes": _peak_heap(one_run)}


def _scale_workload(sim, ranks: int, rounds: int) -> None:
    """Spawn the collective-shaped storm the ``engine/scale`` points
    time: every rank runs ``rounds`` lockstep iterations of spawn a
    worker, join it with a same-instant timeout (AllOf), periodically
    interrupt a straggler, then block on a shared per-round gate a
    coordinator fires — i.e. same-timestamp batches, micro-event churn,
    tombstoned waiter lists and wide fan-in dispatch."""
    from repro.sim import Interrupt

    def worker(sim):
        yield sim.timeout(1e-6)

    def straggler(sim):
        yield sim.timeout(1.0)

    def rank_proc(sim, gates, r):
        for i, gate in enumerate(gates):
            w = sim.process(worker(sim))
            yield sim.all_of([w, sim.timeout(1e-6)])
            if (i + r) % 8 == 0:
                v = sim.process(straggler(sim))
                yield sim.timeout(1e-6)
                v.interrupt("scale")
                try:
                    yield v
                except Interrupt:
                    pass
            yield gate

    def coordinator(sim, gates):
        for gate in gates:
            yield sim.timeout(3e-6)
            gate.succeed()

    gates = [sim.event() for _ in range(rounds)]
    for r in range(ranks):
        sim.process(rank_proc(sim, gates, r))
    sim.process(coordinator(sim, gates))


def _run_engine_scale(params: dict, reps: int) -> dict:
    from repro.sim import Simulator, Tracer

    ranks, rounds = params["ranks"], params["rounds"]

    # Calibrate the exact event count with one instrumented run — the
    # bare loop deliberately counts nothing.  (The two loop variants
    # dispatch identically; tests assert that equivalence.)
    sim = Simulator()
    tracer = Tracer(sim)
    _scale_workload(sim, ranks, rounds)
    sim.run()
    n_events = tracer.event_count

    def one_run() -> None:
        sim = Simulator()
        _scale_workload(sim, ranks, rounds)
        sim.run()

    t = _time_median(one_run, reps)
    return {"run_s": _r(t), "events_per_s": _r(n_events / t, 0),
            "n_events": float(n_events),
            "peak_heap_bytes": _peak_heap(one_run)}


def _run_e2e(params: dict, reps: int) -> dict:
    from repro.analysis import bench
    from repro.compression.cache import GLOBAL_CODEC_CACHE

    def one_run() -> None:
        # The codec cache would turn every repeat into pure hits; clear
        # it so each rep measures the same cold-cache work.
        GLOBAL_CODEC_CACHE.clear()
        bench.collect(quick=True, label="hostperf", only=params.get("only"))

    t = _time_median(one_run, max(1, reps // 3))
    return {"run_s": _r(t)}


_RUNNERS = {"codec": _run_codec, "engine": _run_engine,
            "engine-scale": _run_engine_scale, "e2e": _run_e2e}


def collect(quick: bool = True, label: str = "local", reps: int = 5,
            only: Optional[str] = None,
            progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the matrix and build a snapshot document."""
    doc = {"schema_version": SCHEMA_VERSION, "label": label,
           "mode": "quick" if quick else "full", "reps": int(reps),
           "benchmarks": {}}
    for mb in benchmark_matrix(quick):
        if only and only not in mb.name:
            continue
        if progress:
            progress(mb.name)
        metrics = _RUNNERS[mb.kind](mb.params, reps)
        doc["benchmarks"][mb.name] = {
            "kind": mb.kind,
            "params": {k: v for k, v in mb.params.items()
                       if k != "codec_params"} | (
                {"codec_params": mb.params["codec_params"]}
                if "codec_params" in mb.params else {}),
            "metrics": metrics,
        }
    return doc


# -- serialization -----------------------------------------------------------

def dumps(doc: dict) -> str:
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def write(doc: dict, path) -> None:
    """Write a snapshot — canonical JSON, or a binary RPRT container
    when ``path`` ends in ``.rprt``."""
    if str(path).lower().endswith(".rprt"):
        from repro.analysis.rprt import write_snapshot_rprt

        write_snapshot_rprt(doc, path, kind="hostperf")
        return
    with open(path, "w") as fh:
        fh.write(dumps(doc))


def load(path) -> dict:
    from repro.analysis.rprt import is_rprt, read_snapshot_rprt

    if is_rprt(path):
        doc = read_snapshot_rprt(path)
    else:
        with open(path) as fh:
            doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} unsupported "
            f"(expected {SCHEMA_VERSION})")
    return doc


# -- comparison --------------------------------------------------------------

#: metrics compared by :func:`compare`; others (ratio, raw seconds of
#: the codec benches — redundant with the rates) are informational.
def _direction(metric: str) -> Optional[int]:
    """+1: bigger is worse (times, memory); -1: smaller is worse
    (rates); None: not compared."""
    if metric.endswith("_per_s"):
        return -1
    if metric.endswith("_s") or metric.endswith("_bytes"):
        return +1
    return None


@dataclass(frozen=True)
class PerfDrift:
    """One metric that regressed (or improved) past the threshold."""

    benchmark: str
    metric: str
    baseline: float
    current: float
    rel: float  # signed: positive == regression
    regression: bool

    def describe(self) -> str:
        tag = "REGRESSION" if self.regression else "improvement"
        return (f"[{tag}] {self.benchmark}: {self.metric} "
                f"{self.baseline:g} -> {self.current:g} ({self.rel:+.1%})")


@dataclass
class PerfComparison:
    """Outcome of :func:`compare`."""

    threshold: float
    drifts: list[PerfDrift] = field(default_factory=list)
    checked: int = 0

    @property
    def regressions(self) -> list[PerfDrift]:
        return [d for d in self.drifts if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report(self) -> str:
        lines = [
            f"compared {self.checked} host-perf metrics at "
            f"±{self.threshold:.0%}: "
            + ("OK" if self.ok else f"{len(self.regressions)} regression(s)")
        ]
        lines += [f"  {d.describe()}" for d in self.drifts]
        return "\n".join(lines)


def compare(current: dict, baseline: dict,
            threshold: float = 0.30) -> PerfComparison:
    """Diff two snapshots with a relative threshold.

    A *regression* is a time metric that grew, or a rate metric that
    shrank, by more than ``threshold`` relative to the baseline.
    Symmetric improvements are reported (so speedups are visible in CI
    logs) but never gate.  Benchmarks present in only one snapshot are
    skipped — the matrix is allowed to grow.
    """
    cmp = PerfComparison(threshold=threshold)
    for name, base in sorted(baseline.get("benchmarks", {}).items()):
        cur = current.get("benchmarks", {}).get(name)
        if cur is None:
            continue
        for metric, bval in sorted(base.get("metrics", {}).items()):
            direction = _direction(metric)
            cval = cur.get("metrics", {}).get(metric)
            if direction is None or cval is None or not bval:
                continue
            cmp.checked += 1
            rel = direction * (float(cval) - float(bval)) / abs(float(bval))
            if abs(rel) > threshold:
                cmp.drifts.append(PerfDrift(
                    benchmark=name, metric=metric, baseline=float(bval),
                    current=float(cval), rel=rel, regression=rel > 0))
    return cmp


# -- selftest ---------------------------------------------------------------

def _synthetic_snapshot() -> dict:
    """A tiny fixed snapshot (no timing involved) for the selftest."""
    return {
        "schema_version": SCHEMA_VERSION, "label": "selftest",
        "mode": "quick", "reps": 1,
        "benchmarks": {
            "codec/x/smooth/256K": {"kind": "codec", "params": {},
                                    "metrics": {"encode_s": 0.010,
                                                "encode_mb_per_s": 100.0}},
            "engine/events": {"kind": "engine", "params": {},
                              "metrics": {"run_s": 0.050,
                                          "events_per_s": 200000.0,
                                          "peak_heap_bytes": 1 << 20}},
        },
    }


def selftest(threshold: float = 0.30) -> list[str]:
    """Prove the comparison machinery catches an injected regression.

    Mirrors ``repro check --selftest``: returns a list of failure
    descriptions (empty == the harness works).  Checks that (1) a clean
    self-comparison passes, (2) an injected slowdown on a time metric
    gates, (3) an injected throughput drop gates, and (4) a symmetric
    *improvement* is reported but does not gate.
    """
    failures = []
    base = _synthetic_snapshot()

    clean = compare(_synthetic_snapshot(), base, threshold)
    if not clean.ok or clean.checked == 0:
        failures.append("clean self-comparison did not pass")

    slow = _synthetic_snapshot()
    slow["benchmarks"]["codec/x/smooth/256K"]["metrics"]["encode_s"] *= (
        1.0 + 2 * threshold)
    c = compare(slow, base, threshold)
    if c.ok:
        failures.append("injected time regression was not flagged")

    drop = _synthetic_snapshot()
    drop["benchmarks"]["engine/events"]["metrics"]["events_per_s"] *= (
        1.0 - 2 * threshold)
    c = compare(drop, base, threshold)
    if c.ok:
        failures.append("injected throughput regression was not flagged")

    bloat = _synthetic_snapshot()
    bloat["benchmarks"]["engine/events"]["metrics"]["peak_heap_bytes"] *= (
        1.0 + 2 * threshold)
    c = compare(bloat, base, threshold)
    if c.ok:
        failures.append("injected memory regression was not flagged")

    fast = _synthetic_snapshot()
    fast["benchmarks"]["codec/x/smooth/256K"]["metrics"]["encode_s"] /= 4.0
    c = compare(fast, base, threshold)
    if not c.ok:
        failures.append("an improvement incorrectly gated")
    elif not c.drifts:
        failures.append("an improvement was not reported")
    return failures
