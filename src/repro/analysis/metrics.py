"""Counter / gauge / histogram registry populated by the instrumentation.

The same structured spans that feed the tracer also update a
:class:`MetricsRegistry` — the quantities an OSU-INAM-style monitor
would expose in real time (paper Section IX's future work): bytes on
the wire per link, compression ratio per codec, buffer-pool hit rate,
link utilization and matching-queue depths.

Every metric is identified by a name plus a frozen set of labels, e.g.
``("wire.bytes", (("link", "node0-up"),))``.  All state is plain
floats/ints, so two same-seed runs produce bit-identical registries —
the determinism tests rely on this.

Catalog of metrics emitted by the stack (see ``docs/observability.md``):

==============================  =======  ====================================
name                            kind     emitted by
==============================  =======  ====================================
``wire.bytes{link}``            counter  :class:`repro.network.links.Link`
``wire.transfers{link}``        counter  (and multi-link topology routes)
``wire.busy_seconds{link}``     counter
``pool.hit{device}``            counter  :class:`repro.gpu.pool.BufferPool`
``pool.miss{device}``           counter  (miss = on-demand cudaMalloc grow)
``compress.bytes_in{codec}``    counter  :class:`repro.core.engine.CompressionEngine`
``compress.bytes_out{codec}``   counter  (ratio = bytes_in / bytes_out)
``compress.fallback{codec}``    counter  incompressible raw fallbacks
``compress.kernel_us{codec}``   hist     per-launch compression kernel
                                         duration in microseconds
``decompress.kernel_us{codec}`` hist     per-launch decompression kernel
                                         duration in microseconds
``mpi.sends{protocol}``         counter  :class:`repro.mpi.comm.Communicator`
``matching.unexpected{rank}``   counter  :class:`repro.mpi.matching.MatchingEngine`
``matching.posted_depth{rank}``     hist observed posted-queue depth
``matching.unexpected_depth{rank}`` hist observed unexpected-queue depth
``faults.injected{kind}``       counter  :class:`repro.faults.FaultInjector` —
                                         one per fired fault (``corrupt``,
                                         ``drop``, ``degrade``, ``flap_wait``,
                                         ``oom``, ``pool_exhausted``,
                                         ``compress_fail``,
                                         ``decompress_corrupt``)
``resilience.<event>``          counter  :class:`repro.mpi.cluster.Runtime` —
                                         recovery actions (``crc_mismatch``,
                                         ``decode_error``, ``data_timeout``,
                                         ``retransmit``, ``retry``,
                                         ``recovered``, ``fallback``,
                                         ``breaker_veto``, ``timeout``)
``resilience.breaker_transitions{state}`` counter circuit-breaker state changes
``telemetry.rprt_bytes_written``  counter :func:`repro.analysis.rprt.write_trace_rprt`
                                         — stored bytes of every RPRT
                                         container written this run
``telemetry.rprt_compress_ratio`` gauge  raw/stored block-byte ratio of
                                         the most recent RPRT export
==============================  =======  ====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MetricsRegistry", "HistogramStat"]


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


@dataclass
class HistogramStat:
    """Streaming summary of observed values (count/sum/min/max plus
    power-of-two bucket counts)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    buckets: dict = field(default_factory=dict)  # log2 bucket -> count

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        bucket = max(0, (int(max(value, 1)) - 1).bit_length())
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the bucket
        counts.  Resolution is the power-of-two bucket width: the
        estimate is the bucket's upper bound, clamped to the observed
        ``[min, max]`` so exact-count edge cases stay sharp.  Purely a
        function of the (deterministic) bucket counts, so two same-seed
        runs report identical percentiles."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(q * self.count * 1000) // 1000))  # ceil, fp-safe
        seen = 0
        for bucket, n in sorted(self.buckets.items()):
            seen += n
            if seen >= rank:
                upper = float(1 << bucket) if bucket else 1.0
                return min(max(upper, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Labelled counters, gauges and histograms."""

    def __init__(self):
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._hists: dict[tuple, HistogramStat] = {}

    # -- write side ------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to a counter (created at zero)."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0, got {value}")
        k = _key(name, labels)
        self._counters[k] = self._counters.get(k, 0) + value

    def set(self, name: str, value: float, **labels) -> None:
        """Set a gauge to ``value``."""
        self._gauges[_key(name, labels)] = value

    def set_max(self, name: str, value: float, **labels) -> None:
        """Raise a gauge to ``value`` if larger (high-water marks)."""
        k = _key(name, labels)
        self._gauges[k] = max(self._gauges.get(k, value), value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram."""
        k = _key(name, labels)
        if k not in self._hists:
            self._hists[k] = HistogramStat()
        self._hists[k].observe(value)

    # -- read side -------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge(self, name: str, **labels) -> float:
        return self._gauges.get(_key(name, labels), 0.0)

    def histogram(self, name: str, **labels) -> HistogramStat:
        return self._hists.get(_key(name, labels), HistogramStat())

    def labels_of(self, name: str) -> list[dict]:
        """Every label set a metric has been emitted with."""
        out = []
        for store in (self._counters, self._gauges, self._hists):
            for n, labels in store:
                if n == name:
                    out.append(dict(labels))
        return sorted(out, key=lambda d: sorted(d.items()))

    def as_dict(self) -> dict:
        """Deterministically-ordered plain-dict dump (for export/tests)."""

        def fmt(k: tuple) -> str:
            name, labels = k
            if not labels:
                return name
            inner = ",".join(f"{lk}={lv}" for lk, lv in labels)
            return f"{name}{{{inner}}}"

        return {
            "counters": {fmt(k): v for k, v in sorted(self._counters.items())},
            "gauges": {fmt(k): v for k, v in sorted(self._gauges.items())},
            "histograms": {
                fmt(k): h.as_dict() for k, h in sorted(self._hists.items())
            },
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()
