"""INAM-style communication profiling.

The paper's future work leans on "a real-time monitor like OSU INAM"
to drive adaptive decisions.  :class:`CommProfile` distils a run's
tracer into the quantities such a monitor exposes: per-category time,
per-link busy fraction and moved bytes, and a message-size histogram —
and renders them as a report.

Usage::

    res = cluster.run(rank_fn, config=cfg)
    profile = CommProfile.from_result(res)
    print(profile.report())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_table
from repro.utils.units import fmt_bytes, fmt_time

__all__ = ["CommProfile", "LinkStats"]


@dataclass
class LinkStats:
    """Aggregated activity of one link."""

    label: str
    busy_time: float = 0.0
    bytes_moved: int = 0
    transfers: int = 0

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed else 0.0


@dataclass
class CommProfile:
    """A digested view of one simulation run."""

    elapsed: float
    category_time: dict = field(default_factory=dict)
    links: dict = field(default_factory=dict)
    size_histogram: dict = field(default_factory=dict)  # log2 bucket -> count
    total_wire_bytes: int = 0
    n_messages: int = 0

    @classmethod
    def from_result(cls, result) -> "CommProfile":
        """Build from a :class:`~repro.mpi.cluster.ClusterResult`."""
        prof = cls(elapsed=result.elapsed)
        for rec in result.tracer.records:
            prof.category_time[rec.category] = (
                prof.category_time.get(rec.category, 0.0) + rec.duration
            )
            if rec.category == "network":
                link = rec.meta.get("link", rec.label)
                st = prof.links.setdefault(link, LinkStats(link))
                nbytes = int(rec.meta.get("nbytes", 0))
                st.busy_time += rec.duration
                st.bytes_moved += nbytes
                st.transfers += 1
                prof.total_wire_bytes += nbytes
                prof.n_messages += 1
                bucket = max(0, (max(nbytes, 1) - 1).bit_length())
                prof.size_histogram[bucket] = prof.size_histogram.get(bucket, 0) + 1
        return prof

    @property
    def busiest_link(self) -> LinkStats | None:
        if not self.links:
            return None
        return max(self.links.values(), key=lambda s: s.busy_time)

    def report(self) -> str:
        """Human-readable multi-section report."""
        sections = [f"run elapsed: {fmt_time(self.elapsed)}; "
                    f"{self.n_messages} wire transfers, "
                    f"{fmt_bytes(self.total_wire_bytes) if self.total_wire_bytes else '0'} moved"]
        if self.category_time:
            rows = sorted(
                ([cat, t * 1e6, 100 * t / max(1e-30, sum(self.category_time.values()))]
                 for cat, t in self.category_time.items()),
                key=lambda r: -r[1],
            )
            sections.append(format_table(
                ["category", "time_us", "share %"], rows, title="time by category"))
        if self.links:
            rows = sorted(
                ([s.label, s.transfers, s.bytes_moved / 1e6,
                  100 * s.utilization(self.elapsed)]
                 for s in self.links.values()),
                key=lambda r: -r[3],
            )
            sections.append(format_table(
                ["link", "transfers", "MB", "utilization %"], rows,
                title="link activity"))
        if self.size_histogram:
            rows = [[f"<=2^{b}", n] for b, n in sorted(self.size_histogram.items())]
            sections.append(format_table(
                ["message size", "count"], rows, title="wire-size histogram"))
        return "\n\n".join(sections)
