"""INAM-style communication profiling.

The paper's future work leans on "a real-time monitor like OSU INAM"
to drive adaptive decisions.  :class:`CommProfile` distils a run's
tracer into the quantities such a monitor exposes: per-category time,
per-link busy fraction and moved bytes, a message-size histogram, and
per-rank pipeline time — and renders them as a report.

The profile is computed from *structured* trace records: wire activity
is any span whose ``track`` is a ``link:`` lane (equivalently, whose
meta carries a ``links`` tuple), never by matching label strings.  A
multi-hop cut-through span (e.g. HCA→HCA across the switch) names every
constituent link in ``meta["links"]`` and is attributed to each of
them, so per-link utilization stays within [0, 1].

Usage::

    res = cluster.run(rank_fn, config=cfg)
    profile = CommProfile.from_result(res)
    print(profile.report())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_table
from repro.utils.units import fmt_bytes, fmt_time

__all__ = ["CommProfile", "LinkStats"]


def _is_wire(rec) -> bool:
    return (rec.track or "").startswith("link:") or "links" in rec.meta


def _telemetry_slice(metrics: dict) -> dict:
    """The ``telemetry.*`` entries of a metrics-registry dump, flattened
    to ``{short_name: value}`` (counters and gauges alike)."""
    out = {}
    for section in ("counters", "gauges"):
        for key, value in (metrics.get(section) or {}).items():
            if key.startswith("telemetry."):
                out[key[len("telemetry."):]] = value
    return out


def _wire_links(rec) -> tuple:
    links = rec.meta.get("links")
    if links:
        return tuple(links)
    if rec.track and rec.track.startswith("link:"):
        return (rec.track[5:],)
    return (rec.meta.get("link", rec.label),)


@dataclass
class LinkStats:
    """Aggregated activity of one link."""

    label: str
    busy_time: float = 0.0
    bytes_moved: int = 0
    transfers: int = 0

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed else 0.0


@dataclass
class CommProfile:
    """A digested view of one simulation run."""

    elapsed: float
    category_time: dict = field(default_factory=dict)
    links: dict = field(default_factory=dict)
    size_histogram: dict = field(default_factory=dict)  # log2 bucket -> count
    rank_pipeline_time: dict = field(default_factory=dict)  # rank -> seconds
    total_wire_bytes: int = 0
    n_messages: int = 0
    #: host-side codec-cache activity (hits/misses/bytes_saved) for the
    #: run, when built from a ClusterResult.  Wall-clock bookkeeping,
    #: not simulated time.
    codec_cache: dict = field(default_factory=dict)
    #: telemetry-container self-metrics (``telemetry.*`` counters and
    #: gauges — RPRT bytes written, block compression ratio), pulled
    #: from the run's metrics registry or an ingested trace file.
    telemetry: dict = field(default_factory=dict)

    @classmethod
    def from_result(cls, result) -> "CommProfile":
        """Build from a :class:`~repro.mpi.cluster.ClusterResult`."""
        prof = cls.from_tracer(result.tracer, result.elapsed)
        prof.codec_cache = dict(getattr(result, "codec_cache", {}) or {})
        return prof

    @classmethod
    def from_tracer(cls, tracer, elapsed: float) -> "CommProfile":
        """Build from any tracer plus the run's elapsed simulated time."""
        prof = cls.from_records(tracer.records, elapsed)
        prof.telemetry = _telemetry_slice(tracer.metrics.as_dict())
        return prof

    @classmethod
    def from_records(cls, records, elapsed: float) -> "CommProfile":
        """Build from any iterable of span records — a tracer's list or
        a streamed file iterator; state is accumulated per record, so a
        generator never has to materialize."""
        prof = cls(elapsed=elapsed)
        for rec in records:
            prof.category_time[rec.category] = (
                prof.category_time.get(rec.category, 0.0) + rec.duration
            )
            if rec.category == "pipeline" and rec.rank is not None:
                prof.rank_pipeline_time[rec.rank] = (
                    prof.rank_pipeline_time.get(rec.rank, 0.0) + rec.duration
                )
            if _is_wire(rec):
                nbytes = int(rec.meta.get("nbytes", 0))
                for link in _wire_links(rec):
                    st = prof.links.setdefault(link, LinkStats(link))
                    st.busy_time += rec.duration
                    st.bytes_moved += nbytes
                    st.transfers += 1
                prof.total_wire_bytes += nbytes
                prof.n_messages += 1
                bucket = max(0, (max(nbytes, 1) - 1).bit_length())
                prof.size_histogram[bucket] = prof.size_histogram.get(bucket, 0) + 1
        return prof

    @classmethod
    def from_trace_file(cls, path) -> "CommProfile":
        """Ingest an exported trace file — Chrome-trace JSON or a binary
        RPRT container — streaming events without loading the file.
        Elapsed time and the telemetry metrics come from the trace's
        embedded ``otherData``."""
        from repro.analysis.traceio import iter_trace_records, read_otherdata

        other = read_otherdata(path)
        elapsed = float(other.get("elapsed_seconds") or 0.0)
        horizon = 0.0

        def tracked():
            nonlocal horizon
            for rec in iter_trace_records(path):
                if rec.t_end > horizon:
                    horizon = rec.t_end
                yield rec

        prof = cls.from_records(tracked(), elapsed)
        if not prof.elapsed:
            # No recorded elapsed: fall back to the span horizon.
            prof.elapsed = horizon
        prof.telemetry = _telemetry_slice(other.get("metrics", {}))
        return prof

    def as_dict(self) -> dict:
        """JSON-ready form (``python -m repro profile --format json``).

        Times are microseconds; keys are sorted by construction so the
        serialized form is deterministic for same-seed runs."""
        return {
            "elapsed_us": self.elapsed * 1e6,
            "n_messages": self.n_messages,
            "total_wire_bytes": self.total_wire_bytes,
            "category_time_us": {
                cat: t * 1e6 for cat, t in sorted(self.category_time.items())
            },
            "links": {
                label: {
                    "busy_time_us": s.busy_time * 1e6,
                    "bytes_moved": s.bytes_moved,
                    "transfers": s.transfers,
                    "utilization": s.utilization(self.elapsed),
                }
                for label, s in sorted(self.links.items())
            },
            "rank_pipeline_time_us": {
                str(r): t * 1e6
                for r, t in sorted(self.rank_pipeline_time.items())
            },
            "wire_size_histogram": {
                str(b): n for b, n in sorted(self.size_histogram.items())
            },
            "codec_cache": {k: self.codec_cache[k]
                            for k in sorted(self.codec_cache)},
            "telemetry": {k: self.telemetry[k]
                          for k in sorted(self.telemetry)},
        }

    @property
    def busiest_link(self) -> LinkStats | None:
        if not self.links:
            return None
        return max(self.links.values(), key=lambda s: s.busy_time)

    def report(self) -> str:
        """Human-readable multi-section report."""
        sections = [f"run elapsed: {fmt_time(self.elapsed)}; "
                    f"{self.n_messages} wire transfers, "
                    f"{fmt_bytes(self.total_wire_bytes) if self.total_wire_bytes else '0'} moved"]
        if self.category_time:
            rows = sorted(
                ([cat, t * 1e6, 100 * t / max(1e-30, sum(self.category_time.values()))]
                 for cat, t in self.category_time.items()),
                key=lambda r: -r[1],
            )
            sections.append(format_table(
                ["category", "time_us", "share %"], rows, title="time by category"))
        if self.links:
            rows = sorted(
                ([s.label, s.transfers, s.bytes_moved / 1e6,
                  100 * s.utilization(self.elapsed)]
                 for s in self.links.values()),
                key=lambda r: -r[3],
            )
            sections.append(format_table(
                ["link", "transfers", "MB", "utilization %"], rows,
                title="link activity"))
        if self.rank_pipeline_time:
            rows = [[f"rank {r}", t * 1e6]
                    for r, t in sorted(self.rank_pipeline_time.items())]
            sections.append(format_table(
                ["rank", "pipeline time_us"], rows, title="pipeline time by rank"))
        if self.size_histogram:
            rows = [[f"<=2^{b}", n] for b, n in sorted(self.size_histogram.items())]
            sections.append(format_table(
                ["message size", "count"], rows, title="wire-size histogram"))
        if self.codec_cache:
            hits = self.codec_cache.get("hits", 0)
            misses = self.codec_cache.get("misses", 0)
            total = hits + misses
            rate = 100.0 * hits / total if total else 0.0
            saved = self.codec_cache.get("bytes_saved", 0)
            sections.append(
                "codec cache (host-side): "
                f"{hits} hits / {misses} misses ({rate:.1f}% hit rate), "
                f"{saved / 1e6:.1f} MB of codec input re-used")
        if self.telemetry:
            parts = []
            if "rprt_bytes_written" in self.telemetry:
                parts.append(f"{fmt_bytes(int(self.telemetry['rprt_bytes_written']))} "
                             f"of RPRT blocks written")
            if "rprt_compress_ratio" in self.telemetry:
                parts.append(f"block compression ratio "
                             f"{self.telemetry['rprt_compress_ratio']:.2f}x")
            for k in sorted(self.telemetry):
                if k not in ("rprt_bytes_written", "rprt_compress_ratio"):
                    parts.append(f"{k}={self.telemetry[k]}")
            sections.append("telemetry container: " + ", ".join(parts))
        return "\n\n".join(sections)
