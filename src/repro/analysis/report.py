"""Paper-vs-measured record keeping.

Every benchmark emits :class:`ExperimentRecord` rows; the EXPERIMENTS.md
comparison tables are produced from the same structures the benches
print, keeping the document and the code in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.utils.tables import format_table

__all__ = ["ExperimentRecord", "comparison_table", "reduction_pct"]


def reduction_pct(baseline: float, value: float) -> float:
    """Percent latency reduction vs. baseline (positive = faster)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - value / baseline)


@dataclass
class ExperimentRecord:
    """One measured point with its paper counterpart (when stated)."""

    experiment: str          # "fig9a", "table3", ...
    setting: str             # "32M / MPC-OPT", "msg_sppm", ...
    metric: str              # "latency_us", "CR", "GFLOP/s", ...
    measured: float
    paper: Optional[float] = None
    note: str = ""

    def row(self) -> list:
        return [
            self.experiment, self.setting, self.metric,
            self.measured,
            "-" if self.paper is None else self.paper,
            self.note,
        ]


def comparison_table(records: list[ExperimentRecord], title: str = "") -> str:
    """Render records as the paper-vs-measured table the benches print."""
    return format_table(
        ["experiment", "setting", "metric", "measured", "paper", "note"],
        [r.row() for r in records],
        floatfmt=".3f",
        title=title,
    )
