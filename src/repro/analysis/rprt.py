"""RPRT — self-describing binary telemetry container.

Chrome-trace JSON is the lingua franca for *viewing* a trace, but it is
a terrible container at scale: the whole document must be materialized
to read one lane, floats are spelled out in ASCII, and every span
repeats its key names.  ``RPRT`` is the repository's binary telemetry
container, GGUF-style: a magic/versioned header, typed metadata
key-values, then 8-byte-aligned **columnar blocks** that numpy can map
straight out of the file — span records split into per-field columns,
a deduplicated string table, and (optionally) whole bench/hostperf
snapshot documents.

Dogfooding is the point: each block may be compressed through the
existing codec registry (the lossless paths — MPC by default, which is
bit-exact on arbitrary bit patterns, or ``null``).  The writer verifies
every compressed block round-trips bit-for-bit before committing to it
and falls back to raw storage otherwise, and every block carries a
CRC-32 of its stored bytes so truncation or corruption is detected on
read, not silently analyzed.

File layout (all integers little-endian)::

    magic   b"RPRT"
    u32     container version (1)
    u64     n_kv
    u64     n_blocks
    n_kv    typed key-values:
              u32 key_len | key utf-8 | u8 type | value
              type 1=i64, 2=f64, 3=bool(u8), 4=str, 5=json
              (str/json: u64 byte_len | utf-8 bytes)
    n_blocks block-table entries:
              u32 name_len | name | u8 dtype code | u32 codec_len | codec
              | u32 params_len | params json | u64 n_elements
              | u64 raw_nbytes | u64 stored_nbytes | u64 offset | u32 crc32
    ...     zero padding so every block offset is 8-byte aligned
    blocks  stored bytes (raw little-endian column data, or the codec
            payload when ``codec`` is non-empty)

Span records are stored in groups of :data:`SPANS_PER_BLOCK` rows
(``spans/<g>/<column>``), each group carrying ``t_min_us``/``t_max_us``
metadata so a time-windowed reader skips whole groups without touching
their bytes.  Timestamps are stored in *exported* units (microseconds,
as rounded by the Chrome exporter) so JSON -> RPRT -> JSON is
byte-identical and RPRT -> JSON -> RPRT is bit-stable.

``RprtReader`` memory-maps the file: raw blocks are zero-copy views
into the map, compressed blocks decode one at a time, and
:meth:`RprtReader.spans` streams :class:`~repro.sim.trace.TraceRecord`
objects group by group — analysis never holds the whole file.
"""

from __future__ import annotations

import json
import mmap
import struct
import zlib
from pathlib import Path
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "RPRT_MAGIC", "RPRT_VERSION", "SPANS_PER_BLOCK", "RprtError",
    "RprtWriter", "RprtReader", "is_rprt", "write_trace_rprt",
    "write_snapshot_rprt", "read_snapshot_rprt", "DEFAULT_BLOCK_CODEC",
]

RPRT_MAGIC = b"RPRT"
RPRT_VERSION = 1
#: span rows per columnar group — bounds reader working-set size
SPANS_PER_BLOCK = 4096
#: registry codec applied to blocks (lossless; ``"none"`` disables)
DEFAULT_BLOCK_CODEC = "mpc"

# KV type tags
_KV_I64, _KV_F64, _KV_BOOL, _KV_STR, _KV_JSON = 1, 2, 3, 4, 5

#: block dtype codes <-> numpy dtypes (little-endian on disk)
_DTYPES = ("u1", "i1", "u4", "i4", "i8", "u8", "f8")
_DTYPE_CODE = {d: i for i, d in enumerate(_DTYPES)}

_ALIGN = 8
#: columns below this raw size are never worth a codec header
_MIN_COMPRESS_BYTES = 64


class RprtError(ValueError):
    """Malformed, truncated or corrupt RPRT container."""


def is_rprt(path) -> bool:
    """True if ``path`` starts with the RPRT magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(4) == RPRT_MAGIC
    except OSError:
        return False


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# -- writer ------------------------------------------------------------------

class _Block:
    __slots__ = ("name", "dtype", "codec", "params", "n_elements",
                 "raw_nbytes", "stored", "offset", "crc32")

    def __init__(self, name, dtype, codec, params, n_elements, raw_nbytes,
                 stored):
        self.name = name
        self.dtype = dtype
        self.codec = codec
        self.params = params
        self.n_elements = n_elements
        self.raw_nbytes = raw_nbytes
        self.stored = stored
        self.offset = 0
        self.crc32 = zlib.crc32(stored) & 0xFFFFFFFF


class RprtWriter:
    """Accumulates key-values and columnar blocks, then serializes.

    The writer is deterministic: identical inputs produce identical
    bytes (insertion order of KVs/blocks is preserved, offsets are a
    pure function of the table, and codec choices depend only on the
    data), which the bit-stability tests rely on.
    """

    def __init__(self, block_codec: str = DEFAULT_BLOCK_CODEC):
        self._kvs: list[tuple[str, int, object]] = []
        self._blocks: list[_Block] = []
        self._codec_name = (block_codec or "none").lower()
        self._codec = None
        if self._codec_name not in ("none", ""):
            from repro.compression import get_compressor

            self._codec = get_compressor(self._codec_name)
            if not self._codec.lossless:
                raise RprtError(
                    f"block codec {self._codec_name!r} is lossy; telemetry "
                    f"blocks require a lossless registry codec")

    # -- metadata ----------------------------------------------------------
    def add_kv(self, key: str, value) -> None:
        """Add a typed metadata key-value (type inferred from ``value``;
        dicts/lists are stored as canonical JSON)."""
        if isinstance(value, bool):
            self._kvs.append((key, _KV_BOOL, value))
        elif isinstance(value, int):
            self._kvs.append((key, _KV_I64, value))
        elif isinstance(value, float):
            self._kvs.append((key, _KV_F64, value))
        elif isinstance(value, str):
            self._kvs.append((key, _KV_STR, value))
        elif isinstance(value, (dict, list, tuple)):
            self._kvs.append((key, _KV_JSON, _canonical_json(value)))
        else:
            raise RprtError(f"unsupported KV type for {key!r}: {type(value)}")

    # -- blocks ------------------------------------------------------------
    def add_block(self, name: str, data, compress: bool = True) -> None:
        """Add a columnar block from a 1-D numpy array (or raw bytes,
        stored as a ``u1`` column)."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            data = np.frombuffer(bytes(data), dtype=np.uint8)
        arr = np.ascontiguousarray(data)
        dtype = arr.dtype.newbyteorder("<")
        code = dtype.str[1:]  # e.g. "<f8" -> "f8"
        if code not in _DTYPE_CODE:
            raise RprtError(f"block {name!r}: unsupported dtype {arr.dtype}")
        raw = arr.astype(dtype, copy=False).tobytes()
        codec_name, params, stored = "", {}, raw
        if compress and self._codec is not None \
                and len(raw) >= _MIN_COMPRESS_BYTES:
            packed = self._try_compress(raw)
            if packed is not None:
                codec_name, params, stored = packed
        self._blocks.append(_Block(name, code, codec_name, params,
                                   arr.size, len(raw), stored))

    def _try_compress(self, raw: bytes):
        """Compress ``raw`` through the registry codec, keeping the
        result only if it is smaller *and* round-trips bit-for-bit."""
        pad = (-len(raw)) % 8
        view = np.frombuffer(raw + b"\x00" * pad, dtype="<f8")
        try:
            comp = self._codec.compress(view)
        except Exception:
            return None
        payload = comp.payload.tobytes()
        if len(payload) >= len(raw):
            return None
        if self._codec.decompress(comp).tobytes() != raw + b"\x00" * pad:
            return None  # pragma: no cover - lossless codecs round-trip
        return self._codec_name, dict(comp.params), payload

    # -- serialization -----------------------------------------------------
    def _header_bytes(self) -> bytes:
        out = [RPRT_MAGIC, struct.pack("<IQQ", RPRT_VERSION,
                                       len(self._kvs), len(self._blocks))]
        for key, kind, value in self._kvs:
            kb = key.encode("utf-8")
            out.append(struct.pack("<I", len(kb)))
            out.append(kb)
            out.append(struct.pack("<B", kind))
            if kind == _KV_I64:
                out.append(struct.pack("<q", value))
            elif kind == _KV_F64:
                out.append(struct.pack("<d", value))
            elif kind == _KV_BOOL:
                out.append(struct.pack("<B", int(value)))
            else:  # str / json
                vb = value.encode("utf-8")
                out.append(struct.pack("<Q", len(vb)))
                out.append(vb)
        for b in self._blocks:
            nb = b.name.encode("utf-8")
            cb = b.codec.encode("utf-8")
            pb = (_canonical_json(b.params) if b.codec else "").encode("utf-8")
            out.append(struct.pack("<I", len(nb)))
            out.append(nb)
            out.append(struct.pack("<B", _DTYPE_CODE[b.dtype]))
            out.append(struct.pack("<I", len(cb)))
            out.append(cb)
            out.append(struct.pack("<I", len(pb)))
            out.append(pb)
            out.append(struct.pack("<QQQQI", b.n_elements, b.raw_nbytes,
                                   len(b.stored), b.offset, b.crc32))
        return b"".join(out)

    def write(self, path) -> dict:
        """Serialize to ``path``; returns block-level size statistics
        (``raw_bytes``, ``stored_bytes``, ``ratio``, ``file_bytes``)."""
        # Offsets are fixed-width, so the header size is known before
        # offsets are assigned: lay out blocks in two passes.
        header_len = len(self._header_bytes())
        offset = header_len + ((-header_len) % _ALIGN)
        for b in self._blocks:
            b.offset = offset
            offset += len(b.stored) + ((-len(b.stored)) % _ALIGN)
        header = self._header_bytes()
        with open(path, "wb") as fh:
            fh.write(header)
            fh.write(b"\x00" * ((-len(header)) % _ALIGN))
            for b in self._blocks:
                fh.write(b.stored)
                fh.write(b"\x00" * ((-len(b.stored)) % _ALIGN))
            file_bytes = fh.tell()
        raw = sum(b.raw_nbytes for b in self._blocks)
        stored = sum(len(b.stored) for b in self._blocks)
        return {"raw_bytes": raw, "stored_bytes": stored,
                "ratio": raw / stored if stored else 1.0,
                "file_bytes": file_bytes}

    def stats(self) -> dict:
        """Block-level sizes known before serialization (used to stamp
        the telemetry metrics *into* the file's own metadata)."""
        raw = sum(b.raw_nbytes for b in self._blocks)
        stored = sum(len(b.stored) for b in self._blocks)
        return {"raw_bytes": raw, "stored_bytes": stored,
                "ratio": raw / stored if stored else 1.0}


# -- reader ------------------------------------------------------------------

class _BlockInfo:
    __slots__ = ("name", "dtype", "codec", "params", "n_elements",
                 "raw_nbytes", "stored_nbytes", "offset", "crc32")


class RprtReader:
    """Memory-mapped RPRT reader.

    Raw blocks are returned as zero-copy numpy views into the map;
    compressed blocks are decoded one at a time through the codec
    registry.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh = open(path, "rb")
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._fh.close()
            raise RprtError(f"{path}: empty file is not an RPRT container")
        try:
            self._parse_header()
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            self.close()
            raise RprtError(f"{path}: truncated or corrupt header: {exc}")

    # -- header parsing ----------------------------------------------------
    def _take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._mm):
            raise struct.error(f"need {n} bytes at {self._pos}, have "
                               f"{len(self._mm) - self._pos}")
        out = self._mm[self._pos:end]
        self._pos = end
        return out

    def _parse_header(self) -> None:
        self._pos = 0
        if self._take(4) != RPRT_MAGIC:
            raise RprtError(f"{self.path}: bad magic (not an RPRT container)")
        (self.version, n_kv, n_blocks) = struct.unpack("<IQQ", self._take(20))
        if self.version != RPRT_VERSION:
            raise RprtError(f"{self.path}: container version {self.version} "
                            f"unsupported (expected {RPRT_VERSION})")
        self.kvs: dict[str, object] = {}
        for _ in range(n_kv):
            (klen,) = struct.unpack("<I", self._take(4))
            key = self._take(klen).decode("utf-8")
            (kind,) = struct.unpack("<B", self._take(1))
            if kind == _KV_I64:
                value = struct.unpack("<q", self._take(8))[0]
            elif kind == _KV_F64:
                value = struct.unpack("<d", self._take(8))[0]
            elif kind == _KV_BOOL:
                value = bool(struct.unpack("<B", self._take(1))[0])
            elif kind in (_KV_STR, _KV_JSON):
                (vlen,) = struct.unpack("<Q", self._take(8))
                value = self._take(vlen).decode("utf-8")
                if kind == _KV_JSON:
                    value = json.loads(value)
            else:
                raise RprtError(f"{self.path}: unknown KV type {kind} "
                                f"for key {key!r}")
            self.kvs[key] = value
        self._blocks: dict[str, _BlockInfo] = {}
        for _ in range(n_blocks):
            b = _BlockInfo()
            (nlen,) = struct.unpack("<I", self._take(4))
            b.name = self._take(nlen).decode("utf-8")
            (code,) = struct.unpack("<B", self._take(1))
            if code >= len(_DTYPES):
                raise RprtError(f"{self.path}: block {b.name!r} has unknown "
                                f"dtype code {code}")
            b.dtype = _DTYPES[code]
            (clen,) = struct.unpack("<I", self._take(4))
            b.codec = self._take(clen).decode("utf-8")
            (plen,) = struct.unpack("<I", self._take(4))
            params = self._take(plen).decode("utf-8")
            b.params = json.loads(params) if params else {}
            (b.n_elements, b.raw_nbytes, b.stored_nbytes, b.offset,
             b.crc32) = struct.unpack("<QQQQI", self._take(36))
            if b.offset + b.stored_nbytes > len(self._mm):
                raise RprtError(f"{self.path}: block {b.name!r} extends past "
                                f"end of file (truncated?)")
            self._blocks[b.name] = b

    # -- generic access ----------------------------------------------------
    def kv(self, key: str, default=None):
        return self.kvs.get(key, default)

    @property
    def block_names(self) -> list[str]:
        return list(self._blocks)

    def block_info(self, name: str) -> _BlockInfo:
        try:
            return self._blocks[name]
        except KeyError:
            raise RprtError(f"{self.path}: no block {name!r}") from None

    def read(self, name: str, verify: bool = True) -> np.ndarray:
        """Load one column.  Raw blocks come back as a read-only view
        into the mmap (zero copy); compressed blocks are decoded.  With
        ``verify`` (default), the stored bytes must match the block's
        CRC-32."""
        b = self.block_info(name)
        stored = memoryview(self._mm)[b.offset:b.offset + b.stored_nbytes]
        if verify and (zlib.crc32(stored) & 0xFFFFFFFF) != b.crc32:
            raise RprtError(f"{self.path}: CRC mismatch on block {b.name!r} "
                            f"(corrupt or truncated container)")
        if b.codec:
            from repro.compression import get_compressor
            from repro.compression.base import CompressedData

            codec = get_compressor(b.codec, **b.params)
            comp = CompressedData(
                algorithm=b.codec,
                payload=np.frombuffer(stored, dtype=np.uint8),
                n_elements=(b.raw_nbytes + 7) // 8,
                dtype=np.dtype("<f8"), params=dict(b.params))
            raw = codec.decompress(comp).tobytes()[:b.raw_nbytes]
        else:
            raw = stored
        out = np.frombuffer(raw, dtype="<" + b.dtype)
        if out.size != b.n_elements:
            raise RprtError(f"{self.path}: block {b.name!r} decoded to "
                            f"{out.size} elements, expected {b.n_elements}")
        return out

    def close(self) -> None:
        if getattr(self, "_mm", None) is not None:
            self._mm.close()
            self._mm = None
        if getattr(self, "_fh", None) is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RprtReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- trace-specific access --------------------------------------------
    def strings(self) -> list[str]:
        """The deduplicated string table."""
        offsets = self.read("strings/offsets")
        blob = self.read("strings/blob").tobytes()
        return [blob[offsets[i]:offsets[i + 1]].decode("utf-8")
                for i in range(len(offsets) - 1)]

    @property
    def n_spans(self) -> int:
        return int(self.kv("spans/count", 0))

    @property
    def n_span_groups(self) -> int:
        return int(self.kv("spans/groups", 0))

    def otherdata(self) -> dict:
        """The Chrome-trace ``otherData`` dict (metrics + elapsed)."""
        return dict(self.kv("trace/otherdata", {}))

    def metrics(self) -> dict:
        return dict(self.otherdata().get("metrics", {}))

    @property
    def elapsed(self) -> Optional[float]:
        return self.otherdata().get("elapsed_seconds")

    def span_group(self, g: int) -> dict:
        """All columns of span group ``g`` as numpy arrays."""
        return {col: self.read(f"spans/{g}/{col}") for col in _SPAN_COLUMNS}

    def spans(self, track: Optional[str] = None, rank: Optional[int] = None,
              time_range: Optional[tuple] = None) -> Iterator:
        """Stream :class:`~repro.sim.trace.TraceRecord` objects block by
        block, optionally filtered by ``track`` name, ``rank``, and a
        ``(t0, t1)`` window in simulated seconds.  Groups entirely
        outside the window are skipped without touching their bytes."""
        from repro.sim.trace import TraceRecord

        strings = self.strings() if self.n_spans else []
        meta_cache: dict[int, dict] = {}
        want_rank = -1 if rank is None else int(rank)
        track_ids = (np.asarray([i for i, s in enumerate(strings)
                                 if s == track], dtype=np.int64)
                     if track is not None else None)
        for g in range(self.n_span_groups):
            if time_range is not None:
                g_min = self.kv(f"spans/{g}/t_min_us", 0.0) / 1e6
                g_max = self.kv(f"spans/{g}/t_max_us", 0.0) / 1e6
                if g_max < time_range[0] or g_min > time_range[1]:
                    continue
            cols = self.span_group(g)
            n = len(cols["ts_us"])
            mask = np.ones(n, dtype=bool)
            if rank is not None:
                mask &= cols["rank"] == want_rank
            if track_ids is not None:
                mask &= np.isin(cols["track"], track_ids)
            t0 = cols["ts_us"] / 1e6
            t1 = (cols["ts_us"] + cols["dur_us"]) / 1e6
            if time_range is not None:
                mask &= (t1 >= time_range[0]) & (t0 <= time_range[1])
            for i in np.flatnonzero(mask):
                mi = int(cols["meta"][i])
                meta = meta_cache.get(mi)
                if meta is None:
                    meta = json.loads(strings[mi]) if strings[mi] else {}
                    meta_cache[mi] = meta
                r = int(cols["rank"][i])
                p = int(cols["parent_id"][i])
                yield TraceRecord(
                    t_start=float(t0[i]), t_end=float(t1[i]),
                    category=strings[int(cols["category"][i])],
                    label=strings[int(cols["label"][i])],
                    meta=dict(meta),
                    rank=None if r < 0 else r,
                    track=strings[int(cols["track"][i])],
                    span_id=int(cols["span_id"][i]),
                    parent_id=None if p < 0 else p)

    def iter_chrome_events(self) -> Iterator[dict]:
        """Yield Chrome-trace events (metadata first, then X events)
        reconstructing the exporter's exact output: timestamps come
        straight from the stored microsecond columns, so converting to
        JSON is byte-identical to a direct export of the same spans."""
        from repro.analysis.export import chrome_metadata_events, pid_of

        pairs = set()
        for g in range(self.n_span_groups):
            ranks = self.read(f"spans/{g}/rank")
            tracks = self.read(f"spans/{g}/track")
            pairs.update(zip(ranks.tolist(), tracks.tolist()))
        strings = self.strings() if pairs else []
        pid_track = {}
        for r, t in pairs:
            rank = None if r < 0 else int(r)
            pid_track[(r, t)] = pid_of(rank, strings[t])
        tids, meta_events = chrome_metadata_events(set(pid_track.values()))
        yield from meta_events
        for g in range(self.n_span_groups):
            cols = self.span_group(g)
            for i in range(len(cols["ts_us"])):
                pid, tname = pid_track[(int(cols["rank"][i]),
                                        int(cols["track"][i]))]
                args = {"span_id": int(cols["span_id"][i])}
                parent = int(cols["parent_id"][i])
                if parent >= 0:
                    args["parent_id"] = parent
                meta_s = strings[int(cols["meta"][i])]
                if meta_s:
                    args.update(json.loads(meta_s))
                category = strings[int(cols["category"][i])]
                label = strings[int(cols["label"][i])]
                yield {
                    "name": label or category,
                    "cat": category,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[(pid, tname)],
                    "ts": float(cols["ts_us"][i]),
                    "dur": float(cols["dur_us"][i]),
                    "args": args,
                }


_SPAN_COLUMNS = ("ts_us", "dur_us", "span_id", "parent_id", "rank",
                 "category", "label", "track", "meta")


class _StringTable:
    def __init__(self):
        self._index: dict[str, int] = {}
        self._items: list[bytes] = []

    def add(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self._items)
            self._index[s] = idx
            self._items.append(s.encode("utf-8"))
        return idx

    def blocks(self):
        offsets = np.zeros(len(self._items) + 1, dtype=np.uint64)
        np.cumsum([len(b) for b in self._items], out=offsets[1:])
        blob = np.frombuffer(b"".join(self._items), dtype=np.uint8)
        return offsets, blob


class _SpanColumnBuilder:
    """Accumulates span rows and flushes them to a writer in
    :data:`SPANS_PER_BLOCK` groups."""

    def __init__(self, writer: RprtWriter,
                 spans_per_block: int = SPANS_PER_BLOCK):
        self._w = writer
        self._strings = _StringTable()
        self._strings.add("")  # index 0 is always the empty string
        self._rows: list[tuple] = []
        self._group = 0
        self._count = 0
        self._per_block = spans_per_block

    def add(self, ts_us: float, dur_us: float, span_id: int,
            parent_id: Optional[int], rank: Optional[int], category: str,
            label: str, track: str, meta_json: str) -> None:
        self._rows.append((
            ts_us, dur_us, span_id,
            -1 if parent_id is None else int(parent_id),
            -1 if rank is None else int(rank),
            self._strings.add(category), self._strings.add(label),
            self._strings.add(track), self._strings.add(meta_json)))
        self._count += 1
        if len(self._rows) >= self._per_block:
            self._flush()

    def _flush(self) -> None:
        if not self._rows:
            return
        g = self._group
        cols = list(zip(*self._rows))
        dtypes = ("f8", "f8", "i8", "i8", "i4", "u4", "u4", "u4", "u4")
        for name, values, dt in zip(_SPAN_COLUMNS, cols, dtypes):
            self._w.add_block(f"spans/{g}/{name}",
                              np.asarray(values, dtype=dt))
        self._w.add_kv(f"spans/{g}/count", len(self._rows))
        self._w.add_kv(f"spans/{g}/t_min_us", float(min(cols[0])))
        self._w.add_kv(f"spans/{g}/t_max_us",
                       float(max(t + d for t, d in zip(cols[0], cols[1]))))
        self._rows.clear()
        self._group += 1

    def finish(self) -> None:
        self._flush()
        self._w.add_kv("spans/count", self._count)
        self._w.add_kv("spans/groups", self._group)
        offsets, blob = self._strings.blocks()
        self._w.add_block("strings/offsets", offsets)
        self._w.add_block("strings/blob", blob)


def _trace_writer(builder_fill, otherdata: dict,
                  block_codec: str = DEFAULT_BLOCK_CODEC,
                  spans_per_block: int = SPANS_PER_BLOCK,
                  registry=None) -> tuple[RprtWriter, dict]:
    """Shared tail of the two trace-writing paths: fill span columns,
    stamp telemetry metrics (into ``registry`` *and* the embedded
    metrics dump when the registry is the live one), then add the
    trailing metadata."""
    w = RprtWriter(block_codec=block_codec)
    b = _SpanColumnBuilder(w, spans_per_block)
    builder_fill(b)
    b.finish()
    stats = w.stats()
    if registry is not None:
        registry.inc("telemetry.rprt_bytes_written", stats["stored_bytes"])
        registry.set("telemetry.rprt_compress_ratio", stats["ratio"])
        otherdata = dict(otherdata)
        otherdata["metrics"] = registry.as_dict()
    w.add_kv("trace/otherdata", otherdata)
    w.add_kv("trace/display_time_unit", "ms")
    w.add_kv("producer", "repro")
    w.add_kv("block_codec", (block_codec or "none").lower())
    return w, stats


def write_trace_rprt(tracer, path, elapsed: Optional[float] = None,
                     block_codec: str = DEFAULT_BLOCK_CODEC,
                     spans_per_block: int = SPANS_PER_BLOCK) -> dict:
    """Export a tracer's spans + metrics registry to an RPRT container.

    The container's own write statistics are dogfooded into the
    embedded metrics dump (``telemetry.rprt_bytes_written`` counter,
    ``telemetry.rprt_compress_ratio`` gauge) *before* metadata
    serialization, so the file self-describes its compression win.
    Returns the writer statistics dict.
    """
    from repro.analysis.export import chrome_time, json_safe_meta

    recs = sorted(tracer.records, key=lambda r: (r.t_start, r.t_end, r.span_id))

    def fill(b: _SpanColumnBuilder) -> None:
        for rec in recs:
            meta = json_safe_meta(rec.meta)
            # A label equal to its category is what the Chrome exporter
            # collapses the empty label to; store the canonical empty
            # form so RPRT and ingested-JSON records are identical.
            label = rec.label if rec.label != rec.category else ""
            b.add(chrome_time(rec.t_start), chrome_time(rec.duration),
                  rec.span_id, rec.parent_id, rec.rank,
                  rec.category, label, rec.track or "main",
                  _canonical_json(meta) if meta else "")

    other: dict = {"metrics": tracer.metrics.as_dict()}
    if elapsed is not None:
        other["elapsed_seconds"] = elapsed
    w, stats = _trace_writer(fill, other, block_codec, spans_per_block,
                             registry=tracer.metrics)
    stats.update(w.write(path))
    return stats


# -- bench / hostperf snapshot embedding ------------------------------------

def write_snapshot_rprt(doc: dict, path, kind: str,
                        block_codec: str = DEFAULT_BLOCK_CODEC) -> dict:
    """Store a bench/hostperf snapshot document in an RPRT container.

    The canonical JSON document rides along (compressed) as the
    authoritative ``snapshot/json`` block, and every numeric scalar
    metric is *also* laid out columnar (``snapshot/section``,
    ``snapshot/metric`` string indices + ``snapshot/value`` f8) so bulk
    trajectory analysis can mmap the numbers without parsing JSON.

    Histogram sections (per-rank power-of-two bucket counts collected
    by :class:`~repro.analysis.metrics.HistogramStat`) get their own
    columnar quartet — ``snapshot/hist_section`` / ``hist_metric``
    string indices plus ``snapshot/hist_bucket`` / ``hist_count`` u4
    rows, one row per occupied bucket — so depth/occupancy
    distributions stream without JSON parsing either.
    """
    w = RprtWriter(block_codec=block_codec)
    w.add_kv("snapshot/kind", kind)
    w.add_kv("snapshot/schema_version", int(doc.get("schema_version", 0)))
    strings = _StringTable()
    strings.add("")
    sections, metrics, values = [], [], []
    hsections, hmetrics, hbuckets, hcounts = [], [], [], []
    groups = doc.get("scenarios") or doc.get("benchmarks") or {}
    for name in sorted(groups):
        entry = groups[name]
        numeric = {}
        for sub in ("metrics", "counters"):
            numeric.update(entry.get(sub) or {})
        for mname, mval in sorted(numeric.items()):
            if isinstance(mval, (int, float)) and not isinstance(mval, bool):
                sections.append(strings.add(name))
                metrics.append(strings.add(mname))
                values.append(float(mval))
        for hname, hist in sorted((entry.get("histograms") or {}).items()):
            buckets = hist.get("buckets") or {}
            for bucket in sorted(buckets, key=int):
                hsections.append(strings.add(name))
                hmetrics.append(strings.add(hname))
                hbuckets.append(int(bucket))
                hcounts.append(int(buckets[bucket]))
    w.add_block("snapshot/section", np.asarray(sections, dtype="u4"))
    w.add_block("snapshot/metric", np.asarray(metrics, dtype="u4"))
    w.add_block("snapshot/value", np.asarray(values, dtype="f8"))
    if hsections:
        w.add_block("snapshot/hist_section", np.asarray(hsections, dtype="u4"))
        w.add_block("snapshot/hist_metric", np.asarray(hmetrics, dtype="u4"))
        w.add_block("snapshot/hist_bucket", np.asarray(hbuckets, dtype="u4"))
        w.add_block("snapshot/hist_count", np.asarray(hcounts, dtype="u4"))
    offsets, blob = strings.blocks()
    w.add_block("strings/offsets", offsets)
    w.add_block("strings/blob", blob)
    w.add_block("snapshot/json",
                _canonical_json(doc).encode("utf-8"))
    w.add_kv("producer", "repro")
    return w.write(path)


def read_snapshot_rprt(path) -> dict:
    """Load the snapshot document back from an RPRT container."""
    with RprtReader(path) as r:
        if "snapshot/json" not in r._blocks:
            raise RprtError(f"{path}: container holds no snapshot document")
        return json.loads(r.read("snapshot/json").tobytes().decode("utf-8"))
