"""The reproduction scorecard: headline paper claims, automatically
re-measured.

Each :class:`Claim` pairs a quantitative statement from the paper with
a measurement function over this package; :func:`run_scorecard`
executes them all and reports measured vs. paper values plus a
qualitative verdict (``shape-ok``: the direction/ordering holds even
where the magnitude differs — see EXPERIMENTS.md on calibration).

This is the programmatic source of EXPERIMENTS.md's summary and is
printed by ``benchmarks/bench_scorecard.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.analysis.report import reduction_pct
from repro.core import CompressionConfig
from repro.utils.tables import format_table
from repro.utils.units import MiB

__all__ = ["Claim", "ClaimResult", "CLAIMS", "run_scorecard", "render_scorecard"]


@dataclass(frozen=True)
class Claim:
    """One measurable statement from the paper."""

    claim_id: str
    description: str
    paper_value: float
    unit: str
    measure: Callable[[], float]
    #: measured must be at least this to count as shape-preserving
    ok_threshold: float = 0.0
    higher_is_better: bool = True


@dataclass
class ClaimResult:
    claim: Claim
    measured: float

    @property
    def shape_ok(self) -> bool:
        if self.claim.higher_is_better:
            return self.measured >= self.claim.ok_threshold
        return self.measured <= self.claim.ok_threshold

    def row(self) -> list:
        return [
            self.claim.claim_id, self.claim.description,
            self.measured, self.claim.paper_value, self.claim.unit,
            "yes" if self.shape_ok else "NO",
        ]


# -- measurement helpers -------------------------------------------------------

def _pt2pt_reduction(machine: str, config, nbytes: int, inter_node: bool = True,
                     payload: str = "omb") -> float:
    from repro.omb import osu_latency

    base = osu_latency(machine, sizes=[nbytes], inter_node=inter_node,
                       payload=payload)[0].latency
    comp = osu_latency(machine, sizes=[nbytes], config=config,
                       inter_node=inter_node, payload=payload)[0].latency
    return reduction_pct(base, comp)


def _m_fig9a_mpc() -> float:
    return _pt2pt_reduction("longhorn", CompressionConfig.mpc_opt(), 8 * MiB)


def _m_fig9b_zfp4() -> float:
    return _pt2pt_reduction("frontera-liquid", CompressionConfig.zfp_opt(4), 8 * MiB)


def _m_fig9b_zfp8_pipe() -> float:
    cfg = CompressionConfig.zfp_opt(8).with_(pipeline=True, partitions=8)
    return _pt2pt_reduction("frontera-liquid", cfg, 8 * MiB)


def _m_fig9c_mpc_nvlink() -> float:
    return _pt2pt_reduction("longhorn", CompressionConfig.mpc_opt(), 8 * MiB,
                            inter_node=False)


def _m_fig5_naive_slowdown() -> float:
    return -_pt2pt_reduction("longhorn", CompressionConfig.naive_mpc(), 1 * MiB,
                             payload="wave")


def _m_fig6_opt_vs_naive() -> float:
    from repro.omb import osu_latency

    naive = osu_latency("longhorn", sizes=[2 * MiB],
                        config=CompressionConfig.naive_mpc(), payload="wave")[0]
    opt = osu_latency("longhorn", sizes=[2 * MiB],
                      config=CompressionConfig.mpc_opt(), payload="wave")[0]
    return naive.latency / opt.latency


def _m_table3_sppm_cr() -> float:
    from repro.compression import MpcCompressor
    from repro.datasets import generate

    return MpcCompressor(1).compress(generate("msg_sppm", scale=0.04, seed=1)).ratio


def _m_fig11_bcast_sppm() -> float:
    from repro.omb import osu_bcast

    base = osu_bcast(nodes=8, ppn=2, nbytes=4 * MiB, payload="dataset:msg_sppm")
    comp = osu_bcast(nodes=8, ppn=2, nbytes=4 * MiB, payload="dataset:msg_sppm",
                     config=CompressionConfig.mpc_opt())
    return reduction_pct(base.latency, comp.latency)


def _m_fig12_awp_zfp8() -> float:
    from repro.apps.awp import run_awp

    kw = dict(machine="frontera-liquid", gpus=16, gpus_per_node=4,
              local_shape=(96, 96, 512), steps=3, surrogate=True)
    base = run_awp(**kw, config=CompressionConfig.disabled())
    z8 = run_awp(**kw, config=CompressionConfig.zfp_opt(8))
    return 100 * (z8.gflops / base.gflops - 1)


def _m_fig14_dask_speedup() -> float:
    from repro.apps.dasklite import transpose_sum_benchmark

    base = transpose_sum_benchmark(8, dims=5120, chunk=1024)
    z8 = transpose_sum_benchmark(8, dims=5120, chunk=1024,
                                 config=CompressionConfig.zfp_opt(8))
    return base.execution_time / z8.execution_time


CLAIMS: list[Claim] = [
    Claim("fig5", "naive MPC slows down 1M pt2pt (slowdown %, >0 = slower)",
          400.0, "%", _m_fig5_naive_slowdown, ok_threshold=50.0),
    Claim("fig6", "MPC-OPT speedup over naive integration at 2M",
          4.0, "x", _m_fig6_opt_vs_naive, ok_threshold=1.5),
    Claim("table3", "MPC ratio on msg_sppm",
          8.951, "ratio", _m_table3_sppm_cr, ok_threshold=6.0),
    Claim("fig9a", "MPC-OPT inter-node latency reduction (Longhorn, 8M)",
          62.5, "%", _m_fig9a_mpc, ok_threshold=25.0),
    Claim("fig9b", "ZFP-OPT(4) inter-node reduction (Frontera, 8M)",
          83.1, "%", _m_fig9b_zfp4, ok_threshold=25.0),
    Claim("fig9b+", "ZFP-OPT(8)+pipeline reduction (extension)",
          77.0, "%", _m_fig9b_zfp8_pipe, ok_threshold=45.0),
    Claim("fig9c", "MPC-OPT on NVLink: no benefit (reduction <= 0)",
          0.0, "%", _m_fig9c_mpc_nvlink, ok_threshold=2.0,
          higher_is_better=False),
    Claim("fig11a", "MPI_Bcast reduction on msg_sppm (8x2 ranks, 4M)",
          57.0, "%", _m_fig11_bcast_sppm, ok_threshold=8.0),
    Claim("fig12", "AWP flops gain with ZFP-OPT(8), 16 GPUs Frontera",
          37.0, "%", _m_fig12_awp_zfp8, ok_threshold=2.0),
    Claim("fig14", "Dask x+x.T speedup with ZFP-OPT(8), 8 workers",
          1.18, "x", _m_fig14_dask_speedup, ok_threshold=1.02),
]


def run_scorecard(claims: Optional[list[Claim]] = None) -> list[ClaimResult]:
    """Measure every claim (a few minutes of simulation)."""
    return [ClaimResult(c, float(c.measure())) for c in (claims or CLAIMS)]


def render_scorecard(results: list[ClaimResult]) -> str:
    return format_table(
        ["id", "claim", "measured", "paper", "unit", "shape-ok"],
        [r.row() for r in results],
        floatfmt=".2f",
        title="Reproduction scorecard (see EXPERIMENTS.md for the calibration note)",
    )
