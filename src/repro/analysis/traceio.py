"""Format-agnostic, streamed ingestion of exported traces.

Every consumer of an on-disk trace — the sanitizer (``repro check
--trace``), the critical-path explainer (``repro explain --trace``) and
:class:`~repro.analysis.profile.CommProfile` — goes through this one
module, so each of them accepts either format transparently:

* **Chrome-trace JSON** (``repro trace --format json``, the default
  export) — parsed *incrementally*: the ``traceEvents`` array is
  decoded one event at a time from a bounded read buffer, never
  ``json.loads``-ing the whole document, so peak memory on a
  multi-gigabyte trace is the events you keep, not the text you read.
* **RPRT** (``repro trace --format rprt``) — the binary container of
  :mod:`repro.analysis.rprt`, streamed block by block off the mmap.

Format detection is by magic bytes, never file extension.

:func:`convert` translates between the two losslessly: JSON -> RPRT ->
JSON is byte-identical for traces produced by this repository's
exporter, and RPRT -> JSON -> RPRT is bit-stable (the round-trip tests
pin both).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.rprt import (DEFAULT_BLOCK_CODEC, RprtError, RprtReader,
                                 _canonical_json, _trace_writer, is_rprt)

__all__ = ["trace_format", "iter_chrome_file_events", "iter_trace_records",
           "load_trace_records", "read_otherdata", "convert", "RecordSet"]

_CHUNK = 1 << 16


class RecordSet:
    """Minimal tracer shim: analysis passes that only read ``.records``
    (CritPathAnalyzer, TraceSanitizer) accept this in place of a live
    tracer."""

    def __init__(self, records):
        self.records = list(records)


def trace_format(path) -> str:
    """``"rprt"`` or ``"json"``, detected from the file's magic."""
    return "rprt" if is_rprt(path) else "json"


# -- streamed Chrome-trace JSON ---------------------------------------------

def iter_chrome_file_events(path) -> Iterator[dict]:
    """Yield the events of a Chrome-trace JSON file one at a time.

    The decoder keeps only a bounded window of text in memory: chunks
    are appended until one more event parses, then the consumed prefix
    is dropped.  The exporter writes ``traceEvents`` as the last
    top-level key (``sort_keys``), so the preamble scanned to find it is
    just ``displayTimeUnit`` + ``otherData``.
    """
    decoder = json.JSONDecoder()
    with open(path, "r", encoding="utf-8") as fh:
        buf = ""
        # Locate the start of the traceEvents array.
        start = -1
        while True:
            idx = buf.find('"traceEvents"')
            if idx >= 0:
                start = buf.find("[", idx)
                if start >= 0:
                    break
            chunk = fh.read(_CHUNK)
            if not chunk:
                raise ValueError(f"{path}: no traceEvents array found")
            # Keep enough tail to span a key split across chunks.
            if idx < 0 and len(buf) > 2 * _CHUNK:
                buf = buf[-len('"traceEvents"'):]
            buf += chunk
        buf = buf[start + 1:]
        while True:
            buf = buf.lstrip()
            while not buf:
                chunk = fh.read(_CHUNK)
                if not chunk:
                    raise ValueError(f"{path}: unterminated traceEvents array")
                buf = chunk.lstrip()
            if buf[0] == "]":
                return
            if buf[0] == ",":
                buf = buf[1:]
                continue
            try:
                event, end = decoder.raw_decode(buf)
            except json.JSONDecodeError:
                chunk = fh.read(_CHUNK)
                if not chunk:
                    raise ValueError(f"{path}: truncated event in "
                                     f"traceEvents") from None
                buf += chunk
                continue
            yield event
            buf = buf[end:]


def read_otherdata(path) -> dict:
    """The trace's ``otherData`` dict (metrics registry dump + elapsed),
    from either format, without loading the events."""
    if is_rprt(path):
        with RprtReader(path) as r:
            return r.otherdata()
    # The exporter emits otherData before traceEvents (sorted keys), so
    # scanning for its value stays within the small preamble.
    decoder = json.JSONDecoder()
    with open(path, "r", encoding="utf-8") as fh:
        buf = ""
        while True:
            idx = buf.find('"otherData"')
            if idx >= 0:
                start = buf.find("{", idx)
                if start >= 0:
                    while True:
                        try:
                            other, _ = decoder.raw_decode(buf[start:])
                            return other
                        except json.JSONDecodeError:
                            chunk = fh.read(_CHUNK)
                            if not chunk:
                                raise ValueError(
                                    f"{path}: truncated otherData") from None
                            buf += chunk
            chunk = fh.read(_CHUNK)
            if not chunk:
                return {}
            buf += chunk


class _ChromeEventParser:
    """Stateful M-event table + X-event -> TraceRecord conversion (the
    logic the sanitizer historically applied to a whole document)."""

    def __init__(self):
        self.process_names: dict[int, str] = {}
        self.thread_names: dict[tuple[int, int], str] = {}

    def feed(self, ev: dict):
        """Returns a TraceRecord for an X event, None otherwise."""
        from repro.sim.trace import TraceRecord

        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                self.process_names[ev["pid"]] = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                self.thread_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
            return None
        if ph != "X":
            return None
        pid = ev["pid"]
        pname = self.process_names.get(pid, "")
        tname = self.thread_names.get((pid, ev["tid"]), "main")
        if pname == "network":
            rank, track = None, f"link:{tname}"
        elif pname.startswith("rank "):
            rank, track = int(pname[5:]), tname
        else:  # "sim" (unattributed)
            rank, track = None, tname
        args = dict(ev.get("args", {}))
        span_id = int(args.pop("span_id", 0))
        parent_id = args.pop("parent_id", None)
        t0 = ev["ts"] / 1e6
        t1 = (ev["ts"] + ev["dur"]) / 1e6
        category = ev.get("cat", "")
        label = ev["name"] if ev["name"] != category else ""
        return TraceRecord(
            t_start=t0, t_end=t1, category=category, label=label,
            meta=args, rank=rank, track=track, span_id=span_id,
            parent_id=int(parent_id) if parent_id is not None else None)


def iter_trace_records(path) -> Iterator:
    """Stream :class:`~repro.sim.trace.TraceRecord` objects from an
    exported trace in either format.  This is the shared iterator every
    file-fed analysis consumes; both formats decode timestamps
    identically (stored microseconds / 1e6), so downstream findings do
    not depend on which container the trace came from."""
    if is_rprt(path):
        with RprtReader(path) as r:
            yield from r.spans()
        return
    parser = _ChromeEventParser()
    for ev in iter_chrome_file_events(path):
        rec = parser.feed(ev)
        if rec is not None:
            yield rec


def load_trace_records(path) -> RecordSet:
    """Materialize a trace file as a :class:`RecordSet` (records sorted
    the way live tracers are consumed)."""
    records = list(iter_trace_records(path))
    records.sort(key=lambda r: (r.t_start, r.t_end, r.span_id))
    return RecordSet(records)


# -- conversion --------------------------------------------------------------

def _json_to_rprt(src, dst, block_codec: str) -> dict:
    parser = _ChromeEventParser()

    def fill(builder) -> None:
        for ev in iter_chrome_file_events(src):
            rec = parser.feed(ev)
            if rec is None:
                continue
            # Timestamps go in as the file spells them (already in the
            # exporter's microsecond units) — no second rounding pass.
            builder.add(float(ev["ts"]), float(ev["dur"]), rec.span_id,
                        rec.parent_id, rec.rank, rec.category, rec.label,
                        rec.track, _canonical_json(rec.meta)
                        if rec.meta else "")

    # The converter preserves otherData verbatim (no re-stamping of
    # telemetry metrics) so JSON -> RPRT -> JSON round-trips exactly.
    other = read_otherdata(src)
    w, stats = _trace_writer(fill, other, block_codec=block_codec)
    stats.update(w.write(dst))
    return stats


def _rprt_to_json(src, dst) -> dict:
    from repro.analysis.export import write_chrome_json

    with RprtReader(src) as r:
        with open(dst, "w") as fh:
            n = write_chrome_json(fh, r.otherdata(), r.iter_chrome_events())
    return {"events": n}


def convert(src, dst, to: Optional[str] = None,
            block_codec: str = DEFAULT_BLOCK_CODEC) -> dict:
    """Convert a trace between Chrome JSON and RPRT.

    The target format is ``to`` ("json"/"rprt"), or inferred from the
    ``dst`` extension, defaulting to the opposite of the source format.
    Returns a stats dict describing the written file.
    """
    src, dst = Path(src), Path(dst)
    if not src.exists():
        raise RprtError(f"{src}: no such trace file")
    src_fmt = trace_format(src)
    if to is None:
        ext = dst.suffix.lower().lstrip(".")
        if ext in ("json", "rprt"):
            to = ext
        else:
            to = "json" if src_fmt == "rprt" else "rprt"
    if to == src_fmt:
        raise RprtError(f"conversion target {to!r} equals the source "
                        f"format of {src}")
    if to == "rprt":
        return dict(_json_to_rprt(src, dst, block_codec), format="rprt")
    return dict(_rprt_to_json(src, dst), format="json")
