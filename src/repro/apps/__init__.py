"""Application-level workloads from the paper's Section VII.

* :mod:`repro.apps.awp` — an AWP-ODC-like 3-D wave-propagation
  mini-app: leapfrog finite differences with per-step halo exchange
  over the simulated MPI, weak-scaling harness, and the paper's "GPU
  computing flops" metric.
* :mod:`repro.apps.dasklite` — a Dask-like chunked distributed array
  whose workers exchange chunks over the simulated MPI; implements the
  paper's ``y = x + x.T`` benchmark.
"""

__all__ = ["awp", "dasklite"]
