"""AWP-ODC-like anelastic wave propagation mini-app.

The paper evaluates its framework on AWP-ODC-OS (Cui et al., SC'10), a
GPU finite-difference code for seismic wave propagation whose per-step
halo exchanges (2M-16M messages, Figure 2a) dominate communication.

This mini-app reproduces that communication/computation structure:

* a 3-D scalar-wave leapfrog stencil (4th-order Laplacian) on a
  2-D-decomposed grid — the *real* numpy field supplies the halo
  payloads, so compression ratios behave like real wave fields (smooth
  mid-simulation; highly duplicated at initialization, matching the
  paper's observed MPC ratios of 3..31);
* halo exchange with the four lateral neighbours each step via
  ``isend``/``irecv`` (CUDA-aware style: device buffers passed
  directly);
* a GPU stencil cost model charging the compute time a V100/RTX-class
  part would take, so "GPU computing flops" is meaningful;
* a weak-scaling harness (:func:`repro.apps.awp.runner.weak_scaling`)
  reproducing Figures 2b, 12 and 13.
"""

from repro.apps.awp.grid import ProcessGrid
from repro.apps.awp.solver import WaveSolver, stencil_flops_per_point
from repro.apps.awp.runner import AwpResult, run_awp, weak_scaling

__all__ = [
    "ProcessGrid",
    "WaveSolver",
    "stencil_flops_per_point",
    "AwpResult",
    "run_awp",
    "weak_scaling",
]
