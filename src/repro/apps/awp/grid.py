"""2-D process grid and domain decomposition for the AWP mini-app.

AWP-ODC decomposes its mesh over a 2-D process grid in X-Y (the Z
dimension stays local), so each rank has at most four lateral
neighbours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A px x py process grid with row-major rank placement."""

    px: int
    py: int

    def __post_init__(self):
        if self.px < 1 or self.py < 1:
            raise ConfigError(f"invalid process grid {self.px}x{self.py}")

    @classmethod
    def for_size(cls, nprocs: int) -> "ProcessGrid":
        """Most-square factorization of ``nprocs`` (MPI_Dims_create)."""
        if nprocs < 1:
            raise ConfigError(f"nprocs must be >= 1, got {nprocs}")
        px = int(math.isqrt(nprocs))
        while nprocs % px:
            px -= 1
        return cls(px, nprocs // px)

    @property
    def size(self) -> int:
        return self.px * self.py

    def coords(self, rank: int) -> tuple[int, int]:
        if not (0 <= rank < self.size):
            raise ConfigError(f"rank {rank} out of grid of size {self.size}")
        return rank % self.px, rank // self.px

    def rank_of(self, ix: int, iy: int) -> int:
        return iy * self.px + ix

    def neighbors(self, rank: int) -> dict[str, Optional[int]]:
        """Lateral neighbours: keys ``-x``, ``+x``, ``-y``, ``+y``;
        ``None`` at the domain boundary (no wraparound — AWP's domain
        is not periodic)."""
        ix, iy = self.coords(rank)
        return {
            "-x": self.rank_of(ix - 1, iy) if ix > 0 else None,
            "+x": self.rank_of(ix + 1, iy) if ix < self.px - 1 else None,
            "-y": self.rank_of(ix, iy - 1) if iy > 0 else None,
            "+y": self.rank_of(ix, iy + 1) if iy < self.py - 1 else None,
        }
