"""AWP weak-scaling harness (Figures 2b, 12 and 13).

Each simulated step: exchange the four lateral halos (nonblocking,
device buffers straight into MPI as the paper's modified AWP-ODC
does), inject the source, then run the stencil — real numpy for the
field values plus a memory-bandwidth-bound GPU kernel charge for the
time.

The paper's metric "GPU computing flops" is the aggregate achieved
rate: ``n_ranks * flops_per_step * steps / elapsed``; compression
shrinks the communication share of ``elapsed`` and the metric rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.awp.grid import ProcessGrid
from repro.apps.awp.solver import BYTES_PER_POINT, WaveSolver
from repro.core.config import CompressionConfig
from repro.errors import ConfigError
from repro.mpi.cluster import Cluster
from repro.mpi.request import waitall
from repro.network.presets import machine_preset

__all__ = ["AwpResult", "run_awp", "weak_scaling"]

_DIR_TAGS = {"-x": 11, "+x": 12, "-y": 13, "+y": 14}
_OPPOSITE = {"-x": "+x", "+x": "-x", "-y": "+y", "+y": "-y"}


@dataclass
class AwpResult:
    """Aggregated outcome of one AWP run."""

    n_ranks: int
    steps: int
    elapsed: float                 # simulated seconds
    time_per_step: float
    comm_time_per_step: float      # mean across ranks
    compute_time_per_step: float
    gflops: float                  # aggregate achieved GFLOP/s
    energy: float                  # solution diagnostic (accuracy checks)
    config_label: str

    @property
    def comm_fraction(self) -> float:
        return self.comm_time_per_step / self.time_per_step if self.time_per_step else 0.0


def _awp_rank(comm, grid: ProcessGrid, local_shape, steps: int, seed_fields: bool,
              surrogate: bool = False):
    if surrogate:
        from repro.apps.awp.surrogate import SurrogateSolver

        solver = SurrogateSolver(local_shape, comm.rank, grid)
        seed_fields = False
    else:
        solver = WaveSolver(local_shape, comm.rank, grid)
    if seed_fields:
        # Mid-simulation-like smooth field instead of the cold start,
        # so halo payloads are immediately wave-like.
        rng = np.random.default_rng(1234 + comm.rank)
        k = rng.uniform(0.05, 0.15, size=3)
        nx, ny, nz = solver.u.shape
        gx, gy = grid.coords(comm.rank)
        x = np.arange(nx)[:, None, None] + gx * local_shape[0]
        y = np.arange(ny)[None, :, None] + gy * local_shape[1]
        z = np.arange(nz)[None, None, :]
        wave = 0.1 * np.sin(k[0] * x + k[1] * y + k[2] * z)
        solver.u += wave.astype(solver.dtype)
        solver.u_prev += wave.astype(solver.dtype)
    nbrs = {d: nb for d, nb in grid.neighbors(comm.rank).items() if nb is not None}
    dev = comm.device()
    spec = dev.spec
    compute_duration = solver.interior_points * BYTES_PER_POINT / spec.mem_bandwidth

    yield from comm.barrier()
    t_start = comm.now
    comm_time = 0.0
    for _ in range(steps):
        t0 = comm.now
        sends = []
        recvs = {}
        for d, nb in nbrs.items():
            sends.append(comm.isend(solver.face_to_send(d), nb, tag=_DIR_TAGS[d]))
            recvs[d] = comm.irecv(nb, tag=_DIR_TAGS[_OPPOSITE[d]])
        for d, req in recvs.items():
            payload = yield from req.wait()
            solver.apply_received(d, payload)
        yield from waitall(sends)
        solver.apply_physical_boundaries(nbrs)
        comm_time += comm.now - t0

        solver.inject_source()
        yield from dev.run_kernel(
            compute_duration, spec.sm_count, "app_compute", "awp_stencil"
        )
        solver.step_compute()
    elapsed = comm.now - t_start
    return {
        "elapsed": elapsed,
        "comm_time": comm_time,
        "flops": solver.flops_per_step * steps,
        "energy": solver.energy(),
    }


def run_awp(
    machine: str = "frontera-liquid",
    gpus: int = 4,
    gpus_per_node: int = 4,
    local_shape: tuple[int, int, int] = (32, 32, 128),
    steps: int = 4,
    config: Optional[CompressionConfig] = None,
    seed_fields: bool = True,
    surrogate: bool = False,
    trace: bool = True,
) -> AwpResult:
    """Run the mini-app once and aggregate the paper's metrics.

    Weak scaling: ``local_shape`` is per-GPU, so the global mesh grows
    with ``gpus``.  ``surrogate=True`` swaps the full-field solver for
    the faces-only :class:`~repro.apps.awp.surrogate.SurrogateSolver`
    (needed for the 128+ GPU sweeps); ``trace=False`` skips span
    recording so 1k+ rank weak-scaling points stay affordable.
    """
    if gpus % gpus_per_node:
        raise ConfigError(f"{gpus} GPUs not divisible by {gpus_per_node}/node")
    config = config or CompressionConfig.disabled()
    preset = machine_preset(machine)
    cluster = Cluster(preset, nodes=gpus // gpus_per_node, gpus_per_node=gpus_per_node)
    grid = ProcessGrid.for_size(gpus)
    res = cluster.run(
        _awp_rank, config=config,
        args=(grid, local_shape, steps, seed_fields, surrogate),
        trace=trace,
    )
    elapsed = max(v["elapsed"] for v in res.values)
    total_flops = sum(v["flops"] for v in res.values)
    mean_comm = sum(v["comm_time"] for v in res.values) / gpus
    tps = elapsed / steps
    return AwpResult(
        n_ranks=gpus,
        steps=steps,
        elapsed=elapsed,
        time_per_step=tps,
        comm_time_per_step=mean_comm / steps,
        compute_time_per_step=tps - mean_comm / steps,
        gflops=total_flops / elapsed / 1e9 if elapsed else 0.0,
        energy=float(np.mean([v["energy"] for v in res.values])),
        config_label=config.label,
    )


def weak_scaling(
    machine: str,
    gpu_counts,
    gpus_per_node: int,
    configs,
    local_shape: tuple[int, int, int] = (32, 32, 128),
    steps: int = 4,
    surrogate: bool = False,
) -> list[AwpResult]:
    """Sweep GPU counts x configs (Figures 12/13); returns flat results
    ordered by (gpus, config)."""
    out = []
    for gpus in gpu_counts:
        for cfg in configs:
            out.append(
                run_awp(machine, gpus, gpus_per_node, local_shape, steps, cfg,
                        surrogate=surrogate)
            )
    return out
