"""Local wave-propagation solver (the per-GPU computation).

A 4th-order-in-space, 2nd-order-in-time leapfrog discretization of the
scalar wave equation — the same stencil+halo structure as AWP-ODC's
velocity-stress kernels, small enough to run in real numpy on every
simulated rank so the halo payloads fed to the compression framework
are genuine wave-field data.

The field carries a 2-cell halo on every axis; X/Y halos are exchanged
with neighbours, Z halos are local (zero-Dirichlet), matching AWP's
2-D decomposition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.awp.grid import ProcessGrid
from repro.errors import ConfigError

__all__ = ["WaveSolver", "stencil_flops_per_point", "HALO"]

#: halo width required by the 4th-order Laplacian
HALO = 2

#: floating-point operations per updated grid point (3 axes x 5-point
#: weighted sums + leapfrog combine)
_FLOPS_PER_POINT = 33.0

#: DRAM traffic per point per step for the GPU cost model.  AWP-ODC
#: updates ~9 coupled fields (3 velocities + 6 stresses, plus
#: attenuation memory variables) across several kernels; ~180 bytes of
#: traffic per mesh point per time step reproduces its published
#: compute/communication balance (paper Fig 2b).  Our mini-app's
#: single-field numpy stencil supplies the *data*; this constant
#: supplies the *time* of the full production kernel pipeline.
BYTES_PER_POINT = 180.0


def stencil_flops_per_point() -> float:
    """Flops one leapfrog update spends per interior grid point."""
    return _FLOPS_PER_POINT


def _lap4(u: np.ndarray) -> np.ndarray:
    """4th-order Laplacian of the interior of a halo-padded field."""
    c = u[2:-2, 2:-2, 2:-2]
    out = -7.5 * c  # 3 axes x (-2.5)
    for ax in range(3):
        s_m2 = tuple(slice(0, -4) if a == ax else slice(2, -2) for a in range(3))
        s_m1 = tuple(slice(1, -3) if a == ax else slice(2, -2) for a in range(3))
        s_p1 = tuple(slice(3, -1) if a == ax else slice(2, -2) for a in range(3))
        s_p2 = tuple(slice(4, None) if a == ax else slice(2, -2) for a in range(3))
        out = out + (4.0 / 3.0) * (u[s_m1] + u[s_p1])
        out = out - (1.0 / 12.0) * (u[s_m2] + u[s_p2])
    return out


class WaveSolver:
    """Per-rank leapfrog integrator with exchangeable X/Y halos."""

    def __init__(
        self,
        local_shape: tuple[int, int, int],
        rank: int,
        grid: ProcessGrid,
        dt: float = 0.35,
        c: float = 1.0,
        dtype=np.float32,
        source_amplitude: float = 1.0,
    ):
        nx, ny, nz = local_shape
        if min(nx, ny, nz) < HALO * 2:
            raise ConfigError(f"local shape {local_shape} too small for halo {HALO}")
        if dt * c > 0.5:  # comfortably under the 3-D CFL bound
            raise ConfigError(f"unstable dt*c = {dt * c}")
        self.local_shape = (nx, ny, nz)
        self.rank = rank
        self.grid = grid
        self.dt = dt
        self.c = c
        self.dtype = np.dtype(dtype)
        self.source_amplitude = source_amplitude
        padded = (nx + 2 * HALO, ny + 2 * HALO, nz + 2 * HALO)
        self.u = np.zeros(padded, dtype=self.dtype)
        self.u_prev = np.zeros(padded, dtype=self.dtype)
        self.time_step = 0
        # The moment source sits at the global domain centre; only the
        # owning rank injects it.
        cx, cy = grid.coords(rank)
        self._has_source = (cx == grid.px // 2) and (cy == grid.py // 2)

    # -- geometry -------------------------------------------------------------
    @property
    def interior_points(self) -> int:
        nx, ny, nz = self.local_shape
        return nx * ny * nz

    @property
    def flops_per_step(self) -> float:
        return self.interior_points * _FLOPS_PER_POINT

    def face_nbytes(self, direction: str) -> int:
        nx, ny, nz = self.local_shape
        if direction in ("-x", "+x"):
            return HALO * ny * nz * self.dtype.itemsize
        return HALO * nx * nz * self.dtype.itemsize

    # -- halo exchange payloads --------------------------------------------------
    def face_to_send(self, direction: str) -> np.ndarray:
        """Boundary strip (owned cells) to ship toward ``direction``,
        flattened and contiguous (a CUDA-aware MPI device buffer)."""
        h = HALO
        if direction == "-x":
            block = self.u[h:2 * h, h:-h, h:-h]
        elif direction == "+x":
            block = self.u[-2 * h:-h, h:-h, h:-h]
        elif direction == "-y":
            block = self.u[h:-h, h:2 * h, h:-h]
        elif direction == "+y":
            block = self.u[h:-h, -2 * h:-h, h:-h]
        else:
            raise ConfigError(f"bad direction {direction!r}")
        return np.ascontiguousarray(block).reshape(-1)

    def apply_received(self, direction: str, payload: np.ndarray) -> None:
        """Install a neighbour's strip into our halo on side
        ``direction``."""
        if direction not in ("-x", "+x", "-y", "+y"):
            raise ConfigError(f"bad direction {direction!r}")
        h = HALO
        nx, ny, nz = self.local_shape
        if direction in ("-x", "+x"):
            shape = (h, ny, nz)
        else:
            shape = (nx, h, nz)
        block = np.asarray(payload, dtype=self.dtype).reshape(shape)
        if direction == "-x":
            self.u[0:h, h:-h, h:-h] = block
        elif direction == "+x":
            self.u[-h:, h:-h, h:-h] = block
        elif direction == "-y":
            self.u[h:-h, 0:h, h:-h] = block
        elif direction == "+y":
            self.u[h:-h, -h:, h:-h] = block
        else:
            raise ConfigError(f"bad direction {direction!r}")

    def apply_physical_boundaries(self, neighbors: dict) -> None:
        """Zero-Dirichlet on domain edges (sides with no neighbour) and
        always on Z."""
        h = HALO
        if neighbors.get("-x") is None:
            self.u[0:h] = 0.0
        if neighbors.get("+x") is None:
            self.u[-h:] = 0.0
        if neighbors.get("-y") is None:
            self.u[:, 0:h] = 0.0
        if neighbors.get("+y") is None:
            self.u[:, -h:] = 0.0
        self.u[:, :, 0:h] = 0.0
        self.u[:, :, -h:] = 0.0

    # -- dynamics -------------------------------------------------------------
    def inject_source(self) -> None:
        """Ricker-style pulse at the global centre for the first steps."""
        if not self._has_source or self.time_step > 20:
            return
        t = self.time_step * self.dt
        t0, f0 = 3.0, 0.45
        arg = (np.pi * f0 * (t - t0)) ** 2
        amp = self.source_amplitude * (1 - 2 * arg) * np.exp(-arg)
        nx, ny, nz = self.local_shape
        self.u[HALO + nx // 2, HALO + ny // 2, HALO + nz // 2] += self.dtype.type(amp)

    def step_compute(self) -> None:
        """One leapfrog update of the interior (real numpy)."""
        lap = _lap4(self.u)
        coeff = self.dtype.type((self.c * self.dt) ** 2)
        interior = (slice(HALO, -HALO),) * 3
        u_new = 2.0 * self.u[interior] - self.u_prev[interior] + coeff * lap
        self.u_prev, self.u = self.u, self.u_prev
        self.u[interior] = u_new.astype(self.dtype, copy=False)
        self.time_step += 1

    # -- diagnostics ------------------------------------------------------------
    def energy(self) -> float:
        """Sum of squares of the interior — a cheap conserved-ish
        diagnostic for accuracy comparisons."""
        interior = (slice(HALO, -HALO),) * 3
        return float(np.sum(self.u[interior].astype(np.float64) ** 2))

    def interior(self) -> np.ndarray:
        return self.u[(slice(HALO, -HALO),) * 3]
