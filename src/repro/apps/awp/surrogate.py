"""Memory-light surrogate for large-scale AWP runs.

The real :class:`~repro.apps.awp.solver.WaveSolver` keeps a full 3-D
field per rank — fine up to ~64 ranks, but the paper's Figure 13 runs
512 GPUs, which would need gigabytes of host RAM just to hold the
fields.  For those scales the :class:`SurrogateSolver` keeps *only the
halo faces*, synthesizing them each step as smoothly-evolving wave-like
data whose MPC compressibility matches what the real solver's faces
exhibit (ratio ~1.5-3 mid-simulation; near-constant at startup, where
the paper observed MPC ratios up to 31).

The communication pattern, message sizes, tags and the GPU compute
charge are identical to the real solver; only the field state (which
the network never sees beyond its faces) is elided.  DESIGN.md records
this as a documented substitution.
"""

from __future__ import annotations

import numpy as np

from repro.apps.awp.grid import ProcessGrid
from repro.apps.awp.solver import HALO, _FLOPS_PER_POINT
from repro.datasets.synthetic import bitwalk

__all__ = ["SurrogateSolver"]


class SurrogateSolver:
    """Duck-type of :class:`WaveSolver` holding faces only."""

    def __init__(self, local_shape, rank: int, grid: ProcessGrid, dtype=np.float32,
                 step_bits: int = 8):
        self.local_shape = tuple(local_shape)
        self.rank = rank
        self.grid = grid
        self.dtype = np.dtype(dtype)
        self.time_step = 0
        self._rng = np.random.default_rng(97 + rank)
        self._step_bits = step_bits
        self._faces: dict[str, np.ndarray] = {}

    @property
    def interior_points(self) -> int:
        nx, ny, nz = self.local_shape
        return nx * ny * nz

    @property
    def flops_per_step(self) -> float:
        return self.interior_points * _FLOPS_PER_POINT

    def _face_elems(self, direction: str) -> int:
        nx, ny, nz = self.local_shape
        return HALO * (ny if direction in ("-x", "+x") else nx) * nz

    def face_nbytes(self, direction: str) -> int:
        return self._face_elems(direction) * self.dtype.itemsize

    def face_to_send(self, direction: str) -> np.ndarray:
        """A smooth wave-like strip; perturbed in place each step so
        consecutive steps stay correlated like a real field."""
        n = self._face_elems(direction)
        face = self._faces.get(direction)
        if face is None or face.size != n:
            face = bitwalk(n, self._step_bits, self._rng)
        else:
            jitter = bitwalk(n, max(1, self._step_bits - 4), self._rng) - np.float32(1.0)
            face = (face + 0.05 * jitter).astype(self.dtype)
        self._faces[direction] = face
        return face

    # The surrogate has no field to update; these are no-op protocol
    # compatibility points so the runner code is identical.
    def apply_received(self, direction: str, payload: np.ndarray) -> None:
        pass

    def apply_physical_boundaries(self, neighbors: dict) -> None:
        pass

    def inject_source(self) -> None:
        pass

    def step_compute(self) -> None:
        self.time_step += 1

    def energy(self) -> float:
        return 0.0
