"""Dask-like distributed chunked arrays over the simulated MPI.

The paper's Section VII-B runs Dask with the MPI4Dask backend over
MVAPICH2-GDR and benchmarks ``y = x + x.T; y.persist(); wait(y)`` on a
cuPy array (10K x 10K, 1K chunks) spread across GPU workers.  Dask's
value in that experiment is purely as a *chunk-shipping* layer — the
gains come from compressing the large (8MB-1GB) worker-to-worker
transfers — so this package implements exactly that layer:

* :class:`~repro.apps.dasklite.array.DistArray` — a 2-D block-chunked
  array with round-robin chunk placement across workers;
* :mod:`~repro.apps.dasklite.ops` — distributed operations
  (``transpose_sum`` — the paper's workload — plus elementwise add and
  rechunk-free transpose) that exchange chunks via nonblocking MPI;
* :func:`~repro.apps.dasklite.workload.transpose_sum_benchmark` — the
  Figure 14 harness reporting execution time and aggregate throughput.
"""

from repro.apps.dasklite.array import ChunkGrid, DistArray
from repro.apps.dasklite.workload import DaskResult, transpose_sum_benchmark

__all__ = ["ChunkGrid", "DistArray", "DaskResult", "transpose_sum_benchmark"]
