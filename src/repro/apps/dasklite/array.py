"""Block-chunked distributed arrays.

A :class:`DistArray` partitions a 2-D array into square-ish chunks laid
out on a :class:`ChunkGrid`; each chunk lives on exactly one worker
(round-robin over the flattened chunk index, Dask's default-ish
placement for a freshly created array).  Every worker holds its own
chunks in a local dict — there is no global array anywhere, matching
Dask's execution model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["ChunkGrid", "DistArray"]


@dataclass(frozen=True)
class ChunkGrid:
    """Chunking geometry for a (rows x cols) array with square chunks."""

    rows: int
    cols: int
    chunk: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1 or self.chunk < 1:
            raise ConfigError(f"bad chunk grid: {self}")

    @property
    def n_chunk_rows(self) -> int:
        return -(-self.rows // self.chunk)

    @property
    def n_chunk_cols(self) -> int:
        return -(-self.cols // self.chunk)

    @property
    def n_chunks(self) -> int:
        return self.n_chunk_rows * self.n_chunk_cols

    def chunk_shape(self, i: int, j: int) -> tuple[int, int]:
        r = min(self.chunk, self.rows - i * self.chunk)
        c = min(self.chunk, self.cols - j * self.chunk)
        if r <= 0 or c <= 0:
            raise ConfigError(f"chunk ({i},{j}) outside grid")
        return r, c

    def flat_index(self, i: int, j: int) -> int:
        return i * self.n_chunk_cols + j

    def owner_of(self, i: int, j: int, n_workers: int) -> int:
        """Round-robin placement over the flattened chunk index."""
        return self.flat_index(i, j) % n_workers

    def chunks_of(self, worker: int, n_workers: int):
        """All (i, j) chunk coordinates owned by ``worker``."""
        for i in range(self.n_chunk_rows):
            for j in range(self.n_chunk_cols):
                if self.owner_of(i, j, n_workers) == worker:
                    yield i, j


class DistArray:
    """One worker's view of a distributed 2-D array."""

    def __init__(self, grid: ChunkGrid, worker: int, n_workers: int,
                 dtype=np.float32):
        self.grid = grid
        self.worker = worker
        self.n_workers = n_workers
        self.dtype = np.dtype(dtype)
        self.chunks: dict[tuple[int, int], np.ndarray] = {}

    @classmethod
    def create_random(cls, grid: ChunkGrid, worker: int, n_workers: int,
                      seed: int = 0, dtype=np.float32) -> "DistArray":
        """Materialize this worker's chunks of a deterministic
        pseudo-random array (cuPy-style ``random`` content, but smooth
        enough along rows to be realistically compressible)."""
        arr = cls(grid, worker, n_workers, dtype)
        for i, j in grid.chunks_of(worker, n_workers):
            rng = np.random.default_rng(seed * 1_000_003 + grid.flat_index(i, j))
            shape = grid.chunk_shape(i, j)
            base = rng.standard_normal(shape[0]).astype(arr.dtype)
            ramp = np.cumsum(rng.standard_normal(shape).astype(arr.dtype) * 0.01, axis=1)
            arr.chunks[(i, j)] = (base[:, None] + ramp).astype(arr.dtype)
        return arr

    def owned(self) -> list[tuple[int, int]]:
        return sorted(self.chunks)

    def nbytes_local(self) -> int:
        return sum(c.nbytes for c in self.chunks.values())

    def owner_of(self, i: int, j: int) -> int:
        return self.grid.owner_of(i, j, self.n_workers)

    def checksum(self) -> float:
        """Deterministic aggregate over local chunks (test support)."""
        return float(sum(np.sum(c.astype(np.float64)) for c in self.chunks.values()))
