"""Distributed operations on :class:`~repro.apps.dasklite.array.DistArray`.

``transpose_sum`` is the paper's workload: ``y = x + x.T``.  Output
chunk (i, j) needs input chunks (i, j) and (j, i); when (j, i) lives on
another worker the chunk crosses the (simulated) network — those are
the 8MB-1GB messages the paper's Dask section compresses.

All transfers use nonblocking isend/irecv posted up front, so the
exchange is deadlock-free and maximally overlapped, like Dask's
concurrent comms.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dasklite.array import DistArray
from repro.mpi.request import waitall

__all__ = ["transpose_sum", "elementwise_add"]

_TAG_BASE = 7_000_000


def _chunk_tag(grid, i: int, j: int) -> int:
    return _TAG_BASE + grid.flat_index(i, j)


def transpose_sum(comm, x: DistArray) -> DistArray:
    """Compute ``y = x + x.T`` (generator subroutine).

    Every worker sends each owned chunk (j, i) whose transpose
    destination (i, j) is remote, receives the mirror chunks it needs,
    and adds.  Returns the distributed result ``y`` with the same
    placement as ``x``.
    """
    grid = x.grid
    y = DistArray(grid, x.worker, x.n_workers, x.dtype)

    sends = []
    recvs = {}
    for (i, j) in x.owned():
        # The owner of output (j, i) needs our chunk (i, j).
        dest = x.owner_of(j, i)
        if dest != x.worker:
            sends.append(comm.isend(x.chunks[(i, j)], dest, _chunk_tag(grid, i, j)))
        # We produce output (i, j) and need input (j, i).
        src = x.owner_of(j, i)
        if src != x.worker and (i, j) not in recvs:
            recvs[(i, j)] = comm.irecv(src, _chunk_tag(grid, j, i))

    for (i, j) in x.owned():
        if (i, j) in recvs:
            payload = yield from recvs[(i, j)].wait()
            # MPI delivers a flat device buffer; restore the chunk's
            # shape (the receiver knows the geometry, as in real Dask).
            mirror = np.asarray(payload).reshape(grid.chunk_shape(j, i))
        else:
            mirror = x.chunks[(j, i)]
        y.chunks[(i, j)] = x.chunks[(i, j)] + mirror.T
    yield from waitall(sends)
    return y


def elementwise_add(comm, a: DistArray, b: DistArray) -> DistArray:
    """``a + b`` for identically-chunked, identically-placed arrays —
    no communication, provided for workload composition."""
    out = DistArray(a.grid, a.worker, a.n_workers, a.dtype)
    for key in a.owned():
        out.chunks[key] = a.chunks[key] + b.chunks[key]
    return out
    yield  # pragma: no cover - keeps the generator-subroutine contract
