"""The Figure 14 benchmark: sum of a cuPy array and its transpose.

Paper setup: cuPy dims 10K x 10K, chunk size 1K, 1 GPU (worker) per
RI2 node; "the benchmark then adds these distributed chunks to their
transpose, forcing the GPU data to move over the network":

    y = x + x.T; y = y.persist(); wait(y)

Metrics:

* **execution time** — wall (simulated) time of the persist/wait;
* **aggregate throughput** — total bytes of array data the workers
  collectively processed (both operands of every chunk add) divided by
  execution time, the Dask-dashboard-style number Figure 14b reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.dasklite.array import ChunkGrid, DistArray
from repro.apps.dasklite.ops import transpose_sum
from repro.core.config import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset

__all__ = ["DaskResult", "transpose_sum_benchmark"]


@dataclass
class DaskResult:
    """Outcome of one transpose-sum run."""

    n_workers: int
    dims: int
    chunk: int
    execution_time: float          # simulated seconds
    aggregate_throughput: float    # bytes/s processed by all workers
    bytes_on_wire: int             # array bytes that crossed the network
    checksum: float                # correctness diagnostic
    config_label: str


def _worker(comm, grid: ChunkGrid, seed: int):
    x = DistArray.create_random(grid, comm.rank, comm.size, seed=seed)
    yield from comm.barrier()
    t0 = comm.now
    y = yield from transpose_sum(comm, x)
    yield from comm.barrier()
    elapsed = comm.now - t0
    processed = 2 * x.nbytes_local() + y.nbytes_local()
    remote = sum(
        x.grid.chunk_shape(i, j)[0] * x.grid.chunk_shape(i, j)[1] * x.dtype.itemsize
        for (i, j) in x.owned()
        if x.owner_of(j, i) != x.worker
    )
    return {
        "elapsed": elapsed,
        "processed": processed,
        "wire": remote,
        "checksum": y.checksum(),
    }


def transpose_sum_benchmark(
    n_workers: int = 4,
    dims: int = 4096,
    chunk: int = 512,
    machine: str = "ri2",
    config: Optional[CompressionConfig] = None,
    seed: int = 0,
) -> DaskResult:
    """Run ``y = x + x.T`` on ``n_workers`` single-GPU nodes.

    Defaults are a scaled-down version of the paper's 10K x 10K / 1K
    configuration (same chunk-to-array proportions; scale up via
    ``dims``/``chunk`` to match exactly).
    """
    config = config or CompressionConfig.disabled()
    preset = machine_preset(machine)
    cluster = Cluster(preset, nodes=n_workers, gpus_per_node=1)
    grid = ChunkGrid(dims, dims, chunk)
    res = cluster.run(_worker, config=config, args=(grid, seed))
    elapsed = max(v["elapsed"] for v in res.values)
    processed = sum(v["processed"] for v in res.values)
    wire = sum(v["wire"] for v in res.values)
    return DaskResult(
        n_workers=n_workers,
        dims=dims,
        chunk=chunk,
        execution_time=elapsed,
        aggregate_throughput=processed / elapsed if elapsed else 0.0,
        bytes_on_wire=wire,
        checksum=float(sum(v["checksum"] for v in res.values)),
        config_label=config.label,
    )
