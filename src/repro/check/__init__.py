"""Static and dynamic analysis passes guarding the reproduction.

Four pass families, unified under ``python -m repro check``:

:mod:`repro.check.lint`
    Determinism linter — an AST walker that flags nondeterminism
    hazards (wall-clock reads, unseeded global RNG, builtin ``hash()``,
    ``id()`` in keys/ordering, environment reads outside config entry
    points, unordered set iteration) with ``RPRnnn`` rule codes and
    ``# repro: allow-RPRnnn`` suppression pragmas.

:mod:`repro.check.sanitize`
    Trace sanitizer / race detector — verifies that a trace (live
    :class:`~repro.sim.trace.Tracer` or exported Chrome-trace JSON)
    respects the simulator's own rules: serial-lane mutual exclusion,
    parent-span containment, per-message rendezvous causality, and
    exact critical-path segment tiling.

:mod:`repro.check.asan`
    Simulated-memory sanitizer — shadow-state tracking of
    :class:`~repro.gpu.buffer.DeviceBuffer` / pool lifecycles that
    turns double-release, use-after-free and end-of-run leaks into
    distinct, loud errors — plus an optional per-access log feeding the
    happens-before race detector.

:mod:`repro.check.hb`
    Happens-before engine — vector clocks over the trace's
    send/recv, rendezvous, collective-barrier, lane and fail-stop
    edges, with buffer-race, message-race, deadlock-cycle and
    WireImage-typestate detectors on top (``repro check --hb``).
"""

from repro.check.asan import BufferSanitizer, asan_default, asan_scope
from repro.check.cli import run_check
from repro.check.hb import HappensBefore, HBChecker
from repro.check.lint import Violation, lint_paths, lint_source
from repro.check.sanitize import TraceSanitizer, TraceViolation

__all__ = [
    "BufferSanitizer", "asan_default", "asan_scope",
    "Violation", "lint_paths", "lint_source",
    "TraceSanitizer", "TraceViolation",
    "HappensBefore", "HBChecker",
    "run_check",
]
