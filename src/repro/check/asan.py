"""Simulated-memory sanitizer: shadow-state buffer lifecycle tracking.

The GPU substrate hands out :class:`~repro.gpu.buffer.DeviceBuffer`
objects from two sources — ``cudaMalloc`` (:meth:`Device.malloc` /
``alloc_untimed``) and the pre-allocated pools of
:class:`~repro.gpu.pool.BufferPool`.  The protocol layer checks buffers
out per message and must hand every one back exactly once.  Getting
that wrong is silent today in two of three cases:

* releasing a pooled buffer twice corrupts the free list (the same
  buffer is handed to two concurrent messages later);
* reading a buffer after returning it to the pool observes whatever
  the *next* owner wrote (the classic use-after-free);
* forgetting a release leaks the buffer until the run ends.

When enabled, a :class:`BufferSanitizer` rides on the simulator
(``sim.asan``) and every lifecycle site (malloc/free, pool make/
acquire/release, buffer read/write) reports to it.  Each buffer gets a
shadow record with a state machine::

    live  --pool_release-->  pool_free  --pool_acquire-->  live
    live  --free-->          freed

Violations raise distinct exceptions (:class:`~repro.errors.
DoubleReleaseError`, :class:`~repro.errors.UseAfterFreeError`,
:class:`~repro.errors.BufferLeakError`) at the offending call so the
failing simulation process and sim-time are in the traceback.

The sanitizer is pure bookkeeping: it consumes no simulated time and
touches neither the tracer nor the metrics registry, so an enabled run
is bit-identical (traces, snapshots) to a disabled one — the
determinism tests rely on exactly that.

Enabling it:

* ``Cluster.run(..., asan=True)`` for one run (asserted clean at
  successful completion);
* :func:`asan_scope` to flip the process default for a block — the
  chaos harness and the benchmark collector use this;
* ``python -m repro check --asan`` for the CLI smoke.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import BufferLeakError, DoubleReleaseError, UseAfterFreeError

__all__ = ["AccessRecord", "BufferSanitizer", "ShadowState", "asan_default",
           "asan_scope"]


class ShadowState:
    """Buffer lifecycle states tracked by the sanitizer."""

    LIVE = "live"            #: checked out (malloc'd or acquired from a pool)
    POOL_FREE = "pool_free"  #: sitting in a pool's free list
    FREED = "freed"          #: cudaFree'd — terminal


@dataclass
class _Shadow:
    """Shadow record for one :class:`DeviceBuffer`."""

    shadow_id: int
    device_id: int
    capacity: int
    label: str
    state: str
    pooled: bool
    #: sim-time of the last state transition (diagnostics only)
    t_last: float = 0.0

    def describe(self) -> str:
        return (f"buffer #{self.shadow_id} (device {self.device_id}, "
                f"{self.capacity}B, label {self.label!r}, state {self.state}, "
                f"last transition t={self.t_last:.9f})")


@dataclass(frozen=True)
class AccessRecord:
    """One content access observed by the sanitizer, in happens-before
    vocabulary: who (rank/process), what (buffer checkout + byte range),
    how (read or write), and where in the span tree it happened."""

    t: float
    rank: int        #: device_id of the accessed buffer
    shadow_id: int   #: sanitizer shadow record of the buffer
    epoch: int       #: checkout generation — bumped per pool acquire
    lo: int          #: byte range start (whole-buffer granularity today)
    hi: int          #: byte range end (exclusive)
    kind: str        #: ``read`` or ``write``
    span_id: Optional[int]  #: innermost open tracer span, if any
    proc: int        #: ordinal of the accessing sim process (program order)

    def describe(self) -> str:
        return (f"{self.kind} of buffer #{self.shadow_id} epoch "
                f"{self.epoch} bytes [{self.lo}, {self.hi}) on rank "
                f"{self.rank} by process p{self.proc} at t={self.t:.9f}")


class BufferSanitizer:
    """Shadow-state tracker for every device buffer of one run.

    With ``record_accesses=True`` every content access is additionally
    appended to :attr:`access_log` as an :class:`AccessRecord` — the
    input the happens-before race detector (:mod:`repro.check.hb`)
    consumes.  Recording is off by default: the log is pure bookkeeping
    (no tracer/metrics writes), but it holds a record per access and is
    only worth paying for when a race analysis will read it.
    """

    def __init__(self, record_accesses: bool = False):
        self._ids = itertools.count(1)
        self._shadows: dict[int, _Shadow] = {}  # keyed by shadow_id
        self.checks = 0  #: lifecycle events observed
        self.record_accesses = record_accesses
        self.access_log: list[AccessRecord] = []
        self._epochs: dict[int, int] = {}     # shadow_id -> checkout epoch
        self._procs: dict[Any, int] = {}      # process object -> ordinal
        self._proc_ids = itertools.count(1)

    def _proc_of(self, buf) -> int:
        proc = buf.device.sim.active_process
        if proc is None:
            return 0
        ordinal = self._procs.get(proc)
        if ordinal is None:
            ordinal = next(self._proc_ids)
            self._procs[proc] = ordinal
        return ordinal

    # -- registration -------------------------------------------------------
    def _shadow_of(self, buf) -> Optional[_Shadow]:
        sid = getattr(buf, "_shadow_id", None)
        return self._shadows.get(sid) if sid is not None else None

    def _now(self, buf) -> float:
        return buf.device.sim.now

    def on_alloc(self, buf, pool_owned: bool = False) -> None:
        """A fresh buffer exists (cudaMalloc or pool pre-allocation)."""
        self.checks += 1
        shadow = _Shadow(
            shadow_id=next(self._ids),
            device_id=buf.device.device_id,
            capacity=buf.capacity,
            label=buf.label,
            state=ShadowState.POOL_FREE if pool_owned else ShadowState.LIVE,
            pooled=pool_owned,
            t_last=self._now(buf),
        )
        buf._shadow_id = shadow.shadow_id
        self._shadows[shadow.shadow_id] = shadow

    # -- transitions --------------------------------------------------------
    def on_free(self, buf) -> None:
        """cudaFree of a non-pooled buffer."""
        self.checks += 1
        s = self._shadow_of(buf)
        if s is None:
            return
        if s.state == ShadowState.FREED:
            raise DoubleReleaseError(f"double free of {s.describe()}")
        s.state = ShadowState.FREED
        s.t_last = self._now(buf)

    def on_pool_acquire(self, buf, label: str = "") -> None:
        """A pool handed ``buf`` out."""
        self.checks += 1
        s = self._shadow_of(buf)
        if s is None:
            return
        if s.state == ShadowState.LIVE and s.pooled:
            # The free list handed the same buffer to two owners — the
            # downstream corruption a double release causes.
            raise DoubleReleaseError(
                f"pool handed out {s.describe()} while it is still checked "
                f"out — a prior double release corrupted the free list")
        self._epochs[s.shadow_id] = self._epochs.get(s.shadow_id, 0) + 1
        s.state = ShadowState.LIVE
        s.pooled = True
        s.label = label or s.label
        s.t_last = self._now(buf)

    def on_pool_release(self, buf) -> None:
        """A buffer was returned to its pool."""
        self.checks += 1
        s = self._shadow_of(buf)
        if s is None:
            return
        if s.state == ShadowState.POOL_FREE:
            raise DoubleReleaseError(f"double release of {s.describe()}")
        if s.state == ShadowState.FREED:
            raise DoubleReleaseError(
                f"release of already-freed {s.describe()}")
        s.state = ShadowState.POOL_FREE
        s.pooled = True
        s.t_last = self._now(buf)

    def on_access(self, buf, kind: str) -> None:
        """A ``read``/``write``/``clear`` on the buffer's contents."""
        self.checks += 1
        s = self._shadow_of(buf)
        if s is None:
            return
        if s.state == ShadowState.POOL_FREE:
            raise UseAfterFreeError(
                f"{kind} of {s.describe()} after it was returned to its "
                f"pool — a later owner's data would be observed")
        if s.state == ShadowState.FREED:
            raise UseAfterFreeError(f"{kind} of freed {s.describe()}")
        if self.record_accesses:
            sim = buf.device.sim
            tracer = getattr(sim, "tracer", None)
            span = tracer.current_span() if tracer is not None else None
            self.access_log.append(AccessRecord(
                t=sim.now,
                rank=s.device_id,
                shadow_id=s.shadow_id,
                epoch=self._epochs.get(s.shadow_id, 0),
                lo=0,
                hi=s.capacity,
                kind=kind,
                span_id=span.span_id if span is not None else None,
                proc=self._proc_of(buf),
            ))

    # -- end-of-run ---------------------------------------------------------
    def leaks(self) -> list[str]:
        """Descriptions of buffers still checked out (pool-resident and
        cudaFree'd buffers are accounted for; ``live`` ones are not)."""
        return [s.describe() for s in self._shadows.values()
                if s.state == ShadowState.LIVE]

    def assert_clean(self) -> None:
        """Raise :class:`BufferLeakError` when any buffer leaked."""
        leaked = self.leaks()
        if leaked:
            raise BufferLeakError(
                f"{len(leaked)} buffer(s) still checked out at end of run:\n  "
                + "\n  ".join(leaked))

    def stats(self) -> dict:
        states: dict[str, int] = {}
        for s in self._shadows.values():
            states[s.state] = states.get(s.state, 0) + 1
        return {"buffers": len(self._shadows), "events": self.checks,
                "states": states}


#: process-wide default consulted by ``Cluster.run(asan=None)``
_DEFAULT_ENABLED = False


def asan_default() -> bool:
    """Whether runs enable the buffer sanitizer by default."""
    return _DEFAULT_ENABLED


@contextmanager
def asan_scope(enabled: bool = True):
    """Flip the process-wide sanitizer default for a block::

        with asan_scope():
            cluster.run(...)   # sanitized + leak-checked
    """
    global _DEFAULT_ENABLED
    prev = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = enabled
    try:
        yield
    finally:
        _DEFAULT_ENABLED = prev
