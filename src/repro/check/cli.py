"""Driver for ``python -m repro check``.

Runs any subset of the analysis passes (lint/trace/asan by default)
and a self-test, prints text or JSON, and returns a process exit code:

``--lint``
    Determinism linter over ``src/repro`` (or explicit ``--path``\\ s).

``--trace [FILE ...]``
    Trace sanitizer.  With files, each exported trace (Chrome JSON or
    binary RPRT, detected by magic) is checked as-is; without, a pt2pt
    scenario is run in-process per codec and its live tracer is
    checked.

``--asan``
    Buffer sanitizer: re-runs the in-process scenarios with shadow
    tracking enabled and asserts no lifecycle violations or leaks.

``--hb``
    Happens-before analysis (:mod:`repro.check.hb`): race,
    message-nondeterminism, deadlock-cycle and WireImage-typestate
    detectors over a vector-clock graph.  With ``--trace FILE...`` the
    exported traces are analyzed; without, the in-process smokes run
    with access recording so the buffer-race detector has real input.

``--selftest``
    Prove each pass still *fails* on the known-bad fixtures of
    :mod:`repro.check.fixtures`.

Every finding in ``--format json`` output carries its ``pass`` name
plus provenance (``trace`` file, ``fixture``, or source ``path``), so
a CI log line is attributable without context.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["run_check"]

#: codecs exercised by the in-process trace/asan smoke (the two paper
#: schemes plus the pipelined variant, whose traces are the gnarliest)
SMOKE_CONFIGS = ("mpc-opt", "zfp8", "zfp8-pipe")
#: keep-compressed collective smokes: 4-rank multi-hop runs whose
#: relayed wire images the ``collective`` sanitizer pass validates
SMOKE_COLLECTIVES = ("bcast", "allreduce")
_SMOKE_BYTES = 1 << 20


def _smoke_run(config_name: str, asan: bool):
    """One 2-rank pingpong under ``config_name``; returns the result."""
    from repro.analysis.bench import named_config
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset
    from repro.omb.payload import make_payload

    data = make_payload("omb", _SMOKE_BYTES, seed=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
            received = yield from comm.recv(source=1, tag=8)
        else:
            received = yield from comm.recv(source=0, tag=7)
            yield from comm.send(received, dest=0, tag=8)
        return received.nbytes

    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    return cluster.run(rank_fn, config=named_config(config_name),
                       args=(), asan=asan)


def _smoke_collective(op: str, asan: bool):
    """One 4-rank keep-compressed collective under mpc-opt."""
    from repro.analysis.bench import named_config
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset
    from repro.omb.payload import make_payload

    data = make_payload("dataset:msg_sppm", _SMOKE_BYTES, seed=1)

    def rank_fn(comm):
        if op == "bcast":
            out = yield from comm.bcast(data if comm.rank == 0 else None,
                                        root=0)
        else:
            out = yield from comm.allreduce(data)
        return out.nbytes

    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    return cluster.run(rank_fn, config=named_config("mpc-opt"),
                       args=(), asan=asan)


def _pass_lint(paths) -> dict:
    from repro.check.lint import lint_paths

    violations = lint_paths(paths)
    return {
        "pass": "lint",
        "ok": not violations,
        "checked": [str(p) for p in paths],
        "findings": [dict(v.as_dict(), **{"pass": "lint"})
                     for v in violations],
        "lines": [v.describe() for v in violations],
    }


def _pass_trace(trace_files) -> dict:
    from repro.check.sanitize import TraceSanitizer

    findings, lines, checked = [], [], []
    if trace_files:
        for f in trace_files:
            checked.append(str(f))
            for v in TraceSanitizer.from_trace_file(f).check_all():
                findings.append(dict(v.as_dict(), **{"pass": "trace"},
                                     trace=str(f)))
                lines.append(f"{f}: {v.describe()}")
    else:
        for name in SMOKE_CONFIGS:
            checked.append(f"in-process pt2pt [{name}]")
            res = _smoke_run(name, asan=False)
            for v in TraceSanitizer.from_tracer(res.tracer).check_all():
                findings.append(dict(v.as_dict(), **{"pass": "trace"},
                                     trace=name))
                lines.append(f"[{name}] {v.describe()}")
        for op in SMOKE_COLLECTIVES:
            checked.append(f"in-process {op} [mpc-opt]")
            res = _smoke_collective(op, asan=False)
            for v in TraceSanitizer.from_tracer(res.tracer).check_all():
                findings.append(dict(v.as_dict(), **{"pass": "trace"},
                                     trace=op))
                lines.append(f"[{op}] {v.describe()}")
    return {"pass": "trace", "ok": not findings, "checked": checked,
            "findings": findings, "lines": lines}


def _pass_hb(trace_files) -> dict:
    from repro.check.hb import HBChecker

    findings, lines, checked = [], [], []
    if trace_files:
        for f in trace_files:
            checked.append(str(f))
            for v in HBChecker.from_trace_file(f).check_all():
                findings.append(dict(v.as_dict(), **{"pass": "hb"},
                                     trace=str(f)))
                lines.append(f"{f}: {v.describe()}")
    else:
        # In-process smokes run with access recording so the
        # buffer-race detector sees real input, not just span meta.
        runs = [(f"in-process pt2pt [{name}]", name,
                 lambda name=name: _smoke_run(name, asan="record"))
                for name in SMOKE_CONFIGS]
        runs += [(f"in-process {op} [mpc-opt]", op,
                  lambda op=op: _smoke_collective(op, asan="record"))
                 for op in SMOKE_COLLECTIVES]
        for desc, name, fn in runs:
            checked.append(desc)
            res = fn()
            checker = HBChecker.from_result(res)
            for v in checker.check_all():
                findings.append(dict(v.as_dict(), **{"pass": "hb"},
                                     trace=name))
                lines.append(f"[{name}] {v.describe()}")
            lines.append(f"[{name}] hb: {len(checker.records)} spans, "
                         f"{len(checker.access_log)} recorded accesses")
    return {"pass": "hb", "ok": not findings, "checked": checked,
            "findings": findings, "lines": lines}


def _pass_asan() -> dict:
    from repro.errors import BufferSanitizerError

    checked, lines, ok = [], [], True
    runs = [(f"in-process pt2pt [{name}]", name,
             lambda name=name: _smoke_run(name, asan=True))
            for name in SMOKE_CONFIGS]
    runs += [(f"in-process {op} [mpc-opt]", op,
              lambda op=op: _smoke_collective(op, asan=True))
             for op in SMOKE_COLLECTIVES]
    findings = []
    for desc, name, fn in runs:
        checked.append(desc)
        try:
            res = fn()
        except BufferSanitizerError as exc:
            ok = False
            findings.append({"pass": "asan", "fixture": name,
                             "message": str(exc)})
            lines.append(f"[{name}] {exc}")
            continue
        stats = res.asan.stats()
        lines.append(f"[{name}] clean: {stats['buffers']} buffers, "
                     f"{stats['events']} lifecycle events")
    return {"pass": "asan", "ok": ok, "checked": checked,
            "findings": findings, "lines": lines}


def _pass_selftest() -> dict:
    from repro.check import fixtures
    from repro.check.hb import HBChecker
    from repro.check.lint import RULES, lint_source
    from repro.check.sanitize import TraceSanitizer
    from repro.errors import (BufferLeakError, BufferRaceError,
                              DoubleReleaseError, UseAfterFreeError)

    failures = []  # (fixture, message)

    codes = {v.code for v in lint_source(fixtures.BAD_LINT_SOURCE)}
    missing = sorted(set(RULES) - codes)
    if missing:
        failures.append(("BAD_LINT_SOURCE",
                         f"linter missed {', '.join(missing)} on the "
                         f"known-bad source"))
    if not TraceSanitizer(fixtures.overlap_records()).check_serial_lanes():
        failures.append(("overlap_records",
                         "race detector missed overlapping stream-lane "
                         "spans"))
    if not TraceSanitizer(fixtures.acausal_records()).check_causality():
        failures.append(("acausal_records",
                         "causality check missed a backwards handshake"))
    coll = TraceSanitizer(fixtures.bad_collective_records()).check_collectives()
    if len(coll) < 3:
        failures.append(("bad_collective_records",
                         "collective check missed a defect on the known-bad "
                         f"relayed hops (found {len(coll)}/3)"))
    live = TraceSanitizer(fixtures.bad_liveness_records()).check_liveness()
    if len(live) != 1:
        failures.append(("bad_liveness_records",
                         "liveness check missed work attributed to a "
                         f"fail-stopped rank (found {len(live)}/1)"))

    for fn, exc_type in ((fixtures.run_double_release, DoubleReleaseError),
                         (fixtures.run_use_after_free, UseAfterFreeError),
                         (fixtures.run_leak, BufferLeakError),
                         (fixtures.run_buffer_race, BufferRaceError)):
        try:
            fn()
            failures.append((fn.__name__,
                             f"did not raise {exc_type.__name__}"))
        except exc_type:
            pass

    # the three trace-level HB detectors on their known-bad fixtures
    if not HBChecker(fixtures.message_race_records()).check_message_races():
        failures.append(("message_race_records",
                         "message-race detector missed a wildcard match "
                         "with a concurrent rival send"))
    dead = HBChecker(fixtures.deadlock_records()).check_deadlock()
    if len(dead) != 1:
        failures.append(("deadlock_records",
                         "deadlock analyzer missed the 3-rank wait-for "
                         f"cycle (found {len(dead)}/1)"))
    wire = HBChecker(fixtures.bad_wire_records()).check_typestate()
    wire_checks = {v.check for v in wire}
    if len(wire) < 3 or not {"wire-typestate", "revoked-comm"} <= wire_checks:
        failures.append(("bad_wire_records",
                         "typestate check missed a WireImage lifecycle or "
                         f"revoked-comm defect (found {len(wire)}/3)"))

    return {"pass": "selftest", "ok": not failures,
            "checked": ["known-bad fixtures"],
            "findings": [{"pass": "selftest", "fixture": fx, "message": msg}
                         for fx, msg in failures],
            "lines": [f"{fx}: {msg}" for fx, msg in failures]
            or ["all known-bad fixtures detected"]}


def run_check(lint: bool = False, trace: bool = False, asan: bool = False,
              selftest: bool = False, hb: bool = False, trace_files=(),
              paths=(), fmt: str = "text") -> int:
    """Run the selected passes (lint/trace/asan when none selected);
    returns the process exit code (0 clean, 1 findings)."""
    if not (lint or trace or asan or selftest or hb):
        lint = trace = asan = True

    if not paths:
        import repro

        paths = [Path(repro.__file__).parent]

    results = []
    if lint:
        results.append(_pass_lint(list(paths)))
    if trace:
        results.append(_pass_trace(list(trace_files)))
    if asan:
        results.append(_pass_asan())
    if hb:
        results.append(_pass_hb(list(trace_files)))
    if selftest:
        results.append(_pass_selftest())

    ok = all(r["ok"] for r in results)
    if fmt == "json":
        doc = {"ok": ok, "passes": results}
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        for r in results:
            status = "ok" if r["ok"] else "FAIL"
            print(f"[{status}] {r['pass']}: checked "
                  f"{', '.join(r['checked'])}")
            for line in r["lines"]:
                print(f"    {line}")
        print("check: clean" if ok else "check: violations found")
    return 0 if ok else 1
