"""Known-bad fixtures proving each check pass fails loudly.

A checker that silently passes everything is worse than no checker, so
``repro check --selftest`` (and ``tests/test_check_*.py``) runs every
pass against a fixture carrying exactly the defect the pass exists to
catch and asserts it is reported:

* :data:`BAD_LINT_SOURCE` — seeds findings for every linter rule
  (RPR001..RPR008);
* :func:`overlap_records` — two spans overlapping on one ``stream0``
  lane (a serial-resource race);
* :func:`acausal_records` — a rendezvous message whose ``cts`` precedes
  its ``rts`` and whose wire transfer starts before the ``cts``
  completes;
* :func:`bad_collective_records` — keep-compressed collective hops
  committing all three collective-causality crimes: a relayed hop that
  dropped the originating seq, a wire span outside any collective span
  on its rank, and an ``origin_seq`` no pack/reduce span minted;
* :func:`bad_liveness_records` — a rank doing pipeline work after its
  own ``rank_kill``, the fail-stop use-after-free;
* :func:`run_double_release` / :func:`run_use_after_free` /
  :func:`run_leak` — minimal simulations committing each buffer
  lifecycle crime under an enabled :class:`BufferSanitizer`; callers
  assert the distinct exception type;
* :func:`run_buffer_race` — two processes writing one buffer checkout
  with no happens-before edge; the HB race detector must raise
  :class:`~repro.errors.BufferRaceError`;
* :func:`message_race_records` — a wildcard receive matched one of two
  concurrent tag-compatible sends from different ranks;
* :func:`deadlock_records` — three ranks blocked in an rts cycle, the
  wait-for graph the HB deadlock analyzer must explain;
* :func:`bad_wire_records` — WireImage typestate crimes (double
  unpack, unpack of an unminted image) plus a collective issued on a
  revoked communicator.
"""

from __future__ import annotations

import numpy as np

from repro.check.asan import BufferSanitizer
from repro.gpu.device import Device
from repro.gpu.pool import BufferPool
from repro.network.presets import machine_preset
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecord

__all__ = ["BAD_LINT_SOURCE", "overlap_records", "acausal_records",
           "bad_collective_records", "bad_liveness_records",
           "run_double_release", "run_use_after_free", "run_leak",
           "run_buffer_race", "message_race_records", "deadlock_records",
           "bad_wire_records"]

#: one violation per linter rule; lint_source() must flag every code
BAD_LINT_SOURCE = '''\
import os
import random
import time

from numpy.random import shuffle


def snapshot_key(obj):
    stamp = time.time()                    # RPR001
    jitter = random.random()               # RPR002
    salt = hash(repr(obj))                 # RPR003
    table = {}
    table[id(obj)] = stamp + jitter + salt # RPR004
    if os.environ.get("FAST"):             # RPR005
        for item in {1, 2, 3}:             # RPR006
            table[item] = item
    assert table                           # RPR007
    shuffle(table)                         # RPR008
    return table
'''


def _rec(t0, t1, category, label, meta=None, rank=0, track="main",
         span_id=0, parent_id=None):
    return TraceRecord(t0, t1, category, label, meta or {}, rank, track,
                       span_id, parent_id)


def overlap_records() -> list[TraceRecord]:
    """Two kernels overlapping on one capacity-1 stream lane."""
    return [
        _rec(0.0, 2e-6, "compression_kernel", "mpc_part0",
             track="stream0", span_id=1),
        _rec(1e-6, 3e-6, "compression_kernel", "mpc_part1",
             track="stream0", span_id=2),
    ]


def acausal_records() -> list[TraceRecord]:
    """A message whose handshake runs backwards: cts before rts, wire
    transfer before the cts completes."""
    seq = {"seq": 9}
    return [
        _rec(0.0, 1e-6, "pipeline", "sender_prepare", dict(seq), span_id=1),
        _rec(3e-6, 4e-6, "pipeline", "rts", dict(seq), span_id=2),
        _rec(1e-6, 2e-6, "pipeline", "cts", dict(seq), rank=1, span_id=3),
        _rec(1.5e-6, 5e-6, "pipeline", "wire_transfer",
             dict(seq, nbytes=64), span_id=4),
        _rec(6e-6, 7e-6, "pipeline", "receiver_complete", dict(seq),
             rank=1, span_id=5),
    ]


def bad_collective_records() -> list[TraceRecord]:
    """Keep-compressed collective hops with three distinct defects:
    a relayed receiver_complete that dropped the originating seq, an
    unpack_wire outside any collective span on its rank, and an rts
    whose origin_seq no pack_wire/reduce_wire span minted."""
    return [
        _rec(0.0, 5e-6, "collective", "bcast", {"size": 4}, span_id=1),
        _rec(0.5e-6, 1e-6, "pipeline", "pack_wire",
             {"origin_seq": 42, "nbytes": 4096}, span_id=2),
        # relayed hop seq 7: rts + wire carry the origin, the
        # receiver_complete DROPPED it
        _rec(1e-6, 1.2e-6, "pipeline", "rts",
             {"seq": 7, "origin_seq": 42}, span_id=3),
        _rec(1.5e-6, 2e-6, "pipeline", "wire_transfer",
             {"seq": 7, "origin_seq": 42, "nbytes": 64}, span_id=4),
        _rec(2e-6, 2.5e-6, "pipeline", "receiver_complete",
             {"seq": 7, "wire_nbytes": 64}, rank=1, span_id=5),
        # rank 1 unpacks the image with NO collective span on rank 1
        _rec(3e-6, 4e-6, "pipeline", "unpack_wire",
             {"origin_seq": 42, "nbytes": 4096}, rank=1, span_id=6),
        # an origin nobody minted
        _rec(2.5e-6, 3e-6, "pipeline", "rts",
             {"seq": 8, "origin_seq": 99}, span_id=7),
    ]


def bad_liveness_records() -> list[TraceRecord]:
    """Rank 1 is fail-stopped at t=2us yet a kernel span starts on it
    at t=3us — work attributed to a dead rank."""
    return [
        _rec(0.0, 1e-6, "pipeline", "sender_prepare", {"seq": 1},
             rank=1, span_id=1),
        _rec(2e-6, 2e-6, "faults", "rank_kill", {"incarnation": 0},
             rank=1, track="faults", span_id=2),
        # legitimate: a survivor detecting the death (faults track)
        _rec(3e-6, 3e-6, "resilience", "rank_failed", {"peer": 1},
             rank=0, track="faults", span_id=3),
        # the violation: the dead rank runs a kernel after its kill
        _rec(3e-6, 4e-6, "compression_kernel", "mpc_part0", {},
             rank=1, track="stream0", span_id=4),
    ]


def _pool_sim() -> tuple[Simulator, BufferPool]:
    sim = Simulator()
    sim.asan = BufferSanitizer()
    device = Device(sim, machine_preset("longhorn").device, device_id=0)
    return sim, BufferPool(device, 4096, count=1)


def run_double_release() -> None:
    """Release the same pooled buffer twice; the sanitizer must raise
    :class:`~repro.errors.DoubleReleaseError` on the second."""
    sim, pool = _pool_sim()

    def proc():
        buf = yield from pool.acquire(1024, label="victim")
        yield from pool.release(buf)
        yield from pool.release(buf)

    sim.run_process(proc())


def run_use_after_free() -> None:
    """Read a buffer after returning it to the pool; the sanitizer must
    raise :class:`~repro.errors.UseAfterFreeError`."""
    sim, pool = _pool_sim()

    def proc():
        buf = yield from pool.acquire(1024, label="victim")
        buf.write(np.arange(8, dtype=np.float32))
        yield from pool.release(buf)
        buf.read()

    sim.run_process(proc())


def run_leak() -> None:
    """Check a buffer out and never return it; ``assert_clean()`` must
    raise :class:`~repro.errors.BufferLeakError`."""
    sim, pool = _pool_sim()

    def proc():
        yield from pool.acquire(1024, label="leaked")

    sim.run_process(proc())
    sim.asan.assert_clean()


def run_buffer_race() -> None:
    """Two spawned processes write the same buffer checkout with no
    happens-before edge between them; the HB race detector must raise
    :class:`~repro.errors.BufferRaceError`."""
    from repro.check.hb import HBChecker
    from repro.sim.trace import Tracer

    sim, pool = _pool_sim()
    sim.asan.record_accesses = True
    tracer = Tracer(sim)

    def writer(buf, label, delay):
        with tracer.open_span("compute", label, rank=0, track="main"):
            yield sim.timeout(delay)
            buf.write(np.arange(8, dtype=np.float32))

    def proc():
        buf = yield from pool.acquire(1024, label="shared")
        sim.process(writer(buf, "writer_a", 1e-6))
        sim.process(writer(buf, "writer_b", 2e-6))
        yield sim.timeout(1e-5)
        yield from pool.release(buf)

    sim.run_process(proc())
    checker = HBChecker.from_tracer(tracer, access_log=sim.asan.access_log)
    checker.assert_race_free()


def message_race_records() -> list[TraceRecord]:
    """A wildcard receive on rank 1 matched rank 0's send while a
    concurrent tag-compatible send from rank 2 also qualified — the
    match is timing-dependent."""
    return [
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 11, "dst": 1, "tag": 5}, rank=0, span_id=1),
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 12, "dst": 1, "tag": 5}, rank=2, span_id=2),
        _rec(2e-6, 2e-6, "matching", "wildcard_match",
             {"seq": 11, "src": 0, "tag": 5, "posted_tag": -1},
             rank=1, span_id=3),
    ]


def deadlock_records() -> list[TraceRecord]:
    """Three ranks each sent an rts and block on the next rank's cts:
    a 0 -> 1 -> 2 -> 0 wait-for cycle."""
    return [
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 1, "dst": 1, "tag": 0}, rank=0, span_id=1),
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 2, "dst": 2, "tag": 0}, rank=1, span_id=2),
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 3, "dst": 0, "tag": 0}, rank=2, span_id=3),
    ]


def bad_wire_records() -> list[TraceRecord]:
    """WireImage typestate crimes: rank 1 unpacks one image twice, an
    unpack names an origin nobody minted, and a collective starts on a
    communicator after its revocation."""
    return [
        _rec(0.0, 2e-6, "collective", "allreduce",
             {"comm": 7, "coll_seq": 0, "size": 2}, span_id=1),
        _rec(0.5e-6, 1e-6, "pipeline", "pack_wire",
             {"origin_seq": 40, "nbytes": 64}, span_id=2),
        # the double unpack
        _rec(1.2e-6, 1.4e-6, "pipeline", "unpack_wire",
             {"origin_seq": 40, "nbytes": 64}, rank=1, span_id=3),
        _rec(1.5e-6, 1.7e-6, "pipeline", "unpack_wire",
             {"origin_seq": 40, "nbytes": 64}, rank=1, span_id=4),
        # an origin nobody packed
        _rec(1.8e-6, 1.9e-6, "pipeline", "unpack_wire",
             {"origin_seq": 99, "nbytes": 64}, span_id=5),
        # the communicator is revoked ... and used again anyway
        _rec(3e-6, 3e-6, "faults", "comm_revoke",
             {"comm_id": 7, "failed": [1]}, rank=None, track="faults",
             span_id=6),
        _rec(4e-6, 5e-6, "collective", "allreduce",
             {"comm": 7, "coll_seq": 1, "size": 2}, span_id=7),
    ]
