"""Happens-before engine: vector clocks over span traces + detectors.

The PR 4 sanitizer passes (:mod:`repro.check.sanitize`) validate each
span and each message *in isolation*; nothing validates cross-rank
ordering.  This module rebuilds the partial order a run actually
established — from the same exported traces (Chrome JSON or RPRT, via
:mod:`repro.analysis.traceio`) or a live tracer — and layers race,
nondeterminism, deadlock and typestate detectors on top of it.

The graph
---------

Every span contributes two nodes, ``S`` (start) and ``E`` (end), with
``S -> E``.  Edges come from:

``lane``
    Program order on serial lanes (``stream<k>``/``link:*`` tracks,
    capacity-1 resources): ``E(prev) -> S(next)``.

``tree``
    Span hierarchy: ``S(parent) -> S(child)`` (a child starts inside
    its parent), and ``E(child) -> E(parent)`` for awaited children
    (those that end before the parent does — spawned processes that
    outlive the parent contribute no completion edge).

``rendezvous``
    Per-``seq`` handshake edges: ``sender_prepare -> rts ->
    {receiver_prepare, cts} -> wire_transfer -> receiver_complete``
    (part-matched) and ``wire -> sender_release``.  The wire-to-
    complete edge is the cross-rank send->recv edge.

``collective``
    Participation barriers: spans of one collective instance — grouped
    by ``(comm, coll_seq, label)`` meta — order ``S(i) -> E(j)`` for
    every member pair of *symmetric* collectives (allreduce, allgather,
    alltoall, barrier): nobody exits before everybody entered.  Rooted
    collectives (bcast, reduce, ...) are ordered by their real
    point-to-point edges instead.

``fail-stop``
    A ``rank_kill`` faults span happens-before every survivor span that
    *names* the victim (``peer`` meta — failure detection, revocation,
    shrink bookkeeping).

Every edge is **time-guarded**: an edge whose source is later than its
target (beyond ``EPS``) is dropped, so the graph is forward-in-time and
acyclic by construction for any trace the simulator can actually emit.
A cycle therefore *is* a finding (``hb-cycle``), not a crash: the
cyclic nodes are reported and excluded from the clocks.

Reachability uses vector clocks over a greedy chain decomposition
(each node joins a chain ending at one of its direct predecessors):
``a`` happens-before ``b`` iff ``VC[b][chain(a)] > pos(a)``.  That
costs O(nodes x chains) memory — fine for exported traces, which are
per-scenario, not per-campaign.

Detectors (each returns :class:`~repro.check.sanitize.TraceViolation`):

``buffer-race``
    Conflicting accesses (>= 1 write) to one buffer checkout
    (shadow id + pool epoch, from the sanitizer's access log) with no
    happens-before path either way.  Needs a live run: exported traces
    carry no access log.  :meth:`HBChecker.assert_race_free` raises
    :class:`~repro.errors.BufferRaceError`.

``message-race``
    A wildcard-receive match (``wildcard_match`` span) where a
    tag-compatible send from a *different* sender is concurrent with
    the matched send — the classic MPI nondeterminism: a different
    interleaving matches a different message.  Same-sender sends are
    exempt (MPI non-overtaking orders them).

``deadlock-cycle``
    Wait-for graph over blocking handshake states: an ``rts`` with no
    ``cts`` blocks the sender on the receiver; a ``cts`` with no
    ``receiver_complete`` blocks the receiver on the sender.  A cycle
    of ranks explains *why* the engine's empty-queue
    :class:`~repro.errors.DeadlockError` fired.

``wire-typestate`` / ``revoked-comm``
    WireImage lifecycle: every ``unpack_wire`` names an ``origin_seq``
    some ``pack_wire``/``reduce_wire`` minted, after the mint, at most
    once per consuming rank; no collective span may start on a
    communicator after a ``comm_revoke`` faults span revoked it
    (post-shrink communicators have fresh ids and are exempt).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from repro.check.sanitize import EPS, SERIAL_LANE_PREFIXES, TraceViolation
from repro.errors import BufferRaceError
from repro.sim.trace import TraceRecord, group_by_seq, group_lanes

__all__ = ["HappensBefore", "HBChecker", "SYMMETRIC_COLLECTIVES"]

#: collectives whose semantics are a full participation barrier —
#: nobody returns before everybody entered.  Rooted trees (bcast,
#: reduce, scatter, gather) are ordered by their p2p hops instead.
SYMMETRIC_COLLECTIVES = frozenset(
    {"allreduce", "allgather", "alltoall", "barrier"})

#: wildcard sentinel (mirrors :data:`repro.mpi.matching.ANY` without
#: importing the runtime into the analysis layer)
_ANY = -1


class HappensBefore:
    """Vector-clock happens-before relation over a list of spans."""

    def __init__(self, records: Iterable[TraceRecord]):
        self.records = sorted(records,
                              key=lambda r: (r.t_start, r.t_end, r.span_id))
        n = 2 * len(self.records)
        self._idx = {r.span_id: i for i, r in enumerate(self.records)}
        self._succs: list[list[int]] = [[] for _ in range(n)]
        self._preds: list[list[int]] = [[] for _ in range(n)]
        self._build_edges()
        self._order, self.cyclic_nodes = self._toposort()
        self._chain: list[int] = [-1] * n
        self._pos: list[int] = [0] * n
        self._clocks: list[Optional[list[int]]] = [None] * n
        self._decompose()

    # -- node helpers --------------------------------------------------------
    def _s(self, rec: TraceRecord) -> int:
        return 2 * self._idx[rec.span_id]

    def _e(self, rec: TraceRecord) -> int:
        return 2 * self._idx[rec.span_id] + 1

    def _ntime(self, node: int) -> float:
        rec = self.records[node // 2]
        return rec.t_start if node % 2 == 0 else rec.t_end

    def node_span(self, node: int) -> TraceRecord:
        return self.records[node // 2]

    # -- construction --------------------------------------------------------
    def _edge(self, u: int, v: int) -> None:
        """Add ``u -> v`` unless it contradicts time (source after
        target): the guard keeps the graph forward-in-time, so bogus
        meta can at worst *lose* an ordering, never invent a cycle."""
        if u == v or self._ntime(u) > self._ntime(v) + EPS:
            return
        self._succs[u].append(v)
        self._preds[v].append(u)

    def _build_edges(self) -> None:
        for rec in self.records:
            self._edge(self._s(rec), self._e(rec))
        self._lane_edges()
        self._tree_edges()
        self._rendezvous_edges()
        self._collective_edges()
        self._failstop_edges()

    def _lane_edges(self) -> None:
        for (rank, track), spans in group_lanes(self.records).items():
            if not track.startswith(SERIAL_LANE_PREFIXES):
                continue
            prev = None
            for rec in spans:
                if prev is not None:
                    self._edge(self._e(prev), self._s(rec))
                prev = rec

    def _tree_edges(self) -> None:
        by_id = {r.span_id: r for r in self.records}
        for rec in self.records:
            parent = by_id.get(rec.parent_id)
            if parent is None:
                continue
            self._edge(self._s(parent), self._s(rec))
            # Awaited children complete inside the parent; spawned
            # workers that outlive it fail the time guard and add none.
            self._edge(self._e(rec), self._e(parent))

    def _rendezvous_edges(self) -> None:
        for _seq, spans in sorted(group_by_seq(self.records).items()):
            steps: dict[str, list[TraceRecord]] = {}
            for r in spans:
                steps.setdefault(r.label, []).append(r)

            def firsts(label):
                return steps.get(label, ())

            for prep in firsts("sender_prepare"):
                for rts in firsts("rts"):
                    self._edge(self._e(prep), self._s(rts))
            for rts in firsts("rts"):
                for nxt in ("receiver_prepare", "cts"):
                    for r in firsts(nxt):
                        self._edge(self._e(rts), self._s(r))
            for rprep in firsts("receiver_prepare"):
                for cts in firsts("cts"):
                    self._edge(self._e(rprep), self._s(cts))
            wires = firsts("wire_transfer")
            for cts in firsts("cts"):
                for w in wires:
                    self._edge(self._e(cts), self._s(w))
            wire_by_part = {w.meta.get("part"): w for w in wires}
            for rc in firsts("receiver_complete"):
                w = wire_by_part.get(rc.meta.get("part"))
                if w is None and wires:
                    w = min(wires, key=lambda r: (r.t_end, r.span_id))
                if w is not None:
                    self._edge(self._e(w), self._s(rc))
            for rel in firsts("sender_release"):
                for w in wires:
                    self._edge(self._e(w), self._s(rel))

    def _collective_edges(self) -> None:
        groups: dict[tuple, list[TraceRecord]] = {}
        for r in self.records:
            if r.category != "collective":
                continue
            if "comm" not in r.meta or "coll_seq" not in r.meta:
                continue  # pre-PR-9 trace: no instance identity, no barrier
            key = (r.meta["comm"], r.meta["coll_seq"], r.label)
            groups.setdefault(key, []).append(r)
        for key, members in sorted(groups.items()):
            if key[2] not in SYMMETRIC_COLLECTIVES or len(members) < 2:
                continue
            for a in members:
                for b in members:
                    if a is not b:
                        self._edge(self._s(a), self._e(b))

    def _failstop_edges(self) -> None:
        kills: dict[int, list[TraceRecord]] = {}
        for r in self.records:
            if r.label == "rank_kill" and r.rank is not None:
                kills.setdefault(r.rank, []).append(r)
        if not kills:
            return
        for r in self.records:
            peer = r.meta.get("peer")
            for kill in kills.get(peer, ()):
                self._edge(self._e(kill), self._s(r))

    # -- order + clocks ------------------------------------------------------
    def _key(self, node: int) -> tuple:
        rec = self.records[node // 2]
        return (self._ntime(node), rec.span_id, node % 2)

    def _toposort(self) -> tuple[list[int], list[int]]:
        n = len(self._succs)
        indeg = [len(p) for p in self._preds]
        heap = [(self._key(v), v) for v in range(n) if indeg[v] == 0]
        heapq.heapify(heap)
        order = []
        while heap:
            _, v = heapq.heappop(heap)
            order.append(v)
            for w in self._succs[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    heapq.heappush(heap, (self._key(w), w))
        cyclic = sorted(set(range(n)) - set(order))
        return order, cyclic

    def _decompose(self) -> None:
        """Greedy chain decomposition + vector clocks, in topo order."""
        chain_end: list[int] = []  # chain index -> its current last node
        nchains_guess = 0
        for v in self._order:
            placed = False
            for p in self._preds[v]:
                c = self._chain[p]
                if c >= 0 and chain_end[c] == p:
                    self._chain[v] = c
                    self._pos[v] = self._pos[p] + 1
                    chain_end[c] = v
                    placed = True
                    break
            if not placed:
                self._chain[v] = len(chain_end)
                self._pos[v] = 0
                chain_end.append(v)
            nchains_guess = len(chain_end)
        nchains = nchains_guess
        for v in self._order:
            vc = [0] * nchains
            for p in self._preds[v]:
                pv = self._clocks[p]
                if pv is None:
                    continue
                for i in range(len(pv)):
                    if pv[i] > vc[i]:
                        vc[i] = pv[i]
            vc[self._chain[v]] = self._pos[v] + 1
            self._clocks[v] = vc

    # -- queries -------------------------------------------------------------
    def hb_node(self, u: int, v: int) -> bool:
        """Strict happens-before between two graph nodes."""
        if u == v:
            return False
        cv = self._clocks[v]
        cu = self._chain[u]
        if cv is None or cu < 0:
            return False  # cyclic nodes carry no clock: unordered
        return cv[cu] > self._pos[u]

    def hb_span(self, a: int, b: int) -> bool:
        """Span ``a`` completed before span ``b`` started (by span id)."""
        ia, ib = self._idx.get(a), self._idx.get(b)
        if ia is None or ib is None:
            return False
        return self.hb_node(2 * ia + 1, 2 * ib)

    def concurrent_spans(self, a: int, b: int) -> bool:
        return a != b and not self.hb_span(a, b) and not self.hb_span(b, a)

    def cycle_violations(self) -> list[TraceViolation]:
        if not self.cyclic_nodes:
            return []
        spans = sorted({self.node_span(v).span_id for v in self.cyclic_nodes})
        t = min(self._ntime(v) for v in self.cyclic_nodes)
        return [TraceViolation(
            "hb-cycle",
            f"{len(spans)} span(s) form a happens-before cycle — the "
            f"trace's timestamps and protocol meta contradict each other",
            span_ids=tuple(spans), t=t)]


class HBChecker:
    """The four HB detectors over one trace (plus an optional sanitizer
    access log for the buffer-race pass)."""

    def __init__(self, records: Iterable[TraceRecord], access_log=None):
        self.hb = HappensBefore(records)
        self.records = self.hb.records
        self.access_log = list(access_log) if access_log else []

    # -- construction --------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer, access_log=None) -> "HBChecker":
        return cls(tracer.records, access_log=access_log)

    @classmethod
    def from_result(cls, result) -> "HBChecker":
        """From a :class:`~repro.mpi.cluster.ClusterResult`: spans from
        the tracer, accesses from the run's sanitizer (if recording)."""
        log = getattr(result.asan, "access_log", None) if result.asan else None
        return cls(result.tracer.records, access_log=log)

    @classmethod
    def from_trace_file(cls, path) -> "HBChecker":
        """Exported traces carry spans but no sanitizer access log, so
        every detector except ``buffer-race`` applies."""
        from repro.analysis.traceio import load_trace_records

        return cls(load_trace_records(path).records)

    # -- buffer races --------------------------------------------------------
    def _by_id(self) -> dict[int, TraceRecord]:
        return {r.span_id: r for r in self.records}

    def _spans_related(self, a: int, b: int, by_id: dict) -> bool:
        """Ancestor-or-equal in the span tree: an access made under an
        enclosing span is program-ordered with the spawn points of work
        nested (or inherited) beneath it."""
        if a == b:
            return True
        for lo, hi in ((a, b), (b, a)):
            cur = by_id.get(hi)
            while cur is not None and cur.parent_id is not None:
                if cur.parent_id == lo:
                    return True
                cur = by_id.get(cur.parent_id)
        return False

    def _accesses_ordered(self, a, b, by_id: dict) -> bool:
        if a.proc == b.proc:
            return True  # same simulated process: program order
        if a.span_id is None or b.span_id is None:
            return False
        if self._spans_related(a.span_id, b.span_id, by_id):
            return True
        return (self.hb.hb_span(a.span_id, b.span_id)
                or self.hb.hb_span(b.span_id, a.span_id))

    def check_races(self) -> list[TraceViolation]:
        """Concurrent conflicting accesses to one buffer checkout."""
        if not self.access_log:
            return []
        by_id = self._by_id()
        groups: dict[tuple, list] = {}
        for acc in self.access_log:
            groups.setdefault((acc.shadow_id, acc.epoch), []).append(acc)
        out = []
        reported: set[tuple] = set()
        for (shadow, epoch), accs in sorted(groups.items()):
            accs.sort(key=lambda a: (a.t, a.kind, a.proc))
            for i, a in enumerate(accs):
                for b in accs[i + 1:]:
                    if a.kind != "write" and b.kind != "write":
                        continue
                    if a.lo >= b.hi or b.lo >= a.hi:
                        continue  # disjoint byte ranges
                    if self._accesses_ordered(a, b, by_id):
                        continue
                    key = (shadow, epoch, min(a.proc, b.proc),
                           max(a.proc, b.proc))
                    if key in reported:
                        continue
                    reported.add(key)
                    out.append(TraceViolation(
                        "buffer-race",
                        f"unordered conflicting accesses to buffer "
                        f"#{shadow} (epoch {epoch}): {a.describe()} vs "
                        f"{b.describe()} — no happens-before path either "
                        f"way",
                        span_ids=tuple(s for s in (a.span_id, b.span_id)
                                       if s is not None),
                        t=min(a.t, b.t)))
        return out

    def assert_race_free(self) -> None:
        """Raise :class:`~repro.errors.BufferRaceError` on any race."""
        races = self.check_races()
        if races:
            raise BufferRaceError(
                f"{len(races)} unordered conflicting buffer access "
                f"pair(s):\n  " + "\n  ".join(v.describe() for v in races))

    # -- message races -------------------------------------------------------
    def check_message_races(self) -> list[TraceViolation]:
        """Wildcard matches racing against a concurrent rival send."""
        rts_spans = [r for r in self.records
                     if r.category == "pipeline" and r.label == "rts"]
        first_rts: dict[int, TraceRecord] = {}
        for r in rts_spans:
            seq = r.meta.get("seq")
            if seq is not None and seq not in first_rts:
                first_rts[seq] = r
        out = []
        for w in self.records:
            if w.category != "matching" or w.label != "wildcard_match":
                continue
            matched = first_rts.get(w.meta.get("seq"))
            if matched is None:
                continue  # eager send: no rts span to race against
            posted_tag = w.meta.get("posted_tag", _ANY)
            for rival in rts_spans:
                if rival is matched or rival.rank == matched.rank:
                    continue  # same-sender sends are non-overtaking
                if rival.meta.get("dst") != w.rank:
                    continue
                if posted_tag != _ANY and rival.meta.get("tag") != posted_tag:
                    continue
                if not self.hb.concurrent_spans(matched.span_id,
                                                rival.span_id):
                    continue
                out.append(TraceViolation(
                    "message-race",
                    f"wildcard receive on rank {w.rank} (posted tag "
                    f"{posted_tag}) matched the send from rank "
                    f"{matched.rank} (seq {w.meta.get('seq')}) while a "
                    f"concurrent send from rank {rival.rank} (seq "
                    f"{rival.meta.get('seq')}) also qualified — the "
                    f"match is timing-dependent",
                    span_ids=(w.span_id, matched.span_id, rival.span_id),
                    t=w.t_start))
        return out

    # -- deadlock wait-for cycles --------------------------------------------
    def check_deadlock(self) -> list[TraceViolation]:
        """Explain stalls: cycles in the rank wait-for graph."""
        waits: dict[int, list[tuple]] = {}  # waiter -> [(peer, why, span)]
        for seq, spans in sorted(group_by_seq(self.records).items()):
            steps: dict[str, TraceRecord] = {}
            for r in spans:
                steps.setdefault(r.label, r)
            rts, cts = steps.get("rts"), steps.get("cts")
            if rts is not None and cts is None \
                    and rts.rank is not None and "dst" in rts.meta:
                waits.setdefault(rts.rank, []).append((
                    rts.meta["dst"],
                    f"seq {seq}: rank {rts.rank} sent rts and blocks on "
                    f"rank {rts.meta['dst']} for cts (no matching recv "
                    f"posted)", rts))
            if cts is not None and "receiver_complete" not in steps \
                    and cts.rank is not None and "dst" in cts.meta:
                waits.setdefault(cts.rank, []).append((
                    cts.meta["dst"],
                    f"seq {seq}: rank {cts.rank} sent cts and blocks on "
                    f"rank {cts.meta['dst']} for the wire transfer",
                    cts))
        # DFS over the rank graph; a back-edge to an in-stack rank is a
        # cycle.  Each cycle reports once, keyed by its rank set.
        graph: dict[int, list[int]] = {
            r: sorted({peer for peer, _, _ in edges})
            for r, edges in waits.items()}
        out = []
        seen_cycles: set[frozenset] = set()
        for start in sorted(graph):
            stack = [(start, [start])]
            visited = set()
            while stack:
                node, path = stack.pop()
                for peer in graph.get(node, ()):
                    if peer in path:
                        cycle = path[path.index(peer):]
                        key = frozenset(cycle)
                        if key in seen_cycles:
                            continue
                        seen_cycles.add(key)
                        hops = cycle + [peer]
                        reasons, span_ids = [], []
                        for a, b in zip(hops, hops[1:]):
                            for p, why, span in waits.get(a, ()):
                                if p == b:
                                    reasons.append(why)
                                    span_ids.append(span.span_id)
                                    break
                        arrows = " -> ".join(str(r) for r in hops)
                        out.append(TraceViolation(
                            "deadlock-cycle",
                            f"ranks wait in a cycle [{arrows}]: "
                            + "; ".join(reasons),
                            span_ids=tuple(span_ids),
                            t=min(self.records[0].t_start, 0.0)
                            if not span_ids else
                            min(s.t_start for s in self.records
                                if s.span_id in span_ids)))
                    elif peer not in visited:
                        visited.add(peer)
                        stack.append((peer, path + [peer]))
        return out

    # -- WireImage + communicator typestate ----------------------------------
    def check_typestate(self) -> list[TraceViolation]:
        """pack -> relay* -> unpack (at most once per consumer), and no
        collective work on a revoked communicator."""
        out = []
        minters: dict[int, list[TraceRecord]] = {}
        for r in self.records:
            if r.label in ("pack_wire", "reduce_wire") \
                    and "origin_seq" in r.meta:
                minters.setdefault(r.meta["origin_seq"], []).append(r)
        for origin, spans in sorted(minters.items()):
            if len(spans) > 1:
                out.append(TraceViolation(
                    "wire-typestate",
                    f"origin_seq {origin} minted {len(spans)} times — "
                    f"wire images are sealed exactly once",
                    span_ids=tuple(s.span_id for s in spans),
                    t=spans[0].t_start))
        unpacks: dict[tuple, list[TraceRecord]] = {}
        for r in self.records:
            if r.label != "unpack_wire" or "origin_seq" not in r.meta:
                continue
            origin = r.meta["origin_seq"]
            unpacks.setdefault((r.rank, origin), []).append(r)
            mint = minters.get(origin)
            if not mint:
                out.append(TraceViolation(
                    "wire-typestate",
                    f"unpack_wire span {r.span_id} (rank {r.rank}) "
                    f"consumes origin_seq {origin} that no pack_wire/"
                    f"reduce_wire minted",
                    span_ids=(r.span_id,), t=r.t_start))
            elif r.t_start < mint[0].t_end - EPS:
                out.append(TraceViolation(
                    "wire-typestate",
                    f"unpack_wire span {r.span_id} starts at "
                    f"{r.t_start:.9f}, before its pack (span "
                    f"{mint[0].span_id}) sealed the image at "
                    f"{mint[0].t_end:.9f}",
                    span_ids=(r.span_id, mint[0].span_id), t=r.t_start))
        for (rank, origin), spans in sorted(unpacks.items(),
                                            key=lambda kv: (str(kv[0][0]),
                                                            kv[0][1])):
            if len(spans) > 1:
                out.append(TraceViolation(
                    "wire-typestate",
                    f"rank {rank} unpacked origin_seq {origin} "
                    f"{len(spans)} times — each consumer unpacks exactly "
                    f"once",
                    span_ids=tuple(s.span_id for s in spans),
                    t=spans[0].t_start))
        # revoked-communicator usage
        revokes = [(r.meta.get("comm_id"), r) for r in self.records
                   if r.label == "comm_revoke" and r.track == "faults"]
        for r in self.records:
            if r.category != "collective" or "comm" not in r.meta:
                continue
            for cid, rev in revokes:
                if cid == r.meta["comm"] and r.t_start > rev.t_start + EPS:
                    out.append(TraceViolation(
                        "revoked-comm",
                        f"collective span {r.span_id} ({r.label}, rank "
                        f"{r.rank}) starts at {r.t_start:.9f} on "
                        f"communicator {cid}, revoked at "
                        f"{rev.t_start:.9f} — survivors must shrink "
                        f"before collectives resume",
                        span_ids=(r.span_id, rev.span_id), t=r.t_start))
        return out

    def check_all(self) -> list[TraceViolation]:
        """All detectors (plus graph consistency), in a stable order."""
        return (self.hb.cycle_violations() + self.check_races()
                + self.check_message_races() + self.check_deadlock()
                + self.check_typestate())
