"""Determinism linter: AST rules against nondeterminism hazards.

The whole reproduction rests on bit-exact determinism — same-seed runs
must export byte-identical traces and ``BENCH_*.json`` snapshots.  The
bug classes that have historically broken that property (a
``PYTHONHASHSEED``-dependent ``hash()`` call survived until PR 3) are
all statically recognizable, so this module walks the package's ASTs
and flags them with stable rule codes:

========  ==============================================================
RPR001    wall-clock reads: ``time.time``/``time.monotonic``/
          ``time.perf_counter`` (and ``_ns`` variants),
          ``datetime.now``/``utcnow``/``today``, ``date.today``
RPR002    unseeded module-level RNG: ``random.<fn>()`` or
          ``np.random.<fn>()`` drawing from global state (seeded
          constructions — ``random.Random(seed)``,
          ``np.random.default_rng(seed)`` — are fine)
RPR003    builtin ``hash()`` — salted per process by PYTHONHASHSEED
RPR004    ``id()`` feeding keys or ordering (dict keys, subscripts,
          ``sorted``/``min``/``max``/``.sort`` arguments) — address
          reuse makes these unstable across runs
RPR005    ``os.environ`` / ``os.getenv`` reads outside the documented
          config entry points (:mod:`repro.core.envconfig`)
RPR006    iterating a set expression (set literal/comprehension,
          ``set()``/``frozenset()`` call) without ``sorted()`` — the
          iteration order feeds trace/snapshot output nondeterminism
RPR007    ``assert`` used for runtime validation — ``python -O`` strips
          it, so the check silently vanishes in optimized runs; raise a
          :mod:`repro.errors` exception instead (test code is exempt:
          the default lint roots cover ``src/repro`` only)
RPR008    unseeded ``numpy.random`` reached through an import binding
          RPR002's dotted-chain rule cannot see: ``from numpy.random
          import shuffle``, ``from numpy import random [as alias]``,
          ``import numpy.random as alias``
========  ==============================================================

A finding on line *n* is suppressed by a ``# repro: allow-RPRnnn``
pragma on that line (comma-separate several codes).  Every suppression
should say *why* — grep for the pragma to audit the exceptions.

Programmatic API: :func:`lint_source` (one string),
:func:`lint_file`, :func:`lint_paths` (files/directories, ``.py``
only).  ``python -m repro check --lint`` wraps these with text and
``--format json`` output.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["Violation", "lint_source", "lint_file", "lint_paths",
           "RULES", "iter_python_files"]

#: rule code -> one-line description (the linter's public contract)
RULES = {
    "RPR001": "wall-clock read (time.time/monotonic/perf_counter, datetime.now)",
    "RPR002": "unseeded module-level RNG call (random.* / np.random.*)",
    "RPR003": "builtin hash() is salted per process (PYTHONHASHSEED)",
    "RPR004": "id() used in keys/ordering is unstable across runs",
    "RPR005": "os.environ read outside a documented config entry point",
    "RPR006": "unordered set iteration (wrap in sorted())",
    "RPR007": "assert for runtime validation is stripped under -O (raise instead)",
    "RPR008": "unseeded numpy.random call through an import alias",
}

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow-([A-Z0-9,\-]+)")

#: (penultimate, last) dotted components flagged as wall-clock reads
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: random-module attributes that *construct* seeded generators
_SEEDED_RANDOM = {"Random", "SystemRandom"}
_SEEDED_NP_RANDOM = {"default_rng", "Generator", "RandomState", "PCG64",
                     "SeedSequence", "Philox", "MT19937", "BitGenerator"}

#: call names whose arguments establish an ordering
_ORDERING_CALLS = {"sorted", "min", "max", "sort"}


@dataclass(frozen=True)
class Violation:
    """One linter finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


def _dotted(node: ast.AST) -> Optional[tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class _Walker(ast.NodeVisitor):
    """Single-pass visitor that keeps an ancestor stack for the
    context-sensitive rules (RPR004, RPR006)."""

    def __init__(self, path: str):
        self.path = path
        self.violations: list[Violation] = []
        self._stack: list[ast.AST] = []
        #: names bound to unseeded numpy.random *functions* (RPR008)
        self._np_random_funcs: set[str] = set()
        #: names bound to the numpy.random *module* itself (RPR008)
        self._np_random_mods: set[str] = set()

    # generic_visit with ancestry tracking
    def visit(self, node: ast.AST):
        self._stack.append(node)
        try:
            super().visit(node)
        finally:
            self._stack.pop()

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), code, message))

    # -- rules on calls ------------------------------------------------------
    def visit_Call(self, node: ast.Call):
        chain = _dotted(node.func)
        if chain:
            self._check_wall_clock(node, chain)
            self._check_rng(node, chain)
            self._check_environ(node, chain)
        if isinstance(node.func, ast.Name):
            if node.func.id == "hash" and node.args:
                self._flag(node, "RPR003", RULES["RPR003"])
            if node.func.id == "id" and node.args and self._in_ordering_context():
                self._flag(node, "RPR004", RULES["RPR004"])
            if node.func.id in self._np_random_funcs:
                self._flag(node, "RPR008",
                           f"{RULES['RPR008']}: {node.func.id}()")
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        if len(chain) >= 2 and chain[-2:] in _WALL_CLOCK:
            self._flag(node, "RPR001",
                       f"{RULES['RPR001']}: {'.'.join(chain)}()")

    def _check_rng(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        if len(chain) == 2 and chain[0] in self._np_random_mods:
            # an aliased numpy.random module: RPR008 owns this form
            # (seeded constructions like default_rng() stay clean)
            if chain[1] not in _SEEDED_NP_RANDOM:
                self._flag(node, "RPR008",
                           f"{RULES['RPR008']}: {'.'.join(chain)}()")
        elif (len(chain) == 2 and chain[0] == "random"
                and chain[1] not in _SEEDED_RANDOM):
            self._flag(node, "RPR002",
                       f"{RULES['RPR002']}: {'.'.join(chain)}()")
        elif (len(chain) == 3 and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in _SEEDED_NP_RANDOM):
            self._flag(node, "RPR002",
                       f"{RULES['RPR002']}: {'.'.join(chain)}()")

    def _check_environ(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        if chain[:2] == ("os", "getenv"):
            self._flag(node, "RPR005", f"{RULES['RPR005']}: os.getenv()")

    # -- RPR007: assert as runtime validation --------------------------------
    def visit_Assert(self, node: ast.Assert):
        self._flag(node, "RPR007", RULES["RPR007"])
        self.generic_visit(node)

    # -- RPR008: numpy.random via import bindings ----------------------------
    def visit_Import(self, node: ast.Import):
        for alias in node.names:
            if alias.name == "numpy.random" and alias.asname:
                self._np_random_mods.add(alias.asname)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom):
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _SEEDED_NP_RANDOM:
                    self._np_random_funcs.add(alias.asname or alias.name)
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._np_random_mods.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute):
        chain = _dotted(node)
        # Flag the outermost attribute chain only, so os.environ.get()
        # reports once rather than per nested Attribute node.
        parent = self._stack[-2] if len(self._stack) > 1 else None
        if (chain and chain[:2] == ("os", "environ")
                and not isinstance(parent, ast.Attribute)):
            self._flag(node, "RPR005", f"{RULES['RPR005']}: os.environ")
        self.generic_visit(node)

    def _in_ordering_context(self) -> bool:
        """True when the current node sits inside a dict key, a
        subscript, or an ordering call's arguments."""
        # stack[-1] is the id() call itself
        for i in range(len(self._stack) - 2, -1, -1):
            anc = self._stack[i]
            child = self._stack[i + 1]
            if isinstance(anc, ast.Subscript) and child is anc.slice:
                return True
            if isinstance(anc, ast.Dict) and child in anc.keys:
                return True
            if isinstance(anc, ast.Call):
                name = None
                if isinstance(anc.func, ast.Name):
                    name = anc.func.id
                elif isinstance(anc.func, ast.Attribute):
                    name = anc.func.attr
                if name in _ORDERING_CALLS and child is not anc.func:
                    return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Module)):
                break
        return False

    # -- RPR006: unordered set iteration ------------------------------------
    def visit_For(self, node: ast.For):
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension):
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def _check_set_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._flag(iter_node, "RPR006", RULES["RPR006"])
        # list(set(...)) / tuple(set(...)) freeze the arbitrary order
        if (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in ("list", "tuple")
                and iter_node.args and _is_set_expr(iter_node.args[0])):
            self._flag(iter_node, "RPR006", RULES["RPR006"])

    def visit_Assign(self, node: ast.Assign):
        # x = list({...}) bakes an arbitrary order into a value
        if (isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in ("list", "tuple")
                and node.value.args and _is_set_expr(node.value.args[0])):
            self._flag(node.value, "RPR006", RULES["RPR006"])
        self.generic_visit(node)


def _suppressed_codes(source: str) -> dict[int, set[str]]:
    """line number -> codes allowed on that line by pragmas."""
    out: dict[int, set[str]] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if m:
            codes = {c.strip().lstrip("-") for c in m.group(1).split(",")}
            out[i] = {c for c in codes if c}
    return out


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one source string; returns unsuppressed violations sorted
    by (line, col, code)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, exc.offset or 0,
                          "RPR000", f"syntax error: {exc.msg}")]
    walker = _Walker(path)
    walker.visit(tree)
    allowed = _suppressed_codes(source)
    out = [v for v in walker.violations
           if v.code not in allowed.get(v.line, ())]
    return sorted(out, key=lambda v: (v.line, v.col, v.code))


def lint_file(path) -> list[Violation]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path))


def iter_python_files(paths: Iterable) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(paths: Iterable) -> list[Violation]:
    """Lint files and/or directories; results sorted by location."""
    out: list[Violation] = []
    for f in iter_python_files(paths):
        out.extend(lint_file(f))
    return sorted(out, key=lambda v: (v.path, v.line, v.col, v.code))
