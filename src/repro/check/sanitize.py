"""Trace sanitizer: structural invariant checks over span traces.

A run's trace is not just a visualization artifact — the critical-path
analyzer, the latency breakdowns and the paper figures are all computed
from it, so a malformed trace silently corrupts every downstream
number.  This module re-validates the invariants the simulator is
supposed to enforce, either over a live :class:`~repro.sim.trace.Tracer`
(:meth:`TraceSanitizer.from_tracer`) or over an exported trace file —
Chrome-trace JSON or a binary RPRT container, streamed via
:meth:`TraceSanitizer.from_trace_file` — so CI can check golden traces
without re-running the scenario.

Checks (each returns a list of :class:`TraceViolation`):

``serial-lane``
    Mutual exclusion on lanes backed by capacity-1 resources: CUDA
    streams (``stream<k>`` tracks, one ``Resource(capacity=1)`` each)
    and fabric links (``link:<label>`` tracks; every preset uses
    ``lanes=1``).  Two overlapping X spans on one such lane mean two
    processes held the same serial resource at once — a race in the
    acquire/release protocol.  ``main``/``gpu`` lanes legitimately carry
    concurrent spans (overlapping isend/irecv, pipelined part senders)
    and are exempt.

``containment``
    Parent/child hierarchy: every ``parent_id`` resolves to a real span,
    and a child does not *start* before its parent started.  (A child
    may *end* after its parent: processes spawned under a span inherit
    it as base parent and can outlive it — the pipelined part senders
    do.)

``causality``
    Per-message rendezvous ordering by ``seq``: ``sender_prepare``
    before ``rts``, ``rts`` before ``cts`` and ``receiver_prepare``,
    every ``wire_transfer`` after the first ``cts`` completes, every
    ``receiver_complete`` after its (part-matched) wire transfer lands.

``tiling``
    The critical-path sweep's contract: for every rendezvous message,
    the service/wait segments tile ``[t0, t1]`` exactly — durations sum
    to the end-to-end latency within float tolerance.

``collective``
    Keep-compressed collective causality: every pipeline span carrying
    an ``origin_seq`` (pack/unpack/reduce and each relayed hop's
    rts/wire/complete) must start inside a ``collective``-category span
    on its rank, and its ``origin_seq`` must resolve to a real
    ``pack_wire``/``reduce_wire`` span; every relayed hop (a seq group
    with wire spans but no ``sender_prepare``) must stamp the
    originating seq on its rts/wire_transfer/receiver_complete spans so
    recovery and attribution can stitch the hop back to its origin.
    Retransmissions (spans with an ``attempt``) legitimately outlive
    the collective and are exempt from containment.

``liveness``
    Fail-stop ground truth: a ``rank_kill`` span on the ``faults``
    track pins the sim time a rank died; no span may be *attributed* to
    that rank (``rank=<victim>``) with a start time after its kill.  A
    span open at the kill ends then (the kill interrupts it), so a
    later start means the simulator let a dead rank do work — the
    fail-stop equivalent of a use-after-free.  ``faults``-track spans
    themselves are exempt (they *describe* the failure).

Timestamps compare with ``EPS`` = 1 ns slack: the Chrome export rounds
to 1e-6 us (~1e-12 s), so true violations dwarf the tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.sim.trace import TraceRecord, group_by_seq, group_lanes

__all__ = ["TraceSanitizer", "TraceViolation", "EPS", "SERIAL_LANE_PREFIXES"]

#: comparison slack in simulated seconds (export granularity ~1e-12 s)
EPS = 1e-9

#: track-name prefixes whose lanes are backed by capacity-1 resources
SERIAL_LANE_PREFIXES = ("stream", "link:")

#: |sum(segments) - latency| bound for the tiling check
_TILING_TOL = 5e-9


@dataclass(frozen=True)
class TraceViolation:
    """One invariant violation, pinned to the offending spans."""

    check: str        #: "serial-lane" | "containment" | "causality" | "tiling" | "collective" | "liveness"
    message: str
    span_ids: tuple = ()
    t: float = 0.0    #: sim-time where the violation manifests

    def describe(self) -> str:
        spans = (" [spans " + ", ".join(str(s) for s in self.span_ids) + "]"
                 if self.span_ids else "")
        return f"{self.check} @ t={self.t:.9f}: {self.message}{spans}"

    def as_dict(self) -> dict:
        return {"check": self.check, "message": self.message,
                "span_ids": list(self.span_ids), "t": self.t}


class _RecordView:
    """Minimal tracer shim so :class:`CritPathAnalyzer` accepts a bare
    record list (it only reads ``.records``)."""

    def __init__(self, records):
        self.records = records


class TraceSanitizer:
    """Runs the four structural checks over a list of spans."""

    def __init__(self, records: Iterable[TraceRecord]):
        self.records = list(records)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer) -> "TraceSanitizer":
        return cls(tracer.records)

    @classmethod
    def from_trace_file(cls, path) -> "TraceSanitizer":
        """Rebuild spans from an exported trace file — Chrome-trace JSON
        or an RPRT container (detected by magic).  Events are streamed
        through :mod:`repro.analysis.traceio`, so peak memory is the
        compact record list, never the serialized document."""
        from repro.analysis.traceio import load_trace_records

        return cls(load_trace_records(path).records)

    @classmethod
    def from_chrome_trace(cls, doc) -> "TraceSanitizer":
        """Rebuild spans from a Chrome-trace document produced by
        :func:`repro.analysis.export.to_chrome_trace` (a dict, a JSON
        string, or a path to a file in either supported format — paths
        stream via :meth:`from_trace_file`)."""
        from repro.analysis.traceio import _ChromeEventParser

        if isinstance(doc, (str, Path)) and not (
                isinstance(doc, str) and doc.lstrip().startswith("{")):
            return cls.from_trace_file(doc)
        if isinstance(doc, str):
            doc = json.loads(doc)

        parser = _ChromeEventParser()
        events = doc["traceEvents"]
        # Metadata first (the exporter emits M events up front, but a
        # hand-built doc may not), then records.
        for ev in events:
            if ev.get("ph") == "M":
                parser.feed(ev)
        records = [rec for ev in events
                   if (rec := parser.feed(ev)) is not None]
        records.sort(key=lambda r: (r.t_start, r.t_end, r.span_id))
        return cls(records)

    # -- lane helpers --------------------------------------------------------
    def lanes(self) -> dict[tuple, list[TraceRecord]]:
        """(rank, track) -> spans on that lane, sorted by time (see
        :func:`repro.sim.trace.group_lanes`)."""
        return group_lanes(self.records)

    # -- checks --------------------------------------------------------------
    def check_serial_lanes(self) -> list[TraceViolation]:
        """No two spans may overlap on a stream or link lane."""
        out = []
        for (rank, track), spans in sorted(
                self.lanes().items(),
                key=lambda kv: (kv[0][0] if kv[0][0] is not None else -1, kv[0][1])):
            if not track.startswith(SERIAL_LANE_PREFIXES):
                continue
            prev: Optional[TraceRecord] = None
            prev_end = float("-inf")
            for rec in spans:
                if rec.t_start < prev_end - EPS:
                    where = f"lane {track}" + (
                        f" of rank {rank}" if rank is not None else "")
                    out.append(TraceViolation(
                        "serial-lane",
                        f"{where}: span {rec.span_id} "
                        f"({rec.category}/{rec.label}) starts at "
                        f"{rec.t_start:.9f} while span {prev.span_id} "
                        f"({prev.category}/{prev.label}) is still running "
                        f"until {prev_end:.9f}",
                        span_ids=(prev.span_id, rec.span_id),
                        t=rec.t_start))
                if rec.t_end > prev_end:
                    prev, prev_end = rec, rec.t_end
        return out

    def check_containment(self) -> list[TraceViolation]:
        """Every parent_id resolves; children never start before their
        parent (children may outlive an inherited parent)."""
        by_id = {r.span_id: r for r in self.records}
        out = []
        for rec in self.records:
            if rec.parent_id is None:
                continue
            parent = by_id.get(rec.parent_id)
            if parent is None:
                out.append(TraceViolation(
                    "containment",
                    f"span {rec.span_id} ({rec.category}/{rec.label}) "
                    f"references missing parent {rec.parent_id}",
                    span_ids=(rec.span_id,), t=rec.t_start))
                continue
            if rec.t_start < parent.t_start - EPS:
                out.append(TraceViolation(
                    "containment",
                    f"span {rec.span_id} ({rec.category}/{rec.label}) starts "
                    f"at {rec.t_start:.9f}, before its parent "
                    f"{parent.span_id} ({parent.category}/{parent.label}) "
                    f"opened at {parent.t_start:.9f}",
                    span_ids=(rec.span_id, parent.span_id), t=rec.t_start))
        return out

    def by_seq(self) -> dict[int, list[TraceRecord]]:
        """seq -> that message's pipeline spans, sorted by time (see
        :func:`repro.sim.trace.group_by_seq`)."""
        return group_by_seq(self.records)

    def check_causality(self) -> list[TraceViolation]:
        """Rendezvous handshake ordering, per message ``seq``."""
        out = []
        for seq, spans in sorted(self.by_seq().items()):
            steps: dict[str, list[TraceRecord]] = {}
            for r in spans:
                steps.setdefault(r.label, []).append(r)

            def first(label):
                group = steps.get(label)
                return group[0] if group else None

            def bad(msg, *recs):
                out.append(TraceViolation(
                    "causality", f"seq {seq}: {msg}",
                    span_ids=tuple(r.span_id for r in recs),
                    t=min(r.t_start for r in recs)))

            prep, rts, cts = (first("sender_prepare"), first("rts"),
                              first("cts"))
            if rts is not None and prep is not None \
                    and rts.t_start < prep.t_start - EPS:
                bad("rts sent before sender_prepare began", rts, prep)
            if cts is not None and rts is not None \
                    and cts.t_start < rts.t_start - EPS:
                bad("cts sent before rts", cts, rts)
            rprep = first("receiver_prepare")
            if rprep is not None and rts is not None \
                    and rprep.t_start < rts.t_start - EPS:
                bad("receiver_prepare began before rts arrived", rprep, rts)
            wires = steps.get("wire_transfer", [])
            if cts is not None:
                for w in wires:
                    if w.t_start < cts.t_end - EPS:
                        bad("wire_transfer started before cts completed",
                            w, cts)
            wire_by_part = {r.meta.get("part"): r for r in wires
                            if "part" in r.meta}
            for rc in steps.get("receiver_complete", []):
                wire = wire_by_part.get(rc.meta.get("part"))
                if wire is None and wires:
                    wire = min(wires, key=lambda r: (r.t_end, r.span_id))
                if wire is not None and rc.t_start < wire.t_end - EPS:
                    bad("receiver_complete began before its wire transfer "
                        "landed", rc, wire)
        return out

    def check_tiling(self) -> list[TraceViolation]:
        """Critical-path segments of every message must sum exactly to
        its end-to-end latency."""
        from repro.analysis.critpath import CritPathAnalyzer

        out = []
        cp = CritPathAnalyzer(_RecordView(self.records))
        for msg in cp.messages():
            covered = sum(s.duration for s in msg.segments)
            if abs(covered - msg.latency) > _TILING_TOL:
                out.append(TraceViolation(
                    "tiling",
                    f"seq {msg.seq}: critical-path segments cover "
                    f"{covered:.9f}s of a {msg.latency:.9f}s message",
                    span_ids=(), t=msg.t_start))
            prev = msg.t_start
            for seg in msg.segments:
                if abs(seg.t_start - prev) > _TILING_TOL:
                    out.append(TraceViolation(
                        "tiling",
                        f"seq {msg.seq}: gap in critical path between "
                        f"{prev:.9f} and {seg.t_start:.9f}",
                        span_ids=(seg.span.span_id,), t=prev))
                prev = seg.t_end
        return out

    def check_collectives(self) -> list[TraceViolation]:
        """Keep-compressed collective causality (see module docstring)."""
        out = []
        # collective-category spans, per rank
        coll_spans: dict[int, list[TraceRecord]] = {}
        for r in self.records:
            if r.category == "collective" and r.rank is not None:
                coll_spans.setdefault(r.rank, []).append(r)
        # origin_seqs minted by a pack or a compressed-domain reduction
        origins = {r.meta["origin_seq"] for r in self.records
                   if r.label in ("pack_wire", "reduce_wire")
                   and "origin_seq" in r.meta}

        def contained(rec) -> bool:
            return any(c.t_start - EPS <= rec.t_start <= c.t_end + EPS
                       for c in coll_spans.get(rec.rank, ()))

        for rec in self.records:
            if rec.category != "pipeline" or "origin_seq" not in rec.meta:
                continue
            if rec.meta["origin_seq"] not in origins:
                out.append(TraceViolation(
                    "collective",
                    f"span {rec.span_id} ({rec.label}) carries "
                    f"origin_seq {rec.meta['origin_seq']} but no "
                    f"pack_wire/reduce_wire span minted it",
                    span_ids=(rec.span_id,), t=rec.t_start))
            if "attempt" in rec.meta:
                continue  # retransmits legitimately outlive the collective
            if rec.rank is not None and not contained(rec):
                out.append(TraceViolation(
                    "collective",
                    f"span {rec.span_id} ({rec.label}, rank {rec.rank}) "
                    f"carries origin_seq {rec.meta['origin_seq']} but "
                    f"starts outside every collective span on its rank",
                    span_ids=(rec.span_id,), t=rec.t_start))

        # relayed hops must stamp the originating seq on every wire span
        for seq, spans in sorted(self.by_seq().items()):
            labels = {r.label for r in spans}
            if "sender_prepare" in labels:
                continue  # plain rendezvous, not a relayed wire image
            if not any("origin_seq" in r.meta for r in spans):
                continue  # not a wire hop at all (e.g. eager control)
            for r in spans:
                if r.label in ("rts", "wire_transfer", "receiver_complete") \
                        and "origin_seq" not in r.meta:
                    out.append(TraceViolation(
                        "collective",
                        f"seq {seq}: relayed {r.label} span {r.span_id} "
                        f"dropped the originating seq",
                        span_ids=(r.span_id,), t=r.t_start))
        return out

    def check_liveness(self) -> list[TraceViolation]:
        """No span may be attributed to a rank after its fail-stop kill
        (see module docstring).  Trivially empty for kill-free traces."""
        kills: dict[int, float] = {}
        for r in self.records:
            if r.label == "rank_kill" and r.rank is not None:
                t = kills.get(r.rank)
                kills[r.rank] = r.t_start if t is None else min(t, r.t_start)
        if not kills:
            return []
        out = []
        for rec in self.records:
            killed_at = kills.get(rec.rank)
            if killed_at is None or rec.track == "faults":
                continue
            if rec.t_start > killed_at + EPS:
                out.append(TraceViolation(
                    "liveness",
                    f"span {rec.span_id} ({rec.category}/{rec.label}) is "
                    f"attributed to rank {rec.rank} at {rec.t_start:.9f}, "
                    f"after its fail-stop kill at {killed_at:.9f}",
                    span_ids=(rec.span_id,), t=rec.t_start))
        return out

    def check_all(self) -> list[TraceViolation]:
        """All six checks, in a stable order."""
        return (self.check_serial_lanes() + self.check_containment()
                + self.check_causality() + self.check_tiling()
                + self.check_collectives() + self.check_liveness())
