"""Top-level convenience for building simulated clusters.

``quick_cluster`` wires together a named machine preset (Longhorn,
Frontera-Liquid, Lassen, RI2, Sierra) into a ready-to-run
:class:`repro.mpi.cluster.Cluster`.
"""

from __future__ import annotations

__all__ = ["quick_cluster"]


def quick_cluster(machine: str = "longhorn", nodes: int = 2, gpus_per_node: int = 1):
    """Build a :class:`repro.mpi.cluster.Cluster` from a machine preset.

    Parameters
    ----------
    machine:
        One of the presets in :mod:`repro.network.presets`
        (``"longhorn"``, ``"frontera-liquid"``, ``"lassen"``, ``"ri2"``,
        ``"sierra"``).
    nodes:
        Number of nodes to instantiate.
    gpus_per_node:
        GPUs per node (bounded by the preset's physical maximum).
    """
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset

    preset = machine_preset(machine)
    return Cluster(preset=preset, nodes=nodes, gpus_per_node=gpus_per_node)
