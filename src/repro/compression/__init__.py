"""GPU compression algorithms (real implementations) and their models.

The paper enhances two publicly available GPU compressors:

* **MPC** (Yang et al., IEEE Cluster 2015) — lossless, floating-point.
  Pipeline: last-*n*-th-value subtraction (the *dimensionality*
  parameter), per-block bit transposition, and zero elimination.
* **ZFP** (Lindstrom, TVCG 2014) — lossy, fixed-rate.  4-value blocks,
  shared exponent, an integer lifting transform, negabinary
  conversion, and bit-plane truncation at *rate* bits/value.

Both are implemented here, bit-for-bit invertible (MPC) /
error-bounded (ZFP), fully vectorized with numpy.  An FPC-style delta
codec represents the CPU-based comparators of the paper's Table I, and
a passthrough codec serves as the no-compression control.

Compression *ratios* produced by this package are real measurements.
GPU execution *time* is provided separately by
:mod:`repro.compression.perfmodel`, calibrated to the paper's Table III
throughputs, so the simulator can charge realistic kernel durations.
"""

from repro.compression.base import CompressedData, Compressor
from repro.compression.mpc import MpcCompressor
from repro.compression.zfp import ZfpCompressor
from repro.compression.fpc import FpcCompressor
from repro.compression.null import NullCompressor
from repro.compression.registry import available, feature_table, get_compressor, register
from repro.compression.perfmodel import KernelCostModel, kernel_cost_model_for

__all__ = [
    "CompressedData",
    "Compressor",
    "MpcCompressor",
    "ZfpCompressor",
    "FpcCompressor",
    "NullCompressor",
    "available",
    "feature_table",
    "get_compressor",
    "register",
    "KernelCostModel",
    "kernel_cost_model_for",
]
