"""Compressor interface and compressed-message container.

Mirrors the paper's framework split: *control parameters* (the header
field ``A`` — algorithm, dtype, element count, algorithm knobs) travel
in the MPI header piggybacked on the RTS packet, while the *result
metadata* (field ``B`` — compressed size, per-partition sizes) is
produced by the kernel.  :class:`CompressedData` carries both alongside
the payload so that a receiver can reconstruct the original array.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.errors import CompressionError

__all__ = ["Compressor", "CompressedData"]


@dataclass
class CompressedData:
    """A compressed message plus everything needed to restore it.

    Attributes
    ----------
    algorithm:
        Registry name of the compressor that produced the payload.
    payload:
        The compressed bytes as a contiguous ``uint8`` array.
    n_elements:
        Element count of the original array.
    dtype:
        Original numpy dtype (``float32``/``float64``).
    params:
        Algorithm control parameters (header field ``A``), e.g.
        ``{"dimensionality": 2}`` for MPC or ``{"rate": 8}`` for ZFP.
    meta:
        Kernel-produced metadata (header field ``B``), e.g. the exact
        compressed size; for partitioned MPC-OPT the per-partition
        compressed sizes live here.
    """

    algorithm: str
    payload: np.ndarray
    n_elements: int
    dtype: np.dtype
    params: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.payload = np.ascontiguousarray(self.payload, dtype=np.uint8)
        self.dtype = np.dtype(self.dtype)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes."""
        return int(self.payload.nbytes)

    @property
    def original_nbytes(self) -> int:
        return int(self.n_elements * self.dtype.itemsize)

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed); > 1 is a win."""
        if self.nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.nbytes


class Compressor(ABC):
    """Interface every codec implements.

    Class attributes mirror the feature columns of the paper's Table I
    so :func:`repro.compression.registry.feature_table` can regenerate
    it.
    """

    #: registry name
    name: ClassVar[str] = ""
    #: True if decompression restores the input bit-for-bit
    lossless: ClassVar[bool] = True
    #: Table I column: has a GPU (CUDA) implementation
    gpu_supported: ClassVar[bool] = False
    #: Table I column: handles single-precision floats
    single_precision: ClassVar[bool] = True
    #: Table I column: handles double-precision floats
    double_precision: ClassVar[bool] = True
    #: Table I column: high-throughput (suitable for on-the-fly use)
    high_throughput: ClassVar[bool] = False
    #: Table I column: efficient MPI (on-the-fly) support — only the
    #: proposed OPT schemes set this
    mpi_support: ClassVar[bool] = False
    #: hZCCL-style reduction capability: the codec can combine two
    #: compressed payloads in the partially-decoded domain, producing
    #: bits identical to ``compress(op(decompress(a), decompress(b)))``.
    #: Only meaningful for lossless codecs (a lossy codec would stack a
    #: second quantization error on the already-lossy operands), so the
    #: reduction collectives consult this flag before routing sums
    #: through :meth:`reduce_compressed`.
    reduce_supported: ClassVar[bool] = False

    #: dtypes accepted by compress()
    supported_dtypes: ClassVar[tuple] = (np.float32, np.float64)

    @abstractmethod
    def compress(self, data: np.ndarray) -> CompressedData:
        """Compress a 1-D floating-point array into a payload."""

    @abstractmethod
    def decompress(self, comp: CompressedData) -> np.ndarray:
        """Restore (exactly, or within the codec's error bound) the
        original array from ``comp``."""

    # -- shared validation ----------------------------------------------
    def _check_input(self, data: np.ndarray) -> np.ndarray:
        if not isinstance(data, np.ndarray):
            raise CompressionError(f"{self.name}: expected ndarray, got {type(data).__name__}")
        if data.dtype.type not in self.supported_dtypes:
            raise CompressionError(
                f"{self.name}: unsupported dtype {data.dtype}; "
                f"supported: {[np.dtype(t).name for t in self.supported_dtypes]}"
            )
        if data.ndim != 1:
            data = data.reshape(-1)
        return np.ascontiguousarray(data)

    def _check_payload(self, comp: CompressedData) -> None:
        if comp.algorithm != self.name:
            raise CompressionError(
                f"payload was produced by {comp.algorithm!r}, not {self.name!r}"
            )

    def reduce_compressed(
        self, a: CompressedData, b: CompressedData, op: Any = np.add
    ) -> CompressedData:
        """Combine two compressed payloads without a full round trip.

        The contract is strict: the result must be bit-identical to
        ``compress(op(decompress(a), decompress(b)))``.  The default
        implementation realises exactly that contract by decoding both
        operands, applying ``op`` and re-encoding; codecs that set
        :attr:`reduce_supported` advertise that this is *cheap* on the
        device (hZCCL fuses the partial decode, the elementwise op and
        the re-encode into one kernel launch) — the simulator charges
        the fused-kernel time from
        :meth:`repro.compression.perfmodel.KernelCostModel.reduce_time`
        instead of separate decompress + compress launches.
        """
        if not self.reduce_supported:
            raise CompressionError(
                f"{self.name}: codec does not support compressed-domain reduction"
            )
        self._check_payload(a)
        self._check_payload(b)
        if a.n_elements != b.n_elements or a.dtype != b.dtype:
            raise CompressionError(
                f"{self.name}: reduce_compressed operand mismatch "
                f"({a.n_elements}x{a.dtype} vs {b.n_elements}x{b.dtype})"
            )
        return self.compress(op(self.decompress(a), self.decompress(b)))

    def expected_compressed_bytes(self, n_elements: int, itemsize: int) -> int | None:
        """For fixed-rate codecs, the exact compressed size; ``None``
        when the size is data-dependent (the paper exploits this: ZFP's
        predictable size avoids a device->host size copy)."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
