"""Content-addressed memoization of codec results.

Collectives forward the *same* payload along many hops (a 16-rank
binomial bcast compresses one buffer 15 times), and benchmark sweeps
re-send identical buffers.  The simulator charges the modelled kernel
time for every (de)compression regardless; this cache only removes the
*redundant host-side numpy work*, so it changes wall-clock speed of
the simulation, never its results.

Keys are BLAKE2b digests of the raw bytes plus the codec identity, so
logically-equal payloads hit regardless of object identity.  Entries
are LRU-bounded by total byte size.  ``decompress`` hits return a fresh
copy — callers are allowed to mutate received arrays.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.compression.base import CompressedData, Compressor

__all__ = ["CodecCache", "GLOBAL_CODEC_CACHE"]


def _digest(payload: np.ndarray) -> bytes:
    return hashlib.blake2b(np.ascontiguousarray(payload).view(np.uint8),
                           digest_size=16).digest()


class CodecCache:
    """LRU cache over compress/decompress results."""

    def __init__(self, max_bytes: int = 512 << 20):
        self.max_bytes = max_bytes
        self._store: OrderedDict[tuple, object] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def _key(self, op: str, codec: Compressor, params: tuple, digest: bytes) -> tuple:
        return (op, codec.name, params, digest)

    def _put(self, key: tuple, value, nbytes: int) -> None:
        self._store[key] = (value, nbytes)
        self._store.move_to_end(key)
        self._bytes += nbytes
        while self._bytes > self.max_bytes and self._store:
            _, (_, freed) = self._store.popitem(last=False)
            self._bytes -= freed

    def _get(self, key: tuple):
        hit = self._store.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return hit[0]

    @staticmethod
    def _codec_params(codec: Compressor) -> tuple:
        params = []
        for attr in ("dimensionality", "rate"):
            if hasattr(codec, attr):
                params.append((attr, getattr(codec, attr)))
        return tuple(params)

    def compress(self, codec: Compressor, data: np.ndarray) -> CompressedData:
        """Memoized ``codec.compress(data)``."""
        if getattr(codec, "cache_unsafe", False):
            # Fault-wrapped codecs are intentionally non-deterministic
            # per call; memoizing them would both skip injected faults
            # and poison the cache for clean codecs of the same name.
            return codec.compress(data)
        key = self._key("c", codec, self._codec_params(codec),
                        _digest(data) + data.dtype.char.encode())
        cached = self._get(key)
        if cached is not None:
            return cached
        comp = codec.compress(data)
        self._put(key, comp, comp.nbytes + 64)
        return comp

    def decompress(self, codec: Compressor, comp: CompressedData) -> np.ndarray:
        """Memoized ``codec.decompress(comp)`` (returns a fresh copy)."""
        if getattr(codec, "cache_unsafe", False):
            return codec.decompress(comp)
        key = self._key(
            "d", codec, self._codec_params(codec) + ((comp.n_elements,)),
            _digest(comp.payload) + comp.dtype.char.encode(),
        )
        cached = self._get(key)
        if cached is not None:
            return cached.copy()
        out = codec.decompress(comp)
        self._put(key, out, out.nbytes + 64)
        return out.copy()

    def clear(self) -> None:
        self._store.clear()
        self._bytes = 0
        self.hits = self.misses = 0


#: process-wide cache shared by every CompressionEngine
GLOBAL_CODEC_CACHE = CodecCache()
