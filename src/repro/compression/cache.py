"""Content-addressed memoization of codec results.

Collectives forward the *same* payload along many hops (a 16-rank
binomial bcast compresses one buffer 15 times), and benchmark sweeps
re-send identical buffers.  The simulator charges the modelled kernel
time for every (de)compression regardless; this cache only removes the
*redundant host-side numpy work*, so it changes wall-clock speed of
the simulation, never its results.

Lookups are keyed by a CRC-32 fingerprint of the raw bytes plus the
codec identity, then confirmed by an exact byte comparison against a
reference copy stored with the entry, so a fingerprint collision can
only ever cause a spurious miss — never a wrong result.  CRC-32 runs
at memory speed (hardware CLMUL), which matters because the compress
side hashes every outgoing send buffer.  Entries are LRU-bounded by
total byte size (reference copies included).  ``decompress`` hits
return a fresh copy — callers are allowed to mutate received arrays.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.compression.base import CompressedData, Compressor

__all__ = ["CodecCache", "GLOBAL_CODEC_CACHE"]


def _raw_view(payload: np.ndarray) -> np.ndarray:
    """Flat contiguous uint8 view of an array's byte image (no copy
    when the input is already contiguous)."""
    return np.ascontiguousarray(payload).view(np.uint8).reshape(-1)


class CodecCache:
    """LRU cache over compress/decompress results."""

    def __init__(self, max_bytes: int = 512 << 20):
        self.max_bytes = max_bytes
        # key -> (value, entry_bytes, reference_byte_image)
        self._store: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.bytes_saved = 0

    def _key(self, op: str, codec: Compressor, params: tuple, crc: int,
             nbytes: int) -> tuple:
        return (op, codec.name, params, crc, nbytes)

    def _put(self, key: tuple, value, nbytes: int, ref: np.ndarray) -> None:
        prev = self._store.pop(key, None)
        if prev is not None:
            self._bytes -= prev[1]
        self._store[key] = (value, nbytes, ref)
        self._bytes += nbytes
        while self._bytes > self.max_bytes and self._store:
            _, (_, freed, _) = self._store.popitem(last=False)
            self._bytes -= freed

    def _get(self, key: tuple, raw: np.ndarray):
        hit = self._store.get(key)
        if hit is None or not np.array_equal(hit[2], raw):
            # A mismatched byte image under a matching fingerprint is a
            # CRC collision: treat as a miss (the put will replace it).
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        self.bytes_saved += raw.nbytes
        return hit[0]

    @staticmethod
    def _codec_params(codec: Compressor) -> tuple:
        params = []
        for attr in ("dimensionality", "rate"):
            if hasattr(codec, attr):
                params.append((attr, getattr(codec, attr)))
        return tuple(params)

    def compress(self, codec: Compressor, data: np.ndarray) -> CompressedData:
        """Memoized ``codec.compress(data)``."""
        if getattr(codec, "cache_unsafe", False):
            # Fault-wrapped codecs are intentionally non-deterministic
            # per call; memoizing them would both skip injected faults
            # and poison the cache for clean codecs of the same name.
            return codec.compress(data)
        raw = _raw_view(data)
        crc = zlib.crc32(raw)
        key = self._key("c", codec,
                        self._codec_params(codec) + (data.dtype.char,), crc,
                        raw.nbytes)
        cached = self._get(key, raw)
        if cached is not None:
            return cached
        comp = codec.compress(data)
        # The fingerprint doubles as the integrity checksum of the
        # source bytes, so the send path can reuse it instead of
        # re-hashing the same buffer (see CompressionEngine._plan_crc).
        comp.meta.setdefault("src_crc32", crc & 0xFFFFFFFF)
        # The reference must be a snapshot: the caller may mutate its
        # buffer in place and re-send, and a stale alias would then
        # confirm a hit against bytes the stored result was not
        # computed from.
        self._put(key, comp, comp.nbytes + raw.nbytes + 64, raw.copy())
        return comp

    def decompress(self, codec: Compressor, comp: CompressedData) -> np.ndarray:
        """Memoized ``codec.decompress(comp)`` (returns a fresh copy)."""
        if getattr(codec, "cache_unsafe", False):
            return codec.decompress(comp)
        raw = _raw_view(comp.payload)
        key = self._key(
            "d", codec,
            self._codec_params(codec) + (comp.n_elements, comp.dtype.char),
            zlib.crc32(raw), raw.nbytes,
        )
        cached = self._get(key, raw)
        if cached is not None:
            return cached.copy()
        out = codec.decompress(comp)
        self._put(key, out, out.nbytes + raw.nbytes + 64, raw.copy())
        return out.copy()

    def stats(self) -> dict:
        """Counter snapshot: cache effectiveness for profiling reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_saved": self.bytes_saved,
            "entries": len(self._store),
            "bytes": self._bytes,
        }

    def clear(self) -> None:
        self._store.clear()
        self._bytes = 0
        self.hits = self.misses = self.bytes_saved = 0


#: process-wide cache shared by every CompressionEngine
GLOBAL_CODEC_CACHE = CodecCache()
