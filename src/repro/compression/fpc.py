"""FPC-style lossless delta codec (CPU comparator).

Represents the CPU-based lossless compressors of the paper's Table I
(FPC, fpzip, SPDP, ...).  The original FPC (Burtscher & Ratanaworabhan,
DCC 2007) uses sequential FCM/DFCM hash predictors, which cannot be
vectorized; this implementation substitutes a *previous-value*
predictor (equivalent to MPC's dimensionality-1 LNV) followed by FPC's
signature encoding: XOR against the prediction, count leading zero
bytes, store a 4-bit code plus only the non-zero suffix bytes.

The substitution preserves what the paper uses FPC for — a lossless
CPU-throughput comparator with data-dependent ratio — while remaining
bit-exact and fast in numpy.

Payload layout: ``codes`` (4 bits/value, two values per byte, padded)
followed by the concatenated suffix bytes.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.errors import CompressionError

__all__ = ["FpcCompressor"]


class FpcCompressor(Compressor):
    """Lossless leading-zero-byte codec with previous-value prediction."""

    name = "fpc"
    lossless = True
    gpu_supported = False
    single_precision = True
    double_precision = True
    high_throughput = False
    mpi_support = False

    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        nbytes_per = data.dtype.itemsize
        udtype = np.uint32 if nbytes_per == 4 else np.uint64
        words = data.view(udtype)
        pred = np.zeros_like(words)
        pred[1:] = words[:-1]
        resid = words ^ pred

        # Big-endian byte view: leading zero bytes come first.
        rb = resid.astype(f">u{nbytes_per}").view(np.uint8).reshape(-1, nbytes_per)
        nz = rb != 0
        any_nz = nz.any(axis=1)
        first_nz = np.argmax(nz, axis=1)
        # code = number of leading zero bytes; all-zero -> nbytes_per.
        codes = np.where(any_nz, first_nz, nbytes_per).astype(np.uint8)

        keep = np.arange(nbytes_per) >= codes[:, None]  # suffix mask
        suffix = rb[keep]

        # Pack two 4-bit codes per byte (nbytes_per <= 8 -> codes fit).
        padded = codes if codes.size % 2 == 0 else np.concatenate([codes, [np.uint8(0)]])
        code_bytes = (padded[0::2] << 4) | padded[1::2]

        payload = np.concatenate([code_bytes.astype(np.uint8), suffix.astype(np.uint8)])
        return CompressedData(
            algorithm=self.name,
            payload=payload,
            n_elements=data.size,
            dtype=data.dtype,
            params={},
            meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        n = comp.n_elements
        dtype = comp.dtype
        if n == 0:
            return np.empty(0, dtype=dtype)
        nbytes_per = dtype.itemsize
        udtype = np.uint32 if nbytes_per == 4 else np.uint64
        n_code_bytes = -(-n // 2)
        payload = comp.payload
        if payload.size < n_code_bytes:
            raise CompressionError("fpc payload truncated (codes)")
        code_bytes = payload[:n_code_bytes]
        codes = np.empty(n_code_bytes * 2, dtype=np.uint8)
        codes[0::2] = code_bytes >> 4
        codes[1::2] = code_bytes & 0x0F
        codes = codes[:n]
        if codes.max(initial=0) > nbytes_per:
            raise CompressionError("fpc payload corrupt: code out of range")

        keep = np.arange(nbytes_per) >= codes[:, None]
        n_suffix = int(keep.sum())
        if payload.size != n_code_bytes + n_suffix:
            raise CompressionError(
                f"fpc payload size mismatch: expected {n_code_bytes + n_suffix}, "
                f"have {payload.size}"
            )
        rb = np.zeros((n, nbytes_per), dtype=np.uint8)
        rb[keep] = payload[n_code_bytes:]
        resid = rb.reshape(-1).view(f">u{nbytes_per}").astype(udtype)

        # Undo the previous-value XOR chain: w[i] = r[i] ^ w[i-1] is a
        # prefix-XOR scan; vectorize via repeated doubling.
        words = resid.copy()
        shift = 1
        while shift < n:
            words[shift:] ^= words[:-shift]
            shift <<= 1
        return words.view(dtype).copy()
