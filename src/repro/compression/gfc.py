"""GFC-style lossless double-precision codec.

Represents GFC (O'Neil & Burtscher, GPGPU-4 2011) from the paper's
Table I: the first GPU floating-point compressor, double-precision
only, built on warp-parallel chunking with a last-value delta and
leading-zero-byte elimination.

This implementation follows that pipeline: int64 subtraction against
the previous double, zigzag to keep small negative deltas short, a
4-bit leading-zero-byte count per value (two per byte), and the
remaining significant bytes.  Bit-exact lossless for all doubles,
including NaN/Inf payload bits.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.errors import CompressionError

__all__ = ["GfcCompressor"]


class GfcCompressor(Compressor):
    """Lossless delta + leading-zero-byte codec for float64 only."""

    name = "gfc"
    lossless = True
    gpu_supported = True
    single_precision = False
    double_precision = True
    high_throughput = True
    mpi_support = False
    supported_dtypes = (np.float64,)

    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        words = data.view(np.uint64)
        delta = words.copy()
        if words.size > 1:
            delta[1:] -= words[:-1]
        # Zigzag so negative deltas do not sign-extend to 8 bytes.
        one = np.uint64(1)
        sign = (delta >> np.uint64(63)) & one
        zz = (delta << one) ^ (np.uint64(0) - sign)

        zb = zz.astype(">u8").view(np.uint8).reshape(-1, 8)
        nzmask = zb != 0
        any_nz = nzmask.any(axis=1)
        first_nz = np.argmax(nzmask, axis=1)
        codes = np.where(any_nz, first_nz, 8).astype(np.uint8)  # 0..8 lz bytes

        keep = np.arange(8) >= codes[:, None]
        suffix = zb[keep]

        padded = codes if codes.size % 2 == 0 else np.concatenate([codes, [np.uint8(0)]])
        code_bytes = (padded[0::2] << 4) | padded[1::2]
        payload = np.concatenate([code_bytes.astype(np.uint8), suffix.astype(np.uint8)])
        return CompressedData(
            algorithm=self.name, payload=payload, n_elements=data.size,
            dtype=data.dtype, meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        n = comp.n_elements
        if n == 0:
            return np.empty(0, dtype=np.float64)
        payload = comp.payload
        n_code_bytes = -(-n // 2)
        if payload.size < n_code_bytes:
            raise CompressionError("gfc payload truncated (codes)")
        code_bytes = payload[:n_code_bytes]
        codes = np.empty(n_code_bytes * 2, dtype=np.uint8)
        codes[0::2] = code_bytes >> 4
        codes[1::2] = code_bytes & 0x0F
        codes = codes[:n]
        if codes.max(initial=0) > 8:
            raise CompressionError("gfc payload corrupt: code out of range")

        keep = np.arange(8) >= codes[:, None]
        n_suffix = int(keep.sum())
        if payload.size != n_code_bytes + n_suffix:
            raise CompressionError("gfc payload size mismatch")
        zb = np.zeros((n, 8), dtype=np.uint8)
        zb[keep] = payload[n_code_bytes:]
        zz = zb.reshape(-1).view(">u8").astype(np.uint64)

        one = np.uint64(1)
        delta = (zz >> one) ^ (np.uint64(0) - (zz & one))
        words = np.cumsum(delta, dtype=np.uint64)
        return words.view(np.float64).copy()
