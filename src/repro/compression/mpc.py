"""MPC — Massively Parallel Compression (lossless), vectorized.

Faithful reimplementation of the MPC pipeline (Yang, Mukka, Hesaaraki,
Burtscher — *MPC: A Massively Parallel Compression Algorithm for
Scientific Data*, IEEE Cluster 2015) used by the paper as its lossless
codec:

1. **LNV subtraction** ("last n-th value"): reinterpret each float as
   an unsigned word and subtract the word ``dimensionality`` positions
   earlier (modulo 2^w).  For multi-field interleaved data the right
   dimensionality makes residuals tiny.  Residuals are then zigzag
   encoded (small negative -> small unsigned) so that sign extension
   does not defeat the zero elimination stage — this plays the role of
   the sign-handling component in MPC's synthesized pipeline.
2. **Bit transposition**: within each block of *w* words (w = 32 for
   singles, 64 for doubles), transpose the w x w bit matrix.  Small
   residuals touch few bit positions, so most transposed words become
   all-zero.
3. **Zero elimination**: emit a bitmap marking non-zero transposed
   words followed by only the non-zero words.

All three stages are numpy-vectorized (the bit transpose uses
``unpackbits``/``packbits`` over big-endian views) and the codec is
bit-for-bit lossless — including NaNs, infinities, negative zeros and
denormals, since it only ever manipulates raw bit patterns.

Payload layout (little-endian):

====================  =======================================
bitmap                ``ceil(n_padded/8)`` bytes, MSB-first
non-zero words        4 (or 8) bytes each, little-endian
====================  =======================================

``n_elements`` and ``dimensionality`` travel out-of-band in
:class:`~repro.compression.base.CompressedData.params` exactly as the
paper ships them in the RTS-piggybacked header.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.errors import CompressionError

__all__ = ["MpcCompressor", "bit_transpose"]


def bit_transpose(words: np.ndarray) -> np.ndarray:
    """Transpose the bit matrix of each block of *w* *w*-bit words.

    ``words`` must be a 1-D uint32 or uint64 array whose length is a
    multiple of the word width (32 or 64).  The transform is an
    involution: applying it twice restores the input.

    Implemented as the mask-and-shift "delta swap" transpose (Hacker's
    Delight, 7-3) vectorized across all blocks at once: log2(w) passes,
    each a handful of elementwise ops, with no 8x bit-expansion.
    """
    if words.dtype == np.uint32:
        w = 32
    elif words.dtype == np.uint64:
        w = 64
    else:
        raise CompressionError(f"bit_transpose expects uint32/uint64, got {words.dtype}")
    if words.size % w:
        raise CompressionError(f"length {words.size} is not a multiple of the word width {w}")
    nblocks = words.size // w
    if nblocks == 0:
        return words.copy()
    # Bit-row-major layout: a[r] holds bit-row r of every block, one
    # long contiguous row.  Pairing rows r and r+j then slices whole
    # contiguous chunks (even at j == 1), where the block-major layout
    # would degrade to stride-j element access and defeat SIMD.
    a = np.ascontiguousarray(words.reshape(nblocks, w).T)
    dt = words.dtype.type
    full = (1 << w) - 1
    m = full >> (w // 2)  # 0x0000FFFF for w=32
    j = w // 2
    while j:
        mm = dt(m)
        jj = dt(j)
        # Rows with (row & j) == 0 pair with row + j; reshaping makes
        # both groups plain slices (views), so the swap is in place.
        b = a.reshape(w // (2 * j), 2, j, nblocks)
        lo = b[:, 0]
        hi = b[:, 1]
        t = (lo ^ (hi >> jj)) & mm
        lo ^= t
        hi ^= t << jj
        j >>= 1
        if j:
            m = (m ^ (m << j)) & full
    return np.ascontiguousarray(a.T).reshape(-1)


class MpcCompressor(Compressor):
    """Lossless MPC codec with a tunable ``dimensionality``.

    Parameters
    ----------
    dimensionality:
        The LNV stride — the distance (in values) to the prior value
        used as the prediction.  Interleaved d-field datasets compress
        best at their native d.  Must be >= 1; the MPC paper explores
        1..64, we accept any positive stride.
    """

    name = "mpc"
    lossless = True
    gpu_supported = True
    single_precision = True
    double_precision = True
    high_throughput = True
    mpi_support = False  # the naive library; MPC-OPT flips this
    #: MPC is lossless, so summing in the partially-decoded domain
    #: (undo zero-elimination + bit transpose, add, re-encode — fused
    #: hZCCL-style) reproduces compress(add(dec(a), dec(b))) exactly.
    reduce_supported = True

    def __init__(self, dimensionality: int = 1):
        if dimensionality < 1:
            raise CompressionError(f"dimensionality must be >= 1, got {dimensionality}")
        self.dimensionality = int(dimensionality)

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _uint_dtype(dtype: np.dtype):
        return np.uint32 if dtype.itemsize == 4 else np.uint64

    def _predict(self, words: np.ndarray) -> np.ndarray:
        """Forward LNV residual, zigzag encoded.

        r[i] = zigzag(w[i] - w[i-dim] mod 2^w); zigzag maps signed
        residuals to unsigned with small magnitudes staying small.
        """
        d = self.dimensionality
        r = words.copy()
        if words.size > d:
            r[d:] -= words[:-d]
        w_bits = words.dtype.itemsize * 8
        # zigzag = (r << 1) ^ (r >>> (w-1) arithmetic); the arithmetic
        # shift through a signed view yields the all-ones/zero extension
        # in one pass.
        sdt = np.int32 if w_bits == 32 else np.int64
        ext = (r.view(sdt) >> (w_bits - 1)).view(r.dtype)
        r <<= r.dtype.type(1)
        r ^= ext
        return r

    def _unpredict(self, residuals: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_predict`: un-zigzag then per-phase
        modular cumsum.

        All ``d`` phase cumsums run as one axis-0 cumsum over a
        ``(m, d)`` reshape (zero-padded tail), instead of ``d`` strided
        passes — the zero padding leaves the in-range prefix sums
        untouched.
        """
        one = residuals.dtype.type(1)
        w_bits = residuals.dtype.itemsize * 8
        sdt = np.int32 if w_bits == 32 else np.int64
        # un-zigzag = (x >> 1) ^ -(x & 1); the sign extension comes from
        # parking the low bit in the sign position and arithmetic-shifting
        # it back down.
        ext = residuals << residuals.dtype.type(w_bits - 1)
        sext = ext.view(sdt)
        sext >>= w_bits - 1
        r = residuals >> one
        r ^= ext
        d = self.dimensionality
        if d == 1:
            return np.cumsum(r, dtype=r.dtype)
        n = r.size
        m = -(-n // d)
        buf = np.zeros(m * d, dtype=r.dtype)
        buf[:n] = r
        return np.cumsum(
            buf.reshape(m, d), axis=0, dtype=r.dtype).reshape(-1)[:n]

    # -- API --------------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        udtype = self._uint_dtype(data.dtype)
        w = data.dtype.itemsize * 8
        words = data.view(udtype)
        residuals = self._predict(words)
        # Pad to a whole number of w-word blocks with zero residuals.
        pad = (-residuals.size) % w
        if pad:
            buf = np.zeros(residuals.size + pad, dtype=udtype)
            buf[:residuals.size] = residuals
            residuals = buf
        transposed = bit_transpose(residuals)
        nonzero = transposed != 0
        bitmap = np.packbits(nonzero)
        payload = np.concatenate(
            [bitmap,
             transposed[nonzero].astype(f"<u{w // 8}", copy=False).view(np.uint8)]
        )
        return CompressedData(
            algorithm=self.name,
            payload=payload,
            n_elements=data.size,
            dtype=data.dtype,
            params={"dimensionality": self.dimensionality},
            meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        dim = int(comp.params.get("dimensionality", self.dimensionality))
        if dim != self.dimensionality:
            # Decompress with the stride it was compressed with.
            return MpcCompressor(dim).decompress(comp)
        n = comp.n_elements
        dtype = comp.dtype
        udtype = self._uint_dtype(dtype)
        w = dtype.itemsize * 8
        if n == 0:
            return np.empty(0, dtype=dtype)
        n_padded = -(-n // w) * w
        bitmap_bytes = -(-n_padded // 8)
        payload = comp.payload
        if payload.size < bitmap_bytes:
            raise CompressionError(
                f"mpc payload truncated: need >= {bitmap_bytes} bitmap bytes, have {payload.size}"
            )
        nonzero = np.unpackbits(payload[:bitmap_bytes])[:n_padded].view(np.bool_)
        nnz = int(np.count_nonzero(nonzero))
        word_bytes = w // 8
        expect = bitmap_bytes + nnz * word_bytes
        if payload.size != expect:
            raise CompressionError(
                f"mpc payload size mismatch: expected {expect} bytes, have {payload.size}"
            )
        transposed = np.zeros(n_padded, dtype=udtype)
        transposed[nonzero] = (
            payload[bitmap_bytes:].view(f"<u{word_bytes}").astype(udtype, copy=False)
        )
        residuals = bit_transpose(transposed)[:n]
        words = self._unpredict(residuals)
        return words.view(dtype).copy()

    def ratio_for(self, data: np.ndarray) -> float:
        """Convenience: the compression ratio achieved on ``data``."""
        return self.compress(data).ratio

    @staticmethod
    def best_dimensionality(data: np.ndarray, candidates=range(1, 9)) -> int:
        """Pick the dimensionality with the best ratio (paper Table III
        uses fine-tuned dimensionality per dataset)."""
        best_d, best_r = 1, -1.0
        for d in candidates:
            r = MpcCompressor(d).compress(data).ratio
            if r > best_r:
                best_d, best_r = d, r
        return best_d
