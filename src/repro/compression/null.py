"""Passthrough codec — the no-compression control."""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor

__all__ = ["NullCompressor"]


class NullCompressor(Compressor):
    """Stores the raw little-endian bytes; ratio is exactly 1."""

    name = "null"
    lossless = True
    gpu_supported = True
    single_precision = True
    double_precision = True
    high_throughput = True
    mpi_support = True
    reduce_supported = True  # payload *is* the data; reduction is a raw add

    def expected_compressed_bytes(self, n_elements: int, itemsize: int) -> int:
        return n_elements * itemsize

    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        return CompressedData(
            algorithm=self.name,
            payload=data.view(np.uint8).copy(),
            n_elements=data.size,
            dtype=data.dtype,
            meta={"compressed_bytes": int(data.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        return comp.payload.view(comp.dtype).copy()
