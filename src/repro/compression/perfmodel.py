"""GPU kernel cost models for the compression codecs.

The data path in this package is real (numpy) but the *time* a CUDA
kernel would take on the modelled GPU comes from here.  Throughputs are
calibrated to the paper's Table III (V100 measurements):

========  ==============  ==============
codec     compress        decompress
========  ==============  ==============
MPC       ~205 Gb/s       ~185 Gb/s
ZFP       ~450 Gb/s       ~730 Gb/s
========  ==============  ==============

(Gb/s of *uncompressed input* processed.)  Scaling across devices is by
SM count relative to the 80-SM V100.

Two effects central to the paper's Section IV are modelled explicitly:

* **Occupancy saturation** — effective throughput with ``b`` thread
  blocks is ``peak * b / (b + b_half)``; with ``b_half`` ~ 1/10 of the
  device, half the SMs already reach ~90% of peak — the observation
  ("runtime of half the SMs is roughly the same as full GPU") that
  motivates kernel decomposition.
* **Intra-kernel synchronization** — MPC's busy-wait barrier between
  thread blocks costs time linear in the number of blocks in the
  kernel; many small kernels beat one full-device kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.units import Gbps, us

__all__ = ["KernelCostModel", "kernel_cost_model_for", "MPC_V100", "ZFP_V100", "NULL_MODEL"]

_V100_SMS = 80


@dataclass(frozen=True)
class KernelCostModel:
    """Cost model for one codec on one device family.

    Attributes
    ----------
    compress_tp:
        Peak compression throughput, bytes of input per second, at full
        device occupancy on the reference (V100) part.
    decompress_tp:
        Peak decompression throughput (bytes of restored output/s).
    launch_overhead:
        Fixed CUDA kernel launch latency (seconds).
    sync_per_block:
        Per-thread-block busy-wait synchronization cost (seconds);
        non-zero only for MPC-style inter-block barriers.
    saturation_blocks:
        ``b_half`` of the occupancy curve, in thread blocks, on the
        reference part.
    """

    name: str
    compress_tp: float
    decompress_tp: float
    launch_overhead: float = us(5.0)
    sync_per_block: float = 0.0
    saturation_blocks: float = 8.0

    def _scale(self, sm_count: int) -> float:
        """Device capability relative to the 80-SM V100 reference."""
        return sm_count / _V100_SMS

    def occupancy(self, blocks: int, sm_count: int) -> float:
        """Fraction of device-peak throughput at ``blocks`` blocks."""
        if blocks < 1:
            raise ConfigError(f"kernel needs >= 1 block, got {blocks}")
        b_half = self.saturation_blocks * self._scale(sm_count)
        return blocks / (blocks + b_half)

    def compress_time(self, nbytes: int, blocks: int, sm_count: int) -> float:
        """Kernel duration for compressing ``nbytes`` of input using
        ``blocks`` thread blocks on a ``sm_count``-SM device."""
        tp = self.compress_tp * self._scale(sm_count) * self.occupancy(blocks, sm_count)
        return self.launch_overhead + nbytes / tp + self.sync_per_block * blocks

    def decompress_time(self, nbytes_out: int, blocks: int, sm_count: int) -> float:
        """Kernel duration for restoring ``nbytes_out`` of output."""
        tp = self.decompress_tp * self._scale(sm_count) * self.occupancy(blocks, sm_count)
        return self.launch_overhead + nbytes_out / tp + self.sync_per_block * blocks

    def reduce_time(self, nbytes: int, blocks: int, sm_count: int) -> float:
        """Duration of one fused hZCCL-style reduction kernel: partially
        decode both compressed operands, combine elementwise, and
        re-encode the result, all in a single launch.  Pays the decode
        and encode passes over ``nbytes`` of uncompressed data but only
        one launch and one block-synchronization epoch — versus the
        naive decompress + add + compress sequence's two launches, two
        sync epochs, and full-precision intermediate."""
        scale = self._scale(sm_count)
        occ = self.occupancy(blocks, sm_count)
        tp_d = self.decompress_tp * scale * occ
        tp_c = self.compress_tp * scale * occ
        return (self.launch_overhead + nbytes / tp_d + nbytes / tp_c
                + self.sync_per_block * blocks)


# Table III calibration (V100).  MPC's busy-wait barrier cost is chosen
# so a full-device (80-block) kernel pays ~24us of synchronization —
# consistent with the several-x win Fig 6 shows from decomposition.
MPC_V100 = KernelCostModel(
    name="mpc",
    compress_tp=Gbps(205.0),
    decompress_tp=Gbps(185.0),
    launch_overhead=us(5.0),
    sync_per_block=us(0.30),
    saturation_blocks=8.0,
)

ZFP_V100 = KernelCostModel(
    name="zfp",
    compress_tp=Gbps(450.0),
    decompress_tp=Gbps(730.0),
    launch_overhead=us(5.0),
    sync_per_block=0.0,
    saturation_blocks=8.0,
)

# FPC is a CPU codec: model single-core throughput per the FPC paper
# (~1-4 Gb/s); "blocks" are ignored via a flat occupancy curve.
FPC_CPU = KernelCostModel(
    name="fpc",
    compress_tp=Gbps(3.0),
    decompress_tp=Gbps(4.0),
    launch_overhead=0.0,
    sync_per_block=0.0,
    saturation_blocks=1e-9,
)

NULL_MODEL = KernelCostModel(
    name="null",
    compress_tp=float("inf"),
    decompress_tp=float("inf"),
    launch_overhead=0.0,
    sync_per_block=0.0,
    saturation_blocks=1e-9,
)

# GFC's title claims 75 Gb/s on 2011 hardware; scaled to V100-class
# parts it lands near MPC.  SZ's CUDA implementation (cuSZ-class) sits
# between MPC and ZFP.
GFC_V100 = KernelCostModel(
    name="gfc", compress_tp=Gbps(250.0), decompress_tp=Gbps(280.0),
    launch_overhead=us(5.0), sync_per_block=0.0, saturation_blocks=8.0,
)
SZ_V100 = KernelCostModel(
    name="sz", compress_tp=Gbps(320.0), decompress_tp=Gbps(500.0),
    launch_overhead=us(5.0), sync_per_block=0.0, saturation_blocks=8.0,
)

_MODELS = {
    "mpc": MPC_V100, "zfp": ZFP_V100, "fpc": FPC_CPU,
    "gfc": GFC_V100, "sz": SZ_V100, "null": NULL_MODEL,
}


def kernel_cost_model_for(algorithm: str) -> KernelCostModel:
    """Cost model for a codec by registry name."""
    try:
        return _MODELS[algorithm]
    except KeyError:
        raise ConfigError(
            f"no kernel cost model for {algorithm!r}; known: {sorted(_MODELS)}"
        ) from None
