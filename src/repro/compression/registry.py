"""Compressor registry and the paper's Table I feature matrix.

``get_compressor`` constructs codecs by name with keyword parameters
(the framework's header stores only the name + params, so both ends of
a link can reconstruct the same codec).  ``feature_table`` regenerates
the comparison matrix of the paper's Table I, including rows for
compressors surveyed but not reimplemented here.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.compression.base import Compressor
from repro.compression.fpc import FpcCompressor
from repro.compression.gfc import GfcCompressor
from repro.compression.mpc import MpcCompressor
from repro.compression.null import NullCompressor
from repro.compression.sz import SzCompressor
from repro.compression.zfp import ZfpCompressor
from repro.compression.zfp2d import Zfp2dCompressor
from repro.errors import CompressionError

__all__ = ["register", "get_compressor", "available", "feature_table",
           "TABLE1_ROWS", "install_fault_wrapper", "uninstall_fault_wrapper"]

_REGISTRY: Dict[str, Callable[..., Compressor]] = {}

#: optional hook applied to every constructed codec — the fault plane
#: installs :class:`repro.faults.codec.FlakyCompressor` through this
_FAULT_WRAPPER: Callable[[Compressor], Compressor] | None = None


def register(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a codec factory under ``name`` (overwrites allowed so
    applications can swap in custom codecs)."""
    _REGISTRY[name] = factory


def install_fault_wrapper(wrapper: Callable[[Compressor], Compressor]) -> None:
    """Wrap every codec built by :func:`get_compressor` until
    :func:`uninstall_fault_wrapper`.  Used by the fault-injection plane;
    installers must uninstall in a ``finally`` so one chaotic run cannot
    leak faults into the next."""
    global _FAULT_WRAPPER
    _FAULT_WRAPPER = wrapper


def uninstall_fault_wrapper() -> None:
    global _FAULT_WRAPPER
    _FAULT_WRAPPER = None


def get_compressor(name: str, **params) -> Compressor:
    """Instantiate a registered codec, passing ``params`` through."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise CompressionError(
            f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    codec = factory(**params)
    if _FAULT_WRAPPER is not None:
        codec = _FAULT_WRAPPER(codec)
    return codec


def available() -> list[str]:
    return sorted(_REGISTRY)


register("mpc", MpcCompressor)
register("zfp", ZfpCompressor)
register("fpc", FpcCompressor)
register("gfc", GfcCompressor)
register("sz", SzCompressor)
register("zfp2d", Zfp2dCompressor)
register("null", NullCompressor)


# The full Table I of the paper.  Columns: (lossless, lossy, gpu,
# single, double, high_throughput, efficient_mpi).  ``implemented``
# marks the rows this package provides as working code.
TABLE1_ROWS: list[dict] = [
    dict(name="FPC", lossless=True, lossy=False, gpu=False, single=False, double=True,
         high_throughput=False, mpi=True, implemented=True, impl="fpc"),
    dict(name="fpzip", lossless=True, lossy=True, gpu=False, single=True, double=True,
         high_throughput=False, mpi=False, implemented=False, impl=None),
    dict(name="ISOBAR", lossless=True, lossy=False, gpu=False, single=True, double=True,
         high_throughput=False, mpi=False, implemented=False, impl=None),
    dict(name="SPDP", lossless=True, lossy=False, gpu=False, single=True, double=True,
         high_throughput=False, mpi=False, implemented=False, impl=None),
    dict(name="GFC", lossless=True, lossy=False, gpu=True, single=False, double=True,
         high_throughput=True, mpi=False, implemented=True, impl="gfc"),
    dict(name="MPC", lossless=True, lossy=False, gpu=True, single=True, double=True,
         high_throughput=True, mpi=False, implemented=True, impl="mpc"),
    dict(name="SZ", lossless=False, lossy=True, gpu=True, single=True, double=True,
         high_throughput=True, mpi=False, implemented=True, impl="sz"),
    dict(name="ZFP", lossless=False, lossy=True, gpu=True, single=True, double=True,
         high_throughput=True, mpi=False, implemented=True, impl="zfp"),
    dict(name="Proposed MPC-OPT", lossless=True, lossy=False, gpu=True, single=True,
         double=True, high_throughput=True, mpi=True, implemented=True, impl="mpc"),
    dict(name="Proposed ZFP-OPT", lossless=False, lossy=True, gpu=True, single=True,
         double=True, high_throughput=True, mpi=True, implemented=True, impl="zfp"),
]


def feature_table() -> list[list[str]]:
    """Rows for rendering Table I: check/cross marks per feature."""
    def mark(b: bool) -> str:
        return "yes" if b else "no"

    out = []
    for row in TABLE1_ROWS:
        out.append([
            row["name"], mark(row["lossless"]), mark(row["lossy"]), mark(row["gpu"]),
            mark(row["single"]), mark(row["double"]), mark(row["high_throughput"]),
            mark(row["mpi"]), mark(row["implemented"]),
        ])
    return out
