"""SZ-style error-bounded lossy codec, vectorized.

Represents the SZ compressor the paper surveys (Di & Cappello, IPDPS
2016) in Table I: *error-bounded* lossy compression, where every
reconstructed value is within a user-set absolute bound of the
original — the alternative accuracy contract to ZFP's fixed rate.

Real SZ chains a Lorenzo predictor through previously *decompressed*
values, which is inherently sequential.  This implementation keeps the
SZ contract and adaptivity with a vectorizable design (documented
substitution):

* values are grouped in blocks of 64;
* each block stores its endpoints exactly and predicts interior values
  by the straight line between them (a degenerate 1-D Lorenzo);
* residuals are quantized to ``round(r / (2*eb))`` so reconstruction
  error is <= ``eb`` by construction;
* each block's codes are bit-packed at the smallest width that fits
  the block's largest |code| (4-bit width field), which plays the role
  of SZ's entropy stage: smooth blocks cost 2-4 bits/value;
* codes that exceed the widest representable range mark the value an
  *outlier*, stored exactly (bitmap + raw floats), like SZ's
  unpredictable data.

Payload layout (little-endian): per-block width nibbles, block
endpoint pairs (f32/f64), packed codes, outlier bitmap, outlier raw
values.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.compression.zfp import pack_block_fields, unpack_block_fields
from repro.errors import CompressionError

__all__ = ["SzCompressor"]

_BLOCK = 64
_MAX_WIDTH = 15  # width nibble 0..15; 15 -> up to 2^14 magnitude codes


class SzCompressor(Compressor):
    """Error-bounded lossy codec with block-adaptive code widths.

    Parameters
    ----------
    error_bound:
        Absolute error bound ``eb``: every reconstructed value differs
        from the original by at most ``eb``.
    """

    name = "sz"
    lossless = False
    gpu_supported = True
    single_precision = True
    double_precision = True
    high_throughput = True
    mpi_support = False

    def __init__(self, error_bound: float = 1e-3):
        if not (error_bound > 0) or not np.isfinite(error_bound):
            raise CompressionError(f"error_bound must be finite and > 0, got {error_bound}")
        self.error_bound = float(error_bound)

    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        n = data.size
        if n and not np.isfinite(data).all():
            raise CompressionError("sz requires finite values")
        if n == 0:
            return CompressedData(
                algorithm=self.name, payload=np.empty(0, np.uint8), n_elements=0,
                dtype=data.dtype, params={"error_bound": self.error_bound},
                meta={"compressed_bytes": 0},
            )
        eb = self.error_bound
        nblocks = -(-n // _BLOCK)
        padded = np.zeros(nblocks * _BLOCK, dtype=np.float64)
        padded[:n] = data.astype(np.float64, copy=False)
        if n % _BLOCK:
            padded[n:] = padded[n - 1]  # repeat the tail value
        blocks = padded.reshape(nblocks, _BLOCK)

        first = blocks[:, 0]
        last = blocks[:, -1]
        t = np.linspace(0.0, 1.0, _BLOCK)
        line = first[:, None] + (last - first)[:, None] * t[None, :]
        q = np.rint((blocks - line) / (2.0 * eb)).astype(np.int64)

        # Outliers: codes too large for the widest field, plus any value
        # whose reconstruction — *after casting to the output dtype* —
        # would still violate the bound (cast rounding can add half an
        # ulp on top of the quantization error).
        limit = 1 << (_MAX_WIDTH - 1)
        outlier = np.abs(q) >= limit
        q[outlier] = 0
        recon = (line + q.astype(np.float64) * 2.0 * eb).astype(data.dtype)
        viol = np.zeros_like(outlier)
        viol.reshape(-1)[:n] = (
            np.abs(data.astype(np.float64) - recon.reshape(-1)[:n].astype(np.float64)) > eb
        )
        outlier |= viol
        q[outlier] = 0

        # Zigzag per block and the minimal width per block.
        zz = ((q << 1) ^ (q >> 63)).astype(np.uint64)
        maxcode = zz.max(axis=1)
        widths = np.zeros(nblocks, dtype=np.uint8)
        nz = maxcode > 0
        widths[nz] = np.floor(np.log2(maxcode[nz].astype(np.float64))).astype(np.uint8) + 1
        widths = np.minimum(widths, _MAX_WIDTH)

        # Pack codes: per block, _BLOCK values at widths[b] bits.
        # Build a global bit matrix (nblocks, _BLOCK, width_b) — widths
        # differ per block, so emit via a per-width grouping.
        chunks: list[np.ndarray] = []
        header_nibbles = widths
        for w in range(1, _MAX_WIDTH + 1):
            sel = widths == w
            if not sel.any():
                continue
            sub = zz[sel].reshape(-1)  # every value is one w-bit field
            chunks.append((w, pack_block_fields([sub], [w], w)))
        # Reassemble in block order at decode time via widths; store
        # each width-group contiguously prefixed by nothing (order is
        # derivable from the widths array).
        code_bytes = (
            np.concatenate([c for _, c in sorted(chunks, key=lambda x: x[0])])
            if chunks else np.empty(0, np.uint8)
        )

        itemsize = data.dtype.itemsize
        nib = header_nibbles
        nib_padded = nib if nib.size % 2 == 0 else np.concatenate([nib, [np.uint8(0)]])
        nib_bytes = (nib_padded[0::2] << 4) | nib_padded[1::2]

        endpoints = np.stack([first, last], axis=1).astype(data.dtype).view(np.uint8).reshape(-1)
        out_bitmap = np.packbits(outlier.reshape(-1)[:n])
        out_vals = data[outlier.reshape(-1)[:n]].view(np.uint8)

        payload = np.concatenate([
            nib_bytes.astype(np.uint8), endpoints, code_bytes,
            out_bitmap, np.asarray(out_vals, dtype=np.uint8).reshape(-1),
        ])
        return CompressedData(
            algorithm=self.name, payload=payload, n_elements=n, dtype=data.dtype,
            params={"error_bound": self.error_bound},
            meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        eb = float(comp.params.get("error_bound", self.error_bound))
        n = comp.n_elements
        dtype = comp.dtype
        if n == 0:
            return np.empty(0, dtype=dtype)
        itemsize = dtype.itemsize
        nblocks = -(-n // _BLOCK)
        payload = comp.payload
        pos = 0

        nib_len = -(-nblocks // 2)
        nib_bytes = payload[pos:pos + nib_len]
        pos += nib_len
        widths = np.empty(nib_len * 2, dtype=np.uint8)
        widths[0::2] = nib_bytes >> 4
        widths[1::2] = nib_bytes & 0x0F
        widths = widths[:nblocks]

        endpoints = payload[pos:pos + nblocks * 2 * itemsize].view(dtype).reshape(nblocks, 2)
        pos += nblocks * 2 * itemsize

        zz = np.zeros((nblocks, _BLOCK), dtype=np.uint64)
        for w in range(1, _MAX_WIDTH + 1):
            sel = widths == w
            m = int(sel.sum())
            if not m:
                continue
            nbytes_w = -(-m * _BLOCK * w // 8)
            raw = payload[pos:pos + nbytes_w]
            pos += nbytes_w
            vals = unpack_block_fields(raw, [w], w, m * _BLOCK)[0]
            zz[sel] = vals.reshape(m, _BLOCK)
        q = ((zz >> np.uint64(1)).astype(np.int64)) ^ -(zz & np.uint64(1)).astype(np.int64)

        first = endpoints[:, 0].astype(np.float64)
        last = endpoints[:, 1].astype(np.float64)
        t = np.linspace(0.0, 1.0, _BLOCK)
        line = first[:, None] + (last - first)[:, None] * t[None, :]
        vals = (line + q.astype(np.float64) * 2.0 * eb).reshape(-1)[:n].astype(dtype)

        bm_len = -(-n // 8)
        out_bitmap = np.unpackbits(payload[pos:pos + bm_len])[:n].astype(bool)
        pos += bm_len
        n_out = int(out_bitmap.sum())
        raw = payload[pos:pos + n_out * itemsize]
        if raw.size != n_out * itemsize:
            raise CompressionError("sz payload truncated (outliers)")
        vals[out_bitmap] = raw.view(dtype)
        return vals

    def max_abs_error(self) -> float:
        """The guaranteed bound (outliers and endpoints are exact)."""
        return self.error_bound
