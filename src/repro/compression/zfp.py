"""ZFP — fixed-rate lossy floating-point codec, vectorized.

Reimplementation of the CUDA-enabled fixed-rate mode of ZFP (Lindstrom,
*Fixed-Rate Compressed Floating-Point Arrays*, TVCG 2014) that the
paper integrates: the 1-D array type, where every 4-value block is
compressed to exactly ``4 * rate`` bits.

Per-block pipeline (all stages numpy-vectorized across blocks):

1. **Shared exponent**: the block's maximum binary exponent ``emax`` is
   stored in a 12-bit biased field (bias 2048; field value 0 flags an
   all-zero block).
2. **Fixed-point conversion**: values are scaled by ``2^(30 - emax)``
   (``2^(62 - emax)`` for doubles) and rounded to integers.
3. **Decorrelating lifting transform** — zfp's 4-point integer
   transform.  Like upstream zfp, the transform pair is *near*-
   invertible (the ``>> 1`` steps drop one bit), which is subsumed by
   the codec's overall error bound.
4. **Negabinary conversion** so that truncating low bits yields a small,
   sign-independent error.
5. **Bit-plane truncation**: the remaining ``4*rate - 12`` bits of the
   block budget are distributed over the four coefficients with a
   static skew (+3, +1, -1, -3 around the mean) that mimics the energy
   compaction upstream zfp realises through group-testing embedded
   coding (a deliberate substitution — group testing is a sequential
   per-block variable-length code that does not vectorize; the skew
   favours the low-frequency coefficients the same way the embedded
   stream does on smooth data).

Compressed size is **exactly predictable** from the element count —
the property the paper's framework exploits to skip the device-to-host
compressed-size copy that MPC needs.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.errors import CompressionError

__all__ = ["ZfpCompressor", "forward_lift", "inverse_lift", "plan_bit_allocation"]

_EXP_BITS = 12
_EXP_BIAS = 2048  # covers float32 and float64 frexp exponent ranges

def _lane_params(block_bits: int):
    """Lane word size for a block: 32-bit lanes when a block fits one
    (halves the memory traffic of every lane op), 64-bit otherwise."""
    if block_bits <= 32:
        return 32, np.uint32, ">u4"
    return 64, np.uint64, ">u8"


def pack_block_fields(fields, widths, block_bits: int) -> np.ndarray:
    """Concatenate per-block bit fields into one MSB-first byte stream.

    ``fields[i]`` is a ``(nblocks,)`` unsigned array holding the
    right-aligned value of the i-th field (``< 2**widths[i]``); the
    fields of one block occupy ``block_bits`` consecutive bits and the
    blocks are packed back to back (blocks straddle byte boundaries when
    ``block_bits`` is not a multiple of 8, exactly like ``packbits`` on
    the flattened bit matrix).

    The assembly is pure integer lane arithmetic: each block's bits live
    in ``ceil(block_bits/W)`` big-endian W-bit lanes (W = 32 or 64), and
    a field lands in one lane — or two, when it straddles a lane
    boundary — via shifts.  Byte-aligned block sizes never touch
    ``unpackbits`` at all.
    """
    nblocks = fields[0].shape[0]
    W, ldt, bedt = _lane_params(block_bits)
    shift = int(W).bit_length() - 1
    nlanes = -(-block_bits // W)
    lanes = np.zeros((nblocks, nlanes), dtype=ldt)
    off = 0
    for v, k in zip(fields, widths):
        if k:
            if v.dtype != ldt:
                v = v.astype(ldt, copy=False)
            end = off + k
            l0 = off >> shift
            e0 = end - (l0 << shift)  # field end, relative to lane l0
            if e0 <= W:
                lanes[:, l0] |= v << ldt(W - e0)
            else:
                lanes[:, l0] |= v >> ldt(e0 - W)
                lanes[:, l0 + 1] |= v << ldt(2 * W - e0)
        off += k
    lane_bytes = nlanes * (W // 8)
    if block_bits == nlanes * W:
        # Lanes exactly cover the block: the byteswapped lanes ARE the
        # stream, no per-block slicing needed.
        return lanes.astype(bedt).view(np.uint8).reshape(-1)
    per_block = lanes.astype(bedt).view(np.uint8).reshape(nblocks, lane_bytes)
    if block_bits % 8 == 0:
        return np.ascontiguousarray(per_block[:, : block_bits // 8]).reshape(-1)
    nbytes = -(-block_bits // 8)
    bits = np.unpackbits(
        np.ascontiguousarray(per_block[:, :nbytes]), axis=1
    )[:, :block_bits]
    return np.packbits(bits.reshape(-1))


def unpack_block_fields(payload: np.ndarray, widths, block_bits: int,
                        nblocks: int) -> list[np.ndarray]:
    """Inverse of :func:`pack_block_fields` — extract every field as a
    right-aligned ``(nblocks,)`` unsigned array (uint32 lanes when a
    block fits 32 bits, else uint64)."""
    W, ldt, bedt = _lane_params(block_bits)
    shift = int(W).bit_length() - 1
    nlanes = -(-block_bits // W)
    lane_bytes = nlanes * (W // 8)
    if block_bits == nlanes * W:
        raw = payload[: nblocks * lane_bytes].reshape(nblocks, lane_bytes)
    elif block_bits % 8 == 0:
        nb = block_bits // 8
        raw = np.zeros((nblocks, lane_bytes), dtype=np.uint8)
        raw[:, :nb] = payload[: nblocks * nb].reshape(nblocks, nb)
    else:
        total_bits = nblocks * block_bits
        bits = np.unpackbits(payload[: -(-total_bits // 8)])[:total_bits]
        bitmat = np.zeros((nblocks, nlanes * W), dtype=np.uint8)
        bitmat[:, :block_bits] = bits.reshape(nblocks, block_bits)
        raw = np.packbits(bitmat, axis=1)
    lanes = raw.view(bedt).reshape(nblocks, nlanes).astype(ldt)
    full = ldt(np.iinfo(ldt).max)
    fields: list[np.ndarray] = []
    off = 0
    for k in widths:
        if k:
            end = off + k
            l0 = off >> shift
            e0 = end - (l0 << shift)
            mask = full if k >= W else ldt((1 << k) - 1)
            if e0 <= W:
                v = (lanes[:, l0] >> ldt(W - e0)) & mask
            else:
                v = ((lanes[:, l0] << ldt(e0 - W))
                     | (lanes[:, l0 + 1] >> ldt(2 * W - e0))) & mask
        else:
            v = np.zeros(nblocks, dtype=ldt)
        fields.append(v)
        off += k
    return fields


def _pack_block_fields_reference(fields, widths, block_bits: int) -> np.ndarray:
    """Plain bit-matrix packer — the pre-rewrite formulation, kept as the
    oracle for the fast/reference bit-identity property test."""
    nblocks = fields[0].shape[0]
    out_bits = np.zeros((nblocks, block_bits), dtype=np.uint8)
    off = 0
    for v, k in zip(fields, widths):
        if k:
            fb = np.unpackbits(
                v.astype(">u8").view(np.uint8).reshape(nblocks, 8), axis=1)
            out_bits[:, off:off + k] = fb[:, 64 - k:]
        off += k
    return np.packbits(out_bits.reshape(-1))


def _unpack_block_fields_reference(payload, widths, block_bits: int,
                                   nblocks: int) -> list[np.ndarray]:
    """Bit-matrix mirror of :func:`_pack_block_fields_reference`."""
    total_bits = nblocks * block_bits
    bits = np.unpackbits(payload[: -(-total_bits // 8)])[:total_bits].reshape(
        nblocks, block_bits)
    fields: list[np.ndarray] = []
    off = 0
    for k in widths:
        if k:
            fb = np.zeros((nblocks, 64), dtype=np.uint8)
            fb[:, 64 - k:] = bits[:, off:off + k]
            v = np.packbits(fb, axis=1).view(">u8").reshape(-1).astype(np.uint64)
        else:
            v = np.zeros(nblocks, dtype=np.uint64)
        fields.append(v)
        off += k
    return fields


def _lift4_fwd(x, y, z, w) -> None:
    """In-place forward 4-point lifting over four same-shape int64
    arrays (one per coefficient position) — no temporaries beyond the
    elementwise ops."""
    x += w; x >>= 1; w -= x
    z += y; z >>= 1; y -= z
    x += z; x >>= 1; z -= x
    w += y; w >>= 1; y -= w
    w += y >> 1; y -= w >> 1


def _lift4_inv(x, y, z, w) -> None:
    """In-place inverse of :func:`_lift4_fwd`."""
    y += w >> 1; w -= y >> 1
    y += w; w <<= 1; w -= y
    z += x; x <<= 1; x -= z
    y += z; z <<= 1; z -= y
    w += x; x <<= 1; x -= w


def forward_lift(q: np.ndarray) -> np.ndarray:
    """zfp's forward 4-point decorrelating transform.

    ``q`` has shape (nblocks, 4), signed integer; returns transformed
    coefficients in *sequency* order (DC first).  Arithmetic is int64 to
    keep intermediates exact.
    """
    q = q.astype(np.int64, copy=True)
    _lift4_fwd(q[:, 0], q[:, 1], q[:, 2], q[:, 3])
    return q


def inverse_lift(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_lift` (exact up to the ``>>1`` bit
    drops, matching upstream zfp)."""
    c = c.astype(np.int64, copy=True)
    _lift4_inv(c[:, 0], c[:, 1], c[:, 2], c[:, 3])
    return c


def plan_bit_allocation(rate: int, width: int) -> list[int]:
    """Distribute the per-block coefficient bit budget.

    Returns ``kept[c]`` — how many MSBs of coefficient ``c``'s
    ``width``-bit negabinary representation are stored.  The budget is
    ``4*rate - 12`` (12 bits go to the shared exponent); the static
    skew gives low-frequency coefficients more planes.
    """
    budget = 4 * rate - _EXP_BITS
    if budget < 0:
        raise CompressionError(f"rate {rate} too small: needs >= {-(-_EXP_BITS // 4)} bits/value")
    base = budget // 4
    kept = [base + 3, base + 1, base - 1, base - 3]
    kept[0] += budget % 4
    # Clamp into [0, width], pushing overflow/underflow to neighbours
    # so that sum(kept) == budget always holds.
    for _ in range(8):
        excess = 0
        for c in range(4):
            if kept[c] > width:
                excess += kept[c] - width
                kept[c] = width
            elif kept[c] < 0:
                excess += kept[c]
                kept[c] = 0
        if excess == 0:
            break
        for c in range(4):
            room = width - kept[c] if excess > 0 else kept[c]
            take = min(abs(excess), room) * (1 if excess > 0 else -1)
            kept[c] += take
            excess -= take
            if excess == 0:
                break
    if sum(kept) != budget:
        raise CompressionError(f"internal: bit allocation {kept} != budget {budget}")
    return kept


class ZfpCompressor(Compressor):
    """Fixed-rate lossy codec.

    Parameters
    ----------
    rate:
        Compressed bits per value.  The paper evaluates 4, 8 and 16 for
        single precision (compression ratios 8x, 4x and 2x).  Valid
        range: 3..32 for float32, 3..64 for float64 (>= 3 so the 12-bit
        exponent field fits the 4-value block budget).

    Notes
    -----
    Finite values only: NaN/Inf are rejected up front (upstream zfp has
    the same restriction in fixed-rate mode).
    """

    name = "zfp"
    lossless = False
    gpu_supported = True
    single_precision = True
    double_precision = True
    high_throughput = True
    mpi_support = False  # the naive library; ZFP-OPT flips this

    #: bit-assembly backend: "fast" (uint64 lanes) or "reference"
    #: (bit-matrix oracle).  Both must produce identical streams; the
    #: property test in tests/test_compression_zfp.py flips this.
    _bit_path = "fast"

    def _pack(self, fields, widths, block_bits):
        if self._bit_path == "fast":
            return pack_block_fields(fields, widths, block_bits)
        return _pack_block_fields_reference(fields, widths, block_bits)

    def _unpack(self, payload, widths, block_bits, nblocks):
        if self._bit_path == "fast":
            return unpack_block_fields(payload, widths, block_bits, nblocks)
        return _unpack_block_fields_reference(payload, widths, block_bits, nblocks)

    def __init__(self, rate: int = 16):
        rate = int(rate)
        if rate < 3 or rate > 64:
            raise CompressionError(f"rate must be in [3, 64], got {rate}")
        self.rate = rate

    # -- size predictability (the property ZFP-OPT exploits) ------------
    def expected_compressed_bytes(self, n_elements: int, itemsize: int) -> int:
        nblocks = -(-n_elements // 4)
        total_bits = nblocks * 4 * self.rate
        return -(-total_bits // 8)

    # -- internals -------------------------------------------------------
    @staticmethod
    def _width_for(dtype: np.dtype) -> int:
        return 32 if dtype.itemsize == 4 else 64

    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        width = self._width_for(data.dtype)
        if self.rate > width:
            raise CompressionError(f"rate {self.rate} exceeds word width {width}")
        if data.size and not np.isfinite(data).all():
            raise CompressionError("zfp fixed-rate mode requires finite values")
        n = data.size
        nblocks = -(-n // 4) if n else 0
        if nblocks == 0:
            return CompressedData(
                algorithm=self.name, payload=np.empty(0, np.uint8), n_elements=0,
                dtype=data.dtype, params={"rate": self.rate},
                meta={"compressed_bytes": 0},
            )
        # Transposed (coefficient-major) layout: vals[c] is the c-th
        # value of every block, a contiguous row — every later stage is
        # a whole-row op with no strided column access.  The strided
        # assignment casts to float64 as it gathers.
        vals = np.empty((4, nblocks), dtype=np.float64)
        nfull = n // 4
        if nfull:
            vals[:, :nfull] = data[: nfull * 4].reshape(nfull, 4).T
        if nfull != nblocks:
            vals[:, nfull] = 0.0
            tail = data[nfull * 4:]
            vals[: tail.size, nfull] = tail

        _, exps = np.frexp(vals)
        nz = vals != 0.0
        nonzero_block = np.any(nz, axis=0)
        emax = np.where(
            nonzero_block,
            np.max(np.where(nz, exps, np.int32(-(1 << 20))), axis=0),
            np.int32(0))

        headroom = width - 2  # 30 for singles, 62 for doubles
        np.ldexp(vals, (headroom - emax)[None, :], out=vals)
        np.rint(vals, out=vals)
        q = vals.astype(np.int64)
        _lift4_fwd(q[0], q[1], q[2], q[3])

        # Negabinary, in place, at the native word width: addition wraps
        # mod 2^width, which IS the mask step.
        if width == 32:
            u = q.astype(np.uint32)  # truncating cast
            nb = np.uint32(0xAAAAAAAA)
        else:
            u = q.view(np.uint64)
            nb = np.uint64(0xAAAAAAAAAAAAAAAA)
        u += nb
        u ^= nb
        wdt = u.dtype.type

        kept = plan_bit_allocation(self.rate, width)
        block_bits = 4 * self.rate
        exp_field = np.where(nonzero_block, emax + _EXP_BIAS, 0)

        fields = [exp_field.astype(np.uint32, copy=False)]
        widths = [_EXP_BITS]
        for c in range(4):
            k = kept[c]
            fields.append(u[c] >> wdt(width - k) if k
                          else np.zeros(nblocks, dtype=u.dtype))
            widths.append(k)
        payload = self._pack(fields, widths, block_bits)
        return CompressedData(
            algorithm=self.name,
            payload=payload,
            n_elements=n,
            dtype=data.dtype,
            params={"rate": self.rate},
            meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        rate = int(comp.params.get("rate", self.rate))
        if rate != self.rate:
            return ZfpCompressor(rate).decompress(comp)
        n = comp.n_elements
        dtype = comp.dtype
        if n == 0:
            return np.empty(0, dtype=dtype)
        width = self._width_for(dtype)
        nblocks = -(-n // 4)
        block_bits = 4 * self.rate
        total_bits = nblocks * block_bits
        need = -(-total_bits // 8)
        if comp.payload.size < need:
            raise CompressionError(
                f"zfp payload truncated: need {need} bytes, have {comp.payload.size}"
            )
        kept = plan_bit_allocation(self.rate, width)

        widths = [_EXP_BITS] + list(kept)
        decoded = self._unpack(comp.payload, widths, block_bits, nblocks)
        exp_field = decoded[0].astype(np.int32)
        # Coefficient-major (4, nblocks) layout at the native word
        # width, as in compress.
        if width == 32:
            u = np.zeros((4, nblocks), dtype=np.uint32)
            nb = np.uint32(0xAAAAAAAA)
        else:
            u = np.zeros((4, nblocks), dtype=np.uint64)
            nb = np.uint64(0xAAAAAAAAAAAAAAAA)
        wdt = u.dtype.type
        for c in range(4):
            k = kept[c]
            if k:
                f = decoded[1 + c]
                if f.dtype != u.dtype:
                    f = f.astype(u.dtype, copy=False)
                u[c] = f << wdt(width - k)
        nonzero_block = exp_field != 0
        emax = np.where(nonzero_block, exp_field - _EXP_BIAS, np.int32(0))

        # Negabinary decode in place; subtraction wraps mod 2^width, so
        # no mask pass is needed, and the signed view of the word-width
        # lanes is already sign-extended two's complement.
        u ^= nb
        u -= nb
        coeffs = u.view(np.int32 if width == 32 else np.int64)

        if width == 32:
            coeffs = coeffs.astype(np.int64)
        _lift4_inv(coeffs[0], coeffs[1], coeffs[2], coeffs[3])
        headroom = width - 2
        # A corrupted stream can carry absurd exponents; let them
        # saturate to inf silently — the integrity check rejects them.
        with np.errstate(over="ignore"):
            vals = np.ldexp(coeffs.astype(np.float64), (emax - headroom)[None, :])
            vals[:, ~nonzero_block] = 0.0
            out = np.empty(n, dtype=dtype)
            nfull = n // 4
            if nfull:
                out[: nfull * 4].reshape(nfull, 4)[:] = vals[:, :nfull].T
            if nfull != nblocks:
                out[nfull * 4:] = vals[: n - nfull * 4, nfull]
        return out

    def max_abs_error_bound(self, data: np.ndarray) -> float:
        """A conservative per-array absolute error bound.

        Truncation of coefficient ``c`` to ``kept[c]`` negabinary MSBs
        costs at most ``2^(width - kept[c] + 1)`` quanta; the inverse
        transform mixes coefficients with unit gain and adds a few
        quanta of its own.  One quantum is ``2^(emax - headroom)``.
        """
        data = self._check_input(data)
        if data.size == 0:
            return 0.0
        width = self._width_for(data.dtype)
        kept = plan_bit_allocation(self.rate, width)
        _, exps = np.frexp(data[data != 0.0].astype(np.float64))
        emax = int(exps.max()) if exps.size else 0
        worst_drop = max(width - k for k in kept)
        quanta = 2.0 ** (worst_drop + 3)  # transform mixing safety margin
        return quanta * 2.0 ** (emax - (width - 2))
