"""ZFP — fixed-rate lossy floating-point codec, vectorized.

Reimplementation of the CUDA-enabled fixed-rate mode of ZFP (Lindstrom,
*Fixed-Rate Compressed Floating-Point Arrays*, TVCG 2014) that the
paper integrates: the 1-D array type, where every 4-value block is
compressed to exactly ``4 * rate`` bits.

Per-block pipeline (all stages numpy-vectorized across blocks):

1. **Shared exponent**: the block's maximum binary exponent ``emax`` is
   stored in a 12-bit biased field (bias 2048; field value 0 flags an
   all-zero block).
2. **Fixed-point conversion**: values are scaled by ``2^(30 - emax)``
   (``2^(62 - emax)`` for doubles) and rounded to integers.
3. **Decorrelating lifting transform** — zfp's 4-point integer
   transform.  Like upstream zfp, the transform pair is *near*-
   invertible (the ``>> 1`` steps drop one bit), which is subsumed by
   the codec's overall error bound.
4. **Negabinary conversion** so that truncating low bits yields a small,
   sign-independent error.
5. **Bit-plane truncation**: the remaining ``4*rate - 12`` bits of the
   block budget are distributed over the four coefficients with a
   static skew (+3, +1, -1, -3 around the mean) that mimics the energy
   compaction upstream zfp realises through group-testing embedded
   coding (a deliberate substitution — group testing is a sequential
   per-block variable-length code that does not vectorize; the skew
   favours the low-frequency coefficients the same way the embedded
   stream does on smooth data).

Compressed size is **exactly predictable** from the element count —
the property the paper's framework exploits to skip the device-to-host
compressed-size copy that MPC needs.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.errors import CompressionError

__all__ = ["ZfpCompressor", "forward_lift", "inverse_lift", "plan_bit_allocation"]

_EXP_BITS = 12
_EXP_BIAS = 2048  # covers float32 and float64 frexp exponent ranges


def forward_lift(q: np.ndarray) -> np.ndarray:
    """zfp's forward 4-point decorrelating transform.

    ``q`` has shape (nblocks, 4), signed integer; returns transformed
    coefficients in *sequency* order (DC first).  Arithmetic is int64 to
    keep intermediates exact.
    """
    q = q.astype(np.int64, copy=True)
    x, y, z, w = (q[:, 0].copy(), q[:, 1].copy(), q[:, 2].copy(), q[:, 3].copy())
    x += w; x >>= 1; w -= x
    z += y; z >>= 1; y -= z
    x += z; x >>= 1; z -= x
    w += y; w >>= 1; y -= w
    w += y >> 1; y -= w >> 1
    return np.stack([x, y, z, w], axis=1)


def inverse_lift(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_lift` (exact up to the ``>>1`` bit
    drops, matching upstream zfp)."""
    c = c.astype(np.int64, copy=True)
    x, y, z, w = (c[:, 0].copy(), c[:, 1].copy(), c[:, 2].copy(), c[:, 3].copy())
    y += w >> 1; w -= y >> 1
    y += w; w <<= 1; w -= y
    z += x; x <<= 1; x -= z
    y += z; z <<= 1; z -= y
    w += x; x <<= 1; x -= w
    return np.stack([x, y, z, w], axis=1)


def plan_bit_allocation(rate: int, width: int) -> list[int]:
    """Distribute the per-block coefficient bit budget.

    Returns ``kept[c]`` — how many MSBs of coefficient ``c``'s
    ``width``-bit negabinary representation are stored.  The budget is
    ``4*rate - 12`` (12 bits go to the shared exponent); the static
    skew gives low-frequency coefficients more planes.
    """
    budget = 4 * rate - _EXP_BITS
    if budget < 0:
        raise CompressionError(f"rate {rate} too small: needs >= {-(-_EXP_BITS // 4)} bits/value")
    base = budget // 4
    kept = [base + 3, base + 1, base - 1, base - 3]
    kept[0] += budget % 4
    # Clamp into [0, width], pushing overflow/underflow to neighbours
    # so that sum(kept) == budget always holds.
    for _ in range(8):
        excess = 0
        for c in range(4):
            if kept[c] > width:
                excess += kept[c] - width
                kept[c] = width
            elif kept[c] < 0:
                excess += kept[c]
                kept[c] = 0
        if excess == 0:
            break
        for c in range(4):
            room = width - kept[c] if excess > 0 else kept[c]
            take = min(abs(excess), room) * (1 if excess > 0 else -1)
            kept[c] += take
            excess -= take
            if excess == 0:
                break
    if sum(kept) != budget:
        raise CompressionError(f"internal: bit allocation {kept} != budget {budget}")
    return kept


class ZfpCompressor(Compressor):
    """Fixed-rate lossy codec.

    Parameters
    ----------
    rate:
        Compressed bits per value.  The paper evaluates 4, 8 and 16 for
        single precision (compression ratios 8x, 4x and 2x).  Valid
        range: 3..32 for float32, 3..64 for float64 (>= 3 so the 12-bit
        exponent field fits the 4-value block budget).

    Notes
    -----
    Finite values only: NaN/Inf are rejected up front (upstream zfp has
    the same restriction in fixed-rate mode).
    """

    name = "zfp"
    lossless = False
    gpu_supported = True
    single_precision = True
    double_precision = True
    high_throughput = True
    mpi_support = False  # the naive library; ZFP-OPT flips this

    def __init__(self, rate: int = 16):
        rate = int(rate)
        if rate < 3 or rate > 64:
            raise CompressionError(f"rate must be in [3, 64], got {rate}")
        self.rate = rate

    # -- size predictability (the property ZFP-OPT exploits) ------------
    def expected_compressed_bytes(self, n_elements: int, itemsize: int) -> int:
        nblocks = -(-n_elements // 4)
        total_bits = nblocks * 4 * self.rate
        return -(-total_bits // 8)

    # -- internals -------------------------------------------------------
    @staticmethod
    def _width_for(dtype: np.dtype) -> int:
        return 32 if dtype.itemsize == 4 else 64

    def compress(self, data: np.ndarray) -> CompressedData:
        data = self._check_input(data)
        width = self._width_for(data.dtype)
        if self.rate > width:
            raise CompressionError(f"rate {self.rate} exceeds word width {width}")
        if data.size and not np.isfinite(data).all():
            raise CompressionError("zfp fixed-rate mode requires finite values")
        n = data.size
        nblocks = -(-n // 4) if n else 0
        if nblocks == 0:
            return CompressedData(
                algorithm=self.name, payload=np.empty(0, np.uint8), n_elements=0,
                dtype=data.dtype, params={"rate": self.rate},
                meta={"compressed_bytes": 0},
            )
        vals = np.zeros(nblocks * 4, dtype=np.float64)
        vals[:n] = data.astype(np.float64, copy=False)
        vals = vals.reshape(nblocks, 4)

        _, exps = np.frexp(vals)
        nonzero_block = np.any(vals != 0.0, axis=1)
        emax = np.where(nonzero_block, np.max(np.where(vals != 0.0, exps, -(1 << 20)), axis=1), 0)

        headroom = width - 2  # 30 for singles, 62 for doubles
        q = np.rint(np.ldexp(vals, (headroom - emax)[:, None])).astype(np.int64)
        coeffs = forward_lift(q)

        # Negabinary in `width`-bit arithmetic.
        mask = np.uint64((1 << width) - 1) if width == 64 else np.uint64(0xFFFFFFFF)
        nb = np.uint64(0xAAAAAAAAAAAAAAAA) & mask
        u = ((coeffs.astype(np.uint64) + nb) & mask) ^ nb

        kept = plan_bit_allocation(self.rate, width)
        block_bits = 4 * self.rate
        exp_field = np.where(nonzero_block, emax + _EXP_BIAS, 0).astype(np.uint64)

        if width == 32 and block_bits <= 64 and block_bits % 8 == 0:
            # Fast path: assemble each block's bits in one uint64 with
            # pure integer ops — same bitstream as the generic path.
            word = exp_field << np.uint64(block_bits - _EXP_BITS)
            off = block_bits - _EXP_BITS
            for c in range(4):
                k = kept[c]
                if k:
                    off -= k
                    word |= (u[:, c] >> np.uint64(width - k)) << np.uint64(off)
            nb = block_bits // 8
            payload = (
                word.astype(">u8").view(np.uint8).reshape(nblocks, 8)[:, 8 - nb:]
                .reshape(-1).copy()
            )
        else:
            # Generic path: explicit MSB-first bit matrix.
            ubits = np.unpackbits(
                u.astype(">u8").view(np.uint8).reshape(nblocks, 4, 8), axis=2
            )[:, :, 64 - width:]  # (nblocks, 4, width)
            out_bits = np.zeros((nblocks, block_bits), dtype=np.uint8)
            exp_be = exp_field.astype(">u2")
            exp_bits = np.unpackbits(exp_be.view(np.uint8).reshape(nblocks, 2), axis=1)
            out_bits[:, :_EXP_BITS] = exp_bits[:, 16 - _EXP_BITS:]
            off = _EXP_BITS
            for c in range(4):
                k = kept[c]
                if k:
                    out_bits[:, off:off + k] = ubits[:, c, :k]
                off += k
            payload = np.packbits(out_bits.reshape(-1))
        return CompressedData(
            algorithm=self.name,
            payload=payload,
            n_elements=n,
            dtype=data.dtype,
            params={"rate": self.rate},
            meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        rate = int(comp.params.get("rate", self.rate))
        if rate != self.rate:
            return ZfpCompressor(rate).decompress(comp)
        n = comp.n_elements
        dtype = comp.dtype
        if n == 0:
            return np.empty(0, dtype=dtype)
        width = self._width_for(dtype)
        nblocks = -(-n // 4)
        block_bits = 4 * self.rate
        total_bits = nblocks * block_bits
        need = -(-total_bits // 8)
        if comp.payload.size < need:
            raise CompressionError(
                f"zfp payload truncated: need {need} bytes, have {comp.payload.size}"
            )
        kept = plan_bit_allocation(self.rate, width)

        if width == 32 and block_bits <= 64 and block_bits % 8 == 0:
            # Fast path: mirror of the encoder's uint64 assembly.
            nb8 = block_bits // 8
            raw = np.zeros((nblocks, 8), dtype=np.uint8)
            raw[:, 8 - nb8:] = comp.payload[: nblocks * nb8].reshape(nblocks, nb8)
            word = raw.view(">u8").reshape(-1).astype(np.uint64)
            exp_field = (word >> np.uint64(block_bits - _EXP_BITS)).astype(np.int64)
            u = np.zeros((nblocks, 4), dtype=np.uint64)
            off = block_bits - _EXP_BITS
            for c in range(4):
                k = kept[c]
                if k:
                    off -= k
                    field = (word >> np.uint64(off)) & np.uint64((1 << k) - 1)
                    u[:, c] = field << np.uint64(width - k)
        else:
            bits = np.unpackbits(comp.payload[:need])[:total_bits].reshape(
                nblocks, block_bits
            )
            exp_bits = np.zeros((nblocks, 16), dtype=np.uint8)
            exp_bits[:, 16 - _EXP_BITS:] = bits[:, :_EXP_BITS]
            exp_field = (
                np.packbits(exp_bits, axis=1).view(">u2").reshape(-1).astype(np.int64)
            )
            ubits = np.zeros((nblocks, 4, 64), dtype=np.uint8)
            off = _EXP_BITS
            lead = 64 - width
            for c in range(4):
                k = kept[c]
                if k:
                    ubits[:, c, lead:lead + k] = bits[:, off:off + k]
                off += k
            u = (
                np.packbits(ubits.reshape(nblocks, 4, 64), axis=2)
                .reshape(nblocks, 4, 8)
                .view(">u8")
                .reshape(nblocks, 4)
                .astype(np.uint64)
            )
        nonzero_block = exp_field != 0
        emax = np.where(nonzero_block, exp_field - _EXP_BIAS, 0)

        mask = np.uint64((1 << width) - 1) if width == 64 else np.uint64(0xFFFFFFFF)
        nb = np.uint64(0xAAAAAAAAAAAAAAAA) & mask
        q_u = ((u ^ nb) - nb) & mask
        # Sign-extend width-bit two's complement into int64.
        sign_bit = np.uint64(1 << (width - 1))
        coeffs = q_u.astype(np.int64)
        negmask = (q_u & sign_bit) != 0
        if width < 64:
            coeffs[negmask] -= 1 << width

        q = inverse_lift(coeffs)
        headroom = width - 2
        # A corrupted stream can carry absurd exponents; let them
        # saturate to inf silently — the integrity check rejects them.
        with np.errstate(over="ignore"):
            vals = np.ldexp(q.astype(np.float64), (emax - headroom)[:, None])
            vals[~nonzero_block] = 0.0
            out = vals.reshape(-1)[:n].astype(dtype)
        return out

    def max_abs_error_bound(self, data: np.ndarray) -> float:
        """A conservative per-array absolute error bound.

        Truncation of coefficient ``c`` to ``kept[c]`` negabinary MSBs
        costs at most ``2^(width - kept[c] + 1)`` quanta; the inverse
        transform mixes coefficients with unit gain and adds a few
        quanta of its own.  One quantum is ``2^(emax - headroom)``.
        """
        data = self._check_input(data)
        if data.size == 0:
            return 0.0
        width = self._width_for(data.dtype)
        kept = plan_bit_allocation(self.rate, width)
        _, exps = np.frexp(data[data != 0.0].astype(np.float64))
        emax = int(exps.max()) if exps.size else 0
        worst_drop = max(width - k for k in kept)
        quanta = 2.0 ** (worst_drop + 3)  # transform mixing safety margin
        return quanta * 2.0 ** (emax - (width - 2))
