"""ZFP 2-D fixed-rate mode (4x4 blocks, separable lifting).

The paper uses ZFP's 1-D array type; upstream ZFP also offers 2-D/3-D
modes where each d-dimensional block holds ``4^d`` values ("each
d-dimensional array value is deconstructed into 4^d independent
blocks", Section II).  The 2-D mode decorrelates along both axes, so
smooth *images/fields* (e.g. the Dask chunks of Section VII-B) get
markedly lower error at the same rate than the 1-D codec.

Pipeline per 4x4 block:

1. shared ``emax`` (12-bit biased field, as in the 1-D codec);
2. fixed-point quantization at ``2^(30 - emax)``;
3. separable lifting: the 1-D transform over rows, then over columns;
4. negabinary conversion;
5. per-coefficient MSB truncation with a static skew by *sequency*
   (i + j of the coefficient's position — the 2-D analogue of the 1-D
   codec's [+3, +1, -1, -3] schedule).

Block budget = ``16 * rate`` bits; compressed size is exactly
predictable, like the 1-D mode.  Float32 only (the evaluation's
precision).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.compression.zfp import (
    _lift4_fwd, _lift4_inv, _pack_block_fields_reference,
    _unpack_block_fields_reference, pack_block_fields, unpack_block_fields,
)
from repro.errors import CompressionError

__all__ = ["Zfp2dCompressor", "plan_bit_allocation_2d"]

_EXP_BITS = 12
_EXP_BIAS = 2048
_W = 32  # float32 only


def _sequency_order() -> np.ndarray:
    """Coefficient indices of a flattened 4x4 block ordered by i+j."""
    coords = [(i, j) for i in range(4) for j in range(4)]
    return np.array(sorted(range(16), key=lambda k: (sum(coords[k]), coords[k])))


_ORDER = _sequency_order()


def plan_bit_allocation_2d(rate: int) -> np.ndarray:
    """Distribute ``16*rate - 12`` bits over 16 coefficients, more to
    low-sequency ones, in flattened (row-major) block order."""
    budget = 16 * rate - _EXP_BITS
    if budget < 0:
        raise CompressionError(f"rate {rate} too small for the 2-D block budget")
    base = budget // 16
    rem = budget % 16
    # Skew: +4 for sequency 0 down to -3 for the highest, rescaled to
    # keep the sum exact.
    skew = np.linspace(4, -4, 16)
    kept = np.full(16, base, dtype=np.int64) + np.round(skew).astype(np.int64)
    kept[0] += budget - kept.sum()
    # Clamp to [0, 32] pushing the excess toward the middle.
    for _ in range(16):
        over = kept - np.clip(kept, 0, _W)
        if not over.any():
            break
        kept = np.clip(kept, 0, _W)
        spill = int(over.sum())
        room = _W - kept if spill > 0 else kept
        for idx in np.argsort(-room):
            take = int(np.clip(spill, -int(kept[idx]), int(_W - kept[idx])))
            kept[idx] += take
            spill -= take
            if spill == 0:
                break
    if kept.sum() != budget:
        raise CompressionError("internal: 2-D bit allocation mismatch")
    # Give the budget to coefficients in sequency order.
    out = np.empty(16, dtype=np.int64)
    out[_ORDER] = np.sort(kept)[::-1]
    return out


class Zfp2dCompressor(Compressor):
    """Fixed-rate 2-D codec over 4x4 blocks of a (rows, cols) array.

    ``compress`` takes a 2-D float32 array; row/column counts are padded
    to multiples of 4 internally (edge padding replicates the border).
    The original shape travels in ``params``.
    """

    name = "zfp2d"
    lossless = False
    gpu_supported = True
    single_precision = True
    double_precision = False
    high_throughput = True
    mpi_support = False
    supported_dtypes = (np.float32,)

    #: bit-assembly backend, same contract as ZfpCompressor._bit_path.
    _bit_path = "fast"

    def _pack(self, fields, widths, block_bits):
        if self._bit_path == "fast":
            return pack_block_fields(fields, widths, block_bits)
        return _pack_block_fields_reference(fields, widths, block_bits)

    def _unpack(self, payload, widths, block_bits, nblocks):
        if self._bit_path == "fast":
            return unpack_block_fields(payload, widths, block_bits, nblocks)
        return _unpack_block_fields_reference(payload, widths, block_bits, nblocks)

    def __init__(self, rate: int = 8):
        rate = int(rate)
        if rate < 1 or rate > 32:
            raise CompressionError(f"rate must be in [1, 32], got {rate}")
        self.rate = rate

    def expected_compressed_bytes(self, n_elements: int, itemsize: int) -> None:
        return None  # depends on the 2-D shape (padding), not n alone

    def _blocks(self, rows: int, cols: int) -> tuple[int, int]:
        return -(-rows // 4), -(-cols // 4)

    def compress(self, data: np.ndarray) -> CompressedData:
        if not isinstance(data, np.ndarray) or data.ndim != 2:
            raise CompressionError("zfp2d expects a 2-D array")
        if data.dtype != np.float32:
            raise CompressionError("zfp2d supports float32 only")
        if data.size and not np.isfinite(data).all():
            raise CompressionError("zfp2d requires finite values")
        rows, cols = data.shape
        if rows == 0 or cols == 0:
            return CompressedData(
                algorithm=self.name, payload=np.empty(0, np.uint8),
                n_elements=0, dtype=np.float32,
                params={"rate": self.rate, "rows": rows, "cols": cols},
            )
        br, bc = self._blocks(rows, cols)
        padded = np.pad(data.astype(np.float64),
                        ((0, br * 4 - rows), (0, bc * 4 - cols)), mode="edge")
        # (nblocks, 4, 4)
        blocks = (padded.reshape(br, 4, bc, 4).transpose(0, 2, 1, 3)
                  .reshape(br * bc, 4, 4))
        nblocks = blocks.shape[0]

        flat = blocks.reshape(nblocks, 16)
        nz = flat != 0.0
        nonzero = np.any(nz, axis=1)
        _, exps = np.frexp(flat)
        emax = np.where(
            nonzero, np.max(np.where(nz, exps, np.int32(-(1 << 20))), axis=1),
            np.int32(0))
        q = np.rint(np.ldexp(blocks, (30 - emax)[:, None, None])).astype(np.int64)

        # Separable lifting, in place: along rows (last axis), then
        # along columns (middle axis).
        _lift4_fwd(q[:, :, 0], q[:, :, 1], q[:, :, 2], q[:, :, 3])
        _lift4_fwd(q[:, 0, :], q[:, 1, :], q[:, 2, :], q[:, 3, :])

        # Negabinary at the native 32-bit width (the truncating cast is
        # the mask; addition wraps mod 2^32).
        nb = np.uint32(0xAAAAAAAA)
        u = q.reshape(nblocks, 16).astype(np.uint32)
        u += nb
        u ^= nb
        # Coefficient-major copy so field extraction reads contiguous rows.
        ut = np.ascontiguousarray(u.T)

        kept = plan_bit_allocation_2d(self.rate)
        block_bits = 16 * self.rate  # always a multiple of 8: pure byte path
        exp_field = np.where(nonzero, emax + _EXP_BIAS, 0).astype(np.uint32)
        fields = [exp_field]
        widths = [_EXP_BITS]
        for c in range(16):
            k = int(kept[c])
            fields.append(ut[c] >> np.uint32(_W - k) if k
                          else np.zeros(nblocks, dtype=np.uint32))
            widths.append(k)
        payload = self._pack(fields, widths, block_bits)
        return CompressedData(
            algorithm=self.name, payload=payload, n_elements=rows * cols,
            dtype=np.float32,
            params={"rate": self.rate, "rows": rows, "cols": cols},
            meta={"compressed_bytes": int(payload.nbytes)},
        )

    def decompress(self, comp: CompressedData) -> np.ndarray:
        self._check_payload(comp)
        rate = int(comp.params.get("rate", self.rate))
        rows = int(comp.params["rows"])
        cols = int(comp.params["cols"])
        if rows == 0 or cols == 0:
            return np.empty((rows, cols), dtype=np.float32)
        br, bc = self._blocks(rows, cols)
        nblocks = br * bc
        block_bits = 16 * rate
        total_bits = nblocks * block_bits
        need = -(-total_bits // 8)
        if comp.payload.size < need:
            raise CompressionError("zfp2d payload truncated")
        kept = plan_bit_allocation_2d(rate)
        widths = [_EXP_BITS] + [int(k) for k in kept]
        decoded = self._unpack(comp.payload, widths, block_bits, nblocks)
        exp_field = decoded[0].astype(np.int32)
        nonzero = exp_field != 0
        emax = np.where(nonzero, exp_field - _EXP_BIAS, np.int32(0))

        # Coefficient-major (16, nblocks) layout; rows are contiguous.
        u = np.zeros((16, nblocks), dtype=np.uint32)
        for c in range(16):
            k = int(kept[c])
            if k:
                f = decoded[1 + c]
                if f.dtype != np.uint32:
                    f = f.astype(np.uint32, copy=False)
                u[c] = f << np.uint32(_W - k)
        nb = np.uint32(0xAAAAAAAA)
        u ^= nb
        u -= nb
        # The int32 view is already sign-extended two's complement;
        # widen once for the exact inverse lift.
        coeffs = u.view(np.int32).astype(np.int64)

        # (i, j, nblocks) block layout: inverse lift along columns
        # (axis 0), then along rows (axis 1), in place.
        q = coeffs.reshape(4, 4, nblocks)
        _lift4_inv(q[0], q[1], q[2], q[3])
        _lift4_inv(q[:, 0], q[:, 1], q[:, 2], q[:, 3])
        vals = np.ldexp(q.astype(np.float64), (emax - 30)[None, None, :])
        vals[:, :, ~nonzero] = 0.0
        full = (vals.transpose(2, 0, 1).reshape(br, bc, 4, 4)
                .transpose(0, 2, 1, 3).reshape(br * 4, bc * 4))
        return full[:rows, :cols].astype(np.float32)
