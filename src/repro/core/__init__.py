"""The paper's contribution: on-the-fly GPU message compression for MPI.

This package implements Section III's framework and the optimized
schemes of Sections IV (MPC-OPT) and V (ZFP-OPT):

* :mod:`repro.core.config` — a single :class:`CompressionConfig` whose
  flags select the naive integration or any combination of the proposed
  optimizations (pre-allocated buffer pools, GDRCopy size retrieval,
  multi-stream kernel decomposition, device-attribute caching), making
  every optimization individually ablatable.
* :mod:`repro.core.header` — the compression header (control
  parameters ``A`` + kernel results ``B``) that the framework
  piggybacks on the rendezvous RTS packet to avoid an extra message
  exchange.
* :mod:`repro.core.engine` — the sender/receiver pipelines (the
  paper's seven steps, Algorithms 1-3), charging modelled GPU/driver
  costs while running the *real* codecs on the payload.
* :mod:`repro.core.tuning` — the per-message-size partition-count
  table for MPC-OPT's kernel decomposition.
* :mod:`repro.core.adaptive` — the paper's stated future work: an
  online monitor that enables/disables compression per destination
  based on observed costs.
"""

from repro.core.config import CompressionConfig
from repro.core.header import CompressionHeader
from repro.core.engine import CompressionEngine, SendPlan
from repro.core.tuning import partitions_for_message
from repro.core.adaptive import AdaptivePolicy

__all__ = [
    "CompressionConfig",
    "CompressionHeader",
    "CompressionEngine",
    "SendPlan",
    "partitions_for_message",
    "AdaptivePolicy",
]
