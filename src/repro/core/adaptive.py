"""Adaptive compression policy — the paper's stated future work.

Section IX: "we plan to explore the dynamic design to automatically
determine the use of compression or selection of different algorithms
for specific communication calls based on the compression costs and
communication time assisted by real-time monitor like OSU INAM".

:class:`AdaptivePolicy` is that design: an online monitor records, per
message-size bucket, the observed compression ratio and kernel costs;
for each new send it estimates

    T_compressed ~= t_compr + S / (CR_ewma * B) + t_decompr
    T_raw        ~= S / B

and compresses only when the estimate predicts a win.  Until enough
observations exist for a bucket the policy explores (compresses) so it
can learn the data's compressibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdaptivePolicy", "BucketStats"]


@dataclass
class BucketStats:
    """EWMA state for one message-size bucket."""

    ratio: float = 1.0
    compress_time: float = 0.0
    decompress_time: float = 0.0
    samples: int = 0

    def update(self, ratio: float, t_compr: float, t_decompr: float, alpha: float) -> None:
        if self.samples == 0:
            self.ratio, self.compress_time, self.decompress_time = ratio, t_compr, t_decompr
        else:
            self.ratio += alpha * (ratio - self.ratio)
            self.compress_time += alpha * (t_compr - self.compress_time)
            self.decompress_time += alpha * (t_decompr - self.decompress_time)
        self.samples += 1


class AdaptivePolicy:
    """Online win/lose estimator for on-the-fly compression.

    Parameters
    ----------
    min_samples:
        Observations per bucket before the policy stops always
        exploring.
    alpha:
        EWMA smoothing factor for the ratio/cost estimates.
    hysteresis:
        Required predicted speedup (e.g. 1.05 = 5%) before compression
        is enabled for a bucket, avoiding flapping on marginal wins.
    """

    def __init__(self, min_samples: int = 3, alpha: float = 0.25, hysteresis: float = 1.05):
        self.min_samples = min_samples
        self.alpha = alpha
        self.hysteresis = hysteresis
        self._buckets: dict[int, BucketStats] = {}

    @staticmethod
    def bucket_of(nbytes: int) -> int:
        """Power-of-two size bucket."""
        return max(0, (int(nbytes) - 1).bit_length())

    def stats(self, nbytes: int) -> BucketStats:
        return self._buckets.setdefault(self.bucket_of(nbytes), BucketStats())

    def record(self, nbytes: int, ratio: float, t_compr: float, t_decompr: float) -> None:
        """Feed one observed compression outcome back into the monitor."""
        self.stats(nbytes).update(ratio, t_compr, t_decompr, self.alpha)

    def should_compress(self, nbytes: int, path_bandwidth: float) -> bool:
        """Predict whether compressing an ``nbytes`` message pays off
        on a route of ``path_bandwidth`` bytes/s."""
        st = self.stats(nbytes)
        if st.samples < self.min_samples:
            return True  # explore
        if path_bandwidth <= 0:
            return True  # no route information: keep the configured behaviour
        t_raw = nbytes / path_bandwidth
        t_comp = st.compress_time + nbytes / (max(st.ratio, 1e-9) * path_bandwidth) \
            + st.decompress_time
        return t_raw > t_comp * self.hysteresis

    def snapshot(self) -> dict[int, BucketStats]:
        """Current monitor state (for inspection/INAM-style display)."""
        return dict(self._buckets)
