"""Compression framework configuration.

One dataclass covers the whole design space the paper explores; the
named constructors correspond to the configurations evaluated in the
figures:

=========================  =============================================
constructor                paper configuration
=========================  =============================================
``disabled()``             Baseline (no compression)
``naive_mpc()``            Fig 5/6a "Proposed with MPC"
``naive_zfp(rate)``        Fig 5/8a "Proposed with ZFP"
``mpc_opt()``              Fig 6b/9/11/12/13 "MPC-OPT"
``zfp_opt(rate)``          Fig 8b/9/10/11/12/13/14 "ZFP-OPT(rate:r)"
=========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.utils.units import KiB

__all__ = ["CompressionConfig"]

_ALGORITHMS = ("mpc", "zfp", "sz", "gfc", "fpc", "null")


@dataclass(frozen=True)
class CompressionConfig:
    """Every knob of the on-the-fly compression framework.

    Attributes
    ----------
    enabled:
        Master switch; when False every other field is ignored.
    algorithm:
        Registry name of the codec ("mpc" or "zfp" in the paper).
    threshold:
        Minimum message size (bytes) for compression to engage — the
        paper's "pre-defined threshold" in step 1.
    mpc_dimensionality:
        MPC's LNV stride (control parameter ``A``).
    zfp_rate:
        ZFP's fixed rate in bits/value (control parameter ``A``).
    use_buffer_pool:
        MPC-OPT/ZFP-OPT optimization 1-2: take the compressed-data and
        ``d_off`` buffers from pre-allocated pools instead of
        ``cudaMalloc`` in the critical path.
    use_gdrcopy:
        MPC-OPT optimization 3: retrieve the compressed size via
        GDRCopy (~1-5us) instead of ``cudaMemcpy`` (~20us).
    partitions:
        MPC-OPT kernel decomposition: 0 = auto-tune per message size,
        1 = single kernel (naive MPC behaviour), n>1 = fixed count.
    cache_device_attrs:
        ZFP-OPT optimization: query the max grid dimensions once via
        ``cudaDeviceGetAttribute`` and cache, instead of calling
        ``cudaGetDeviceProperties`` per message.
    adaptive:
        Enable the future-work online policy
        (:class:`repro.core.adaptive.AdaptivePolicy`).
    keep_compressed:
        gZCCL/ZCCL-style collective forwarding: intermediate ranks of a
        collective relay the originating rank's compressed wire image
        (verifying only its wire CRC) instead of decompressing and
        recompressing at every hop.  On by default; turn off for the
        per-hop-recompress ablation in ``repro bench``.  Ignored when
        ``enabled`` is False (raw payloads have no wire image to keep).
    pipeline:
        Extension: stream each compressed partition to the wire as soon
        as its kernel completes (and decompress each on arrival),
        overlapping compression, transfer and decompression the way
        MVAPICH2-GDR pipelines large messages.  The paper's design
        combines partitions before sending; this flag implements the
        natural next step and is benchmarked as an extension
        (bench_ext_pipeline.py).
    """

    enabled: bool = False
    algorithm: str = "mpc"
    threshold: int = 128 * KiB
    mpc_dimensionality: int = 1
    zfp_rate: int = 16
    sz_error_bound: float = 1e-3
    use_buffer_pool: bool = True
    use_gdrcopy: bool = True
    partitions: int = 0
    cache_device_attrs: bool = True
    adaptive: bool = False
    pipeline: bool = False
    keep_compressed: bool = True

    def __post_init__(self):
        if self.algorithm not in _ALGORITHMS:
            raise ConfigError(f"unknown algorithm {self.algorithm!r}; known: {_ALGORITHMS}")
        if self.threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {self.threshold}")
        if self.partitions < 0:
            raise ConfigError(f"partitions must be >= 0 (0 = auto), got {self.partitions}")
        if self.mpc_dimensionality < 1:
            raise ConfigError(f"mpc_dimensionality must be >= 1, got {self.mpc_dimensionality}")
        if not (3 <= self.zfp_rate <= 64):
            raise ConfigError(f"zfp_rate must be in [3, 64], got {self.zfp_rate}")
        if not (self.sz_error_bound > 0):
            raise ConfigError(f"sz_error_bound must be > 0, got {self.sz_error_bound}")

    # -- named configurations --------------------------------------------
    @classmethod
    def disabled(cls) -> "CompressionConfig":
        """Baseline: no compression."""
        return cls(enabled=False)

    @classmethod
    def naive_mpc(cls, dimensionality: int = 1, threshold: int = 128 * KiB) -> "CompressionConfig":
        """Section III's naive MPC integration: cudaMalloc and
        cudaMemcpy in the critical path, one full-device kernel."""
        return cls(
            enabled=True, algorithm="mpc", threshold=threshold,
            mpc_dimensionality=dimensionality,
            use_buffer_pool=False, use_gdrcopy=False, partitions=1,
            cache_device_attrs=False,
        )

    @classmethod
    def naive_zfp(cls, rate: int = 16, threshold: int = 128 * KiB) -> "CompressionConfig":
        """Section III's naive ZFP integration: cudaMalloc per message
        and cudaGetDeviceProperties per kernel launch."""
        return cls(
            enabled=True, algorithm="zfp", threshold=threshold, zfp_rate=rate,
            use_buffer_pool=False, use_gdrcopy=False, partitions=1,
            cache_device_attrs=False,
        )

    @classmethod
    def mpc_opt(cls, dimensionality: int = 1, partitions: int = 0,
                threshold: int = 128 * KiB) -> "CompressionConfig":
        """The proposed MPC-OPT scheme (Section IV)."""
        return cls(
            enabled=True, algorithm="mpc", threshold=threshold,
            mpc_dimensionality=dimensionality,
            use_buffer_pool=True, use_gdrcopy=True, partitions=partitions,
            cache_device_attrs=True,
        )

    @classmethod
    def zfp_opt(cls, rate: int = 16, threshold: int = 128 * KiB) -> "CompressionConfig":
        """The proposed ZFP-OPT scheme (Section V)."""
        return cls(
            enabled=True, algorithm="zfp", threshold=threshold, zfp_rate=rate,
            use_buffer_pool=True, use_gdrcopy=True, partitions=1,
            cache_device_attrs=True,
        )

    def with_(self, **changes) -> "CompressionConfig":
        """A copy with fields replaced (for ablation sweeps)."""
        return replace(self, **changes)

    @property
    def label(self) -> str:
        """Figure-legend style label."""
        if not self.enabled:
            return "Baseline (No compression)"
        opt = self.use_buffer_pool and (self.use_gdrcopy or self.algorithm == "zfp")
        if self.algorithm == "mpc":
            return "MPC-OPT" if opt else "MPC (naive)"
        if self.algorithm == "zfp":
            tag = "ZFP-OPT" if (opt and self.cache_device_attrs) else "ZFP (naive)"
            return f"{tag} (rate:{self.zfp_rate})"
        return self.algorithm
