"""Sender/receiver compression pipelines (the paper's Algorithms 1-3).

The engine is instantiated once per MPI rank.  It owns the rank's
pre-allocated buffer pools and CUDA streams, and exposes four
generator subroutines the MPI protocol layer calls:

``sender_prepare``
    Steps 1-3 of Figure 4: decide whether to compress, obtain device
    buffers (pool vs. ``cudaMalloc``), launch the compression
    kernel(s), retrieve the compressed size (GDRCopy vs.
    ``cudaMemcpy``), combine partitions, and build the header that the
    protocol layer piggybacks on the RTS packet.
``sender_release``
    Return pooled buffers / free temporaries once the send completes.
``receiver_prepare``
    Step between RTS and CTS: allocate the temporary device buffer for
    the incoming compressed payload.
``receiver_complete``
    Steps 6-7: launch the decompression kernel(s) and restore the
    original data.

Real numpy codecs run on the actual payload (compression ratios are
measured, not assumed); kernel durations come from the calibrated
:mod:`repro.compression.perfmodel` models and every driver-level cost
(malloc, memcpy, GDRCopy, attribute queries) is charged on the shared
simulation clock with a tracer span, so latency breakdowns
(Figs 6/8/10) fall out of the traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.compression import get_compressor, kernel_cost_model_for
from repro.compression.base import CompressedData
from repro.compression.cache import GLOBAL_CODEC_CACHE
from repro.core.adaptive import AdaptivePolicy
from repro.core.config import CompressionConfig
from repro.core.header import CompressionHeader
from repro.core.tuning import partitions_for_message
from repro.errors import CompressionError
from repro.gpu.device import Device
from repro.gpu.pool import BufferPool, SizeClassBufferPool
from repro.utils.integrity import payload_crc32
from repro.utils.units import KiB, MiB

__all__ = ["CompressionEngine", "SendPlan"]

_MAX_STREAMS = 16
#: ZFP's zfp_stream / zfp_field construction cost (paper Sec. V: ~9us)
_ZFP_STREAM_FIELD_TIME = 9e-6


@dataclass
class SendPlan:
    """Everything the protocol layer needs to ship one message."""

    header: CompressionHeader
    payload: np.ndarray  # bytes that go on the wire (or the raw array)
    wire_nbytes: int
    resources: list = field(default_factory=list)
    #: CRC32 of the data the receiver should reconstruct (the clean
    #: decompression round-trip for compressed sends, the raw bytes
    #: otherwise); piggybacked on RTS/DATA for integrity checking
    crc: Optional[int] = None

    @property
    def compressed(self) -> bool:
        return self.header.compressed


@dataclass
class PipelinedSendPlan:
    """A send split into independently-compressed, streamable partitions.

    The protocol layer runs ``kernel_run(i)`` (a generator subroutine)
    for each partition — charging that partition's compression kernel
    and size retrieval — and puts ``comps[i].payload`` on the wire as
    soon as it returns, overlapping compression with transfer.
    """

    header: CompressionHeader
    comps: list
    resources: list = field(default_factory=list)
    kernel_run: object = None  # callable(i) -> generator
    crc: Optional[int] = None  # CRC32 of the reassembled decompressed data

    @property
    def n_parts(self) -> int:
        return len(self.comps)


def _partition_counts(n_elements: int, parts: int) -> list[int]:
    """Element count per partition — must match ``np.array_split``."""
    base, rem = divmod(n_elements, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


class CompressionEngine:
    """Per-rank compression state machine."""

    def __init__(self, sim, device: Device, config: CompressionConfig):
        self.sim = sim
        self.device = device
        self.config = config
        self._codecs: dict = {}
        self.adaptive_policy: Optional[AdaptivePolicy] = (
            AdaptivePolicy() if config.adaptive else None
        )
        # Pre-allocated pools, built at init (MPI_Init) off the
        # critical path — MPC-OPT optimizations 1 & 2.
        if config.enabled and config.use_buffer_pool:
            self.data_pool = SizeClassBufferPool(
                device, min_bytes=64 * KiB, max_bytes=256 * MiB, count_per_class=2
            )
            self.doff_pool = BufferPool(device, 4 * KiB, count=8)
        else:
            self.data_pool = None
            self.doff_pool = None
        self.streams = [device.new_stream() for _ in range(_MAX_STREAMS)]

    # -- helpers -----------------------------------------------------------
    def _codec(self, algorithm: str, **params):
        key = (algorithm, tuple(sorted(params.items())))
        if key not in self._codecs:
            self._codecs[key] = get_compressor(algorithm, **params)
        return self._codecs[key]

    def _compressible(self, data) -> bool:
        cfg = self.config
        return (
            cfg.enabled
            and isinstance(data, np.ndarray)
            and data.dtype.type in (np.float32, np.float64)
            and data.nbytes >= cfg.threshold
        )

    def _plan_crc(self, codec, data, comps) -> int:
        """CRC32 of what the receiver must reconstruct.

        Lossless codecs round-trip to the original bytes, so the raw
        CRC suffices.  Lossy codecs (zfp/sz) are checked against the
        *clean* decompression of the wire bytes — computed with the
        unwrapped codec so an installed fault wrapper can neither
        corrupt nor draw RNG for the expected value.
        """
        clean = getattr(codec, "inner", codec)
        if clean.lossless:
            if len(comps) == 1 and comps[0].n_elements == data.size:
                # The codec cache already CRC'd exactly these bytes as
                # its lookup fingerprint; recomputing would hash the
                # full source buffer a second time per send.
                crc = comps[0].meta.get("src_crc32")
                if crc is not None:
                    return crc
            return payload_crc32(data)
        if len(comps) == 1:
            crc = comps[0].meta.get("out_crc32")
            if crc is None:
                crc = payload_crc32(GLOBAL_CODEC_CACHE.decompress(clean, comps[0]))
                # Decompression is deterministic, so the expected-value
                # CRC can ride on the (cache-shared) comp for re-sends.
                comps[0].meta["out_crc32"] = crc
            return crc
        outs = [GLOBAL_CODEC_CACHE.decompress(clean, c) for c in comps]
        return payload_crc32(np.concatenate(outs))

    def _acquire_data_buffer(self, nbytes: int, label: str):
        """Pool hit (cheap) or cudaMalloc (the naive path's cost)."""
        if self.data_pool is not None:
            buf = yield from self.data_pool.acquire(nbytes, label)
        else:
            buf = yield from self.device.malloc(nbytes, label)
        return buf

    def _acquire_doff(self, label: str = "d_off"):
        if self.doff_pool is not None:
            buf = yield from self.doff_pool.acquire(self.device.spec.sm_count * 4, label)
        else:
            buf = yield from self.device.malloc(self.device.spec.sm_count * 4, label)
        return buf

    def _release(self, resources: list):
        for buf in resources:
            if buf.pooled:
                pool = self.doff_pool if buf.capacity == 4 * KiB else self.data_pool
                yield from pool.release(buf)
            else:
                yield from self.device.free(buf)

    def sender_release(self, plan: SendPlan):
        """Return the send-side buffers (after the data has left)."""
        yield from self._release(plan.resources)
        plan.resources = []

    # -- sender ---------------------------------------------------------------
    def sender_prepare(self, data, path_bandwidth: float = 0.0,
                       force_uncompressed: bool = False):
        """Compress (or not) and produce a :class:`SendPlan`.

        ``path_bandwidth`` (bytes/s of the route to the destination)
        feeds the adaptive policy when enabled.  ``force_uncompressed``
        skips the compression pipeline entirely — the protocol layer
        uses it when a peer's compression circuit breaker is open.
        """
        if not force_uncompressed and self._compressible(data):
            if self.adaptive_policy is None or self.adaptive_policy.should_compress(
                data.nbytes, path_bandwidth
            ):
                if self.config.algorithm == "mpc":
                    plan = yield from self._send_mpc(data)
                elif self.config.algorithm == "zfp":
                    plan = yield from self._send_zfp(data)
                else:
                    plan = yield from self._send_generic(data)
                return plan
        nbytes = int(data.nbytes) if isinstance(data, np.ndarray) else len(data)
        header = CompressionHeader.uncompressed(nbytes)
        return SendPlan(header=header, payload=data, wire_nbytes=nbytes,
                        crc=payload_crc32(data))

    def _run_partition_kernels(self, durations: list[float], blocks: int, category: str):
        """Launch one kernel per partition on separate CUDA streams.

        Kernels overlap on the device (bounded by the SM pool), but
        their *submissions* serialize on the CPU — one enqueue per
        stream — which is what makes over-partitioning small messages a
        loss and motivates the tuned schedule.
        """
        if len(durations) == 1:
            yield from self.streams[0].run_kernel(durations[0], blocks, category, "p0")
            return
        submit = self.device.spec.kernel_launch
        failstop = getattr(self.sim, "failstop", None)
        procs = []
        for i, d in enumerate(durations):
            if i:
                yield self.sim.timeout(submit)
            p = self.sim.process(
                self.streams[i % _MAX_STREAMS].run_kernel(d, blocks, category, f"p{i}"),
                name=f"{category}-p{i}",
            )
            if failstop is not None:
                # Partition kernels belong to this device's rank (ranks
                # map 1:1 onto GPUs) so a fail-stop kill sweeps them up.
                failstop.adopt(self.device.device_id, p)
            procs.append(p)
        yield self.sim.all_of(procs)

    def _send_mpc(self, data: np.ndarray):
        cfg = self.config
        spec = self.device.spec
        model = kernel_cost_model_for("mpc")
        codec = self._codec("mpc", dimensionality=cfg.mpc_dimensionality)
        nbytes = data.nbytes

        parts = cfg.partitions or partitions_for_message(nbytes)
        # Never partition below one SM per kernel or 64 elements each.
        parts = max(1, min(parts, spec.sm_count, data.size // 64 or 1))

        t_prepare_start = self.sim.now
        resources = []
        try:
            bound = nbytes + nbytes // 16 + 4096  # worst-case MPC expansion
            comp_buf = yield from self._acquire_data_buffer(bound, "mpc_compressed")
            resources.append(comp_buf)
            doff = yield from self._acquire_doff()
            resources.append(doff)

            # Real compression, one partition at a time (memoized host-side;
            # kernel time is charged below regardless).
            pieces = np.array_split(data, parts)
            comps = [GLOBAL_CODEC_CACHE.compress(codec, p) for p in pieces]
            sizes = [c.nbytes for c in comps]

            # Modelled kernel executions (concurrent when partitioned).
            blocks = max(1, spec.sm_count // parts)
            durations = [
                model.compress_time(p.nbytes, blocks, spec.sm_count) for p in pieces
            ]
            self._observe_kernels("compress", "mpc", durations)
            yield from self._run_partition_kernels(durations, blocks, "compression_kernel")

            # Retrieve compressed size(s): GDRCopy (OPT) vs cudaMemcpy (naive).
            size_bytes = 4 * parts
            if cfg.use_gdrcopy:
                yield from self.device.gdrcopy(size_bytes, "compressed_size")
            else:
                yield from self.device.memcpy_d2h(size_bytes, "compressed_size")

            # Merge partition outputs into one contiguous buffer (fixed
            # order, Sec. IV); partition 0 is already in place.
            if parts > 1:
                yield from self.device.memcpy_d2d(sum(sizes[1:]), "combine")

            payload = np.concatenate([c.payload for c in comps]) if parts > 1 else comps[0].payload
            if self.adaptive_policy is not None:
                blocks_r = max(1, spec.sm_count // parts)
                est_decompr = max(
                    model.decompress_time(p.nbytes, blocks_r, spec.sm_count) for p in pieces
                )
                self.adaptive_policy.record(
                    nbytes, nbytes / max(1, payload.nbytes),
                    self.sim.now - t_prepare_start, est_decompr,
                )
        except BaseException:
            yield from self._release(resources)
            raise
        if payload.nbytes >= nbytes:
            # Incompressible: fall back to the raw message (the kernel
            # time was still spent — that is the price of trying).
            self._record_compression("mpc", nbytes, payload.nbytes, fallback=True)
            yield from self._release(resources)
            return SendPlan(
                header=CompressionHeader.uncompressed(nbytes),
                payload=data, wire_nbytes=nbytes, crc=payload_crc32(data),
            )
        self._record_compression("mpc", nbytes, payload.nbytes)
        comp_buf.write(payload)
        header = CompressionHeader.for_message(
            "mpc", data.dtype, data.size, cfg.mpc_dimensionality, sizes
        )
        return SendPlan(
            header=header, payload=payload, wire_nbytes=payload.nbytes,
            resources=resources, crc=self._plan_crc(codec, data, comps),
        )

    def _zfp_grid_dims(self):
        """ZFP's get_max_grid_dims: per-message cudaGetDeviceProperties
        in the naive library vs. a cached cudaDeviceGetAttribute in
        ZFP-OPT (Section V)."""
        if self.config.cache_device_attrs:
            yield from self.device.get_device_attribute("max_grid_dim_x", cached=True)
        else:
            yield from self.device.get_device_properties()

    def _zfp_stream_field(self):
        """Construct zfp_stream / zfp_field (CPU-side, ~9us)."""
        t0 = self.sim.now
        yield self.sim.timeout(_ZFP_STREAM_FIELD_TIME)
        if self.sim.tracer is not None:
            self.sim.tracer.span(t0, self.sim.now, "zfp_stream_field", "create",
                                 rank=self.device.device_id, track="main")

    def _record_compression(self, codec_name: str, bytes_in: int,
                            bytes_out: int, fallback: bool = False) -> None:
        """Feed the compression-ratio metrics (CR = bytes_in/bytes_out)."""
        tracer = self.sim.tracer
        if tracer is None:
            return
        if fallback:
            tracer.metrics.inc("compress.fallback", codec=codec_name)
        else:
            tracer.metrics.inc("compress.bytes_in", bytes_in, codec=codec_name)
            tracer.metrics.inc("compress.bytes_out", bytes_out, codec=codec_name)

    def _observe_kernels(self, kind: str, codec_name: str, durations) -> None:
        """Feed per-launch kernel durations (microseconds) into the
        ``compress.kernel_us`` / ``decompress.kernel_us`` histograms."""
        tracer = self.sim.tracer
        if tracer is None:
            return
        name = f"{kind}.kernel_us"
        for d in durations:
            tracer.metrics.observe(name, d * 1e6, codec=codec_name)

    def _send_zfp(self, data: np.ndarray):
        cfg = self.config
        spec = self.device.spec
        model = kernel_cost_model_for("zfp")
        codec = self._codec("zfp", rate=cfg.zfp_rate)
        nbytes = data.nbytes

        t_prepare_start = self.sim.now
        resources = []
        try:
            yield from self._zfp_stream_field()
            yield from self._zfp_grid_dims()

            expected = codec.expected_compressed_bytes(data.size, data.dtype.itemsize)
            comp_buf = yield from self._acquire_data_buffer(expected, "zfp_compressed")
            resources.append(comp_buf)

            comp = GLOBAL_CODEC_CACHE.compress(codec, data)  # real compression
            duration = model.compress_time(nbytes, spec.sm_count, spec.sm_count)
            self._observe_kernels("compress", "zfp", [duration])
            yield from self.streams[0].run_kernel(
                duration, spec.sm_count, "compression_kernel", "zfp"
            )
            # No size copy: ZFP's compressed size is predictable (Sec. III).
            if self.adaptive_policy is not None:
                est_decompr = model.decompress_time(nbytes, spec.sm_count, spec.sm_count)
                self.adaptive_policy.record(
                    nbytes, nbytes / max(1, comp.nbytes),
                    self.sim.now - t_prepare_start, est_decompr,
                )
        except BaseException:
            yield from self._release(resources)
            raise
        if comp.nbytes >= nbytes:
            # CR < 1 at this rate/size: ship raw rather than expand.
            self._record_compression("zfp", nbytes, comp.nbytes, fallback=True)
            yield from self._release(resources)
            return SendPlan(
                header=CompressionHeader.uncompressed(nbytes),
                payload=data, wire_nbytes=nbytes, crc=payload_crc32(data),
            )
        self._record_compression("zfp", nbytes, comp.nbytes)
        comp_buf.write(comp.payload)
        header = CompressionHeader.for_message(
            "zfp", data.dtype, data.size, cfg.zfp_rate, (comp.nbytes,)
        )
        return SendPlan(
            header=header, payload=comp.payload, wire_nbytes=comp.nbytes,
            resources=resources, crc=self._plan_crc(codec, data, [comp]),
        )

    def _generic_codec(self):
        cfg = self.config
        if cfg.algorithm == "sz":
            return self._codec("sz", error_bound=cfg.sz_error_bound), \
                CompressionHeader.encode_sz_bound(cfg.sz_error_bound)
        return self._codec(cfg.algorithm), 0

    def _send_generic(self, data: np.ndarray):
        """Any other registry codec (sz/gfc/fpc) as the transport
        compressor: one full-device kernel, size retrieved like MPC's
        (data-dependent compressed size)."""
        cfg = self.config
        spec = self.device.spec
        model = kernel_cost_model_for(cfg.algorithm)
        codec, param = self._generic_codec()
        nbytes = data.nbytes
        if data.dtype.type not in codec.supported_dtypes:
            return SendPlan(
                header=CompressionHeader.uncompressed(nbytes),
                payload=data, wire_nbytes=nbytes, crc=payload_crc32(data),
            )
        resources = []
        try:
            bound = nbytes + nbytes // 4 + 8192
            comp_buf = yield from self._acquire_data_buffer(bound, f"{cfg.algorithm}_compressed")
            resources.append(comp_buf)
            comp = GLOBAL_CODEC_CACHE.compress(codec, data)
            duration = model.compress_time(nbytes, spec.sm_count, spec.sm_count)
            self._observe_kernels("compress", cfg.algorithm, [duration])
            yield from self.streams[0].run_kernel(
                duration, spec.sm_count, "compression_kernel", cfg.algorithm
            )
            if cfg.use_gdrcopy:
                yield from self.device.gdrcopy(4, "compressed_size")
            else:
                yield from self.device.memcpy_d2h(4, "compressed_size")
        except BaseException:
            yield from self._release(resources)
            raise
        if comp.nbytes >= nbytes:
            self._record_compression(cfg.algorithm, nbytes, comp.nbytes,
                                     fallback=True)
            yield from self._release(resources)
            return SendPlan(
                header=CompressionHeader.uncompressed(nbytes),
                payload=data, wire_nbytes=nbytes, crc=payload_crc32(data),
            )
        self._record_compression(cfg.algorithm, nbytes, comp.nbytes)
        comp_buf.write(comp.payload)
        header = CompressionHeader.for_message(
            cfg.algorithm, data.dtype, data.size, param, (comp.nbytes,)
        )
        return SendPlan(header=header, payload=comp.payload,
                        wire_nbytes=comp.nbytes, resources=resources,
                        crc=self._plan_crc(codec, data, [comp]))

    # -- pipelined extension -------------------------------------------------
    def sender_prepare_pipelined(self, data, path_bandwidth: float = 0.0):
        """Build a :class:`PipelinedSendPlan`, or return ``None`` when
        the message should take the ordinary path (not compressible,
        too small to split, or incompressible data).

        Works for both codecs: ZFP partitions are independent 4-block
        groups, MPC partitions reset the LNV predictor exactly as in
        the paper's combined scheme (Section IV notes the ratio impact
        is negligible).
        """
        cfg = self.config
        if not (cfg.pipeline and self._compressible(data)):
            return None
        spec = self.device.spec
        nbytes = data.nbytes
        parts = cfg.partitions or partitions_for_message(nbytes)
        parts = max(1, min(parts, spec.sm_count, data.size // 64 or 1))
        if parts < 2:
            return None
        model = kernel_cost_model_for(cfg.algorithm)
        if cfg.algorithm == "mpc":
            codec = self._codec("mpc", dimensionality=cfg.mpc_dimensionality)
            param = cfg.mpc_dimensionality
        else:
            codec = self._codec("zfp", rate=cfg.zfp_rate)
            param = cfg.zfp_rate

        pieces = np.array_split(data, parts)
        comps = [GLOBAL_CODEC_CACHE.compress(codec, p) for p in pieces]
        sizes = [c.nbytes for c in comps]
        if sum(sizes) >= nbytes:
            return None  # incompressible: take the raw fallback path
        self._record_compression(cfg.algorithm, nbytes, sum(sizes))

        resources = []
        try:
            bound = nbytes + nbytes // 16 + 4096
            comp_buf = yield from self._acquire_data_buffer(bound, "pipe_compressed")
            resources.append(comp_buf)
            if cfg.algorithm == "mpc":
                doff = yield from self._acquire_doff()
                resources.append(doff)
            else:
                yield from self._zfp_stream_field()
                yield from self._zfp_grid_dims()
        except BaseException:
            yield from self._release(resources)
            raise

        # Pipelining wants *staggered* completions: chunks run back to
        # back on one stream at half-device width (the paper's "half
        # the SMs is roughly the same as using full GPU"), so chunk 0
        # is on the wire while chunk 1 is still compressing.
        blocks = max(1, spec.sm_count // 2)
        engine = self

        def kernel_run(i: int):
            duration = model.compress_time(pieces[i].nbytes, blocks, spec.sm_count)
            engine._observe_kernels("compress", cfg.algorithm, [duration])
            yield from engine.streams[0].run_kernel(
                duration, blocks, "compression_kernel", f"pipe{i}"
            )
            if cfg.algorithm == "mpc":
                # per-partition compressed-size retrieval
                if cfg.use_gdrcopy:
                    yield from engine.device.gdrcopy(4, "compressed_size")
                else:
                    yield from engine.device.memcpy_d2h(4, "compressed_size")

        header = CompressionHeader.for_message(
            cfg.algorithm, data.dtype, data.size, param, sizes, pipelined=True
        )
        return PipelinedSendPlan(
            header=header, comps=comps, resources=resources, kernel_run=kernel_run,
            crc=self._plan_crc(codec, data, comps),
        )

    def pipelined_release(self, plan: PipelinedSendPlan):
        yield from self._release(plan.resources)
        plan.resources = []

    def pipelined_receive_part(self, header: CompressionHeader, part: int, payload):
        """Decompress one arrived partition (generator subroutine)."""
        spec = self.device.spec
        model = kernel_cost_model_for(header.algorithm)
        codec = self._codec(header.algorithm, **header.codec_params())
        dtype = np.dtype(header.dtype_name)
        counts = _partition_counts(header.n_elements, header.n_partitions)
        # Half-device kernels: arrivals are already staggered by the
        # wire, adjacent parts may overlap pairwise.
        blocks = max(1, spec.sm_count // 2)
        duration = model.decompress_time(counts[part] * dtype.itemsize, blocks,
                                         spec.sm_count)
        self._observe_kernels("decompress", header.algorithm, [duration])
        yield from self.streams[part % _MAX_STREAMS].run_kernel(
            duration, blocks, "decompression_kernel", f"pipe{part}"
        )
        comp = CompressedData(
            algorithm=header.algorithm,
            payload=np.ascontiguousarray(payload, dtype=np.uint8),
            n_elements=counts[part], dtype=dtype, params=header.codec_params(),
        )
        return GLOBAL_CODEC_CACHE.decompress(codec, comp)

    # -- compressed-domain reduction (hZCCL-style) ---------------------------
    def reduce_capable(self, op) -> bool:
        """True when reduction collectives may combine *compressed* wire
        payloads directly via :meth:`reduce_wire_payload` instead of
        decoding at every hop: compression on, the reduction is a plain
        sum, and the configured codec advertises
        :attr:`~repro.compression.base.Compressor.reduce_supported`."""
        cfg = self.config
        if not cfg.enabled or op is not np.add:
            return False
        codec = self._transport_codec()
        clean = getattr(codec, "inner", codec)
        return bool(clean.reduce_supported)

    def _transport_codec(self):
        """The codec the current config would put on the wire."""
        cfg = self.config
        if cfg.algorithm == "mpc":
            return self._codec("mpc", dimensionality=cfg.mpc_dimensionality)
        if cfg.algorithm == "zfp":
            return self._codec("zfp", rate=cfg.zfp_rate)
        if cfg.algorithm == "sz":
            return self._codec("sz", error_bound=cfg.sz_error_bound)
        return self._codec(cfg.algorithm)

    def reduce_wire_payload(self, header_a: CompressionHeader, payload_a,
                            header_b: CompressionHeader, payload_b,
                            want_crc: bool = False):
        """Combine two compressed wire payloads without decoding either
        to full precision (generator subroutine).

        Both operands must be compressed images of the same shape (same
        codec, element count and partitioning — which reduction
        collectives guarantee because every rank packs the same chunk
        geometry).  One fused partial-decode + add + re-encode kernel is
        charged per partition; the result's bits are exactly
        ``compress(add(decompress(a), decompress(b)))`` per the
        :meth:`~repro.compression.base.Compressor.reduce_compressed`
        contract.

        Returns ``(header, payload, crc)`` for the combined image —
        falling back to an uncompressed header + raw array when the
        partial sums stop compressing.  ``crc`` (the post-decode stamp)
        is computed only when ``want_crc`` — integrity checking is the
        only consumer.
        """
        if not (header_a.compressed and header_b.compressed):
            raise CompressionError("reduce_wire_payload needs two compressed operands")
        if (header_a.algorithm != header_b.algorithm
                or header_a.n_elements != header_b.n_elements
                or header_a.n_partitions != header_b.n_partitions
                or header_a.dtype_name != header_b.dtype_name):
            raise CompressionError(
                f"wire reduction operand mismatch: {header_a!r} vs {header_b!r}"
            )
        spec = self.device.spec
        model = kernel_cost_model_for(header_a.algorithm)
        codec = self._codec(header_a.algorithm, **header_a.codec_params())
        clean = getattr(codec, "inner", codec)
        dtype = np.dtype(header_a.dtype_name)
        parts = header_a.n_partitions
        counts = _partition_counts(header_a.n_elements, parts)

        # Fused kernels, one per partition, like the decode path.
        blocks = max(1, spec.sm_count // parts)
        durations = [
            model.reduce_time(c * dtype.itemsize, blocks, spec.sm_count)
            for c in counts
        ]
        self._observe_kernels("reduce", header_a.algorithm, durations)
        yield from self._run_partition_kernels(durations, blocks, "reduction_kernel")

        def _split(header, payload):
            payload = np.ascontiguousarray(payload, dtype=np.uint8)
            pieces, offset = [], 0
            for size in header.partition_sizes:
                pieces.append(payload[offset:offset + size])
                offset += size
            if offset != payload.nbytes:
                raise CompressionError(
                    f"payload has {payload.nbytes} bytes but partitions account for {offset}"
                )
            return pieces

        params = header_a.codec_params()
        reduced = []
        for count, pa, pb in zip(counts, _split(header_a, payload_a),
                                 _split(header_b, payload_b)):
            comp_a = CompressedData(algorithm=header_a.algorithm, payload=pa,
                                    n_elements=count, dtype=dtype, params=params)
            comp_b = CompressedData(algorithm=header_a.algorithm, payload=pb,
                                    n_elements=count, dtype=dtype, params=params)
            reduced.append(clean.reduce_compressed(comp_a, comp_b))
        sizes = [c.nbytes for c in reduced]

        raw_nbytes = header_a.n_elements * dtype.itemsize
        if sum(sizes) >= raw_nbytes:
            # Partial sums stopped compressing: decode once and degrade
            # this accumulator to a raw image.
            out = np.concatenate([clean.decompress(c) for c in reduced]) \
                if parts > 1 else clean.decompress(reduced[0])
            self._record_compression(header_a.algorithm, raw_nbytes,
                                     sum(sizes), fallback=True)
            return (CompressionHeader.uncompressed(raw_nbytes), out,
                    payload_crc32(out) if want_crc else None)

        self._record_compression(header_a.algorithm, raw_nbytes, sum(sizes))
        payload = np.concatenate([c.payload for c in reduced]) \
            if parts > 1 else reduced[0].payload
        header = CompressionHeader.for_message(
            header_a.algorithm, dtype, header_a.n_elements,
            header_a.param, sizes,
        )
        crc = None
        if want_crc:
            outs = [GLOBAL_CODEC_CACHE.decompress(clean, c) for c in reduced]
            crc = payload_crc32(np.concatenate(outs) if parts > 1 else outs[0])
        return header, payload, crc

    # -- receiver -----------------------------------------------------------
    def receiver_prepare(self, header: CompressionHeader):
        """Between RTS and CTS: obtain the temporary device buffer (and
        MPC's d_off) for the incoming compressed payload."""
        if not header.compressed:
            return []
        resources = []
        try:
            buf = yield from self._acquire_data_buffer(header.wire_bytes, "recv_compressed")
            resources.append(buf)
            if header.algorithm == "mpc":
                doff = yield from self._acquire_doff()
                resources.append(doff)
        except BaseException:
            yield from self._release(resources)
            raise
        return resources

    def receiver_complete(self, header: CompressionHeader, payload, resources: list):
        """After the data lands: decompress and restore the original."""
        if not header.compressed:
            return payload
        spec = self.device.spec
        model = kernel_cost_model_for(header.algorithm)
        codec = self._codec(header.algorithm, **header.codec_params())
        dtype = np.dtype(header.dtype_name)

        if header.algorithm == "zfp":
            yield from self._zfp_stream_field()
            yield from self._zfp_grid_dims()

        parts = header.n_partitions
        counts = _partition_counts(header.n_elements, parts)
        blocks = max(1, spec.sm_count // parts)
        durations = [
            model.decompress_time(c * dtype.itemsize, blocks, spec.sm_count)
            for c in counts
        ]
        self._observe_kernels("decompress", header.algorithm, durations)
        yield from self._run_partition_kernels(durations, blocks, "decompression_kernel")

        # Real decompression, partition by partition.
        out_parts = []
        offset = 0
        payload = np.ascontiguousarray(payload, dtype=np.uint8)
        for count, size in zip(counts, header.partition_sizes):
            piece = payload[offset:offset + size]
            offset += size
            comp = CompressedData(
                algorithm=header.algorithm, payload=piece, n_elements=count,
                dtype=dtype, params=header.codec_params(),
            )
            out_parts.append(GLOBAL_CODEC_CACHE.decompress(codec, comp))
        if offset != payload.nbytes:
            raise CompressionError(
                f"payload has {payload.nbytes} bytes but partitions account for {offset}"
            )
        result = np.concatenate(out_parts) if parts > 1 else out_parts[0]

        yield from self._release(resources)
        return result
