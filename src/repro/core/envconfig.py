"""The one sanctioned place to read process environment configuration.

Environment reads scattered through the package are a determinism
hazard: a run's outputs silently depend on ambient process state that
no snapshot or trace records.  The determinism linter
(:mod:`repro.check.lint`, rule RPR005) therefore bans ``os.environ`` /
``os.getenv`` everywhere in ``src/repro`` — except here.

Rules for adding a knob:

* it must only *widen or narrow the work performed* (e.g. sweep range),
  never change a modelled cost, a seed, or anything else that feeds
  simulated numbers — two runs of the same scenario must stay
  bit-identical regardless of the environment;
* it must be documented in this module so ``docs/static-analysis.md``
  can point here as the complete inventory.

Current knobs:

``REPRO_BENCH_FULL=1``
    Extend benchmark sweeps to the paper's full 256 KiB..32 MiB range
    (default stops at 8 MiB).  Consumed by
    :func:`repro.analysis.bench.full_sweep_enabled`.
"""

from __future__ import annotations

import os

__all__ = ["env_flag"]


def env_flag(name: str) -> bool:
    """True when environment variable ``name`` is set to ``"1"``.

    The single gateway for boolean environment knobs; see the module
    docstring for the inventory and the rules.
    """
    return os.environ.get(name, "") == "1"  # repro: allow-RPR005 (the documented entry point)
