"""The compression header piggybacked on the RTS packet.

The framework forwards two groups of information from sender to
receiver (paper Figure 4):

* **A — control parameters**: whether compression is used, which
  algorithm, the original element count and dtype, and the algorithm
  knobs (MPC dimensionality / ZFP rate, number of partitions).
* **B — kernel results**: the compressed size(s); for partitioned
  MPC-OPT, the per-partition compressed sizes so the receiver can
  launch one decompression kernel per partition.

``pack``/``unpack`` give the header a concrete binary form so the
RTS packet size (and hence its wire time) is realistic.

Binary layout (little-endian)::

    u8   magic (0xC5)
    u8   flags          bit0: compressed, bit1: pipelined
    u8   algorithm      0=null 1=mpc 2=zfp 3=fpc
    u8   dtype          0=float32 1=float64
    u64  n_elements
    u32  param          (mpc dimensionality | zfp rate)
    u16  n_partitions
    u32  x n_partitions  compressed bytes per partition
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import HeaderError

__all__ = ["CompressionHeader"]

_MAGIC = 0xC5
_ALGO_CODES = {"null": 0, "mpc": 1, "zfp": 2, "fpc": 3, "gfc": 4, "sz": 5}
_ALGO_NAMES = {v: k for k, v in _ALGO_CODES.items()}
_DTYPE_CODES = {"float32": 0, "float64": 1}
_DTYPE_NAMES = {v: k for k, v in _DTYPE_CODES.items()}
_FIXED = struct.Struct("<BBBBQIH")


@dataclass(frozen=True)
class CompressionHeader:
    """Everything the receiver needs to restore the message."""

    compressed: bool
    algorithm: str = "null"
    dtype_name: str = "float32"
    n_elements: int = 0
    param: int = 0
    partition_sizes: tuple = field(default_factory=tuple)
    pipelined: bool = False

    @classmethod
    def uncompressed(cls, nbytes: int) -> "CompressionHeader":
        """Header for a message sent as raw bytes (compression off,
        below threshold, or unsupported dtype)."""
        return cls(compressed=False, n_elements=int(nbytes), partition_sizes=(int(nbytes),))

    @classmethod
    def for_message(cls, algorithm: str, dtype, n_elements: int, param: int,
                    partition_sizes, pipelined: bool = False) -> "CompressionHeader":
        return cls(
            compressed=True,
            algorithm=algorithm,
            dtype_name=np.dtype(dtype).name,
            n_elements=int(n_elements),
            param=int(param),
            partition_sizes=tuple(int(s) for s in partition_sizes),
            pipelined=pipelined,
        )

    # -- derived -----------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self.partition_sizes)

    @property
    def wire_bytes(self) -> int:
        """Total compressed payload bytes on the wire."""
        return sum(self.partition_sizes)

    @property
    def original_nbytes(self) -> int:
        if not self.compressed:
            return self.n_elements  # stored as raw byte count
        return self.n_elements * np.dtype(self.dtype_name).itemsize

    @property
    def nbytes(self) -> int:
        """Size of the packed header itself (added to the RTS packet)."""
        return _FIXED.size + 4 * self.n_partitions

    # -- wire form ----------------------------------------------------------
    def pack(self) -> bytes:
        try:
            algo = _ALGO_CODES[self.algorithm]
            dt = _DTYPE_CODES[self.dtype_name]
        except KeyError as exc:
            raise HeaderError(f"unencodable header field: {exc}") from None
        if self.n_partitions > 0xFFFF:
            raise HeaderError(f"too many partitions: {self.n_partitions}")
        flags = (1 if self.compressed else 0) | (2 if self.pipelined else 0)
        head = _FIXED.pack(
            _MAGIC, flags, algo, dt,
            self.n_elements, self.param, self.n_partitions,
        )
        return head + struct.pack(f"<{self.n_partitions}I", *self.partition_sizes)

    @classmethod
    def unpack(cls, raw: bytes) -> "CompressionHeader":
        if len(raw) < _FIXED.size:
            raise HeaderError(f"header truncated: {len(raw)} bytes")
        magic, flags, algo, dt, n_elem, param, n_part = _FIXED.unpack_from(raw)
        if magic != _MAGIC:
            raise HeaderError(f"bad header magic: {magic:#x}")
        need = _FIXED.size + 4 * n_part
        if len(raw) < need:
            raise HeaderError(f"header truncated: need {need} bytes, have {len(raw)}")
        sizes = struct.unpack_from(f"<{n_part}I", raw, _FIXED.size)
        try:
            algorithm = _ALGO_NAMES[algo]
            dtype_name = _DTYPE_NAMES[dt]
        except KeyError as exc:
            raise HeaderError(f"undecodable header field: {exc}") from None
        return cls(
            compressed=bool(flags & 1),
            algorithm=algorithm,
            dtype_name=dtype_name,
            n_elements=n_elem,
            param=param,
            partition_sizes=sizes,
            pipelined=bool(flags & 2),
        )

    def codec_params(self) -> dict:
        """Control parameters to reconstruct the codec on the receiver."""
        if self.algorithm == "mpc":
            return {"dimensionality": self.param}
        if self.algorithm == "zfp":
            return {"rate": self.param}
        if self.algorithm == "sz":
            # the u32 param carries the float32 bit pattern of the bound
            return {"error_bound": float(
                np.frombuffer(struct.pack("<I", self.param), dtype=np.float32)[0]
            )}
        return {}

    @staticmethod
    def encode_sz_bound(error_bound: float) -> int:
        """Pack an SZ error bound into the u32 header param field."""
        return struct.unpack("<I", np.float32(error_bound).tobytes())[0]
