"""Partition-count tuning for MPC-OPT's kernel decomposition.

Section IV: "to achieve better performance, we fine-tune the number of
partitions used for different message sizes based on the experimental
results".  The static table below is the equivalent tuned schedule for
the modelled V100/RTX parts: small messages cannot amortize extra
kernel launches, large ones benefit from more concurrent kernels with
fewer thread blocks each (less busy-wait synchronization).

``sweep_partitions`` reproduces the tuning experiment itself and is
exercised by ``benchmarks/bench_ablation_partitions.py``.
"""

from __future__ import annotations

from repro.utils.units import KiB, MiB

__all__ = ["partitions_for_message", "sweep_partitions"]

#: (max message bytes, partitions) — first matching row wins.  Tuned
#: against bench_ablation_partitions.py on the V100 model (the paper
#: likewise fine-tunes per message size experimentally).
_SCHEDULE = (
    (128 * KiB, 1),
    (1 * MiB, 2),
    (4 * MiB, 4),
    (float("inf"), 8),
)


def partitions_for_message(nbytes: int) -> int:
    """Tuned partition count for one message size."""
    for limit, parts in _SCHEDULE:
        if nbytes <= limit:
            return parts
    raise AssertionError("unreachable")  # pragma: no cover


def sweep_partitions(model, nbytes: int, sm_count: int, candidates=(1, 2, 4, 8, 16)) -> dict:
    """Model-predicted compression wall time per candidate partition
    count.

    ``model`` is a :class:`repro.compression.perfmodel.KernelCostModel`.
    Partition kernels run concurrently with ``sm_count // p`` blocks
    each, but their *launches* serialize on the CPU, and the partition
    outputs must be merged — which is why small messages prefer a
    single kernel and large ones prefer many.
    """
    out = {}
    for p in candidates:
        blocks = max(1, sm_count // p)
        per_kernel = model.compress_time(-(-nbytes // p), blocks, sm_count)
        serial_launches = (p - 1) * model.launch_overhead
        combine = 0.0 if p == 1 else model.launch_overhead + nbytes / 400e9
        out[p] = serial_launches + per_kernel + combine
    return out
