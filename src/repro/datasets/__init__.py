"""Synthetic stand-ins for the eight HPC datasets of Table III.

The paper evaluates MPC/ZFP on eight single-precision datasets from
the Burtscher collection (msg_bt, msg_lu, msg_sp, msg_sppm,
msg_sweep3d, obs_error, obs_info, num_plasma).  Those files are not
redistributable, so :mod:`repro.datasets.synthetic` generates arrays
tuned to reproduce each dataset's published statistics — size, unique
value fraction and (most importantly) MPC compression ratio — which
are the properties the paper's results depend on.
"""

from repro.datasets.catalog import DATASETS, DatasetSpec, dataset_names
from repro.datasets.synthetic import generate

__all__ = ["DATASETS", "DatasetSpec", "dataset_names", "generate"]
