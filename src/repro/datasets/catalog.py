"""Published per-dataset statistics (paper Table III).

``cr_mpc`` is MPC's best compression ratio with fine-tuned
dimensionality; ``dimensionality`` is the stride our generator builds
into the data (and at which MPC compresses it best).  Throughputs are
the paper's V100 measurements, kept for reference/reporting.

The generator knobs (``step_bits``, ``run_length``, ``dup_frac``/
``burst``, ``pool_frac``) were calibrated so the synthetic datasets
reproduce the paper's unique-value fractions and MPC ratios; see
:mod:`repro.datasets.synthetic` for their meaning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "get_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table III plus generator tuning knobs."""

    name: str
    size_mb: float          # paper dataset size
    unique_pct: float       # % unique values
    cr_mpc: float           # paper's MPC compression ratio
    cr_zfp: float = 2.0     # rate 16 on singles is exactly 2
    tp_compr_zfp: float = 0.0    # Gb/s, paper V100
    tp_decompr_zfp: float = 0.0
    tp_compr_mpc: float = 0.0
    tp_decompr_mpc: float = 0.0
    # generator knobs (see repro.datasets.synthetic)
    step_bits: int = 20        # significant bits of the LNV residual walk
    run_length: float = 1.0    # mean geometric repeat run (scattered dups)
    dup_frac: float = 0.0      # fraction of data in long constant regions
    burst: int = 256           # fresh-value burst length between regions
    pool_frac: float = 0.0     # value-pool size as a fraction of n
    dimensionality: int = 1    # interleaved field count


DATASETS: dict[str, DatasetSpec] = {
    "msg_bt": DatasetSpec(
        "msg_bt", 128, 92.9, 1.339, 2.0, 469.29, 735.56, 206.01, 189.14,
        step_bits=22, run_length=1.076,
    ),
    "msg_lu": DatasetSpec(
        "msg_lu", 93, 99.2, 1.444, 2.0, 451.48, 743.52, 211.88, 191.05,
        step_bits=20, run_length=1.008,
    ),
    "msg_sp": DatasetSpec(
        "msg_sp", 16, 98.9, 1.352, 2.0, 421.88, 709.34, 204.93, 174.58,
        step_bits=22, run_length=1.011, dimensionality=2,
    ),
    "msg_sppm": DatasetSpec(
        "msg_sppm", 16, 10.2, 8.951, 2.0, 280.36, 395.08, 199.68, 174.31,
        step_bits=22, dup_frac=0.885, burst=256,
    ),
    "msg_sweep3d": DatasetSpec(
        "msg_sweep3d", 60, 89.8, 1.537, 2.0, 334.65, 571.19, 207.14, 211.25,
        step_bits=19, run_length=1.114,
    ),
    "obs_error": DatasetSpec(
        "obs_error", 30, 18.0, 1.301, 2.0, 447.22, 717.36, 209.25, 187.35,
        step_bits=23, run_length=5.6,
    ),
    "obs_info": DatasetSpec(
        "obs_info", 9.1, 23.9, 1.440, 2.0, 536.88, 739.07, 194.18, 168.91,
        step_bits=21, run_length=4.2,
    ),
    "num_plasma": DatasetSpec(
        "num_plasma", 17, 0.3, 1.348, 2.0, 585.80, 822.01, 197.94, 185.52,
        step_bits=21, pool_frac=0.003,
    ),
}


def dataset_names() -> list[str]:
    """Table III order."""
    return list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigError(f"unknown dataset {name!r}; known: {list(DATASETS)}") from None
