"""Generators producing floats with controlled MPC compressibility.

MPC's ratio on a dataset is governed by the bit-width distribution of
the LNV residuals and by how much of the data sits in exactly-constant
runs (whole 32-word blocks of zero residuals vanish entirely), so the
generator synthesizes bit patterns directly:

* **bitwalk** — random-walk the *integer representation* starting from
  1.0f with steps of ``step_bits`` significant bits; adjacent values
  then differ in ~``step_bits`` low bits, which is exactly the
  structure MPC's LNV+bit-transpose+zero-elimination pipeline exploits,
  while every value stays a positive, normal float.
* **scattered duplication** (``run_length`` > 1) — geometric repeat
  runs; lowers the unique-value fraction (obs_error/obs_info) without
  changing the ratio much (short runs rarely cover a whole block).
* **dup/burst mixture** (``dup_frac``/``burst``) — long constant
  regions separated by bursts of fresh values; most 32-word blocks are
  pure zero residuals and get eliminated, reproducing msg_sppm's
  ratio of ~9 at ~10% unique values.
* **value pool** (``pool_frac``) — draw from a tiny pool in a noisy
  cyclic order: almost no unique values but non-trivial residuals
  (num_plasma: 0.3% unique yet ratio only 1.35).
* **interleaving** (``dimensionality``) — d independent walks
  interleaved, so MPC compresses best at stride d (Table III's
  "fine-tuned dimensionality").
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.datasets.catalog import DatasetSpec, get_spec
from repro.errors import ConfigError

__all__ = ["generate", "generate_from_spec", "bitwalk"]

_ONE_F32 = np.uint32(0x3F800000)  # bit pattern of 1.0f


def bitwalk(n: int, step_bits: int, rng: np.random.Generator) -> np.ndarray:
    """Random walk over float32 *bit patterns*.

    Steps are uniform in ``[-2^step_bits, 2^step_bits)`` so LNV
    residuals have ~``step_bits + 1`` significant bits.  The walk is
    reflected away from the exponent extremes to keep every value a
    positive, normal float.
    """
    if not (1 <= step_bits <= 26):
        raise ConfigError(f"step_bits must be in [1, 26], got {step_bits}")
    if n == 0:
        return np.empty(0, dtype=np.float32)
    steps = rng.integers(-(1 << step_bits), 1 << step_bits, size=n, dtype=np.int64)
    walk = np.cumsum(steps) + int(_ONE_F32)
    # Reflect into the safe band of positive normal floats
    # (exponent byte between ~0x20 and ~0x5F).
    lo, hi = 0x20000000, 0x5F000000
    span = hi - lo
    walk = np.abs((walk - lo) % (2 * span) - span) + lo
    return walk.astype(np.uint32).view(np.float32)


def _with_runs(values: np.ndarray, run_length: float, n: int,
               rng: np.random.Generator) -> np.ndarray:
    """Repeat each value a geometric number of times (mean run_length)."""
    if run_length <= 1.0:
        return values[:n]
    lengths = rng.geometric(1.0 / run_length, size=values.size)
    data = np.repeat(values, lengths)
    while data.size < n:  # pragma: no cover - generous sizing above
        extra = rng.geometric(1.0 / run_length, size=1024)
        data = np.concatenate([data, np.repeat(values[: extra.size], extra)])
    return data[:n]


def _dup_burst(n: int, step_bits: int, dup_frac: float, burst: int,
               rng: np.random.Generator) -> np.ndarray:
    """Alternate long constant regions with bursts of fresh values."""
    const_len = max(1, int(round(burst * dup_frac / max(1e-9, 1.0 - dup_frac))))
    period = const_len + burst
    n_periods = -(-n // period) + 1
    fresh = bitwalk(n_periods * (burst + 1), step_bits, rng)
    chunks = []
    pos = 0
    for i in range(n_periods):
        anchor = fresh[i * (burst + 1)]
        chunks.append(np.full(const_len, anchor, dtype=np.float32))
        chunks.append(fresh[i * (burst + 1) + 1:(i + 1) * (burst + 1)])
        pos += period
        if pos >= n:
            break
    return np.concatenate(chunks)[:n]


def generate_from_spec(spec: DatasetSpec, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    """Build a synthetic dataset from a :class:`DatasetSpec`.

    ``scale`` multiplies the paper's dataset size (use e.g. 1/16 for
    fast tests); the statistical structure is size-invariant.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be > 0, got {scale}")
    n = max(64, int(spec.size_mb * scale * 1e6 / 4))
    # zlib.crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which would make "identical" datasets differ
    # across runs and break the bench trajectory's byte-identity.
    rng = np.random.default_rng(seed ^ zlib.crc32(spec.name.encode()) & 0x7FFFFFFF)

    if spec.pool_frac:
        pool = bitwalk(max(4, int(spec.pool_frac * n)), spec.step_bits, rng)
        idx = (np.arange(n) + rng.integers(0, 2, size=n)) % pool.size
        return pool[idx]

    if spec.dup_frac:
        return _dup_burst(n, spec.step_bits, spec.dup_frac, spec.burst, rng)

    d = max(1, spec.dimensionality)
    per = -(-n // d) + 8
    fields = [
        _with_runs(bitwalk(per, spec.step_bits, rng), spec.run_length, per, rng)
        for _ in range(d)
    ]
    data = np.stack(fields, axis=1).reshape(-1)  # interleave fields
    return data[:n].copy()


def generate(name: str, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    """Generate the named Table III dataset (float32, 1-D)."""
    return generate_from_spec(get_spec(name), scale=scale, seed=seed)
