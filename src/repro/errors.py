"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the simulator runs out of events while processes are
    still waiting — e.g. a receive with no matching send."""


class GpuError(ReproError):
    """Raised for invalid operations on the simulated GPU substrate."""


class OutOfDeviceMemoryError(GpuError):
    """Raised when a device allocation exceeds the configured capacity."""


class BufferPoolExhaustedError(GpuError):
    """Raised when a non-growable buffer pool has no free buffers."""


class NetworkError(ReproError):
    """Raised for topology/routing problems (e.g. no path between GPUs)."""


class MpiError(ReproError):
    """Raised for MPI-level misuse (bad rank, truncation, ...)."""


class TruncationError(MpiError):
    """Raised when a receive buffer is smaller than the incoming message."""


class CompressionError(ReproError):
    """Raised when a compressor cannot process the given payload."""


class HeaderError(CompressionError):
    """Raised when a compression header fails to pack/unpack."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""
