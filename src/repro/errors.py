"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the simulator runs out of events while processes are
    still waiting — e.g. a receive with no matching send.

    ``diagnostic`` optionally carries a per-rank dump of the matching
    state (posted receives, unexpected envelopes, in-flight waiters) so
    a hang can be debugged from the exception alone.
    """

    def __init__(self, message: str, diagnostic: str = ""):
        super().__init__(message if not diagnostic
                         else f"{message}\n{diagnostic}")
        self.diagnostic = diagnostic


class GpuError(ReproError):
    """Raised for invalid operations on the simulated GPU substrate."""


class OutOfDeviceMemoryError(GpuError):
    """Raised when a device allocation exceeds the configured capacity."""


class BufferPoolExhaustedError(GpuError):
    """Raised when a non-growable buffer pool has no free buffers."""


class BufferSanitizerError(GpuError):
    """Base class for violations detected by the simulated-memory
    sanitizer (:mod:`repro.check.asan`)."""


class DoubleReleaseError(BufferSanitizerError):
    """Raised when a buffer is returned to its pool (or freed) twice."""


class UseAfterFreeError(BufferSanitizerError):
    """Raised when a buffer is read or written after it was freed or
    returned to its pool."""


class BufferLeakError(BufferSanitizerError):
    """Raised at end of run when buffers are still checked out."""


class BufferRaceError(BufferSanitizerError):
    """Raised when two conflicting accesses (at least one write) to the
    same buffer checkout are concurrent — no happens-before edge orders
    them (:mod:`repro.check.hb`)."""


class NetworkError(ReproError):
    """Raised for topology/routing problems (e.g. no path between GPUs)."""


class MpiError(ReproError):
    """Raised for MPI-level misuse (bad rank, truncation, ...)."""


class TruncationError(MpiError):
    """Raised when a receive buffer is smaller than the incoming message."""


class CompressionError(ReproError):
    """Raised when a compressor cannot process the given payload."""


class HeaderError(CompressionError):
    """Raised when a compression header fails to pack/unpack."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class ResilienceError(MpiError):
    """Base class for failures of the rendezvous resilience layer."""


class RendezvousTimeoutError(ResilienceError):
    """Raised when a rendezvous handshake (or data delivery) exceeds the
    configured timeout.  Carries the matching-state diagnostic of both
    endpoints so the stall is debuggable."""

    def __init__(self, message: str, diagnostic: str = ""):
        super().__init__(message if not diagnostic
                         else f"{message}\n{diagnostic}")
        self.diagnostic = diagnostic


class IntegrityError(ResilienceError):
    """Raised when a delivered payload fails its CRC32 check and no
    retransmission is possible."""


class RetryExhaustedError(ResilienceError):
    """Raised when a message could not be delivered intact within the
    configured retransmission budget."""


class RankFailedError(ResilienceError):
    """Raised when a communication cannot complete because the peer
    rank suffered a fail-stop failure.

    Carries the failed (global) rank, its incarnation number, and the
    last simulated time anything was heard from it, so dead-peer triage
    does not require trace archaeology.
    """

    def __init__(self, message: str, failed_rank: int, incarnation: int = 0,
                 last_heard: float | None = None, diagnostic: str = ""):
        super().__init__(message if not diagnostic
                         else f"{message}\n{diagnostic}")
        self.failed_rank = failed_rank
        self.incarnation = incarnation
        self.last_heard = last_heard
        self.diagnostic = diagnostic


class CollectiveAbortedError(ResilienceError):
    """Raised when an in-flight collective is torn down (revoked)
    because one or more participants suffered fail-stop failures.

    ULFM semantics: every surviving participant of the revoked
    communicator epoch raises this deterministically; recovery is
    ``agree_failures()`` + ``shrink()`` + re-issuing the collective on
    the shrunk communicator.
    """

    def __init__(self, message: str, failed_ranks: tuple = (),
                 collective: str = "", epoch: int = 0):
        super().__init__(message)
        self.failed_ranks = tuple(failed_ranks)
        self.collective = collective
        self.epoch = epoch
