"""Deterministic fault injection for the simulated cluster.

The fault plane has three pieces:

* :class:`~repro.faults.plan.FaultPlan` — a frozen, validated
  description of fault rates, link schedules, and the RNG seed;
* :class:`~repro.faults.injector.FaultInjector` — the live decision
  engine a run attaches as ``sim.faults``; instrumented sites in the
  network, GPU, and compression layers consult it;
* :class:`~repro.faults.codec.FlakyCompressor` — the codec proxy
  installed through the compression registry's fault-wrapper hook.

Pass a plan to :meth:`repro.mpi.cluster.Cluster.run(faults=...)
<repro.mpi.cluster.Cluster.run>` to run any workload under faults; the
paired resilience layer (:mod:`repro.mpi.resilience`) recovers from
them.  :func:`repro.faults.chaos.run_chaos` (also the ``python -m repro
chaos`` subcommand) wraps the whole loop into a verified OMB sweep.
"""

from repro.faults.injector import DROPPED, FaultInjector
from repro.faults.plan import FaultPlan, RankFailure

__all__ = ["FaultPlan", "RankFailure", "FaultInjector", "DROPPED"]
