"""Chaos harness: run an OMB-style workload under a fault plan and
verify that the resilience layer delivered every payload intact.

For each message size the harness runs the same multi-iteration
point-to-point workload twice — once clean, once under the fault plan —
and then checks the faulty run's received arrays bit-for-bit against
the clean run's.  For lossless codecs (and the uncompressed fallback)
the clean result *is* the original payload; for lossy codecs (zfp/sz)
it is the canonical decompression, so bit-equality to it proves the
recovery machinery reproduced exactly what a fault-free transfer would
have delivered (and in particular stayed within the codec's error
bound).

The report also aggregates the recovery cost: injected-fault counts,
retransmissions, fallbacks, and the simulated-time overhead versus the
clean run.  ``python -m repro chaos`` wraps this into a CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core.config import CompressionConfig
from repro.errors import CollectiveAbortedError
from repro.faults.plan import FaultPlan
from repro.mpi.resilience import ResilienceConfig
from repro.utils.units import fmt_bytes

__all__ = ["run_chaos", "run_chaos_sweep", "ChaosReport", "ChaosSizeResult",
           "ChaosSweepReport"]


@dataclass
class ChaosSizeResult:
    """Outcome of one message size's clean-vs-faulty comparison."""

    nbytes: int
    messages: int          #: payloads delivered and verified
    mismatches: int        #: payloads whose bits differed from the clean run
    clean_elapsed: float   #: simulated seconds, fault-free run
    faulty_elapsed: float  #: simulated seconds, under the fault plan
    faults_injected: dict = field(default_factory=dict)   # kind -> count
    recovery_events: dict = field(default_factory=dict)   # event -> count
    #: global ranks the plan fail-stopped mid-run
    killed: tuple = ()
    #: shrink-and-rollback cycles the survivors executed
    recoveries: int = 0

    @property
    def overhead(self) -> float:
        """Recovery cost as extra simulated time (seconds)."""
        return self.faulty_elapsed - self.clean_elapsed


@dataclass
class ChaosReport:
    """Aggregate of a chaos sweep."""

    plan: FaultPlan
    results: list[ChaosSizeResult]

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.results)

    @property
    def total_mismatches(self) -> int:
        return sum(r.mismatches for r in self.results)

    @property
    def ok(self) -> bool:
        """True when every delivered payload matched the clean run."""
        return self.total_mismatches == 0

    def summary(self) -> str:
        lines = [f"chaos sweep under {self.plan.describe()}"]
        for r in self.results:
            injected = sum(r.faults_injected.values())
            retrans = r.recovery_events.get("retransmit", 0)
            fallbacks = r.recovery_events.get("fallback", 0)
            extra = ""
            if r.killed:
                extra = (f", killed ranks {list(r.killed)}, "
                         f"{r.recoveries} shrink+rollback recoveries")
            lines.append(
                f"  {fmt_bytes(r.nbytes):>8}: {r.messages} msgs, "
                f"{r.mismatches} mismatches, {injected} faults, "
                f"{retrans} retransmits, {fallbacks} fallbacks, "
                f"+{r.overhead * 1e6:.1f} us recovery{extra}"
            )
        verdict = "all payloads verified" if self.ok else \
            f"{self.total_mismatches}/{self.total_messages} PAYLOAD MISMATCHES"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _counters_with_prefix(metrics, prefix: str) -> dict:
    out: dict[str, float] = {}
    for (name, labels), v in metrics._counters.items():
        if name.startswith(prefix):
            key = dict(labels).get("kind") if name == "faults.injected" \
                else name[len(prefix):]
            if key:
                out[key] = out.get(key, 0) + v
    return out


def _pt2pt_rank_fn(payloads):
    def rank_fn(comm):
        if comm.rank == 0:
            for i, p in enumerate(payloads):
                yield from comm.send(p, 1, tag=i)
            return None
        got = []
        for i in range(len(payloads)):
            r = yield from comm.recv(0, tag=i)
            got.append(r)
        return got
    return rank_fn


def _collective_rank_fn(op, payloads):
    """Every rank contributes a distinct payload (base + rank) and
    returns everything it received, so the clean/faulty comparison
    covers the *relayed* hops — the keep-compressed collectives forward
    the originating rank's wire image through intermediates, and a
    corrupted or dropped relay must be re-fetched from its immediate
    upstream bit-for-bit."""
    def rank_fn(comm):
        got = []
        for p in payloads:
            mine = p + np.asarray(comm.rank, dtype=p.dtype)
            if op == "bcast":
                out = yield from comm.bcast(p if comm.rank == 0 else None,
                                            root=0)
                got.append(np.asarray(out))
            elif op == "allgather":
                out = yield from comm.allgather(mine)
                got.extend(np.asarray(c) for c in out)
            elif op == "allreduce":
                out = yield from comm.allreduce(mine)
                got.append(np.asarray(out))
            else:  # pragma: no cover - validated by run_chaos
                raise ValueError(op)
        return got
    return rank_fn


def _failstop_init(n: int, grank: int) -> np.ndarray:
    """Per-rank initial field: integer-valued float32 so fixed-order
    reductions stay exact and any bit flip is attributable."""
    return np.full(n, np.float32(grank % 5 + 1), dtype=np.float32)


def _failstop_step(cur, op, state, step):
    """One application step of the fail-stop workloads (generator).

    Each step is a pure deterministic function of (communicator group,
    state, step), so a rolled-back-and-replayed step reproduces the
    original bits and the shrunk-reference run is exactly comparable.
    """
    if op == "allreduce":
        contrib = np.full_like(state, np.float32((cur.grank + 1) * (step % 7 + 1)))
        total = yield from cur.allreduce(contrib)
        return (state + np.asarray(total)).astype(np.float32)
    if op == "bcast":
        msg = (state + np.float32(step + 1)) if cur.rank == 0 else None
        out = yield from cur.bcast(msg, root=0)
        return (np.asarray(out) + np.float32(cur.grank % 3)).astype(np.float32)
    if op == "awp":
        # AWP-style neighbour coupling on a ring: exchange faces, fold
        # in both neighbours' fields.  After a shrink the ring re-knits
        # over the survivors, like re-decomposing the AWP process grid.
        faces = yield from cur.allgather(state)
        left = np.asarray(faces[(cur.rank - 1) % cur.size])
        right = np.asarray(faces[(cur.rank + 1) % cur.size])
        return (state + left + right).astype(np.float32)
    raise ValueError(op)  # pragma: no cover - validated by run_chaos


def _failstop_rank_fn(op, n, steps):
    """Stepping workload with checkpoint/rollback + shrink recovery.

    On :class:`~repro.errors.CollectiveAbortedError` the rank shrinks
    the communicator, allgathers every survivor's latest checkpoint
    step, restores the newest checkpoint common to all of them (ranks
    can be a step apart when the victim died between their collectives)
    and resumes on the shrunk communicator.  No checkpoint yet means a
    cold restart from the initial field.
    """
    def rank_fn(comm):
        state = _failstop_init(n, comm.grank)
        cur = comm
        step = 0
        restarts = []  # (resume step, shrunk group) per completed recovery
        recovering = False
        while True:
            try:
                if recovering:
                    # The whole recovery is itself abortable (a second
                    # failure mid-recovery just restarts it); restarts
                    # is appended only once a recovery completes.
                    cur = yield from cur.shrink()
                    latest = cur.restore()
                    mine = latest[0] if latest is not None else -1
                    if cur.size > 1:
                        gathered = yield from cur.allgather(
                            np.asarray([mine], dtype=np.float32))
                        common = int(min(float(np.asarray(g)[0])
                                         for g in gathered))
                    else:
                        common = int(mine)
                    if common >= 0:
                        _, saved = cur.restore(step=common)
                        state = np.array(saved, dtype=np.float32, copy=True)
                        step = common + 1
                    else:
                        state = _failstop_init(n, comm.grank)
                        step = 0
                    restarts.append((step, tuple(cur.group)))
                    recovering = False
                if step < steps:
                    state = yield from _failstop_step(cur, op, state, step)
                    if cur.should_checkpoint(step):
                        cur.checkpoint(step, state.copy())
                    step += 1
                    continue
                # Completion fence: a peer may still abort behind us
                # (collectives complete non-uniformly), in which case we
                # must rejoin the recovery rather than exit and strand
                # its shrink agreement.
                yield from cur.barrier()
                return {"state": state, "group": tuple(cur.group),
                        "restarts": tuple(restarts)}
            except CollectiveAbortedError:
                recovering = True
    return rank_fn


def _failstop_reference_fn(op, n, steps, restarts):
    """Fault-free replay of a recovered run's final composition.

    ``restarts`` is the chronological ``(resume_step, group)`` history
    one survivor reported.  The group in effect at step ``t`` is the
    *latest* restart whose resume step is <= t (a later rollback can
    rewind past an earlier one), else the full communicator.  Ranks
    outside the group in effect return once they stop participating.
    """
    def rank_fn(comm):
        state = _failstop_init(n, comm.grank)
        cur = comm
        for step in range(steps):
            grp = None
            for s, g in restarts:
                if s <= step:
                    grp = g
            if grp is not None and tuple(cur.group) != tuple(grp):
                if comm.grank not in grp:
                    return None
                cur = comm.subset(grp)
            state = yield from _failstop_step(cur, op, state, step)
        return {"state": state, "group": tuple(cur.group)}
    return rank_fn


WORKLOADS = ("pt2pt", "bcast", "allgather", "allreduce", "awp")
#: workloads that support fail-stop recovery (stepping + checkpoint)
FAILSTOP_WORKLOADS = ("bcast", "allreduce", "awp")


def run_chaos(
    machine: str = "longhorn",
    sizes: tuple = (1 << 18, 1 << 20),
    config: Optional[CompressionConfig] = None,
    plan: Optional[FaultPlan] = None,
    payload: str = "omb",
    iterations: int = 4,
    resilience: Optional[ResilienceConfig] = None,
    nodes: int = 2,
    gpus_per_node: int = 1,
    max_time: float = 60.0,
    asan: bool = True,
    workload: str = "pt2pt",
    checkpoint_every: int = 2,
) -> ChaosReport:
    """OMB-style sweep under a fault plan, with bit-exactness checks.

    ``workload="pt2pt"`` (default): rank 0 streams ``iterations``
    distinct payloads per size to rank 1.  ``"bcast"`` /
    ``"allgather"`` / ``"allreduce"``: all ``nodes * gpus_per_node``
    ranks run the collective ``iterations`` times; the faulty run's
    results on EVERY rank are compared to the clean run's, which
    specifically exercises recovery on relayed (keep-compressed)
    collective hops.  Returns a :class:`ChaosReport`; ``report.ok`` is
    the pass/fail.

    ``asan`` (default on) runs every clean and faulty pass under the
    buffer sanitizer — the recovery paths are exactly where a stray
    double-release or leaked pool buffer would hide, and the sanitizer
    is pure bookkeeping so the bit-exactness comparison is unaffected.

    Plans with ``rank_failures`` (and the ``"awp"`` workload always)
    run the *stepping* variant instead: ``iterations`` application
    steps with a checkpoint every ``checkpoint_every`` steps.  On a
    fail-stop abort the survivors shrink the communicator, agree on the
    newest common checkpoint, roll back and continue; the faulty run's
    surviving states are then compared bit-for-bit against a fault-free
    replay of the same full-comm-prefix + shrunk-suffix composition.
    """
    from repro.mpi.cluster import Cluster
    from repro.omb.payload import make_payload

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")
    config = config or CompressionConfig.mpc_opt()
    plan = plan or FaultPlan(seed=1, corrupt_rate=0.05)
    failstop = plan.has_rank_failures or workload == "awp"
    if failstop and workload not in FAILSTOP_WORKLOADS:
        raise ValueError(
            f"rank-failure plans need a fail-stop workload "
            f"{FAILSTOP_WORKLOADS}, not {workload!r}")
    if workload != "pt2pt" and gpus_per_node == 1 and nodes == 2:
        gpus_per_node = 2  # default to a 4-rank, multi-hop communicator
    cluster = Cluster(machine, nodes=nodes, gpus_per_node=gpus_per_node)
    results = []
    for nbytes in sizes:
        if failstop:
            results.append(_run_failstop_size(
                cluster, workload, nbytes, iterations, config, plan,
                resilience, max_time, asan, checkpoint_every))
            continue
        payloads = [make_payload(payload, nbytes, seed=i)
                    for i in range(iterations)]
        if workload == "pt2pt":
            rank_fn = _pt2pt_rank_fn(payloads)
        else:
            rank_fn = _collective_rank_fn(workload, payloads)

        nprocs = 2 if workload == "pt2pt" else None
        clean = cluster.run(rank_fn, nprocs=nprocs, config=config,
                            max_time=max_time, asan=asan)
        faulty = cluster.run(rank_fn, nprocs=nprocs, config=config,
                             faults=plan, resilience=resilience,
                             max_time=max_time, asan=asan)
        if workload == "pt2pt":
            expected = clean.values[1]
            received = faulty.values[1]
        else:
            expected = [a for per_rank in clean.values for a in per_rank]
            received = [a for per_rank in faulty.values for a in per_rank]
        mismatches = sum(
            0 if (e.dtype == r.dtype and e.shape == r.shape
                  and np.array_equal(e, r)) else 1
            for e, r in zip(expected, received)
        )
        m = faulty.tracer.metrics
        results.append(ChaosSizeResult(
            nbytes=nbytes,
            messages=len(received),
            mismatches=mismatches,
            clean_elapsed=clean.elapsed,
            faulty_elapsed=faulty.elapsed,
            faults_injected=_counters_with_prefix(m, "faults.injected"),
            recovery_events=_counters_with_prefix(m, "resilience."),
        ))
    return ChaosReport(plan=plan, results=results)


def _run_failstop_size(cluster, workload, nbytes, steps, config, plan,
                       resilience, max_time, asan, checkpoint_every):
    """One size of the fail-stop stepping comparison (see run_chaos)."""
    n = max(1, nbytes // 4)  # float32 field elements
    rank_fn = _failstop_rank_fn(workload, n, steps)
    faulty = cluster.run(rank_fn, config=config, faults=plan,
                         resilience=resilience, max_time=max_time,
                         asan=asan, checkpoint_every=checkpoint_every)
    survivors = {r: v for r, v in enumerate(faulty.values)
                 if isinstance(v, dict)}
    restarts = next(iter(survivors.values()))["restarts"] if survivors else ()
    ref_fn = _failstop_reference_fn(workload, n, steps, restarts)
    clean = cluster.run(ref_fn, config=config, max_time=max_time, asan=asan,
                        checkpoint_every=checkpoint_every)
    mismatches = 0
    for r, v in survivors.items():
        expect = clean.values[r]
        ok = (isinstance(expect, dict)
              and tuple(expect["group"]) == tuple(v["group"])
              and expect["state"].dtype == v["state"].dtype
              and expect["state"].shape == v["state"].shape
              and np.array_equal(expect["state"], v["state"]))
        mismatches += 0 if ok else 1
    m = faulty.tracer.metrics
    return ChaosSizeResult(
        nbytes=nbytes,
        messages=len(survivors),
        mismatches=mismatches,
        clean_elapsed=clean.elapsed,
        faulty_elapsed=faulty.elapsed,
        faults_injected=_counters_with_prefix(m, "faults.injected"),
        recovery_events=_counters_with_prefix(m, "resilience."),
        killed=tuple(k.rank for k in faulty.killed),
        recoveries=len(restarts),
    )


@dataclass
class ChaosSweepReport:
    """Aggregate of :func:`run_chaos_sweep` — one chaos run per seed."""

    reports: list            #: per-seed :class:`ChaosReport`
    seeds: tuple = ()

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    def summary(self) -> str:
        total_kills = sum(len(sr.killed) for r in self.reports
                          for sr in r.results)
        total_recov = sum(sr.recoveries for r in self.reports
                          for sr in r.results)
        total_msgs = sum(r.total_messages for r in self.reports)
        total_bad = sum(r.total_mismatches for r in self.reports)
        overheads = [sr.overhead for r in self.reports for sr in r.results]
        mean_over = sum(overheads) / len(overheads) if overheads else 0.0
        lines = [f"chaos seed sweep: {len(self.reports)} seeds "
                 f"{list(self.seeds)}"]
        lines.append(f"  {total_msgs} payloads verified, "
                     f"{total_bad} mismatches")
        lines.append(f"  {total_kills} rank kills, {total_recov} "
                     f"shrink+rollback recoveries, mean recovery overhead "
                     f"+{mean_over * 1e6:.1f} us")
        failed = [s for s, r in zip(self.seeds, self.reports) if not r.ok]
        lines.append("  => all seeds recovered bit-exactly" if self.ok
                     else f"  => FAILING SEEDS: {failed}")
        return "\n".join(lines)


def run_chaos_sweep(n_seeds: int = 3, base_seed: int = 1,
                    **kwargs) -> ChaosSweepReport:
    """Run :func:`run_chaos` across ``n_seeds`` derived fault plans
    (``seed = base_seed + i``) and aggregate recovery statistics.
    Every other keyword is forwarded to :func:`run_chaos`; the plan's
    rank-failure specs are kept identical across seeds so the sweep
    varies message-fault timing around the same kill schedule."""
    plan = kwargs.pop("plan", None) or FaultPlan(seed=base_seed)
    seeds = tuple(base_seed + i for i in range(n_seeds))
    reports = [run_chaos(plan=replace(plan, seed=s), **kwargs)
               for s in seeds]
    return ChaosSweepReport(reports=reports, seeds=seeds)
