"""Chaos harness: run an OMB-style workload under a fault plan and
verify that the resilience layer delivered every payload intact.

For each message size the harness runs the same multi-iteration
point-to-point workload twice — once clean, once under the fault plan —
and then checks the faulty run's received arrays bit-for-bit against
the clean run's.  For lossless codecs (and the uncompressed fallback)
the clean result *is* the original payload; for lossy codecs (zfp/sz)
it is the canonical decompression, so bit-equality to it proves the
recovery machinery reproduced exactly what a fault-free transfer would
have delivered (and in particular stayed within the codec's error
bound).

The report also aggregates the recovery cost: injected-fault counts,
retransmissions, fallbacks, and the simulated-time overhead versus the
clean run.  ``python -m repro chaos`` wraps this into a CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import CompressionConfig
from repro.faults.plan import FaultPlan
from repro.mpi.resilience import ResilienceConfig
from repro.utils.units import fmt_bytes

__all__ = ["run_chaos", "ChaosReport", "ChaosSizeResult"]


@dataclass
class ChaosSizeResult:
    """Outcome of one message size's clean-vs-faulty comparison."""

    nbytes: int
    messages: int          #: payloads delivered and verified
    mismatches: int        #: payloads whose bits differed from the clean run
    clean_elapsed: float   #: simulated seconds, fault-free run
    faulty_elapsed: float  #: simulated seconds, under the fault plan
    faults_injected: dict = field(default_factory=dict)   # kind -> count
    recovery_events: dict = field(default_factory=dict)   # event -> count

    @property
    def overhead(self) -> float:
        """Recovery cost as extra simulated time (seconds)."""
        return self.faulty_elapsed - self.clean_elapsed


@dataclass
class ChaosReport:
    """Aggregate of a chaos sweep."""

    plan: FaultPlan
    results: list[ChaosSizeResult]

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.results)

    @property
    def total_mismatches(self) -> int:
        return sum(r.mismatches for r in self.results)

    @property
    def ok(self) -> bool:
        """True when every delivered payload matched the clean run."""
        return self.total_mismatches == 0

    def summary(self) -> str:
        lines = [f"chaos sweep under {self.plan.describe()}"]
        for r in self.results:
            injected = sum(r.faults_injected.values())
            retrans = r.recovery_events.get("retransmit", 0)
            fallbacks = r.recovery_events.get("fallback", 0)
            lines.append(
                f"  {fmt_bytes(r.nbytes):>8}: {r.messages} msgs, "
                f"{r.mismatches} mismatches, {injected} faults, "
                f"{retrans} retransmits, {fallbacks} fallbacks, "
                f"+{r.overhead * 1e6:.1f} us recovery"
            )
        verdict = "all payloads verified" if self.ok else \
            f"{self.total_mismatches}/{self.total_messages} PAYLOAD MISMATCHES"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _counters_with_prefix(metrics, prefix: str) -> dict:
    out: dict[str, float] = {}
    for (name, labels), v in metrics._counters.items():
        if name.startswith(prefix):
            key = dict(labels).get("kind") if name == "faults.injected" \
                else name[len(prefix):]
            if key:
                out[key] = out.get(key, 0) + v
    return out


def _pt2pt_rank_fn(payloads):
    def rank_fn(comm):
        if comm.rank == 0:
            for i, p in enumerate(payloads):
                yield from comm.send(p, 1, tag=i)
            return None
        got = []
        for i in range(len(payloads)):
            r = yield from comm.recv(0, tag=i)
            got.append(r)
        return got
    return rank_fn


def _collective_rank_fn(op, payloads):
    """Every rank contributes a distinct payload (base + rank) and
    returns everything it received, so the clean/faulty comparison
    covers the *relayed* hops — the keep-compressed collectives forward
    the originating rank's wire image through intermediates, and a
    corrupted or dropped relay must be re-fetched from its immediate
    upstream bit-for-bit."""
    def rank_fn(comm):
        got = []
        for p in payloads:
            mine = p + np.asarray(comm.rank, dtype=p.dtype)
            if op == "bcast":
                out = yield from comm.bcast(p if comm.rank == 0 else None,
                                            root=0)
                got.append(np.asarray(out))
            elif op == "allgather":
                out = yield from comm.allgather(mine)
                got.extend(np.asarray(c) for c in out)
            elif op == "allreduce":
                out = yield from comm.allreduce(mine)
                got.append(np.asarray(out))
            else:  # pragma: no cover - validated by run_chaos
                raise ValueError(op)
        return got
    return rank_fn


WORKLOADS = ("pt2pt", "bcast", "allgather", "allreduce")


def run_chaos(
    machine: str = "longhorn",
    sizes: tuple = (1 << 18, 1 << 20),
    config: Optional[CompressionConfig] = None,
    plan: Optional[FaultPlan] = None,
    payload: str = "omb",
    iterations: int = 4,
    resilience: Optional[ResilienceConfig] = None,
    nodes: int = 2,
    gpus_per_node: int = 1,
    max_time: float = 60.0,
    asan: bool = True,
    workload: str = "pt2pt",
) -> ChaosReport:
    """OMB-style sweep under a fault plan, with bit-exactness checks.

    ``workload="pt2pt"`` (default): rank 0 streams ``iterations``
    distinct payloads per size to rank 1.  ``"bcast"`` /
    ``"allgather"`` / ``"allreduce"``: all ``nodes * gpus_per_node``
    ranks run the collective ``iterations`` times; the faulty run's
    results on EVERY rank are compared to the clean run's, which
    specifically exercises recovery on relayed (keep-compressed)
    collective hops.  Returns a :class:`ChaosReport`; ``report.ok`` is
    the pass/fail.

    ``asan`` (default on) runs every clean and faulty pass under the
    buffer sanitizer — the recovery paths are exactly where a stray
    double-release or leaked pool buffer would hide, and the sanitizer
    is pure bookkeeping so the bit-exactness comparison is unaffected.
    """
    from repro.mpi.cluster import Cluster
    from repro.omb.payload import make_payload

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")
    config = config or CompressionConfig.mpc_opt()
    plan = plan or FaultPlan(seed=1, corrupt_rate=0.05)
    if workload != "pt2pt" and gpus_per_node == 1 and nodes == 2:
        gpus_per_node = 2  # default to a 4-rank, multi-hop communicator
    cluster = Cluster(machine, nodes=nodes, gpus_per_node=gpus_per_node)
    results = []
    for nbytes in sizes:
        payloads = [make_payload(payload, nbytes, seed=i)
                    for i in range(iterations)]
        if workload == "pt2pt":
            rank_fn = _pt2pt_rank_fn(payloads)
        else:
            rank_fn = _collective_rank_fn(workload, payloads)

        nprocs = 2 if workload == "pt2pt" else None
        clean = cluster.run(rank_fn, nprocs=nprocs, config=config,
                            max_time=max_time, asan=asan)
        faulty = cluster.run(rank_fn, nprocs=nprocs, config=config,
                             faults=plan, resilience=resilience,
                             max_time=max_time, asan=asan)
        if workload == "pt2pt":
            expected = clean.values[1]
            received = faulty.values[1]
        else:
            expected = [a for per_rank in clean.values for a in per_rank]
            received = [a for per_rank in faulty.values for a in per_rank]
        mismatches = sum(
            0 if (e.dtype == r.dtype and e.shape == r.shape
                  and np.array_equal(e, r)) else 1
            for e, r in zip(expected, received)
        )
        m = faulty.tracer.metrics
        results.append(ChaosSizeResult(
            nbytes=nbytes,
            messages=len(received),
            mismatches=mismatches,
            clean_elapsed=clean.elapsed,
            faulty_elapsed=faulty.elapsed,
            faults_injected=_counters_with_prefix(m, "faults.injected"),
            recovery_events=_counters_with_prefix(m, "resilience."),
        ))
    return ChaosReport(plan=plan, results=results)
