"""Fault-wrapped codecs.

:class:`FlakyCompressor` proxies a real codec while consulting the
fault injector: ``compress`` can raise a transient
:class:`~repro.errors.CompressionError` (a kernel launch failure), and
``decompress`` can silently bit-flip its output (a round-trip mismatch
that only the CRC32 integrity check downstream can catch).

The proxy sets ``cache_unsafe = True`` so the process-wide
:data:`~repro.compression.cache.GLOBAL_CODEC_CACHE` bypasses it: its
outputs are intentionally non-deterministic per *call* (though
deterministic per seeded run), and a corrupted result memoized under
the clean codec's key would poison every later clean run in the same
process.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedData, Compressor
from repro.errors import CompressionError

__all__ = ["FlakyCompressor"]


class FlakyCompressor(Compressor):
    """A codec proxy that injects compressor faults."""

    #: tells CodecCache never to memoize results from this codec
    cache_unsafe = True

    def __init__(self, inner: Compressor, injector):
        self.inner = inner
        self._injector = injector

    # The registry name, Table I flags, and dtype support all mirror the
    # wrapped codec so headers and feature checks are unaffected.
    @property
    def name(self):  # type: ignore[override]
        return self.inner.name

    @property
    def lossless(self):  # type: ignore[override]
        return self.inner.lossless

    @property
    def supported_dtypes(self):  # type: ignore[override]
        return self.inner.supported_dtypes

    def __getattr__(self, attr):
        # Codec knobs (dimensionality, rate, ...) pass through so cache
        # keys and header round-trips see the real parameters.
        return getattr(self.inner, attr)

    def compress(self, data: np.ndarray) -> CompressedData:
        if self._injector.should_fail_compress(self.inner.name):
            raise CompressionError(
                f"injected {self.inner.name} compression-kernel failure")
        return self.inner.compress(data)

    def decompress(self, comp: CompressedData) -> np.ndarray:
        out = self.inner.decompress(comp)
        return self._injector.maybe_corrupt_decompressed(self.inner.name, out)

    def expected_compressed_bytes(self, n_elements: int, itemsize: int):
        return self.inner.expected_compressed_bytes(n_elements, itemsize)

    def __repr__(self) -> str:
        return f"<FlakyCompressor wrapping {self.inner!r}>"
