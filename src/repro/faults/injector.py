"""The live fault plane: draws faults from a seeded RNG and fires them.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a :class:`~repro.sim.Simulator` (``sim.faults``).  Instrumented
sites — links, topology, device allocator, buffer pools, codecs — ask
it whether to fail, and every fired fault emits a zero-duration span on
the ``faults`` track plus a ``faults.injected`` counter, so a chaos run
is fully auditable from its trace.

Determinism: decisions come from one ``numpy`` PCG64 stream seeded by
the plan, consulted in simulator callback order (which is itself
deterministic), so the same seed and plan replay the same fault
sequence bit-identically.  A zero-rate plan never draws, never emits,
and never yields — runs with it are trace-identical to runs with no
fault plane at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.utils.integrity import flip_bit

__all__ = ["FaultInjector", "DROPPED"]

#: sentinel returned by payload transfers whose DATA packet was lost
DROPPED = object()


class FaultInjector:
    """Per-run fault-decision engine, attached as ``sim.faults``."""

    def __init__(self, sim, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self._rng = np.random.Generator(np.random.PCG64(plan.seed))
        sim.faults = self

    # -- plumbing -------------------------------------------------------
    def _active(self) -> bool:
        return self.plan.active_after <= self.sim.now <= self.plan.active_until

    def _draw(self, rate: float) -> bool:
        return rate > 0.0 and self._active() and self._rng.random() < rate

    def emit(self, kind: str, rank: Optional[int] = None, **meta) -> None:
        """Record one fired fault: zero-duration span + counter."""
        tracer = self.sim.tracer
        if tracer is not None:
            now = self.sim.now
            tracer.span(now, now, "faults", kind, rank=rank, track="faults",
                        **meta)
            tracer.metrics.inc("faults.injected", kind=kind)

    # -- wire faults ----------------------------------------------------
    def transfer_outcome(self, src: int, dst: int, nbytes: int) -> str:
        """Fate of one DATA payload crossing the fabric:
        ``"ok"`` / ``"corrupt"`` / ``"drop"``."""
        if self._draw(self.plan.drop_rate):
            self.emit("drop", rank=src, src=src, dst=dst, nbytes=nbytes)
            return "drop"
        if self._draw(self.plan.corrupt_rate):
            self.emit("corrupt", rank=src, src=src, dst=dst, nbytes=nbytes)
            return "corrupt"
        return "ok"

    def corrupt_payload(self, payload):
        """A copy of ``payload`` with one RNG-chosen bit flipped."""
        return flip_bit(payload, int(self._rng.integers(0, 1 << 62)))

    # -- link faults ----------------------------------------------------
    def _targets(self, labels) -> bool:
        if self.plan.link_targets is None:
            return True
        return any(lbl in self.plan.link_targets for lbl in labels)

    def extra_wire_delay(self, labels, base_duration: float) -> float:
        """Additional seconds a transfer over ``labels`` must hold the
        link(s): flap outage wait plus degradation stretch."""
        plan = self.plan
        extra = 0.0
        if not self._active() or not self._targets(labels):
            return 0.0
        if plan.flap_down > 0.0:
            into_window = self.sim.now % plan.flap_period
            if into_window < plan.flap_down:
                wait = plan.flap_down - into_window
                self.emit("flap_wait", links=tuple(labels), wait=wait)
                extra += wait
        if self._draw(plan.degrade_rate):
            stretch = base_duration * (plan.degrade_factor - 1.0)
            self.emit("degrade", links=tuple(labels), extra=stretch)
            extra += stretch
        return extra

    # -- gpu faults -----------------------------------------------------
    def should_fail_malloc(self, device_id: int, nbytes: int) -> bool:
        if self._draw(self.plan.oom_rate):
            self.emit("oom", rank=device_id, nbytes=nbytes)
            return True
        return False

    def should_fail_pool(self, device_id: int, nbytes: int) -> bool:
        if self._draw(self.plan.pool_fail_rate):
            self.emit("pool_exhausted", rank=device_id, nbytes=nbytes)
            return True
        return False

    # -- compression faults ---------------------------------------------
    def should_fail_compress(self, codec_name: str) -> bool:
        if self._draw(self.plan.compress_fail_rate):
            self.emit("compress_fail", codec=codec_name)
            return True
        return False

    def maybe_corrupt_decompressed(self, codec_name: str, out):
        """Possibly return a bit-flipped copy of decompressed output (a
        silent round-trip mismatch)."""
        if self._draw(self.plan.decompress_corrupt_rate):
            self.emit("decompress_corrupt", codec=codec_name,
                      nbytes=int(getattr(out, "nbytes", len(out))))
            return self.corrupt_payload(out)
        return out

    def wrap_codec(self, codec):
        """Registry hook: wrap a freshly-built codec in the flaky proxy
        (identity when this plan injects no compression faults)."""
        from repro.faults.codec import FlakyCompressor

        if self.plan.compress_fail_rate == 0.0 and \
                self.plan.decompress_corrupt_rate == 0.0:
            return codec
        return FlakyCompressor(codec, self)

    def __repr__(self) -> str:
        return f"<FaultInjector {self.plan.describe()}>"
