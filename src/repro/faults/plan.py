"""Declarative fault plans.

A :class:`FaultPlan` is a frozen description of *what can go wrong and
how often*, decoupled from the machinery that makes it happen
(:class:`~repro.faults.injector.FaultInjector`).  Rates are independent
per-opportunity probabilities; the injector draws them from one seeded
RNG, so a given ``(plan, workload)`` pair replays the exact same fault
sequence on every run.

Fault classes
-------------
wire
    ``corrupt_rate`` flips one bit of a DATA payload per fabric
    crossing; ``drop_rate`` loses the payload entirely (the bytes still
    burn wire time — the transfer happened, the packet didn't survive).
link
    ``degrade_rate``/``degrade_factor`` stretch a transfer's
    serialization time (congestion, retraining); ``flap_period``/
    ``flap_down`` take links down for the first ``flap_down`` seconds of
    every ``flap_period`` window (transfers wait out the outage).
gpu
    ``oom_rate`` fails ``cudaMalloc`` with a transient
    :class:`~repro.errors.OutOfDeviceMemoryError`; ``pool_fail_rate``
    fails a buffer-pool acquire with
    :class:`~repro.errors.BufferPoolExhaustedError`.
compression
    ``compress_fail_rate`` makes a compressor kernel raise;
    ``decompress_corrupt_rate`` silently flips a bit in decompressed
    output (a round-trip mismatch only an integrity check can catch).

``link_targets`` restricts link faults to specific link labels, and
``active_after``/``active_until`` bound the time window in which any
fault can fire.

fail-stop
    ``rank_failures`` is a tuple of :class:`RankFailure` specs, each
    killing one rank either at an absolute simulated time
    (``at_time``) or on its Nth message send (``after_sends``).  A
    killed rank never runs again; survivors detect the death through
    the failure detector in :mod:`repro.mpi.comm` and recover with
    ULFM-style revoke/agree/shrink (see ``docs/resilience.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import ConfigError

__all__ = ["FaultPlan", "RankFailure"]

_RATE_FIELDS = (
    "corrupt_rate", "drop_rate", "degrade_rate",
    "oom_rate", "pool_fail_rate",
    "compress_fail_rate", "decompress_corrupt_rate",
)


@dataclass(frozen=True)
class RankFailure:
    """One fail-stop kill: crash ``rank`` at ``at_time`` seconds of
    simulated time, or just before its ``after_sends``-th message send
    (1-based), whichever is specified — exactly one must be.

    ``incarnation`` distinguishes instances of the same rank slot
    across restarts; the detector reports it so stale messages from a
    previous incarnation are attributable.
    """

    rank: int
    at_time: Optional[float] = None
    after_sends: Optional[int] = None
    incarnation: int = 0

    def __post_init__(self):
        if self.rank < 0:
            raise ConfigError(f"rank_failures: rank must be >= 0, got {self.rank}")
        if (self.at_time is None) == (self.after_sends is None):
            raise ConfigError(
                f"rank_failures: rank {self.rank} needs exactly one of "
                f"at_time / after_sends, got at_time={self.at_time} "
                f"after_sends={self.after_sends}")
        if self.at_time is not None and (
                self.at_time < 0.0 or not math.isfinite(self.at_time)):
            raise ConfigError(
                f"rank_failures: at_time must be finite and >= 0, "
                f"got {self.at_time}")
        if self.after_sends is not None and self.after_sends < 1:
            raise ConfigError(
                f"rank_failures: after_sends must be >= 1, "
                f"got {self.after_sends}")
        if self.incarnation < 0:
            raise ConfigError(
                f"rank_failures: incarnation must be >= 0, "
                f"got {self.incarnation}")

    def describe(self) -> str:
        trigger = (f"at_time={self.at_time}" if self.at_time is not None
                   else f"after_sends={self.after_sends}")
        return f"kill(rank={self.rank}, {trigger})"


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of a fault workload."""

    seed: int = 0
    # -- wire faults (DATA payloads only) -------------------------------
    corrupt_rate: float = 0.0
    drop_rate: float = 0.0
    # -- link faults ----------------------------------------------------
    degrade_rate: float = 0.0
    degrade_factor: float = 4.0
    flap_period: float = 0.0
    flap_down: float = 0.0
    link_targets: Optional[tuple] = None
    # -- gpu faults -----------------------------------------------------
    oom_rate: float = 0.0
    pool_fail_rate: float = 0.0
    # -- compression faults ---------------------------------------------
    compress_fail_rate: float = 0.0
    decompress_corrupt_rate: float = 0.0
    # -- schedule -------------------------------------------------------
    active_after: float = 0.0
    active_until: float = math.inf
    # -- fail-stop ------------------------------------------------------
    rank_failures: Optional[tuple] = None

    def __post_init__(self):
        for name in _RATE_FIELDS:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        if self.degrade_factor < 1.0:
            raise ConfigError(
                f"degrade_factor must be >= 1, got {self.degrade_factor}")
        if self.flap_period < 0.0 or self.flap_down < 0.0:
            raise ConfigError("flap_period and flap_down must be >= 0")
        if self.flap_down > 0.0 and self.flap_period <= 0.0:
            raise ConfigError("flap_down needs a positive flap_period")
        if self.flap_down >= self.flap_period > 0.0:
            raise ConfigError(
                f"flap_down ({self.flap_down}) must be shorter than "
                f"flap_period ({self.flap_period}) or the link never recovers")
        if self.active_after < 0.0 or self.active_until < self.active_after:
            raise ConfigError(
                f"invalid active window [{self.active_after}, {self.active_until}]")
        if self.link_targets is not None:
            object.__setattr__(self, "link_targets", tuple(self.link_targets))
        if self.rank_failures is not None:
            kills = tuple(self.rank_failures)
            for k in kills:
                if not isinstance(k, RankFailure):
                    raise ConfigError(
                        f"rank_failures entries must be RankFailure, got {k!r}")
            ranks = [k.rank for k in kills]
            dupes = sorted({r for r in ranks if ranks.count(r) > 1})
            if dupes:
                raise ConfigError(
                    f"rank_failures: duplicate kill specs for rank(s) {dupes}")
            object.__setattr__(self, "rank_failures", kills)

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire (a zero-rate plan must be
        indistinguishable from having no fault plane installed)."""
        return (all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
                and self.flap_down == 0.0
                and not self.has_rank_failures)

    @property
    def has_rank_failures(self) -> bool:
        """True when the plan kills at least one rank (fail-stop)."""
        return bool(self.rank_failures)

    @property
    def can_lose_data(self) -> bool:
        """True when DATA payloads may be lost outright, i.e. the
        resilience layer needs delivery timeouts to make progress."""
        return self.drop_rate > 0.0

    def describe(self) -> str:
        """One-line summary of the nonzero knobs (for CLI banners)."""
        parts = [f"seed={self.seed}"]
        for f in fields(self):
            if f.name == "seed":
                continue
            v = getattr(self, f.name)
            if v in (f.default, None):
                continue
            if f.name == "rank_failures":
                parts.append(
                    "rank_failures=[" + ", ".join(k.describe() for k in v) + "]")
            else:
                parts.append(f"{f.name}={v}")
        return " ".join(parts)
