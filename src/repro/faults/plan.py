"""Declarative fault plans.

A :class:`FaultPlan` is a frozen description of *what can go wrong and
how often*, decoupled from the machinery that makes it happen
(:class:`~repro.faults.injector.FaultInjector`).  Rates are independent
per-opportunity probabilities; the injector draws them from one seeded
RNG, so a given ``(plan, workload)`` pair replays the exact same fault
sequence on every run.

Fault classes
-------------
wire
    ``corrupt_rate`` flips one bit of a DATA payload per fabric
    crossing; ``drop_rate`` loses the payload entirely (the bytes still
    burn wire time — the transfer happened, the packet didn't survive).
link
    ``degrade_rate``/``degrade_factor`` stretch a transfer's
    serialization time (congestion, retraining); ``flap_period``/
    ``flap_down`` take links down for the first ``flap_down`` seconds of
    every ``flap_period`` window (transfers wait out the outage).
gpu
    ``oom_rate`` fails ``cudaMalloc`` with a transient
    :class:`~repro.errors.OutOfDeviceMemoryError`; ``pool_fail_rate``
    fails a buffer-pool acquire with
    :class:`~repro.errors.BufferPoolExhaustedError`.
compression
    ``compress_fail_rate`` makes a compressor kernel raise;
    ``decompress_corrupt_rate`` silently flips a bit in decompressed
    output (a round-trip mismatch only an integrity check can catch).

``link_targets`` restricts link faults to specific link labels, and
``active_after``/``active_until`` bound the time window in which any
fault can fire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import ConfigError

__all__ = ["FaultPlan"]

_RATE_FIELDS = (
    "corrupt_rate", "drop_rate", "degrade_rate",
    "oom_rate", "pool_fail_rate",
    "compress_fail_rate", "decompress_corrupt_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of a fault workload."""

    seed: int = 0
    # -- wire faults (DATA payloads only) -------------------------------
    corrupt_rate: float = 0.0
    drop_rate: float = 0.0
    # -- link faults ----------------------------------------------------
    degrade_rate: float = 0.0
    degrade_factor: float = 4.0
    flap_period: float = 0.0
    flap_down: float = 0.0
    link_targets: Optional[tuple] = None
    # -- gpu faults -----------------------------------------------------
    oom_rate: float = 0.0
    pool_fail_rate: float = 0.0
    # -- compression faults ---------------------------------------------
    compress_fail_rate: float = 0.0
    decompress_corrupt_rate: float = 0.0
    # -- schedule -------------------------------------------------------
    active_after: float = 0.0
    active_until: float = math.inf

    def __post_init__(self):
        for name in _RATE_FIELDS:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        if self.degrade_factor < 1.0:
            raise ConfigError(
                f"degrade_factor must be >= 1, got {self.degrade_factor}")
        if self.flap_period < 0.0 or self.flap_down < 0.0:
            raise ConfigError("flap_period and flap_down must be >= 0")
        if self.flap_down > 0.0 and self.flap_period <= 0.0:
            raise ConfigError("flap_down needs a positive flap_period")
        if self.flap_down >= self.flap_period > 0.0:
            raise ConfigError(
                f"flap_down ({self.flap_down}) must be shorter than "
                f"flap_period ({self.flap_period}) or the link never recovers")
        if self.active_after < 0.0 or self.active_until < self.active_after:
            raise ConfigError(
                f"invalid active window [{self.active_after}, {self.active_until}]")
        if self.link_targets is not None:
            object.__setattr__(self, "link_targets", tuple(self.link_targets))

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire (a zero-rate plan must be
        indistinguishable from having no fault plane installed)."""
        return (all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
                and self.flap_down == 0.0)

    @property
    def can_lose_data(self) -> bool:
        """True when DATA payloads may be lost outright, i.e. the
        resilience layer needs delivery timeouts to make progress."""
        return self.drop_rate > 0.0

    def describe(self) -> str:
        """One-line summary of the nonzero knobs (for CLI banners)."""
        parts = [f"seed={self.seed}"]
        for f in fields(self):
            if f.name == "seed":
                continue
            v = getattr(self, f.name)
            if v not in (f.default, None):
                parts.append(f"{f.name}={v}")
        return " ".join(parts)
