"""Simulated GPU substrate.

Models the pieces of the CUDA runtime whose costs drive the paper's
analysis: device memory allocation (``cudaMalloc``), device<->host
copies (``cudaMemcpy`` vs. the low-latency GDRCopy path), driver
attribute queries (``cudaGetDeviceProperties`` vs. a cached
``cudaDeviceGetAttribute``), kernel launches on CUDA streams with
SM-occupancy-aware concurrency, and pre-allocated device buffer pools.

Payload *data* inside :class:`~repro.gpu.buffer.DeviceBuffer` is real
(numpy); only *durations* are modelled, charged on the shared
discrete-event clock.
"""

from repro.gpu.spec import DeviceSpec, V100, RTX5000, A100, device_preset
from repro.gpu.buffer import DeviceBuffer
from repro.gpu.device import Device
from repro.gpu.pool import BufferPool, SizeClassBufferPool
from repro.gpu.stream import Stream

__all__ = [
    "DeviceSpec",
    "V100",
    "RTX5000",
    "A100",
    "device_preset",
    "DeviceBuffer",
    "Device",
    "BufferPool",
    "SizeClassBufferPool",
    "Stream",
]
