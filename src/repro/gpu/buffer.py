"""Device memory buffers.

A :class:`DeviceBuffer` is a chunk of simulated GPU memory carrying
real numpy bytes.  Buffers track their owning device and whether they
came from a pool (pooled buffers are returned, not freed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GpuError

__all__ = ["DeviceBuffer"]


class DeviceBuffer:
    """A device allocation with real backing storage.

    Attributes
    ----------
    capacity:
        Allocated size in bytes.
    data:
        The live payload (a numpy array of any dtype/size whose
        ``nbytes`` must fit ``capacity``); ``None`` until written.
    """

    __slots__ = ("device", "capacity", "data", "pooled", "_freed", "label",
                 "_shadow_id")

    def __init__(self, device, capacity: int, pooled: bool = False, label: str = ""):
        if capacity < 0:
            raise GpuError(f"negative buffer capacity: {capacity}")
        self.device = device
        self.capacity = int(capacity)
        self.data: Optional[np.ndarray] = None
        self.pooled = pooled
        self._freed = False
        self.label = label
        self._shadow_id: Optional[int] = None  # set by the buffer sanitizer

    def _asan(self):
        """The run's buffer sanitizer, or ``None`` (see repro.check.asan)."""
        return self.device.sim.asan

    @property
    def freed(self) -> bool:
        return self._freed

    def write(self, array: np.ndarray) -> None:
        """Place ``array`` into the buffer (zero-time bookkeeping; the
        *time* of getting data here is charged by the operation that
        produced it — a kernel, a copy, or a wire transfer)."""
        asan = self._asan()
        if asan is not None:
            asan.on_access(self, "write")
        if self._freed:
            raise GpuError(f"write to freed buffer {self.label!r}")
        if array.nbytes > self.capacity:
            raise GpuError(
                f"payload of {array.nbytes} bytes exceeds buffer capacity {self.capacity}"
            )
        self.data = array

    def read(self) -> np.ndarray:
        asan = self._asan()
        if asan is not None:
            asan.on_access(self, "read")
        if self._freed:
            raise GpuError(f"read from freed buffer {self.label!r}")
        if self.data is None:
            raise GpuError(f"read from unwritten buffer {self.label!r}")
        return self.data

    def clear(self) -> None:
        self.data = None

    def __repr__(self) -> str:
        state = "freed" if self._freed else ("empty" if self.data is None else f"{self.data.nbytes}B")
        return f"<DeviceBuffer cap={self.capacity} {state} pooled={self.pooled}>"
