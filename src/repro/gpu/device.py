"""The simulated GPU device.

All methods that consume time are generator *subroutines*: call them
with ``yield from`` inside a simulation process.  Each charges the
modelled duration on the simulator clock and records a tracer span so
benchmarks can produce latency breakdowns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GpuError, OutOfDeviceMemoryError
from repro.gpu.buffer import DeviceBuffer
from repro.gpu.spec import DeviceSpec
from repro.sim import Simulator, TokenPool

__all__ = ["Device"]


class Device:
    """One GPU bound to a simulator.

    Parameters
    ----------
    sim:
        The shared simulator/clock.
    spec:
        Static device description (:class:`~repro.gpu.spec.DeviceSpec`).
    device_id:
        Identifier within the cluster (also used by the topology).
    """

    def __init__(self, sim: Simulator, spec: DeviceSpec, device_id: int = 0):
        self.sim = sim
        self.spec = spec
        self.device_id = device_id
        self.sms = TokenPool(sim, spec.sm_count)
        self._allocated = 0
        self._attr_cache: dict[str, int] = {}
        self._next_stream = 0

    # -- bookkeeping -----------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def _trace(self, t0: float, category: str, label: str = "",
               track: str = "gpu", **meta) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.span(t0, self.sim.now, category, label, rank=self.device_id,
                        track=track, device=self.device_id, **meta)

    # -- memory management ------------------------------------------------
    def malloc(self, nbytes: int, label: str = ""):
        """cudaMalloc: returns a fresh :class:`DeviceBuffer` after
        charging the allocation cost (generator subroutine)."""
        if self._allocated + nbytes > self.spec.mem_capacity:
            raise OutOfDeviceMemoryError(
                f"device {self.device_id}: allocating {nbytes}B would exceed "
                f"capacity {self.spec.mem_capacity}B ({self._allocated}B in use)"
            )
        faults = self.sim.faults
        if faults is not None and faults.should_fail_malloc(self.device_id, nbytes):
            raise OutOfDeviceMemoryError(
                f"device {self.device_id}: injected transient cudaMalloc "
                f"failure ({nbytes}B request)"
            )
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.malloc_time(nbytes))
        self._allocated += nbytes
        self._trace(t0, "malloc", label, nbytes=nbytes)
        buf = DeviceBuffer(self, nbytes, pooled=False, label=label)
        if self.sim.asan is not None:
            self.sim.asan.on_alloc(buf)
        return buf

    def free(self, buf: DeviceBuffer):
        """cudaFree (generator subroutine)."""
        if buf.device is not self:
            raise GpuError("freeing a buffer owned by another device")
        if buf.pooled:
            raise GpuError("pooled buffers must be released to their pool, not freed")
        if self.sim.asan is not None:
            self.sim.asan.on_free(buf)
        if buf.freed:
            raise GpuError("double free")
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.free_base)
        self._allocated -= buf.capacity
        buf._freed = True
        self._trace(t0, "free", buf.label)

    def alloc_untimed(self, nbytes: int, label: str = "") -> DeviceBuffer:
        """Allocate without charging time — used at initialization
        (MPI_Init) where the paper's buffer pools are built off the
        critical path."""
        if self._allocated + nbytes > self.spec.mem_capacity:
            raise OutOfDeviceMemoryError(
                f"device {self.device_id}: init-time allocation of {nbytes}B exceeds capacity"
            )
        self._allocated += nbytes
        buf = DeviceBuffer(self, nbytes, pooled=False, label=label)
        if self.sim.asan is not None:
            self.sim.asan.on_alloc(buf)
        return buf

    # -- copies -------------------------------------------------------------
    def memcpy_d2h(self, nbytes: int, label: str = "memcpy_d2h"):
        """cudaMemcpy device->host: the expensive path MPC's naive
        integration uses to fetch the 4-byte compressed size."""
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.memcpy_time(nbytes))
        self._trace(t0, "data_copy", label, nbytes=nbytes)

    def memcpy_h2d(self, nbytes: int, label: str = "memcpy_h2d"):
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.memcpy_time(nbytes))
        self._trace(t0, "data_copy", label, nbytes=nbytes)

    def gdrcopy(self, nbytes: int, label: str = "gdrcopy"):
        """Low-latency mapped copy (GDRCopy), the optimized replacement
        for small cudaMemcpy transfers."""
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.gdrcopy_time(nbytes))
        self._trace(t0, "data_copy", label, nbytes=nbytes)

    def memcpy_d2d(self, nbytes: int, label: str = "combine"):
        """Device-to-device copy at memory bandwidth (used by MPC-OPT's
        partition combine step)."""
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.d2d_time(nbytes))
        self._trace(t0, "combine", label, nbytes=nbytes)

    # -- driver queries --------------------------------------------------
    def get_device_properties(self):
        """cudaGetDeviceProperties — the ~1840us call naive ZFP issues
        per message (generator subroutine)."""
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.device_props_query)
        self._trace(t0, "get_max_grid_dims", "cudaGetDeviceProperties")
        return {"sm_count": self.spec.sm_count, "max_grid_dim_x": 2147483647}

    def get_device_attribute(self, attr: str, cached: bool = True):
        """cudaDeviceGetAttribute with the ZFP-OPT caching: the first
        query costs ~1us, subsequent cached reads are free."""
        if cached and attr in self._attr_cache:
            return self._attr_cache[attr]
            yield  # pragma: no cover - makes this a generator
        t0 = self.sim.now
        yield self.sim.timeout(self.spec.device_attr_query)
        self._trace(t0, "get_max_grid_dims", f"cudaDeviceGetAttribute({attr})")
        value = {"sm_count": self.spec.sm_count, "max_grid_dim_x": 2147483647}.get(attr, 0)
        if cached:
            self._attr_cache[attr] = value
        return value

    # -- kernels -----------------------------------------------------------
    def run_kernel(self, duration: float, blocks: int, category: str, label: str = "",
                   track: Optional[str] = None):
        """Execute a kernel of known ``duration`` using ``blocks``
        thread blocks (generator subroutine).

        The launch first acquires ``blocks`` SM tokens; concurrent
        kernels on different streams therefore run in parallel when the
        device has capacity and queue otherwise — the mechanism behind
        MPC-OPT's multi-stream kernel decomposition.

        ``track`` names the trace lane (streams pass ``stream<k>`` so
        each CUDA stream renders as its own track).
        """
        if blocks < 1 or blocks > self.spec.sm_count:
            raise GpuError(
                f"kernel requested {blocks} blocks; device has {self.spec.sm_count} SMs"
            )
        req = self.sms.acquire(blocks)
        yield req
        t0 = self.sim.now
        try:
            yield self.sim.timeout(duration)
        finally:
            self.sms.release(blocks)
        self._trace(t0, category, label, track=track or "gpu", blocks=blocks)

    def new_stream(self):
        """Create a CUDA stream on this device."""
        from repro.gpu.stream import Stream

        s = Stream(self, self._next_stream)
        self._next_stream += 1
        return s
