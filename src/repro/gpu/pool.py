"""Pre-allocated device buffer pools.

The first MPC-OPT optimization (Section IV-B.1): GPU buffers for the
compressed payload and for MPC's ``d_off`` synchronization array are
allocated once at initialization (``MPI_Init``) and re-used, removing
``cudaMalloc`` from the critical communication path.

:class:`BufferPool`
    Fixed buffer size, as in the paper ("currently, the buffer size is
    fixed in the memory pool"), optionally growing on demand.

:class:`SizeClassBufferPool`
    The paper's suggested future enhancement — power-of-two size
    classes so small messages do not pin huge buffers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import BufferPoolExhaustedError, ConfigError, GpuError
from repro.gpu.buffer import DeviceBuffer

__all__ = ["BufferPool", "SizeClassBufferPool"]

#: bookkeeping cost of taking/returning a pooled buffer (seconds) —
#: a free-list pop, effectively negligible next to cudaMalloc
_POOL_OP_TIME = 0.5e-6


class BufferPool:
    """Fixed-size pre-allocated pool.

    Parameters
    ----------
    device:
        Owning :class:`~repro.gpu.device.Device`.
    buffer_bytes:
        Capacity of each pooled buffer; requests larger than this fail.
    count:
        Number of buffers pre-allocated at construction (init time, so
        untimed).
    growable:
        When True, an empty pool allocates a fresh buffer on demand —
        paying ``cudaMalloc`` once, then keeping the buffer ("can be
        dynamically increased ... on demand").
    """

    def __init__(self, device, buffer_bytes: int, count: int = 4, growable: bool = True):
        if count < 0:
            raise GpuError(f"pool count must be >= 0, got {count}")
        if buffer_bytes <= 0:
            raise ConfigError(
                f"pool buffer size must be positive, got {buffer_bytes}")
        self.device = device
        self.buffer_bytes = int(buffer_bytes)
        self.growable = growable
        self._free: Deque[DeviceBuffer] = deque()
        self._total = 0
        for _ in range(count):
            self._free.append(self._make())

    def _make(self) -> DeviceBuffer:
        buf = self.device.alloc_untimed(self.buffer_bytes, label="pool")
        buf.pooled = True
        self._total += 1
        asan = self.device.sim.asan
        if asan is not None:
            # alloc_untimed registered the buffer as live; it starts
            # life sitting in the free list.
            asan.on_pool_release(buf)
        return buf

    @property
    def total(self) -> int:
        """Total buffers owned by the pool (free + checked out)."""
        return self._total

    @property
    def free_count(self) -> int:
        return len(self._free)

    def acquire(self, nbytes: int, label: str = ""):
        """Take a buffer able to hold ``nbytes`` (generator subroutine)."""
        if nbytes > self.buffer_bytes:
            raise BufferPoolExhaustedError(
                f"request of {nbytes}B exceeds pool buffer size {self.buffer_bytes}B"
            )
        faults = self.device.sim.faults
        if faults is not None and faults.should_fail_pool(
                self.device.device_id, nbytes):
            raise BufferPoolExhaustedError(
                f"injected transient pool exhaustion on device "
                f"{self.device.device_id} ({nbytes}B request)"
            )
        tracer = self.device.sim.tracer
        asan = self.device.sim.asan
        if self._free:
            # Claim before yielding: a concurrent acquire across the
            # bookkeeping timeout must not steal the same buffer.
            buf = self._free.popleft()
            if asan is not None:
                asan.on_pool_acquire(buf, label)
            t0 = self.device.sim.now
            yield self.device.sim.timeout(_POOL_OP_TIME)
            buf.label = label
            if tracer is not None:
                tracer.span(t0, self.device.sim.now, "pool", "hit",
                            rank=self.device.device_id, track="gpu",
                            nbytes=nbytes, capacity=self.buffer_bytes)
                tracer.metrics.inc("pool.hit", device=self.device.device_id)
            return buf
        if not self.growable:
            raise BufferPoolExhaustedError(
                f"pool of {self._total} x {self.buffer_bytes}B buffers exhausted"
            )
        # Grow: one cudaMalloc now, reused forever after.
        if tracer is not None:
            tracer.metrics.inc("pool.miss", device=self.device.device_id)
        buf = yield from self.device.malloc(self.buffer_bytes, label=label)
        buf.pooled = True
        self._total += 1
        if asan is not None:
            # malloc registered it live; record pool adoption so a
            # later release/acquire cycle is tracked.
            asan.on_pool_acquire(buf, label)
        return buf

    def release(self, buf: DeviceBuffer):
        """Return a buffer to the pool (generator subroutine)."""
        if not buf.pooled or buf.device is not self.device:
            raise GpuError("releasing a buffer that does not belong to this pool")
        asan = self.device.sim.asan
        if asan is not None:
            asan.on_pool_release(buf)
        t0 = self.device.sim.now
        yield self.device.sim.timeout(_POOL_OP_TIME)
        buf.clear()
        self._free.append(buf)
        tracer = self.device.sim.tracer
        if tracer is not None:
            tracer.span(t0, self.device.sim.now, "pool", "release",
                        rank=self.device.device_id, track="gpu",
                        capacity=self.buffer_bytes)


class SizeClassBufferPool:
    """Power-of-two size-class pools (the paper's proposed extension).

    ``acquire(nbytes)`` routes to the smallest class that fits, so a
    64 KiB message no longer checks out a 32 MiB buffer.
    """

    def __init__(self, device, min_bytes: int = 1 << 16, max_bytes: int = 1 << 25,
                 count_per_class: int = 2, growable: bool = True):
        if min_bytes <= 0:
            raise ConfigError(f"min_bytes must be positive, got {min_bytes}")
        if min_bytes > max_bytes:
            raise GpuError("min_bytes must be <= max_bytes")
        self.device = device
        self._classes: list[BufferPool] = []
        size = 1
        while size < min_bytes:
            size <<= 1
        while size <= max_bytes:
            self._classes.append(BufferPool(device, size, count_per_class, growable))
            size <<= 1

    @property
    def class_sizes(self) -> list[int]:
        return [p.buffer_bytes for p in self._classes]

    def _pool_for(self, nbytes: int) -> BufferPool:
        for pool in self._classes:
            if pool.buffer_bytes >= nbytes:
                return pool
        raise BufferPoolExhaustedError(
            f"request of {nbytes}B exceeds largest size class "
            f"{self._classes[-1].buffer_bytes}B"
        )

    def acquire(self, nbytes: int, label: str = ""):
        buf = yield from self._pool_for(nbytes).acquire(nbytes, label)
        return buf

    def release(self, buf: DeviceBuffer):
        for pool in self._classes:
            if pool.buffer_bytes == buf.capacity:
                yield from pool.release(buf)
                return
        raise GpuError("buffer does not match any size class")
