"""Device specifications and calibrated CUDA-runtime cost constants.

Every timing constant is sourced from the paper or public spec sheets:

* ``cudaMemcpy`` D2H of the 4-byte compressed size "consistently spends
  nearly 20us due to the driver and synchronization overhead"
  (Section IV-A).
* GDRCopy "can reduce the cost from 20us to 1-5us" (Section IV-B).
* ``cudaGetDeviceProperties`` "incurs significant driver overhead that
  takes nearly 1840us"; after caching via ``cudaDeviceGetAttribute``
  "the run time of this function gets reduced to only approximately
  1us" (Section V).
* ``cudaMalloc`` occupies "83.4% and 28.3% of overall time for 256KB
  and 32MB messages" in the naive MPC integration (Section IV-A); the
  base+per-byte model below reproduces those shares.
* Peak memory bandwidth / SM counts from vendor whitepapers
  (V100: 80 SMs, 900 GB/s; Quadro RTX 5000: 48 SMs, 448 GB/s;
  A100: 108 SMs, 1555 GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.units import GBps, us

__all__ = ["DeviceSpec", "V100", "RTX5000", "A100", "device_preset"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU model."""

    name: str
    #: streaming multiprocessors — the concurrency budget for kernels
    sm_count: int
    #: device memory bandwidth (bytes/s) — used for device-to-device
    #: copies such as MPC-OPT's partition combine step
    mem_bandwidth: float
    #: device memory capacity in bytes
    mem_capacity: int
    #: fixed driver cost of a cudaMalloc call (seconds)
    malloc_base: float = us(100.0)
    #: additional cudaMalloc cost per byte (page mapping)
    malloc_per_byte: float = 8e-12
    #: fixed cost of cudaFree
    free_base: float = us(50.0)
    #: driver+sync overhead of a cudaMemcpy (any direction), dominating
    #: small copies — the paper's 20us
    memcpy_overhead: float = us(20.0)
    #: effective PCIe copy bandwidth for cudaMemcpy payloads
    memcpy_bandwidth: float = GBps(10.0)
    #: GDRCopy fixed overhead (paper: 1-5us; we use the low end plus a
    #: small per-byte cost so large GDRCopy reads stay slower than DMA)
    gdrcopy_overhead: float = us(1.5)
    gdrcopy_bandwidth: float = GBps(5.0)
    #: kernel launch latency
    kernel_launch: float = us(5.0)
    #: cudaGetDeviceProperties driver cost (paper: ~1840us)
    device_props_query: float = us(1840.0)
    #: cudaDeviceGetAttribute cost / cached attribute read (paper: ~1us)
    device_attr_query: float = us(1.0)

    def __post_init__(self):
        if self.sm_count < 1:
            raise ConfigError(f"sm_count must be >= 1, got {self.sm_count}")
        if self.mem_bandwidth <= 0:
            raise ConfigError(
                f"mem_bandwidth must be positive, got {self.mem_bandwidth}")
        if self.mem_capacity <= 0:
            raise ConfigError(
                f"mem_capacity must be positive, got {self.mem_capacity}")
        for attr in ("memcpy_bandwidth", "gdrcopy_bandwidth"):
            if getattr(self, attr) <= 0:
                raise ConfigError(
                    f"{attr} must be positive, got {getattr(self, attr)}")
        for attr in ("malloc_base", "malloc_per_byte", "free_base",
                     "memcpy_overhead", "gdrcopy_overhead", "kernel_launch",
                     "device_props_query", "device_attr_query"):
            if getattr(self, attr) < 0:
                raise ConfigError(
                    f"{attr} must be >= 0, got {getattr(self, attr)}")

    def malloc_time(self, nbytes: int) -> float:
        """Duration of a cudaMalloc of ``nbytes``."""
        return self.malloc_base + nbytes * self.malloc_per_byte

    def memcpy_time(self, nbytes: int) -> float:
        """Duration of a cudaMemcpy (H2D/D2H) of ``nbytes``."""
        return self.memcpy_overhead + nbytes / self.memcpy_bandwidth

    def gdrcopy_time(self, nbytes: int) -> float:
        """Duration of a GDRCopy mapped read/write of ``nbytes``."""
        return self.gdrcopy_overhead + nbytes / self.gdrcopy_bandwidth

    def d2d_time(self, nbytes: int) -> float:
        """Device-to-device copy (read + write traffic)."""
        return self.kernel_launch + 2.0 * nbytes / self.mem_bandwidth


V100 = DeviceSpec(
    name="V100",
    sm_count=80,
    mem_bandwidth=GBps(900.0),
    mem_capacity=16 << 30,
)

RTX5000 = DeviceSpec(
    name="RTX5000",
    sm_count=48,
    mem_bandwidth=GBps(448.0),
    mem_capacity=16 << 30,
)

A100 = DeviceSpec(
    name="A100",
    sm_count=108,
    mem_bandwidth=GBps(1555.0),
    mem_capacity=40 << 30,
)

_PRESETS = {"v100": V100, "rtx5000": RTX5000, "a100": A100}


def device_preset(name: str) -> DeviceSpec:
    """Look up a device spec by case-insensitive name."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise ConfigError(f"unknown device {name!r}; known: {sorted(_PRESETS)}") from None
