"""CUDA streams.

A stream serializes the operations enqueued on it; operations on
*different* streams may overlap, bounded by the device's SM pool.
MPC-OPT's kernel decomposition launches one compression kernel per
partition on separate streams.
"""

from __future__ import annotations

from repro.sim import Resource

__all__ = ["Stream"]


class Stream:
    """An in-order execution queue on a device."""

    def __init__(self, device, stream_id: int):
        self.device = device
        self.stream_id = stream_id
        self._order = Resource(device.sim, capacity=1)

    def run_kernel(self, duration: float, blocks: int, category: str, label: str = ""):
        """Enqueue a kernel: waits for this stream's previous work, then
        executes on the device (generator subroutine)."""
        req = self._order.request()
        yield req
        try:
            yield from self.device.run_kernel(
                duration, blocks, category, label, track=f"stream{self.stream_id}"
            )
        finally:
            self._order.release(req)

    def memcpy_d2d(self, nbytes: int, label: str = "combine"):
        """Enqueue an in-stream device-to-device copy."""
        req = self._order.request()
        yield req
        try:
            yield from self.device.memcpy_d2d(nbytes, label)
        finally:
            self._order.release(req)

    def __repr__(self) -> str:
        return f"<Stream {self.stream_id} on device {self.device.device_id}>"
