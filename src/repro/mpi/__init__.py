"""GPU-aware MPI runtime on the simulated cluster.

A deliberately MVAPICH2-shaped implementation: ranks are simulation
processes, small messages go eager, large messages use the rendezvous
protocol (RTS -> CTS -> DATA) — and the compression framework's header
rides on the RTS packet exactly as in the paper's Figure 3.

Public surface:

* :class:`~repro.mpi.cluster.Cluster` — builds a simulator, topology,
  devices and per-rank compression engines, then runs an SPMD rank
  function on every rank.
* :class:`~repro.mpi.comm.Communicator` — ``send``/``recv``/``isend``/
  ``irecv``/``sendrecv`` plus the collectives of
  :mod:`repro.mpi.collectives` as methods.
"""

from repro.mpi.cluster import Cluster, ClusterResult
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.request import Request

__all__ = ["Cluster", "ClusterResult", "Communicator", "Request", "ANY_SOURCE", "ANY_TAG"]
