"""Job runner: builds a simulated cluster and runs SPMD rank functions.

A :class:`Cluster` is reusable and cheap — each :meth:`Cluster.run`
creates a fresh :class:`~repro.sim.Simulator`, topology, devices and
per-rank :class:`~repro.core.engine.CompressionEngine` instances, so
runs are fully independent and deterministic.

Example::

    from repro import quick_cluster
    from repro.core import CompressionConfig

    cluster = quick_cluster("longhorn", nodes=2, gpus_per_node=1)

    def pingpong(comm):
        import numpy as np
        data = np.linspace(0, 1, 1 << 20, dtype=np.float32)
        if comm.rank == 0:
            yield from comm.send(data, 1)
            back = yield from comm.recv(1)
        else:
            got = yield from comm.recv(0)
            yield from comm.send(got, 0)
        return comm.now

    res = cluster.run(pingpong, config=CompressionConfig.mpc_opt())
    print(res.elapsed, res.values)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.compression.cache import GLOBAL_CODEC_CACHE
from repro.compression.registry import install_fault_wrapper, uninstall_fault_wrapper
from repro.core.config import CompressionConfig
from repro.core.engine import CompressionEngine
from repro.errors import DeadlockError, MpiError
from repro.faults import DROPPED, FaultInjector, FaultPlan
from repro.gpu.device import Device
from repro.mpi.comm import Communicator
from repro.mpi.failstop import (FailStopManager, KillCause, KilledRank,
                                RankKilled)
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import Packet, PacketKind
from repro.mpi.resilience import CircuitBreaker, ResilienceConfig
from repro.network.presets import MachinePreset, machine_preset
from repro.network.topology import Topology
from repro.sim import Interrupt, Simulator, Tracer
from repro.sim.trace import trace_scope

__all__ = ["Cluster", "ClusterResult", "Runtime"]


@dataclass
class _RetransmitEntry:
    """Sender-side state kept while a rendezvous message can still be
    NACKed — everything needed to push the same wire bytes again."""

    src: int
    dst: int
    tag: int
    header: Any
    payload: Any
    wire_nbytes: int
    crc: Optional[int]
    compressed: bool
    #: wire-level CRC for relayed (keep-compressed) hops
    wire_crc: Optional[int] = None
    #: originating pack seq for relayed hops
    origin_seq: Optional[int] = None


class Runtime:
    """Shared per-run state the communicators operate on."""

    def __init__(self, sim: Simulator, topology: Topology, devices: list[Device],
                 config: CompressionConfig,
                 resilience: Optional[ResilienceConfig] = None,
                 failstop=None, checkpoint_every: int = 0):
        self.sim = sim
        self.topology = topology
        self.devices = devices
        self.config = config
        self.resilience = resilience or ResilienceConfig()
        self.resil_rng = random.Random(self.resilience.seed)
        #: fail-stop manager (None unless the plan kills ranks)
        self.failstop = failstop
        #: application checkpoint cadence in steps (0 = never)
        self.checkpoint_every = checkpoint_every
        self._engines = [CompressionEngine(sim, dev, config) for dev in devices]
        #: (listener grank, peer grank) -> sim time of the last packet
        #: heard; host-side bookkeeping, always on (it costs no
        #: simulated time and enriches every hang diagnostic)
        self._last_heard: dict[tuple[int, int], float] = {}
        self._matching = [
            MatchingEngine(sim, r, on_deliver=self._heard_observer(r))
            for r in range(len(devices))
        ]
        self._seq = 0
        self._breakers: dict[tuple[int, int], CircuitBreaker] = {}
        self._retransmit: dict[int, _RetransmitEntry] = {}
        #: communicator-id registry: group tuple -> comm id.  Keyed by
        #: the group itself, so every rank derives identical ids
        #: without communication (id 0 is the implicit world group).
        self._comm_ids: dict[tuple, int] = {}
        self._next_comm_id = 1
        #: comm id -> decided failure set (the agreement board)
        self._agreements: dict[int, tuple] = {}
        #: global rank -> {step -> checkpointed state}
        self._checkpoints: dict[int, dict[int, Any]] = {}

    @property
    def faults(self):
        """The run's fault injector, or ``None``."""
        return self.sim.faults

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- fail-stop plumbing ----------------------------------------------
    def note_send(self, grank: int) -> None:
        """Count a send against ``grank``'s ``after_sends`` bomb (may
        raise :class:`~repro.mpi.failstop.RankKilled` in-frame)."""
        if self.failstop is not None:
            self.failstop.note_send(grank)

    def adopt(self, grank: int, proc) -> None:
        """Register a protocol/helper process under its owning rank so
        a fail-stop kill can interrupt it."""
        if self.failstop is not None:
            self.failstop.adopt(grank, proc)

    def is_dead(self, grank: int) -> bool:
        return self.failstop is not None and self.failstop.is_dead(grank)

    def _heard_observer(self, listener: int):
        def observe(pkt):
            self._last_heard[(listener, pkt.src)] = self.sim.now
        return observe

    def last_heard_of(self, listener: int, peer: int) -> Optional[float]:
        """Sim time ``listener`` last received any packet from ``peer``
        (None = never)."""
        return self._last_heard.get((listener, peer))

    def heard_map(self, listener: int) -> dict:
        """``peer -> last-heard time`` for one listener; dead peers the
        listener never heard from appear with ``None``."""
        out: dict = {}
        fs = self.failstop
        if fs is not None:
            for peer in fs.dead:
                if peer != listener:
                    out[peer] = None
        for (l, p), t in self._last_heard.items():
            if l == listener:
                out[p] = t
        return out

    # -- communicator derivation / agreement -----------------------------
    def comm_id_for(self, group) -> int:
        """Stable communicator id for a global-rank group — identical
        on every rank because the registry is keyed by the group
        itself, and run-deterministic because derivation order is."""
        group = tuple(group)
        cid = self._comm_ids.get(group)
        if cid is None:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._comm_ids[group] = cid
        return cid

    def derive_comm(self, grank: int, group) -> Communicator:
        """A re-ranked communicator over ``group`` for member ``grank``."""
        group = tuple(group)
        return Communicator(self, group.index(grank), len(group),
                            group=group, comm_id=self.comm_id_for(group))

    def record_agreement(self, comm_id: int, decided: tuple) -> None:
        """Post a decided failure set to the agreement board (first
        decision per communicator wins; see ``Comm.agree_failures``)."""
        self._agreements.setdefault(comm_id, tuple(decided))

    def agreed_failures(self, comm_id: int) -> Optional[tuple]:
        return self._agreements.get(comm_id)

    # -- application checkpoints -----------------------------------------
    def store_checkpoint(self, grank: int, step: int, state) -> None:
        self._checkpoints.setdefault(grank, {})[step] = state

    def load_checkpoint(self, grank: int, step: Optional[int] = None):
        """``(step, state)`` of the requested (default: latest)
        checkpoint for ``grank``, or None."""
        ckpts = self._checkpoints.get(grank)
        if not ckpts:
            return None
        if step is None:
            step = max(ckpts)
        elif step not in ckpts:
            return None
        return step, ckpts[step]

    # -- resilience ------------------------------------------------------
    def resilience_event(self, kind: str, rank: Optional[int] = None, **meta):
        """Record one resilience action: a zero-duration span on the
        ``faults`` track plus a ``resilience.<kind>`` counter.  Only the
        recovery path calls this — a fault-free run records nothing."""
        tracer = self.sim.tracer
        if tracer is not None:
            now = self.sim.now
            tracer.span(now, now, "resilience", kind, rank=rank, track="faults",
                        **meta)
            tracer.metrics.inc(f"resilience.{kind}")

    def breaker_of(self, rank: int, peer: int) -> CircuitBreaker:
        """The per-(sender, receiver) compression circuit breaker."""
        key = (rank, peer)
        br = self._breakers.get(key)
        if br is None:
            def on_transition(old, new, now, _key=key):
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.span(now, now, "resilience", f"breaker_{new}",
                                rank=_key[0], track="faults", peer=_key[1],
                                previous=old)
                    tracer.metrics.inc("resilience.breaker_transitions",
                                       state=new)
                    if new == CircuitBreaker.OPEN:
                        # A failed half-open trial re-trips with a fresh
                        # cool-down; count it apart from first trips.
                        kind = ("retrip" if old == CircuitBreaker.HALF_OPEN
                                else "trip")
                        tracer.metrics.inc("resilience.breaker_trips",
                                           kind=kind)
            br = CircuitBreaker(self.resilience.breaker_threshold,
                                self.resilience.breaker_cooldown, on_transition)
            self._breakers[key] = br
        return br

    def register_retransmit(self, seq: int, src: int, dst: int, tag: int,
                            header, payload, wire_nbytes: int,
                            crc: Optional[int], compressed: bool,
                            wire_crc: Optional[int] = None,
                            origin_seq: Optional[int] = None) -> bool:
        """Retain sender-side wire bytes for possible retransmission.
        Only active under a fault plane — in a fault-free run nothing is
        retained and :meth:`retire` is a silent no-op."""
        if self.sim.faults is None or self.resilience.max_retries <= 0:
            return False
        self._retransmit[seq] = _RetransmitEntry(
            src=src, dst=dst, tag=tag, header=header, payload=payload,
            wire_nbytes=wire_nbytes, crc=crc, compressed=compressed,
            wire_crc=wire_crc, origin_seq=origin_seq,
        )
        return True

    def retransmit_entry(self, seq: int) -> Optional[_RetransmitEntry]:
        return self._retransmit.get(seq)

    def retire(self, seq: int, success: bool) -> None:
        """The receiver finished (or gave up on) a rendezvous message:
        drop its retransmit entry and update the sender's breaker."""
        entry = self._retransmit.pop(seq, None)
        if entry is None:
            return
        if entry.compressed:
            br = self.breaker_of(entry.src, entry.dst)
            if success:
                br.record_success(self.sim.now)
            else:
                br.record_failure(self.sim.now)

    def notify_nack(self, seq: int) -> None:
        """A NACK reached the sender: count it against the breaker when
        the rejected payload was compressed."""
        entry = self._retransmit.get(seq)
        if entry is not None and entry.compressed:
            self.breaker_of(entry.src, entry.dst).record_failure(self.sim.now)

    def spawn_retransmit(self, seq: int, attempt: int) -> bool:
        """Push a retained payload across the wire again (async sender-
        side process); the DATA packet is keyed by ``attempt`` so stale
        deliveries cannot satisfy the retry's waiter."""
        entry = self._retransmit.get(seq)
        if entry is None:
            return False
        if self.is_dead(entry.src):
            return False  # dead senders retransmit nothing

        def proc():
            extra = ({"origin_seq": entry.origin_seq}
                     if entry.origin_seq is not None else {})
            with trace_scope(self.sim, "pipeline", "wire_transfer",
                             rank=entry.src, seq=seq, nbytes=entry.wire_nbytes,
                             dst=entry.dst, attempt=attempt, **extra):
                delivered = yield from self.transfer(
                    entry.src, entry.dst, entry.wire_nbytes,
                    label="rndv_retry", payload=entry.payload,
                )
            self.resilience_event("retransmit", rank=entry.src, seq=seq,
                                  dst=entry.dst, attempt=attempt)
            if delivered is DROPPED:
                return  # the receiver's data timeout will fire again
            self.matching_of(entry.dst).deliver_data(
                Packet(PacketKind.DATA, entry.src, entry.dst, entry.tag, seq,
                       payload=delivered, wire_nbytes=entry.wire_nbytes,
                       crc=entry.crc, attempt=attempt,
                       wire_crc=entry.wire_crc, origin_seq=entry.origin_seq)
            )

        p = self.sim.process(proc(), name=f"retransmit{seq}.{attempt}")
        self.adopt(entry.src, p)
        return True

    def matching_report(self) -> str:
        """Per-rank matching diagnostics for deadlock/timeout errors."""
        parts = [m.diagnostics(last_heard=self.heard_map(m.rank))
                 for m in self._matching if not m.idle]
        return "\n".join(parts) if parts else "all ranks idle"

    def _gpu_of(self, rank: int) -> int:
        return rank  # ranks map 1:1 onto GPUs, block-assigned to nodes

    def device_of(self, rank: int) -> Device:
        return self.devices[self._gpu_of(rank)]

    def engine_of(self, rank: int) -> CompressionEngine:
        return self._engines[self._gpu_of(rank)]

    def matching_of(self, rank: int) -> MatchingEngine:
        return self._matching[rank]

    def path_bandwidth(self, src: int, dst: int) -> float:
        return self.topology.path_bandwidth(self._gpu_of(src), self._gpu_of(dst))

    def transfer(self, src: int, dst: int, nbytes: int, label: str = "",
                 payload=None):
        """Payload transfer over the contended fabric.  Returns the
        delivered payload (possibly faulted — see
        :meth:`~repro.network.topology.Topology.transfer`)."""
        delivered = yield from self.topology.transfer(
            self._gpu_of(src), self._gpu_of(dst), nbytes, label=label,
            payload=payload,
        )
        return delivered

    def control_delay(self, src: int, dst: int, nbytes: int):
        """Control packets (RTS/CTS) ride the fabric's latency without
        holding data-path links (small-message send queues)."""
        src_g, dst_g = self._gpu_of(src), self._gpu_of(dst)
        if src_g == dst_g:
            return
        lat = self.topology.path_latency(src_g, dst_g)
        bw = self.topology.path_bandwidth(src_g, dst_g)
        yield self.sim.timeout(lat + nbytes / bw)


@dataclass
class ClusterResult:
    """Outcome of one :meth:`Cluster.run`."""

    values: list
    elapsed: float
    tracer: Tracer
    runtime: Runtime = field(repr=False, default=None)
    #: the run's buffer sanitizer (None when disabled)
    asan: object = field(repr=False, default=None)
    #: host-side codec-cache activity during this run (hits / misses /
    #: bytes_saved deltas of the process-wide cache).  Wall-clock
    #: bookkeeping only: it depends on what earlier runs already
    #: cached, so it is deliberately kept out of the tracer metrics
    #: that the determinism suite fingerprints.
    codec_cache: dict = field(repr=False, default_factory=dict)
    #: :class:`~repro.mpi.failstop.KilledRank` sentinels for ranks the
    #: fault plan fail-stopped mid-run (empty for fault-free runs)
    killed: tuple = ()

    def breakdown(self) -> dict[str, float]:
        """Summed tracer spans per category (see Figs 6/8/10)."""
        return self.tracer.breakdown()


def _supervised(gen, rank: int, fs: FailStopManager):
    """Wrap a rank's main generator so its *own* fail-stop death ends
    the process normally with a :class:`KilledRank` sentinel — the run
    then completes on the survivors instead of re-raising the kill."""
    try:
        value = yield from gen
        return value
    except RankKilled:
        inc, t = fs.dead[rank]
        return KilledRank(rank, inc, t)
    except Interrupt as intr:
        if isinstance(intr.cause, KillCause) and intr.cause.rank == rank:
            inc, t = fs.dead[rank]
            return KilledRank(rank, inc, t)
        raise


class Cluster:
    """A named machine shape: preset x nodes x GPUs-per-node."""

    def __init__(self, preset: MachinePreset | str, nodes: int = 2, gpus_per_node: int = 1):
        if isinstance(preset, str):
            preset = machine_preset(preset)
        self.preset = preset
        self.nodes = nodes
        self.gpus_per_node = gpus_per_node

    @property
    def n_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    def run(
        self,
        rank_fn: Callable,
        nprocs: Optional[int] = None,
        config: Optional[CompressionConfig] = None,
        args: tuple = (),
        max_time: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        asan: bool | str | None = None,
        checkpoint_every: int = 0,
        trace: bool = True,
    ) -> ClusterResult:
        """Run ``rank_fn(comm, *args)`` as an SPMD job.

        Parameters
        ----------
        rank_fn:
            Generator function taking a
            :class:`~repro.mpi.comm.Communicator` (plus ``args``).
        nprocs:
            Ranks to launch; defaults to every GPU.  Must not exceed
            the GPU count (one rank per GPU, as in the paper's runs).
        config:
            Compression configuration; defaults to disabled.
        max_time:
            Optional simulated-seconds cap (guards against livelock).
        faults:
            Optional :class:`~repro.faults.FaultPlan` — installs a
            seeded fault injector for this run (chaos testing).
        resilience:
            Optional :class:`~repro.mpi.resilience.ResilienceConfig`;
            defaults to ``ResilienceConfig.for_plan(faults)``.
        asan:
            Enable the buffer sanitizer (:mod:`repro.check.asan`) for
            this run; the run is leak-checked at successful completion.
            ``None`` defers to the process default
            (:func:`repro.check.asan.asan_default`).  The string
            ``"record"`` additionally logs every buffer access for the
            happens-before race detector (:mod:`repro.check.hb`).
        checkpoint_every:
            Checkpoint cadence hint exposed to ranks via
            ``comm.should_checkpoint(step)`` (0 = never); the
            checkpoint store itself lives on the :class:`Runtime`.
        trace:
            Record spans/metrics (default).  ``trace=False`` leaves the
            simulator uninstrumented so the engine takes its bare run
            loop — the mode that makes 1k+ rank runs affordable (a
            traced 1024-rank allgather would allocate millions of span
            records).  The returned :attr:`ClusterResult.tracer` is
            then a detached, empty tracer.
        """
        from repro.check.asan import BufferSanitizer, asan_default

        config = config or CompressionConfig.disabled()
        nprocs = nprocs or self.n_gpus
        if nprocs > self.n_gpus:
            raise MpiError(f"{nprocs} ranks > {self.n_gpus} GPUs (one rank per GPU)")
        sim = Simulator()
        tracer = Tracer(sim) if trace else Tracer()
        if asan is None:
            asan = asan_default()
        sanitizer = (BufferSanitizer(record_accesses=(asan == "record"))
                     if asan else None)
        sim.asan = sanitizer
        injector = FaultInjector(sim, faults) if faults is not None else None
        resilience = resilience or ResilienceConfig.for_plan(faults)
        topology = Topology(sim, self.preset, self.nodes, self.gpus_per_node)
        devices = [Device(sim, self.preset.device, i) for i in range(self.n_gpus)]
        fs = None
        if faults is not None and faults.has_rank_failures:
            fs = FailStopManager(sim, nprocs, injector=injector)
            sim.failstop = fs
        runtime = Runtime(sim, topology, devices, config, resilience=resilience,
                          failstop=fs, checkpoint_every=checkpoint_every)
        comms = [Communicator(runtime, r, nprocs) for r in range(nprocs)]
        if fs is None:
            procs = [
                sim.process(rank_fn(comms[r], *args), name=f"rank{r}")
                for r in range(nprocs)
            ]
        else:
            procs = []
            for r in range(nprocs):
                p = sim.process(_supervised(rank_fn(comms[r], *args), r, fs),
                                name=f"rank{r}")
                fs.adopt(r, p)
                procs.append(p)
            fs.install(faults.rank_failures)
        if injector is not None:
            install_fault_wrapper(injector.wrap_codec)
        cache_before = GLOBAL_CODEC_CACHE.stats()
        try:
            sim.run(until=max_time)
        finally:
            if injector is not None:
                uninstall_fault_wrapper()
        cache_after = GLOBAL_CODEC_CACHE.stats()
        cache_delta = {
            k: cache_after[k] - cache_before[k]
            for k in ("hits", "misses", "bytes_saved")
        }
        for p in procs:  # a crashed rank is more diagnosable than the
            if p.triggered and not p.ok:  # deadlock it leaves behind
                raise p.value
        incomplete = [p.name for p in procs if not p.triggered]
        if incomplete:
            raise DeadlockError(
                f"ranks never completed: {incomplete} — unmatched send/recv "
                f"or a collective not entered by every rank",
                diagnostic=runtime.matching_report(),
            )
        values = [p.value for p in procs]
        killed = tuple(v for v in values if isinstance(v, KilledRank))
        if sanitizer is not None and not killed:
            # Every rank completed: all checked-out buffers must be home.
            # (A fail-stopped rank abandons its in-flight buffers by
            # design, so leak-checking a kill run would be a false
            # positive on the victim's strandings.)
            sanitizer.assert_clean()
        return ClusterResult(values=values, elapsed=sim.now, tracer=tracer,
                             runtime=runtime, asan=sanitizer,
                             codec_cache=cache_delta, killed=killed)

    def __repr__(self) -> str:
        return f"<Cluster {self.preset.name} {self.nodes}x{self.gpus_per_node}>"
