"""Job runner: builds a simulated cluster and runs SPMD rank functions.

A :class:`Cluster` is reusable and cheap — each :meth:`Cluster.run`
creates a fresh :class:`~repro.sim.Simulator`, topology, devices and
per-rank :class:`~repro.core.engine.CompressionEngine` instances, so
runs are fully independent and deterministic.

Example::

    from repro import quick_cluster
    from repro.core import CompressionConfig

    cluster = quick_cluster("longhorn", nodes=2, gpus_per_node=1)

    def pingpong(comm):
        import numpy as np
        data = np.linspace(0, 1, 1 << 20, dtype=np.float32)
        if comm.rank == 0:
            yield from comm.send(data, 1)
            back = yield from comm.recv(1)
        else:
            got = yield from comm.recv(0)
            yield from comm.send(got, 0)
        return comm.now

    res = cluster.run(pingpong, config=CompressionConfig.mpc_opt())
    print(res.elapsed, res.values)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import CompressionConfig
from repro.core.engine import CompressionEngine
from repro.errors import DeadlockError, MpiError
from repro.gpu.device import Device
from repro.mpi.comm import Communicator
from repro.mpi.matching import MatchingEngine
from repro.network.presets import MachinePreset, machine_preset
from repro.network.topology import Topology
from repro.sim import Simulator, Tracer

__all__ = ["Cluster", "ClusterResult", "Runtime"]


class Runtime:
    """Shared per-run state the communicators operate on."""

    def __init__(self, sim: Simulator, topology: Topology, devices: list[Device],
                 config: CompressionConfig):
        self.sim = sim
        self.topology = topology
        self.devices = devices
        self.config = config
        self._engines = [CompressionEngine(sim, dev, config) for dev in devices]
        self._matching = [MatchingEngine(sim, r) for r in range(len(devices))]
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _gpu_of(self, rank: int) -> int:
        return rank  # ranks map 1:1 onto GPUs, block-assigned to nodes

    def device_of(self, rank: int) -> Device:
        return self.devices[self._gpu_of(rank)]

    def engine_of(self, rank: int) -> CompressionEngine:
        return self._engines[self._gpu_of(rank)]

    def matching_of(self, rank: int) -> MatchingEngine:
        return self._matching[rank]

    def path_bandwidth(self, src: int, dst: int) -> float:
        return self.topology.path_bandwidth(self._gpu_of(src), self._gpu_of(dst))

    def transfer(self, src: int, dst: int, nbytes: int, label: str = ""):
        """Payload transfer over the contended fabric."""
        yield from self.topology.transfer(
            self._gpu_of(src), self._gpu_of(dst), nbytes, label=label
        )

    def control_delay(self, src: int, dst: int, nbytes: int):
        """Control packets (RTS/CTS) ride the fabric's latency without
        holding data-path links (small-message send queues)."""
        src_g, dst_g = self._gpu_of(src), self._gpu_of(dst)
        if src_g == dst_g:
            return
        lat = self.topology.path_latency(src_g, dst_g)
        bw = self.topology.path_bandwidth(src_g, dst_g)
        yield self.sim.timeout(lat + nbytes / bw)


@dataclass
class ClusterResult:
    """Outcome of one :meth:`Cluster.run`."""

    values: list
    elapsed: float
    tracer: Tracer
    runtime: Runtime = field(repr=False, default=None)

    def breakdown(self) -> dict[str, float]:
        """Summed tracer spans per category (see Figs 6/8/10)."""
        return self.tracer.breakdown()


class Cluster:
    """A named machine shape: preset x nodes x GPUs-per-node."""

    def __init__(self, preset: MachinePreset | str, nodes: int = 2, gpus_per_node: int = 1):
        if isinstance(preset, str):
            preset = machine_preset(preset)
        self.preset = preset
        self.nodes = nodes
        self.gpus_per_node = gpus_per_node

    @property
    def n_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    def run(
        self,
        rank_fn: Callable,
        nprocs: Optional[int] = None,
        config: Optional[CompressionConfig] = None,
        args: tuple = (),
        max_time: Optional[float] = None,
    ) -> ClusterResult:
        """Run ``rank_fn(comm, *args)`` as an SPMD job.

        Parameters
        ----------
        rank_fn:
            Generator function taking a
            :class:`~repro.mpi.comm.Communicator` (plus ``args``).
        nprocs:
            Ranks to launch; defaults to every GPU.  Must not exceed
            the GPU count (one rank per GPU, as in the paper's runs).
        config:
            Compression configuration; defaults to disabled.
        max_time:
            Optional simulated-seconds cap (guards against livelock).
        """
        config = config or CompressionConfig.disabled()
        nprocs = nprocs or self.n_gpus
        if nprocs > self.n_gpus:
            raise MpiError(f"{nprocs} ranks > {self.n_gpus} GPUs (one rank per GPU)")
        sim = Simulator()
        tracer = Tracer(sim)
        topology = Topology(sim, self.preset, self.nodes, self.gpus_per_node)
        devices = [Device(sim, self.preset.device, i) for i in range(self.n_gpus)]
        runtime = Runtime(sim, topology, devices, config)
        comms = [Communicator(runtime, r, nprocs) for r in range(nprocs)]
        procs = [
            sim.process(rank_fn(comms[r], *args), name=f"rank{r}") for r in range(nprocs)
        ]
        sim.run(until=max_time)
        incomplete = [p.name for p in procs if not p.triggered]
        if incomplete:
            raise DeadlockError(
                f"ranks never completed: {incomplete} — unmatched send/recv "
                f"or a collective not entered by every rank"
            )
        values = []
        for p in procs:
            if not p.ok:
                raise p.value
            values.append(p.value)
        return ClusterResult(values=values, elapsed=sim.now, tracer=tracer, runtime=runtime)

    def __repr__(self) -> str:
        return f"<Cluster {self.preset.name} {self.nodes}x{self.gpus_per_node}>"
