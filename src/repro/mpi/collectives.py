"""Collective algorithms built on the point-to-point protocol.

Because the rendezvous path (and hence the compression framework) sits
under every large transfer, collectives gain from compression without
any algorithm changes — exactly how the paper evaluates MPI_Bcast and
MPI_Allgather, and how the future-work Alltoall/Allreduce behave.

Algorithms (classic MPICH choices for large messages on small ranks):

* ``bcast`` — binomial tree.
* ``gather``/``scatter`` — linear rooted.
* ``allgather`` — ring.
* ``reduce`` — binomial tree with local combine.
* ``allreduce`` — recursive doubling on power-of-two sizes, otherwise
  reduce + bcast.
* ``alltoall`` — pairwise exchange.
* ``barrier`` — dissemination.

All functions are generator subroutines; every rank of the
communicator must call the same collective in the same order (SPMD).
Internal messages use a high tag base to stay clear of user tags.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import MpiError
from repro.sim.trace import trace_scope

__all__ = [
    "bcast", "gather", "scatter", "allgather", "reduce", "allreduce",
    "alltoall", "barrier", "COLL_TAG_BASE",
]

COLL_TAG_BASE = 1 << 20
_T_BCAST = COLL_TAG_BASE + 1
_T_GATHER = COLL_TAG_BASE + 2
_T_SCATTER = COLL_TAG_BASE + 3
_T_ALLGATHER = COLL_TAG_BASE + 4
_T_REDUCE = COLL_TAG_BASE + 5
_T_ALLTOALL = COLL_TAG_BASE + 6
_T_BARRIER = COLL_TAG_BASE + 7


def _default_op(op: Optional[Callable]) -> Callable:
    return np.add if op is None else op


def _traced(fn):
    """Wrap a collective in a per-rank ``collective`` span; the
    point-to-point hops it issues nest underneath it in the trace."""

    @functools.wraps(fn)
    def wrapper(comm, *args, **kwargs):
        with trace_scope(comm.sim, "collective", fn.__name__,
                         rank=comm.rank, size=comm.size):
            result = yield from fn(comm, *args, **kwargs)
        return result

    return wrapper


@_traced
def bcast(comm, data: Any, root: int = 0):
    """Binomial-tree broadcast; returns the data on every rank."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MpiError(f"bcast root {root} out of range")
    if size == 1:
        return data
    rel = (rank - root) % size

    # Receive from the parent (the peer that owns our highest set bit).
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            data = yield from comm.recv(parent, _T_BCAST)
            break
        mask <<= 1
    # Forward to children below that bit.
    mask >>= 1
    reqs = []
    while mask > 0:
        if rel + mask < size and not (rel & mask):
            child = ((rel | mask) + root) % size
            reqs.append(comm.isend(data, child, _T_BCAST))
        mask >>= 1
    for r in reqs:
        yield from r.wait()
    return data


@_traced
def gather(comm, data: Any, root: int = 0):
    """Linear gather; returns the list of contributions at the root,
    ``None`` elsewhere."""
    size, rank = comm.size, comm.rank
    if rank == root:
        out: list = [None] * size
        out[rank] = data
        reqs = {src: comm.irecv(src, _T_GATHER) for src in range(size) if src != root}
        for src, req in reqs.items():
            out[src] = yield from req.wait()
        return out
    yield from comm.send(data, root, _T_GATHER)
    return None


@_traced
def scatter(comm, chunks, root: int = 0):
    """Linear scatter of ``chunks`` (a list of ``size`` items at the
    root); returns this rank's chunk."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if chunks is None or len(chunks) != size:
            raise MpiError(f"scatter needs exactly {size} chunks at the root")
        reqs = [comm.isend(chunks[dst], dst, _T_SCATTER) for dst in range(size) if dst != root]
        for r in reqs:
            yield from r.wait()
        return chunks[rank]
    data = yield from comm.recv(root, _T_SCATTER)
    return data


@_traced
def allgather(comm, data: Any):
    """Ring allgather; returns the list of all contributions."""
    size, rank = comm.size, comm.rank
    out: list = [None] * size
    out[rank] = data
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_block = rank
    for _ in range(size - 1):
        recv_block = (send_block - 1) % size
        received = yield from comm.sendrecv(
            out[send_block], right, left, _T_ALLGATHER, _T_ALLGATHER
        )
        out[recv_block] = received
        send_block = recv_block
    return out


@_traced
def reduce(comm, data: Any, root: int = 0, op: Optional[Callable] = None):
    """Binomial-tree reduction; returns the result at the root,
    ``None`` elsewhere."""
    size, rank = comm.size, comm.rank
    op = _default_op(op)
    rel = (rank - root) % size
    result = data
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            yield from comm.send(result, parent, _T_REDUCE)
            return None
        peer_rel = rel | mask
        if peer_rel < size:
            contrib = yield from comm.recv(((peer_rel) + root) % size, _T_REDUCE)
            result = op(result, contrib)
        mask <<= 1
    return result


@_traced
def allreduce(comm, data: Any, op: Optional[Callable] = None):
    """Recursive doubling (power-of-two ranks) or reduce+bcast."""
    size, rank = comm.size, comm.rank
    op = _default_op(op)
    if size & (size - 1) == 0:
        result = data
        mask = 1
        while mask < size:
            peer = rank ^ mask
            received = yield from comm.sendrecv(
                result, peer, peer, _T_REDUCE, _T_REDUCE
            )
            result = op(result, received)
            mask <<= 1
        return result
    result = yield from reduce(comm, data, 0, op)
    result = yield from bcast(comm, result, 0)
    return result


@_traced
def alltoall(comm, chunks):
    """Pairwise-exchange alltoall of ``size`` chunks; returns the
    chunks received from each rank."""
    size, rank = comm.size, comm.rank
    if chunks is None or len(chunks) != size:
        raise MpiError(f"alltoall needs exactly {size} chunks")
    out: list = [None] * size
    out[rank] = chunks[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        out[src] = yield from comm.sendrecv(
            chunks[dst], dst, src, _T_ALLTOALL + step, _T_ALLTOALL + step
        )
    return out


_BARRIER_TOKEN = np.zeros(1, dtype=np.uint8)


@_traced
def barrier(comm):
    """Dissemination barrier (log2(size) rounds of tiny messages)."""
    size, rank = comm.size, comm.rank
    k = 0
    dist = 1
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        yield from comm.sendrecv(
            _BARRIER_TOKEN, dst, src, _T_BARRIER + k, _T_BARRIER + k
        )
        dist <<= 1
        k += 1
