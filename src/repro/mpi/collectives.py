"""Collective algorithms built on the point-to-point protocol.

Because the rendezvous path (and hence the compression framework) sits
under every large transfer, collectives gain from compression without
any algorithm changes — exactly how the paper evaluates MPI_Bcast and
MPI_Allgather.  On top of that, the gZCCL/ZCCL observation applies:
when a collective *forwards* data across intermediate ranks, decoding
and re-encoding at every hop wastes both kernel time and latency.  With
``CompressionConfig.keep_compressed`` (the default for enabled
configs), forwarding collectives compress once at the originating
rank, relay the :class:`~repro.mpi.wire.WireImage` hop by hop — each
relay verifying only the cheap wire CRC — and decompress once per
consumer.  Reduction collectives additionally use the hZCCL-style
:meth:`~repro.compression.base.Compressor.reduce_compressed` hook to
sum in the partially-decoded domain when the codec supports it.

Algorithms (classic MPICH choices for large messages on small ranks):

* ``bcast`` — binomial tree (keep-compressed relays on interior ranks).
* ``gather``/``scatter`` — linear rooted (scatter packs per chunk).
* ``allgather`` — ring (keep-compressed relays around the ring).
* ``reduce`` — binomial tree with local combine.
* ``allreduce`` — selectable: ring (reduce-scatter + allgather, any
  size), recursive doubling (power-of-two sizes), or reduce+bcast.
  The default picks recursive doubling on power-of-two sizes and the
  ring otherwise.
* ``alltoall`` — pairwise exchange (pack once per destination chunk).
* ``barrier`` — dissemination.

All functions are generator subroutines; every rank of the
communicator must call the same collective in the same order (SPMD).
Internal messages use a high tag base to stay clear of user tags.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import CollectiveAbortedError, MpiError, RankFailedError
from repro.mpi.failstop import RevokeCause
from repro.sim import Interrupt
from repro.sim.trace import trace_scope

__all__ = [
    "bcast", "gather", "scatter", "allgather", "reduce", "allreduce",
    "alltoall", "barrier", "COLL_TAG_BASE", "ALLREDUCE_ALGORITHMS",
]

COLL_TAG_BASE = 1 << 20
_T_BCAST = COLL_TAG_BASE + 1
_T_GATHER = COLL_TAG_BASE + 2
_T_SCATTER = COLL_TAG_BASE + 3
_T_ALLGATHER = COLL_TAG_BASE + 4
_T_REDUCE = COLL_TAG_BASE + 5
_T_ALLTOALL = COLL_TAG_BASE + 6
_T_BARRIER = COLL_TAG_BASE + 7
_T_RING_RS = COLL_TAG_BASE + 8   # ring allreduce, reduce-scatter phase
_T_RING_AG = COLL_TAG_BASE + 9   # ring allreduce, allgather phase

#: names accepted by ``allreduce(..., algorithm=...)``
ALLREDUCE_ALGORITHMS = ("ring", "recursive_doubling", "reduce_bcast")


def _default_op(op: Optional[Callable]) -> Callable:
    return np.add if op is None else op


#: communicator size above which ring schedules are precomputed with
#: numpy instead of a per-step Python modulo
_RING_VECTOR_MIN = 64


def _ring_schedule(size: int, start: int) -> list[int]:
    """Block indices ``[start, start-1, ..., start-size+1] (mod size)``.

    Every ring phase walks blocks in this descending order; at 1k+
    ranks the per-step modulo in the loop body is measurable, so large
    communicators get the whole walk as one vectorized op.  Both paths
    return identical lists."""
    if size < _RING_VECTOR_MIN:
        return [(start - s) % size for s in range(size)]
    return ((start - np.arange(size)) % size).tolist()


def _traced(fn):
    """Wrap a collective in a per-rank ``collective`` span; the
    point-to-point hops it issues nest underneath it in the trace.

    With a fail-stop manager installed the wrapper is also the
    collective's ULFM guard: entering on a revoked communicator raises
    :class:`CollectiveAbortedError` immediately; a peer failure
    detected mid-collective revokes the communicator (waking every
    other blocked member) before aborting; and a revocation interrupt
    delivered by another member aborts symmetrically — so *all*
    survivors of a failed collective raise the same error
    deterministically.  Without a fail-stop plan the fs-None fast path
    is byte-identical to the plain traced wrapper.
    """

    @functools.wraps(fn)
    def wrapper(comm, *args, **kwargs):
        fs = comm.failstop
        coll_seq = comm.next_coll_seq()
        if fs is None:
            with trace_scope(comm.sim, "collective", fn.__name__,
                             rank=comm.grank, size=comm.size,
                             comm=comm.comm_id, coll_seq=coll_seq):
                result = yield from fn(comm, *args, **kwargs)
            return result
        comm.check_revoked()
        fs.enter_collective(comm.grank, comm.comm_id,
                            comm.sim.active_process)
        try:
            with trace_scope(comm.sim, "collective", fn.__name__,
                             rank=comm.grank, size=comm.size,
                             comm=comm.comm_id, coll_seq=coll_seq):
                result = yield from fn(comm, *args, **kwargs)
            return result
        except RankFailedError as exc:
            comm.revoke((exc.failed_rank,))
            raise CollectiveAbortedError(
                f"rank {comm.grank}: {fn.__name__} aborted — rank "
                f"{exc.failed_rank} failed",
                failed_ranks=(exc.failed_rank,),
                collective=fn.__name__) from exc
        except Interrupt as intr:
            cause = intr.cause
            if isinstance(cause, RevokeCause) \
                    and cause.comm_id == comm.comm_id:
                raise CollectiveAbortedError(
                    f"rank {comm.grank}: {fn.__name__} aborted — "
                    f"communicator {comm.comm_id} revoked (failed ranks "
                    f"{sorted(cause.failed_ranks)})",
                    failed_ranks=cause.failed_ranks,
                    collective=fn.__name__) from intr
            raise
        finally:
            fs.exit_collective(comm.grank, comm.comm_id)

    return wrapper


@_traced
def bcast(comm, data: Any, root: int = 0):
    """Binomial-tree broadcast; returns the data on every rank.

    Keep-compressed mode: the root packs once, interior ranks relay the
    wire image to their subtrees before (and while) decoding their own
    copy."""
    size, rank = comm.size, comm.rank
    if not (0 <= root < size):
        raise MpiError(f"bcast root {root} out of range")
    if size == 1:
        return data
    if comm.keep_compressed_active():
        result = yield from _bcast_wire(comm, data, root)
        return result
    rel = (rank - root) % size

    # Receive from the parent (the peer that owns our highest set bit).
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            data = yield from comm.recv(parent, _T_BCAST)
            break
        mask <<= 1
    # Forward to children below that bit.
    mask >>= 1
    reqs = []
    while mask > 0:
        if rel + mask < size and not (rel & mask):
            child = ((rel | mask) + root) % size
            reqs.append(comm.isend(data, child, _T_BCAST))
        mask >>= 1
    for r in reqs:
        yield from r.wait()
    return data


def _bcast_wire(comm, data: Any, root: int):
    """Binomial tree over wire images: pack once at the root, relay."""
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    if rank == root:
        wire = yield from comm.pack_wire(data)
        mask = 1
        while mask < size:
            mask <<= 1
    else:
        wire = None
        mask = 1
        while mask < size:
            if rel & mask:
                parent = ((rel & ~mask) + root) % size
                wire = yield from comm.recv_wire(parent, _T_BCAST)
                break
            mask <<= 1
    mask >>= 1
    reqs = []
    while mask > 0:
        if rel + mask < size and not (rel & mask):
            child = ((rel | mask) + root) % size
            reqs.append(comm.isend_wire(wire, child, _T_BCAST))
        mask >>= 1
    # Decode the local copy while the relays to the subtree are in
    # flight — the single decompression of the keep-compressed path.
    out = data if rank == root else (yield from comm.unpack_wire(wire))
    for r in reqs:
        yield from r.wait()
    return out


@_traced
def gather(comm, data: Any, root: int = 0):
    """Linear gather; returns the list of contributions at the root,
    ``None`` elsewhere."""
    size, rank = comm.size, comm.rank
    if rank == root:
        out: list = [None] * size
        out[rank] = data
        reqs = {src: comm.irecv(src, _T_GATHER) for src in range(size) if src != root}
        for src, req in reqs.items():
            out[src] = yield from req.wait()
        return out
    yield from comm.send(data, root, _T_GATHER)
    return None


@_traced
def scatter(comm, chunks, root: int = 0):
    """Linear scatter of ``chunks`` (a list of ``size`` items at the
    root); returns this rank's chunk."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if chunks is None or len(chunks) != size:
            raise MpiError(f"scatter needs exactly {size} chunks at the root")
        if comm.keep_compressed_active():
            reqs = []
            for dst in range(size):
                if dst == root:
                    continue
                wire = yield from comm.pack_wire(chunks[dst])
                reqs.append(comm.isend_wire(wire, dst, _T_SCATTER))
        else:
            reqs = [comm.isend(chunks[dst], dst, _T_SCATTER)
                    for dst in range(size) if dst != root]
        for r in reqs:
            yield from r.wait()
        return chunks[rank]
    if comm.keep_compressed_active():
        wire = yield from comm.recv_wire(root, _T_SCATTER)
        data = yield from comm.unpack_wire(wire)
        return data
    data = yield from comm.recv(root, _T_SCATTER)
    return data


@_traced
def allgather(comm, data: Any):
    """Ring allgather; returns the list of all contributions.

    Keep-compressed mode: every rank packs its own contribution once;
    the ring then relays wire images — a block travels ``size - 1``
    hops but is compressed exactly once and decompressed once per
    consumer."""
    size, rank = comm.size, comm.rank
    out: list = [None] * size
    out[rank] = data
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    walk = _ring_schedule(size, rank)
    if comm.keep_compressed_active():
        wires: list = [None] * size
        wires[rank] = yield from comm.pack_wire(data)
        for s in range(size - 1):
            recv_block = walk[s + 1]
            wires[recv_block] = yield from comm.sendrecv_wire(
                wires[walk[s]], right, left, _T_ALLGATHER, _T_ALLGATHER
            )
        for i in range(size):
            if i != rank:
                out[i] = yield from comm.unpack_wire(wires[i])
        return out
    for s in range(size - 1):
        recv_block = walk[s + 1]
        received = yield from comm.sendrecv(
            out[walk[s]], right, left, _T_ALLGATHER, _T_ALLGATHER
        )
        out[recv_block] = received
    return out


@_traced
def reduce(comm, data: Any, root: int = 0, op: Optional[Callable] = None):
    """Binomial-tree reduction; returns the result at the root,
    ``None`` elsewhere."""
    size, rank = comm.size, comm.rank
    op = _default_op(op)
    rel = (rank - root) % size
    result = data
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            yield from comm.send(result, parent, _T_REDUCE)
            return None
        peer_rel = rel | mask
        if peer_rel < size:
            contrib = yield from comm.recv(((peer_rel) + root) % size, _T_REDUCE)
            result = op(result, contrib)
        mask <<= 1
    return result


def _normalize_algorithm(algorithm: Optional[str], size: int) -> str:
    if algorithm is None:
        return "recursive_doubling" if size & (size - 1) == 0 else "ring"
    name = algorithm.replace("-", "_")
    if name in ("rdouble", "rd"):
        name = "recursive_doubling"
    if name not in ALLREDUCE_ALGORITHMS:
        raise MpiError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"known: {ALLREDUCE_ALGORITHMS}"
        )
    return name


@_traced
def allreduce(comm, data: Any, op: Optional[Callable] = None,
              algorithm: Optional[str] = None):
    """Allreduce with a selectable algorithm (see
    :data:`ALLREDUCE_ALGORITHMS`); defaults to recursive doubling on
    power-of-two communicator sizes and the ring elsewhere."""
    size = comm.size
    op = _default_op(op)
    algo = _normalize_algorithm(algorithm, size)
    if size == 1:
        return data
    if algo == "reduce_bcast":
        result = yield from reduce(comm, data, 0, op)
        result = yield from bcast(comm, result, 0)
        return result
    if algo == "recursive_doubling":
        if size & (size - 1):
            raise MpiError(
                f"recursive_doubling needs a power-of-two size, got {size}"
            )
        result = yield from _allreduce_rdouble(comm, data, op)
        return result
    result = yield from _allreduce_ring(comm, data, op)
    return result


def _allreduce_rdouble(comm, data: Any, op: Callable):
    """Recursive doubling: log2(size) exchanges of the full vector.

    When the codec supports compressed-domain reduction, the vector is
    packed once and every step combines wire images with one fused
    kernel instead of a decompress + add + recompress sequence."""
    size, rank = comm.size, comm.rank
    if comm.keep_compressed_active(data) and comm.wire_reduce_capable(op):
        acc = yield from comm.pack_wire(np.asarray(data).reshape(-1))
        mask = 1
        while mask < size:
            peer = rank ^ mask
            received = yield from comm.sendrecv_wire(
                acc, peer, peer, _T_REDUCE, _T_REDUCE
            )
            acc = yield from comm.reduce_wires(acc, received, op)
            mask <<= 1
        result = yield from comm.unpack_wire(acc)
        return result.reshape(np.asarray(data).shape)
    result = data
    mask = 1
    while mask < size:
        peer = rank ^ mask
        received = yield from comm.sendrecv(
            result, peer, peer, _T_REDUCE, _T_REDUCE
        )
        result = op(result, received)
        mask <<= 1
    return result


def _allreduce_ring(comm, data: Any, op: Callable):
    """Ring allreduce: reduce-scatter then allgather, ``2 * (size - 1)``
    steps over ``1/size``-sized chunks (the bandwidth-optimal large-
    message algorithm; SNIPPETS.md snippet 1's ``mpiAllReduceCompressed``
    follows the same shape).

    Both phases run over wire images when the codec supports
    compressed-domain reduction: the reduce-scatter combines incoming
    chunks with fused kernels and the allgather phase relays the final
    chunks keep-compressed.  Otherwise the reduce-scatter runs on raw
    chunks (each hop compressing via the ordinary rendezvous path).
    """
    size, rank = comm.size, comm.rank
    arr = np.asarray(data)
    flat = arr.reshape(-1)
    chunks = np.array_split(flat, size)
    right = (rank + 1) % size
    left = (rank - 1) % size

    # Precomputed descending walks for both phases: the reduce-scatter
    # starts at ``rank``, the allgather at ``rank + 1`` (rank r owns
    # the fully-reduced chunk (r + 1) % size after the first phase).
    rs_walk = _ring_schedule(size, rank)
    ag_walk = _ring_schedule(size, (rank + 1) % size)

    if comm.keep_compressed_active(data) and comm.wire_reduce_capable(op):
        state: list = []
        for c in chunks:
            wire = yield from comm.pack_wire(c)
            state.append(wire)
        for s in range(size - 1):
            recv_idx = rs_walk[s + 1]
            received = yield from comm.sendrecv_wire(
                state[rs_walk[s]], right, left, _T_RING_RS, _T_RING_RS
            )
            state[recv_idx] = yield from comm.reduce_wires(
                state[recv_idx], received, op
            )
        # Walk the reduced chunks around the ring keep-compressed.
        for s in range(size - 1):
            state[ag_walk[s + 1]] = yield from comm.sendrecv_wire(
                state[ag_walk[s]], right, left, _T_RING_AG, _T_RING_AG
            )
        parts = []
        for wire in state:
            part = yield from comm.unpack_wire(wire)
            parts.append(part)
        return np.concatenate(parts).reshape(arr.shape)

    acc = [np.array(c) for c in chunks]
    for s in range(size - 1):
        recv_idx = rs_walk[s + 1]
        received = yield from comm.sendrecv(
            acc[rs_walk[s]], right, left, _T_RING_RS, _T_RING_RS
        )
        acc[recv_idx] = op(acc[recv_idx], received)
    for s in range(size - 1):
        acc[ag_walk[s + 1]] = yield from comm.sendrecv(
            acc[ag_walk[s]], right, left, _T_RING_AG, _T_RING_AG
        )
    return np.concatenate(acc).reshape(arr.shape)


@_traced
def alltoall(comm, chunks):
    """Pairwise-exchange alltoall of ``size`` chunks; returns the
    chunks received from each rank.  Keep-compressed mode packs each
    destination chunk once and ships the wire image directly."""
    size, rank = comm.size, comm.rank
    if chunks is None or len(chunks) != size:
        raise MpiError(f"alltoall needs exactly {size} chunks")
    out: list = [None] * size
    out[rank] = chunks[rank]
    use_wires = comm.keep_compressed_active()
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        if use_wires:
            wire = yield from comm.pack_wire(chunks[dst])
            received = yield from comm.sendrecv_wire(
                wire, dst, src, _T_ALLTOALL + step, _T_ALLTOALL + step
            )
            out[src] = yield from comm.unpack_wire(received)
        else:
            out[src] = yield from comm.sendrecv(
                chunks[dst], dst, src, _T_ALLTOALL + step, _T_ALLTOALL + step
            )
    return out


_BARRIER_TOKEN = np.zeros(1, dtype=np.uint8)


@_traced
def barrier(comm):
    """Dissemination barrier (log2(size) rounds of tiny messages)."""
    size, rank = comm.size, comm.rank
    k = 0
    dist = 1
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        yield from comm.sendrecv(
            _BARRIER_TOKEN, dst, src, _T_BARRIER + k, _T_BARRIER + k
        )
        dist <<= 1
        k += 1
