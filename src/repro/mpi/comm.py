"""Communicator: point-to-point primitives and collective methods.

Point-to-point follows MVAPICH2's two protocols:

**Eager** (below :data:`EAGER_THRESHOLD`): envelope + payload travel
together; no handshake, no compression (small messages never cross the
compression threshold anyway).

**Rendezvous** (paper Figures 3-4):

1. sender (optionally) compresses — :meth:`CompressionEngine.sender_prepare`;
2. RTS carries the piggybacked compression header to the receiver;
3. receiver matches the RTS, obtains its temporary device buffer, and
   answers CTS;
4. sender pushes the (compressed) payload across the topology;
5. receiver decompresses into the user buffer and completes.

All primitives are generator subroutines (``yield from comm.send(...)``)
except ``isend``/``irecv``, which spawn a protocol process and return a
:class:`~repro.mpi.request.Request`.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import (
    BufferPoolExhaustedError,
    CollectiveAbortedError,
    CompressionError,
    IntegrityError,
    MpiError,
    OutOfDeviceMemoryError,
    RankFailedError,
    RendezvousTimeoutError,
    RetryExhaustedError,
)
from repro.core.header import CompressionHeader
from repro.faults import DROPPED
from repro.mpi import collectives as _coll
from repro.mpi.matching import ANY
from repro.mpi.message import Packet, PacketKind
from repro.mpi.request import Request
from repro.mpi.wire import WireImage
from repro.sim.trace import trace_scope
from repro.utils.integrity import payload_crc32
from repro.utils.units import KiB

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG", "EAGER_THRESHOLD",
           "PIPELINE_STEPS", "TAG_STRIDE"]

ANY_SOURCE = ANY
ANY_TAG = ANY

#: tag-space stride between communicators: every tag of comm ``c`` is
#: shifted by ``c * TAG_STRIDE`` at the point-to-point boundary, so
#: messages of a shrunk (derived) communicator can never match posts of
#: the revoked one.  Sits above the collective tag block (``1 << 20``)
#: and the agreement block (``1 << 19``).
TAG_STRIDE = 1 << 24

#: tag blocks of the failure-agreement protocol (below COLL_TAG_BASE)
_AGREE_TAG = 1 << 19
_AGREE_REPLY_TAG = _AGREE_TAG + 256

#: eager/rendezvous protocol switch point (MVAPICH2-GDR GPU default scale)
EAGER_THRESHOLD = 16 * KiB

#: CPU-side software overhead charged per point-to-point operation
SETUP_TIME = 1.0e-6

#: The rendezvous pipeline's step spans (category ``"pipeline"``), in
#: protocol order across both sides — Figure 4's seven stages.  Sender
#: records sender_prepare / rts / wire_transfer / sender_release;
#: receiver records receiver_prepare / cts / receiver_complete.
PIPELINE_STEPS = (
    "sender_prepare",      # steps 1-3: decide, buffers, kernels, size, combine
    "rts",                 # step 4a: RTS carrying the piggybacked header
    "receiver_prepare",    # step 4b: receiver's temporary device buffer
    "cts",                 # step 5: clear-to-send back to the sender
    "wire_transfer",       # step 6: (compressed) payload crosses the fabric
    "receiver_complete",   # step 7: decompression kernels + restore
    "sender_release",      # post-send: return pooled buffers / temporaries
)

#: transient faults the resilience layer absorbs (retry/fallback); any
#: other exception still propagates immediately
_TRANSIENT = (CompressionError, OutOfDeviceMemoryError, BufferPoolExhaustedError)

#: what decoding a corrupted wire image can raise: every codec wraps its
#: own failures in CompressionError; ValueError/IndexError escape from
#: numpy reshaping/frombuffer on structurally-mangled streams.  Anything
#: else (a KeyboardInterrupt, a genuine bug) must propagate, not be
#: retried as if the fabric corrupted the payload.
_DECODE_ERRORS = (CompressionError, ValueError, IndexError)


class _AgreementRestart(Exception):
    """Internal: a believed-alive member died mid-agreement round; all
    participants restart with the larger snapshot (never escapes
    :meth:`Communicator.agree_failures`)."""


class _AgreementDecided(Exception):
    """Internal: a decision reached this participant outside its current
    round — an earlier round's reply, or the decision board after a
    death wake-up (never escapes :meth:`Communicator.agree_failures`)."""

    def __init__(self, decided: tuple):
        super().__init__(decided)
        self.decided = tuple(decided)


class Communicator:
    """An MPI communicator bound to one rank of a running job.

    A communicator is a *view* over a group of global ranks (GPUs):
    ``rank``/``size`` are communicator-local, ``grank`` is the global
    rank this instance is bound to, and every point-to-point call
    translates local peers to global ones and shifts user tags by
    ``comm_id * TAG_STRIDE`` so traffic on different communicators can
    never cross-match.  The base (world) communicator has
    ``comm_id == 0`` and an identity group, making the translation a
    no-op — byte-identical to the pre-shrink protocol.
    """

    def __init__(self, runtime, rank: int, size: int,
                 group: Optional[tuple] = None, comm_id: int = 0):
        self._rt = runtime
        self.rank = rank
        self.size = size
        self._group = tuple(group) if group is not None else tuple(range(size))
        if len(self._group) != size:
            raise MpiError(
                f"group of {len(self._group)} ranks for a size-{size} comm")
        self._comm_id = comm_id
        self._tag_shift = comm_id * TAG_STRIDE
        self._grank = self._group[rank]
        # SPMD collective counter: every member issues collectives in
        # the same order, so (comm_id, coll_seq) names one collective
        # instance across ranks — the happens-before engine groups
        # participation barriers by it.
        self._coll_seq = 0

    def next_coll_seq(self) -> int:
        """Per-communicator collective instance number (SPMD-aligned)."""
        seq = self._coll_seq
        self._coll_seq += 1
        return seq

    # -- introspection ------------------------------------------------------
    @property
    def sim(self):
        return self._rt.sim

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._rt.sim.now

    @property
    def grank(self) -> int:
        """The global rank (GPU index) this communicator view is bound to."""
        return self._grank

    @property
    def group(self) -> tuple:
        """Global ranks of the members, indexed by local rank."""
        return self._group

    @property
    def comm_id(self) -> int:
        return self._comm_id

    def device(self):
        """This rank's GPU."""
        return self._rt.device_of(self._grank)

    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MpiError(f"{what} rank {peer} out of range [0, {self.size})")

    def _to_global(self, peer: int) -> int:
        return self._group[peer]

    def _shift_tag(self, tag: int) -> int:
        return tag if tag == ANY_TAG else tag + self._tag_shift

    # -- nonblocking point-to-point ----------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Start a nonblocking send of ``data`` (a numpy array resident
        on this rank's GPU) to local rank ``dest``."""
        self._check_peer(dest, "destination")
        rt = self._rt
        rt.note_send(self._grank)  # may trip an after_sends kill (in-frame)
        gdest = self._to_global(dest)
        req = Request(self.sim, kind=f"isend->{gdest}")
        proc = self.sim.process(
            self._send_proc(data, gdest, self._shift_tag(tag), req),
            name=f"isend{self._grank}->{gdest}")
        rt.adopt(self._grank, proc)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Start a nonblocking receive.  The request's value is the
        received array."""
        gsource = source
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
            gsource = self._to_global(source)
        req = Request(self.sim, kind=f"irecv<-{gsource}")
        proc = self.sim.process(
            self._recv_proc(gsource, self._shift_tag(tag), req),
            name=f"irecv{self._grank}<-{gsource}")
        self._rt.adopt(self._grank, proc)
        return req

    # -- blocking wrappers ------------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0):
        """Blocking send (generator subroutine)."""
        req = self.isend(data, dest, tag)
        yield from req.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator subroutine); returns the data."""
        req = self.irecv(source, tag)
        data = yield from req.wait()
        return data

    def sendrecv(self, senddata: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Concurrent send+receive; returns the received data."""
        sreq = self.isend(senddata, dest, sendtag)
        rreq = self.irecv(source, recvtag)
        data = yield from rreq.wait()
        yield from sreq.wait()
        return data

    # -- protocol processes ------------------------------------------------------
    def _payload_nbytes(self, data: Any) -> int:
        if isinstance(data, np.ndarray):
            return int(data.nbytes)
        return len(data)

    def _count_send(self, protocol: str) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.metrics.inc("mpi.sends", protocol=protocol)

    def _send_proc(self, data: Any, dest: int, tag: int, req: Request):
        rt = self._rt
        try:
            yield self.sim.timeout(SETUP_TIME)
            seq = rt.next_seq()
            nbytes = self._payload_nbytes(data)
            if dest == self._grank:
                # Self-send: no wire, deliver the envelope directly.
                pkt = Packet(PacketKind.EAGER, self._grank, dest, tag, seq,
                             payload=data, wire_nbytes=nbytes)
                rt.matching_of(dest).deliver_envelope(pkt)
                self._count_send("self")
                req.complete()
                return

            if nbytes < EAGER_THRESHOLD:
                pkt = Packet(PacketKind.EAGER, self._grank, dest, tag, seq,
                             payload=data, wire_nbytes=nbytes)
                yield from rt.transfer(self._grank, dest, nbytes + pkt.control_bytes(),
                                       label="eager")
                rt.matching_of(dest).deliver_envelope(pkt)
                self._count_send("eager")
                req.complete()
                return

            # Rendezvous with on-the-fly compression.
            engine = rt.engine_of(self._grank)
            resil = rt.resilience
            breaker = None
            force_uncompressed = False
            if engine.config.enabled:
                breaker = rt.breaker_of(self._grank, dest)
                if not breaker.allow(self.now):
                    force_uncompressed = True
                    rt.resilience_event("breaker_veto", rank=self._grank,
                                        dst=dest, seq=seq)
            if engine.config.enabled and engine.config.pipeline \
                    and not force_uncompressed:
                pplan = None
                with trace_scope(self.sim, "pipeline", "sender_prepare",
                                 rank=self._grank, nbytes=nbytes, seq=seq,
                                 dst=dest):
                    try:
                        pplan = yield from engine.sender_prepare_pipelined(
                            data, path_bandwidth=rt.path_bandwidth(self._grank, dest)
                        )
                    except _TRANSIENT as exc:
                        self._compression_failed(rt, breaker, dest, seq, exc)
                        force_uncompressed = True
                if pplan is not None:
                    yield from self._send_pipelined(rt, dest, tag, seq, pplan)
                    self._count_send("rndv_pipelined")
                    req.complete()
                    return
            with trace_scope(self.sim, "pipeline", "sender_prepare",
                             rank=self._grank, nbytes=nbytes, seq=seq,
                             dst=dest):
                try:
                    plan = yield from engine.sender_prepare(
                        data, path_bandwidth=rt.path_bandwidth(self._grank, dest),
                        force_uncompressed=force_uncompressed,
                    )
                except _TRANSIENT as exc:
                    self._compression_failed(rt, breaker, dest, seq, exc)
                    plan = yield from engine.sender_prepare(
                        data, force_uncompressed=True
                    )
            crc = plan.crc if resil.integrity else None
            rts = Packet(PacketKind.RTS, self._grank, dest, tag, seq,
                         header=plan.header, wire_nbytes=plan.wire_nbytes,
                         crc=crc)
            with trace_scope(self.sim, "pipeline", "rts", rank=self._grank,
                             seq=seq, dst=dest, tag=tag):
                yield from rt.control_delay(self._grank, dest, rts.control_bytes())
                cts_ev = rt.matching_of(self._grank).expect_cts(seq)
                rt.matching_of(dest).deliver_envelope(rts)
            yield from self._await_cts(rt, cts_ev, dest, seq)
            rt.register_retransmit(seq, self._grank, dest, tag, plan.header,
                                   plan.payload, plan.wire_nbytes, crc,
                                   plan.compressed)
            with trace_scope(self.sim, "pipeline", "wire_transfer",
                             rank=self._grank, seq=seq,
                             nbytes=plan.wire_nbytes, dst=dest):
                delivered = yield from rt.transfer(
                    self._grank, dest, plan.wire_nbytes,
                    label="rndv_data", payload=plan.payload,
                )
            if delivered is not DROPPED:
                data_pkt = Packet(PacketKind.DATA, self._grank, dest, tag, seq,
                                  payload=delivered,
                                  wire_nbytes=plan.wire_nbytes, crc=crc)
                rt.matching_of(dest).deliver_data(data_pkt)
            with trace_scope(self.sim, "pipeline", "sender_release",
                             rank=self._grank, seq=seq, dst=dest):
                yield from engine.sender_release(plan)
            self._count_send("rndv")
            req.complete()
        except BaseException as exc:  # surfaced via the request
            req.fail(exc)

    def _compression_failed(self, rt, breaker, dest: int, seq: int, exc) -> None:
        """Host-side bookkeeping for a transient sender-side compression
        failure: feed the breaker, record the uncompressed fallback."""
        if breaker is not None:
            breaker.record_failure(self.now)
        rt.resilience_event("fallback", rank=self._grank, dst=dest, seq=seq,
                            error=type(exc).__name__)

    # -- failure detection -------------------------------------------------------
    def _guarded_wait(self, rt, ev, peer, phase: str, seq=None, timeout=None):
        """Wait on ``ev``, racing an optional ``timeout`` and — when the
        failure detector is armed — the death event of (global) ``peer``.

        Returns ``(value, timed_out)``.  A peer death grants a
        ``detect_timeout`` grace window for in-flight data, then raises
        :class:`RankFailedError`.  With no detector and no timeout this
        is a bare ``yield ev``: zero extra events on the fault-free
        path, preserving trace identity.
        """
        fs = rt.failstop
        detect = rt.resilience.detect_timeout
        watch = (fs is not None and detect is not None
                 and peer is not None and peer != ANY)
        if not watch:
            if timeout is None:
                val = yield ev
                return val, False
            timer = self.sim.timeout(timeout)
            yield self.sim.any_of([ev, timer])
            if not ev.triggered:
                return None, True
            timer.cancel()
            return ev.value, False
        death = fs.death_event(peer)
        races = [ev, death]
        timer = None
        if timeout is not None:
            timer = self.sim.timeout(timeout)
            races.append(timer)
        yield self.sim.any_of(races)
        if ev.triggered:
            if timer is not None and not timer.triggered:
                timer.cancel()
            return ev.value, False
        if death.triggered:
            # Grace window: a message already on the wire outlives its
            # sender — prefer delivered data over declaring failure.
            grace = self.sim.timeout(detect)
            yield self.sim.any_of([ev, grace])
            if timer is not None and not timer.triggered:
                timer.cancel()
            if ev.triggered:
                if not grace.triggered:
                    grace.cancel()
                return ev.value, False
            self._raise_rank_failed(rt, peer, phase, seq)
        return None, True

    def _raise_rank_failed(self, rt, peer: int, phase: str, seq=None):
        """Translate a detected peer death into :class:`RankFailedError`
        with the detector's full context (incarnation, kill time,
        last-heard, matching state)."""
        fs = rt.failstop
        inc, killed_at = fs.dead[peer]
        heard = rt.last_heard_of(self._grank, peer)
        heard_s = "never" if heard is None else f"t={heard:.9f}"
        rt.resilience_event("rank_failed", rank=self._grank, peer=peer,
                            phase=phase)
        detail = f" for seq {seq}" if seq is not None else ""
        raise RankFailedError(
            f"rank {self._grank}: peer rank {peer} (incarnation {inc}) "
            f"failed at t={killed_at:.9f} while awaiting {phase}{detail}; "
            f"last heard {heard_s}",
            failed_rank=peer, incarnation=inc, last_heard=heard,
            diagnostic=rt.matching_report(),
        )

    def _await_cts(self, rt, cts_ev, dest: int, seq: int):
        """Wait for the CTS under the handshake timeout and the
        receiver's death watch."""
        t = rt.resilience.handshake_timeout
        _, timed_out = yield from self._guarded_wait(
            rt, cts_ev, dest, "cts", seq=seq, timeout=t)
        if timed_out:
            rt.resilience_event("timeout", rank=self._grank, seq=seq,
                                dst=dest, phase="cts")
            raise RendezvousTimeoutError(
                f"rank {self._grank}: no CTS from rank {dest} for seq {seq} "
                f"within {t}s",
                diagnostic=rt.matching_report(),
            )

    def _send_pipelined(self, rt, dest: int, tag: int, seq: int, pplan):
        """Stream each partition as its compression kernel completes."""
        engine = rt.engine_of(self._grank)
        crc = pplan.crc if rt.resilience.integrity else None
        total = pplan.header.wire_bytes
        rts = Packet(PacketKind.RTS, self._grank, dest, tag, seq,
                     header=pplan.header, wire_nbytes=total, crc=crc)
        with trace_scope(self.sim, "pipeline", "rts", rank=self._grank,
                         seq=seq, dst=dest, tag=tag):
            yield from rt.control_delay(self._grank, dest, rts.control_bytes())
            cts_ev = rt.matching_of(self._grank).expect_cts(seq)
            rt.matching_of(dest).deliver_envelope(rts)
        yield from self._await_cts(rt, cts_ev, dest, seq)
        if rt.faults is not None:
            # Retain the full concatenated wire image: a NACKed
            # pipelined message is retransmitted as one un-pipelined
            # DATA packet (the header's partition table still applies).
            rt.register_retransmit(
                seq, self._grank, dest, tag, pplan.header,
                np.concatenate([c.payload for c in pplan.comps]),
                total, crc, True,
            )

        def part_sender(i):
            yield from pplan.kernel_run(i)
            comp = pplan.comps[i]
            with trace_scope(self.sim, "pipeline", "wire_transfer",
                             rank=self._grank, seq=seq, part=i,
                             nbytes=comp.nbytes, dst=dest):
                delivered = yield from rt.transfer(
                    self._grank, dest, comp.nbytes,
                    label="pipe_data", payload=comp.payload,
                )
            if delivered is DROPPED:
                return
            rt.matching_of(dest).deliver_data(
                Packet(PacketKind.DATA, self._grank, dest, tag, seq,
                       payload=delivered, wire_nbytes=comp.nbytes, part=i)
            )

        procs = [
            self.sim.process(part_sender(i), name=f"pipe-send{i}")
            for i in range(pplan.n_parts)
        ]
        for p in procs:
            rt.adopt(self._grank, p)
        yield self.sim.all_of(procs)
        with trace_scope(self.sim, "pipeline", "sender_release",
                         rank=self._grank, seq=seq, dst=dest):
            yield from engine.pipelined_release(pplan)

    def _recv_pipelined(self, rt, pkt, req: Request):
        """Decompress each partition as it lands.

        A failed partition (timeout, decode error) or a whole-message
        CRC mismatch falls back to the un-pipelined recovery loop: one
        NACK, one full retransmission of the concatenated wire image.
        """
        engine = rt.engine_of(self._grank)
        resil = rt.resilience
        header = pkt.header
        resources = yield from self._receiver_prepare_resilient(
            rt, engine, header, pkt.seq, pkt.src
        )
        data_evs = [
            rt.matching_of(self._grank).expect_data(pkt.seq, part=i)
            for i in range(header.n_partitions)
        ]
        cts = Packet(PacketKind.CTS, self._grank, pkt.src, pkt.tag, pkt.seq)
        with trace_scope(self.sim, "pipeline", "cts", rank=self._grank,
                         seq=pkt.seq, dst=pkt.src):
            yield from rt.control_delay(self._grank, pkt.src, cts.control_bytes())
            rt.matching_of(pkt.src).deliver_cts(cts)

        failures: list = []

        def part_receiver(i):
            data_pkt = yield from self._await_data(rt, data_evs[i],
                                                   src=pkt.src, seq=pkt.seq)
            if data_pkt is None:
                failures.append(("data_timeout", None))
                return None
            with trace_scope(self.sim, "pipeline", "receiver_complete",
                             rank=self._grank, seq=pkt.seq, src=pkt.src,
                             part=i):
                try:
                    out = yield from engine.pipelined_receive_part(
                        header, i, data_pkt.payload
                    )
                except _DECODE_ERRORS as exc:
                    if rt.retransmit_entry(pkt.seq) is None:
                        raise
                    failures.append(("decode_error", exc))
                    return None
            return out

        procs = [
            self.sim.process(part_receiver(i), name=f"pipe-recv{i}")
            for i in range(header.n_partitions)
        ]
        for p in procs:
            rt.adopt(self._grank, p)
        results = yield self.sim.all_of(procs)
        if not failures:
            parts = [results[i] for i in range(header.n_partitions)]
            data = np.concatenate(parts)
            crc = pkt.crc if resil.integrity else None
            if crc is None or payload_crc32(data) == crc:
                yield from engine._release(resources)
                rt.retire(pkt.seq, True)
                req.complete(data)
                return
            failures.append(("crc_mismatch", None))
        kind, exc = failures[0]
        data = yield from self._complete_with_retries(
            rt, engine, pkt, None, resources,
            initial_failure=kind, initial_exc=exc,
        )
        req.complete(data)

    def _recv_proc(self, source: int, tag: int, req: Request):
        rt = self._rt
        try:
            yield self.sim.timeout(SETUP_TIME)
            match_ev = rt.matching_of(self._grank).post_recv(source, tag)
            pkt, _ = yield from self._guarded_wait(rt, match_ev, source,
                                                   "envelope")
            if pkt.kind == PacketKind.EAGER:
                req.complete(pkt.payload)
                return
            if pkt.kind != PacketKind.RTS:
                raise MpiError(f"unexpected envelope {pkt!r}")
            if pkt.header is not None and pkt.header.pipelined:
                yield from self._recv_pipelined(rt, pkt, req)
                return
            engine = rt.engine_of(self._grank)
            resources = yield from self._receiver_prepare_resilient(
                rt, engine, pkt.header, pkt.seq, pkt.src
            )
            data_ev = rt.matching_of(self._grank).expect_data(pkt.seq)
            cts = Packet(PacketKind.CTS, self._grank, pkt.src, tag, pkt.seq)
            with trace_scope(self.sim, "pipeline", "cts", rank=self._grank,
                             seq=pkt.seq, dst=pkt.src):
                yield from rt.control_delay(self._grank, pkt.src, cts.control_bytes())
                rt.matching_of(pkt.src).deliver_cts(cts)
            data_pkt = yield from self._await_data(rt, data_ev,
                                                   src=pkt.src, seq=pkt.seq)
            data = yield from self._complete_with_retries(
                rt, engine, pkt, data_pkt, resources
            )
            req.complete(data)
        except BaseException as exc:
            req.fail(exc)

    # -- resilient receiver machinery ------------------------------------------
    def _receiver_prepare_resilient(self, rt, engine, header, seq: int,
                                    src: int):
        """``receiver_prepare`` with bounded retry on transient
        allocation faults (injected OOM / pool exhaustion)."""
        resil = rt.resilience
        attempt = 0
        while True:
            extra = {"attempt": attempt} if attempt else {}
            err = None
            with trace_scope(self.sim, "pipeline", "receiver_prepare",
                             rank=self._grank, seq=seq, src=src, **extra):
                try:
                    resources = yield from engine.receiver_prepare(header)
                    return resources
                except _TRANSIENT as exc:
                    if rt.faults is None or attempt >= resil.max_retries:
                        raise
                    err = exc
            attempt += 1
            rt.resilience_event("retry", rank=self._grank, seq=seq,
                                stage="receiver_prepare",
                                error=type(err).__name__)
            yield from self._backoff(rt, attempt, seq, "receiver_prepare")

    def _backoff(self, rt, attempt: int, seq: int, reason: str):
        """Exponential backoff + jitter on the simulated clock."""
        delay = rt.resilience.backoff_delay(attempt, rt.resil_rng)
        with trace_scope(self.sim, "resilience", "backoff", rank=self._grank,
                         track="faults", seq=seq, attempt=attempt,
                         reason=reason):
            yield self.sim.timeout(delay)

    def _await_data(self, rt, data_ev, src=None, seq=None):
        """Wait for a DATA packet; ``None`` signals a delivery timeout
        (only possible when the resilience config arms one).  A dead
        sender raises :class:`RankFailedError` via the death watch."""
        pkt, timed_out = yield from self._guarded_wait(
            rt, data_ev, src, "data", seq=seq,
            timeout=rt.resilience.data_timeout)
        return None if timed_out else pkt

    def _complete_with_retries(self, rt, engine, pkt, data_pkt, resources,
                               initial_failure: Optional[str] = None,
                               initial_exc: Optional[BaseException] = None):
        """Decompress + integrity-check, NACKing for retransmission on
        failure (CRC mismatch, decode error, or delivery timeout) until
        the message survives or the retry budget is spent."""
        resil = rt.resilience
        header = pkt.header
        seq = pkt.seq
        attempt = 0
        last_exc = initial_exc
        failure = initial_failure
        while True:
            if failure is None:
                if data_pkt is None:
                    failure = "data_timeout"
                else:
                    extra = {"attempt": attempt} if attempt else {}
                    with trace_scope(self.sim, "pipeline", "receiver_complete",
                                     rank=self._grank, seq=seq, src=pkt.src,
                                     wire_nbytes=data_pkt.wire_nbytes,
                                     **extra):
                        try:
                            data = yield from engine.receiver_complete(
                                header, data_pkt.payload, resources
                            )
                        except _DECODE_ERRORS as exc:
                            failure = "decode_error"
                            last_exc = exc
                    if failure is None:
                        resources = []  # released by receiver_complete
                        crc = data_pkt.crc if resil.integrity else None
                        if crc is not None and payload_crc32(data) != crc:
                            failure = "crc_mismatch"
                        else:
                            rt.retire(seq, True)
                            if attempt:
                                rt.resilience_event("recovered", rank=self._grank,
                                                    seq=seq, attempts=attempt)
                            return data
            attempt += 1
            if rt.is_dead(pkt.src):
                # No point NACKing a dead sender; surface the failure
                # instead of burning the retry budget.
                rt.retire(seq, False)
                if resources:
                    yield from engine._release(resources)
                self._raise_rank_failed(rt, pkt.src, failure, seq)
            entry = rt.retransmit_entry(seq)
            rt.resilience_event(failure, rank=self._grank, seq=seq,
                                src=pkt.src, attempt=attempt)
            if entry is None or attempt > resil.max_retries:
                rt.retire(seq, False)
                if resources:
                    yield from engine._release(resources)
                retries = attempt - 1
                msg = (f"rank {self._grank}: message seq {seq} from rank "
                       f"{pkt.src} failed ({failure}) after {retries} "
                       f"retransmission(s)")
                if failure == "data_timeout":
                    raise RendezvousTimeoutError(
                        msg, diagnostic=rt.matching_report())
                if entry is None and last_exc is not None:
                    raise last_exc  # no resilience active: original error
                if failure == "crc_mismatch":
                    raise IntegrityError(msg)
                raise RetryExhaustedError(msg) from last_exc
            yield from self._backoff(rt, attempt, seq, failure)
            if not resources and header.compressed:
                resources = yield from self._receiver_prepare_resilient(
                    rt, engine, header, seq, pkt.src
                )
            nack = Packet(PacketKind.CTS, self._grank, pkt.src, pkt.tag, seq)
            with trace_scope(self.sim, "resilience", "nack", rank=self._grank,
                             track="faults", seq=seq, dst=pkt.src,
                             attempt=attempt):
                yield from rt.control_delay(self._grank, pkt.src,
                                            nack.control_bytes())
            rt.notify_nack(seq)
            data_ev = rt.matching_of(self._grank).expect_data(seq, 0, attempt)
            rt.spawn_retransmit(seq, attempt)
            data_pkt = yield from self._await_data(rt, data_ev,
                                                   src=pkt.src, seq=pkt.seq)
            failure = None

    # -- keep-compressed wire images ----------------------------------------------
    #
    # Collectives that forward data across intermediate ranks use these
    # primitives to compress *once* at the originating rank, relay the
    # resulting WireImage hop by hop (each hop verifying only the cheap
    # wire CRC), and decompress *once* at each consumer — instead of a
    # full decode/re-encode at every hop.  The spans these emit carry
    # ``origin_seq`` (never ``seq``) so message stitching and critical-
    # path tiling see only the per-hop protocol groups, while the trace
    # sanitizer can still tie every relayed hop back to its pack site.

    def pack_wire(self, data):
        """Compress ``data`` into a relayable :class:`WireImage`
        (generator subroutine).  Device staging buffers are returned
        immediately — the image itself lives in the collective's
        host-visible staging area and survives any number of sends."""
        rt = self._rt
        engine = rt.engine_of(self._grank)
        origin_seq = rt.next_seq()
        nbytes = self._payload_nbytes(data)
        with trace_scope(self.sim, "pipeline", "pack_wire", rank=self._grank,
                         nbytes=nbytes, origin_seq=origin_seq):
            try:
                plan = yield from engine.sender_prepare(data)
            except _TRANSIENT as exc:
                rt.resilience_event("fallback", rank=self._grank,
                                    seq=origin_seq, error=type(exc).__name__)
                plan = yield from engine.sender_prepare(
                    data, force_uncompressed=True
                )
            yield from engine.sender_release(plan)
        integrity = rt.resilience.integrity
        return WireImage(
            header=plan.header, payload=plan.payload,
            wire_nbytes=plan.wire_nbytes,
            crc=plan.crc if integrity else None,
            wire_crc=payload_crc32(plan.payload) if integrity else None,
            origin_seq=origin_seq,
        )

    def unpack_wire(self, wire: WireImage):
        """Decode a received :class:`WireImage` into user data
        (generator subroutine) — the single decompression of the
        keep-compressed path, checked against the image's
        post-decode CRC when integrity is on."""
        rt = self._rt
        engine = rt.engine_of(self._grank)
        with trace_scope(self.sim, "pipeline", "unpack_wire", rank=self._grank,
                         nbytes=wire.wire_nbytes, origin_seq=wire.origin_seq):
            resources = yield from engine.receiver_prepare(wire.header)
            try:
                data = yield from engine.receiver_complete(
                    wire.header, wire.payload, resources
                )
            except BaseException:
                if resources:
                    yield from engine._release(resources)
                raise
        if wire.crc is not None and payload_crc32(data) != wire.crc:
            raise IntegrityError(
                f"rank {self._grank}: wire image origin_seq={wire.origin_seq} "
                f"failed its post-decode CRC"
            )
        return data

    def reduce_wires(self, acc: WireImage, other: WireImage, op=None):
        """Combine two wire images into a new one (generator
        subroutine): the hZCCL-style fused partial-decode + op +
        re-encode when both operands are compressed, a decode-and-raw-
        accumulate fallback otherwise.  The result is a fresh image
        with its own ``origin_seq``."""
        rt = self._rt
        engine = rt.engine_of(self._grank)
        op = np.add if op is None else op
        integrity = rt.resilience.integrity
        origin_seq = rt.next_seq()
        if acc.compressed and other.compressed \
                and acc.header.algorithm == other.header.algorithm \
                and acc.header.partition_sizes is not None \
                and acc.header.n_partitions == other.header.n_partitions \
                and op is np.add:
            with trace_scope(self.sim, "pipeline", "reduce_wire",
                             rank=self._grank, nbytes=acc.wire_nbytes,
                             origin_seq=origin_seq, fused=True):
                header, payload, crc = yield from engine.reduce_wire_payload(
                    acc.header, acc.payload, other.header, other.payload,
                    want_crc=integrity,
                )
            return WireImage(
                header=header, payload=payload,
                wire_nbytes=int(header.wire_bytes), crc=crc,
                wire_crc=payload_crc32(payload) if integrity else None,
                origin_seq=origin_seq,
            )
        # Mixed / uncompressed / non-sum: decode what needs decoding and
        # keep this accumulator raw from here on.
        with trace_scope(self.sim, "pipeline", "reduce_wire",
                         rank=self._grank, nbytes=acc.wire_nbytes,
                         origin_seq=origin_seq, fused=False):
            a = acc.payload if not acc.compressed else (yield from self.unpack_wire(acc))
            b = other.payload if not other.compressed else (yield from self.unpack_wire(other))
            out = op(a, b)
            nbytes = self._payload_nbytes(out)
        return WireImage(
            header=CompressionHeader.uncompressed(nbytes), payload=out,
            wire_nbytes=nbytes,
            crc=payload_crc32(out) if integrity else None,
            wire_crc=payload_crc32(out) if integrity else None,
            origin_seq=origin_seq,
        )

    def isend_wire(self, wire: WireImage, dest: int, tag: int = 0) -> Request:
        """Nonblocking relay of an already-packed wire image."""
        self._check_peer(dest, "destination")
        rt = self._rt
        rt.note_send(self._grank)  # may trip an after_sends kill (in-frame)
        gdest = self._to_global(dest)
        req = Request(self.sim, kind=f"isend_wire->{gdest}")
        proc = self.sim.process(
            self._send_wire_proc(wire, gdest, self._shift_tag(tag), req),
            name=f"isendw{self._grank}->{gdest}")
        rt.adopt(self._grank, proc)
        return req

    def irecv_wire(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive of a wire image; the request's value is
        the :class:`WireImage` (not decoded — pass it on or unpack)."""
        gsource = source
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
            gsource = self._to_global(source)
        req = Request(self.sim, kind=f"irecv_wire<-{gsource}")
        proc = self.sim.process(
            self._recv_wire_proc(gsource, self._shift_tag(tag), req),
            name=f"irecvw{self._grank}<-{gsource}")
        self._rt.adopt(self._grank, proc)
        return req

    def send_wire(self, wire: WireImage, dest: int, tag: int = 0):
        req = self.isend_wire(wire, dest, tag)
        yield from req.wait()

    def recv_wire(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        req = self.irecv_wire(source, tag)
        wire = yield from req.wait()
        return wire

    def sendrecv_wire(self, wire: WireImage, dest: int,
                      source: int = ANY_SOURCE, sendtag: int = 0,
                      recvtag: int = ANY_TAG):
        sreq = self.isend_wire(wire, dest, sendtag)
        rreq = self.irecv_wire(source, recvtag)
        received = yield from rreq.wait()
        yield from sreq.wait()
        return received

    def _send_wire_proc(self, wire: WireImage, dest: int, tag: int,
                        req: Request):
        rt = self._rt
        try:
            yield self.sim.timeout(SETUP_TIME)
            seq = rt.next_seq()
            if dest == self._grank:
                pkt = Packet(PacketKind.EAGER, self._grank, dest, tag, seq,
                             payload=wire, wire_nbytes=wire.wire_nbytes)
                rt.matching_of(dest).deliver_envelope(pkt)
                self._count_send("self")
                req.complete()
                return
            if wire.wire_nbytes < EAGER_THRESHOLD:
                pkt = Packet(PacketKind.EAGER, self._grank, dest, tag, seq,
                             payload=wire, wire_nbytes=wire.wire_nbytes)
                yield from rt.transfer(self._grank, dest,
                                       wire.wire_nbytes + pkt.control_bytes(),
                                       label="eager")
                rt.matching_of(dest).deliver_envelope(pkt)
                self._count_send("wire_eager")
                req.complete()
                return
            # Rendezvous relay: the RTS re-piggybacks the *original*
            # header; no sender_prepare — the image is already packed.
            rts = Packet(PacketKind.RTS, self._grank, dest, tag, seq,
                         header=wire.header, wire_nbytes=wire.wire_nbytes,
                         crc=wire.crc, wire_crc=wire.wire_crc,
                         origin_seq=wire.origin_seq)
            with trace_scope(self.sim, "pipeline", "rts", rank=self._grank,
                             seq=seq, dst=dest, tag=tag,
                             origin_seq=wire.origin_seq):
                yield from rt.control_delay(self._grank, dest, rts.control_bytes())
                cts_ev = rt.matching_of(self._grank).expect_cts(seq)
                rt.matching_of(dest).deliver_envelope(rts)
            yield from self._await_cts(rt, cts_ev, dest, seq)
            rt.register_retransmit(seq, self._grank, dest, tag, wire.header,
                                   wire.payload, wire.wire_nbytes, wire.crc,
                                   wire.compressed, wire_crc=wire.wire_crc,
                                   origin_seq=wire.origin_seq)
            with trace_scope(self.sim, "pipeline", "wire_transfer",
                             rank=self._grank, seq=seq,
                             nbytes=wire.wire_nbytes, dst=dest,
                             origin_seq=wire.origin_seq):
                delivered = yield from rt.transfer(
                    self._grank, dest, wire.wire_nbytes,
                    label="rndv_data", payload=wire.payload,
                )
            if delivered is not DROPPED:
                data_pkt = Packet(PacketKind.DATA, self._grank, dest, tag, seq,
                                  payload=delivered,
                                  wire_nbytes=wire.wire_nbytes, crc=wire.crc,
                                  wire_crc=wire.wire_crc,
                                  origin_seq=wire.origin_seq)
                rt.matching_of(dest).deliver_data(data_pkt)
            self._count_send("rndv_wire")
            req.complete()
        except BaseException as exc:
            req.fail(exc)

    def _recv_wire_proc(self, source: int, tag: int, req: Request):
        rt = self._rt
        try:
            yield self.sim.timeout(SETUP_TIME)
            match_ev = rt.matching_of(self._grank).post_recv(source, tag)
            pkt, _ = yield from self._guarded_wait(rt, match_ev, source,
                                                   "envelope")
            if pkt.kind == PacketKind.EAGER:
                req.complete(pkt.payload)  # the WireImage itself
                return
            if pkt.kind != PacketKind.RTS:
                raise MpiError(f"unexpected envelope {pkt!r}")
            engine = rt.engine_of(self._grank)
            resources = yield from self._receiver_prepare_resilient(
                rt, engine, pkt.header, pkt.seq, pkt.src
            )
            data_ev = rt.matching_of(self._grank).expect_data(pkt.seq)
            cts = Packet(PacketKind.CTS, self._grank, pkt.src, tag, pkt.seq)
            with trace_scope(self.sim, "pipeline", "cts", rank=self._grank,
                             seq=pkt.seq, dst=pkt.src):
                yield from rt.control_delay(self._grank, pkt.src, cts.control_bytes())
                rt.matching_of(pkt.src).deliver_cts(cts)
            data_pkt = yield from self._await_data(rt, data_ev,
                                                   src=pkt.src, seq=pkt.seq)
            wire = yield from self._wire_complete_with_retries(
                rt, engine, pkt, data_pkt, resources
            )
            req.complete(wire)
        except BaseException as exc:
            req.fail(exc)

    def _wire_complete_with_retries(self, rt, engine, pkt, data_pkt,
                                    resources):
        """The relay-side recovery loop: verify the wire CRC of the
        arrived image *without decompressing*, NACKing the immediate
        upstream hop for retransmission on mismatch or timeout."""
        resil = rt.resilience
        seq = pkt.seq
        attempt = 0
        failure: Optional[str] = None
        while True:
            if failure is None:
                if data_pkt is None:
                    failure = "data_timeout"
                else:
                    extra = {"attempt": attempt} if attempt else {}
                    if pkt.origin_seq is not None:
                        extra["origin_seq"] = pkt.origin_seq
                    with trace_scope(self.sim, "pipeline", "receiver_complete",
                                     rank=self._grank, seq=seq, src=pkt.src,
                                     wire_nbytes=data_pkt.wire_nbytes,
                                     **extra):
                        wcrc = data_pkt.wire_crc if resil.integrity else None
                        ok = wcrc is None \
                            or payload_crc32(data_pkt.payload) == wcrc
                    if ok:
                        if resources:
                            yield from engine._release(resources)
                        rt.retire(seq, True)
                        if attempt:
                            rt.resilience_event("recovered", rank=self._grank,
                                                seq=seq, attempts=attempt)
                        return WireImage(
                            header=pkt.header, payload=data_pkt.payload,
                            wire_nbytes=data_pkt.wire_nbytes,
                            crc=data_pkt.crc, wire_crc=data_pkt.wire_crc,
                            origin_seq=pkt.origin_seq or 0,
                        )
                    failure = "wire_crc_mismatch"
            attempt += 1
            if rt.is_dead(pkt.src):
                # No point NACKing a dead sender; surface the failure
                # instead of burning the retry budget.
                rt.retire(seq, False)
                if resources:
                    yield from engine._release(resources)
                self._raise_rank_failed(rt, pkt.src, failure, seq)
            entry = rt.retransmit_entry(seq)
            rt.resilience_event(failure, rank=self._grank, seq=seq,
                                src=pkt.src, attempt=attempt)
            if entry is None or attempt > resil.max_retries:
                rt.retire(seq, False)
                if resources:
                    yield from engine._release(resources)
                retries = attempt - 1
                msg = (f"rank {self._grank}: wire image seq {seq} from rank "
                       f"{pkt.src} failed ({failure}) after {retries} "
                       f"retransmission(s)")
                if failure == "data_timeout":
                    raise RendezvousTimeoutError(
                        msg, diagnostic=rt.matching_report())
                raise IntegrityError(msg)
            yield from self._backoff(rt, attempt, seq, failure)
            nack = Packet(PacketKind.CTS, self._grank, pkt.src, pkt.tag, seq)
            with trace_scope(self.sim, "resilience", "nack", rank=self._grank,
                             track="faults", seq=seq, dst=pkt.src,
                             attempt=attempt):
                yield from rt.control_delay(self._grank, pkt.src,
                                            nack.control_bytes())
            rt.notify_nack(seq)
            data_ev = rt.matching_of(self._grank).expect_data(seq, 0, attempt)
            rt.spawn_retransmit(seq, attempt)
            data_pkt = yield from self._await_data(rt, data_ev,
                                                   src=pkt.src, seq=pkt.seq)
            failure = None

    def keep_compressed_active(self, data=None) -> bool:
        """True when collectives should route ``data`` through the
        keep-compressed wire-image path for this rank's config."""
        cfg = self._rt.engine_of(self._grank).config
        if not (cfg.enabled and cfg.keep_compressed):
            return False
        if data is None:
            return True
        return (isinstance(data, np.ndarray)
                and data.dtype.type in (np.float32, np.float64))

    def wire_reduce_capable(self, op) -> bool:
        """True when this rank's engine can combine compressed wire
        images directly (hZCCL-style) for reduction ``op``."""
        return self._rt.engine_of(self._grank).reduce_capable(op)

    # -- ULFM-style failure recovery ----------------------------------------------
    @property
    def failstop(self):
        """The cluster's fail-stop manager (None without a fail-stop
        plan — the entire recovery surface is inert then)."""
        return self._rt.failstop

    def revoke(self, failed_ranks: tuple = ()) -> None:
        """ULFM ``MPI_Comm_revoke``: mark this communicator revoked and
        interrupt every member still blocked inside a collective on it,
        so all survivors abort the collective deterministically."""
        fs = self._rt.failstop
        if fs is not None:
            fs.revoke(self._comm_id, tuple(failed_ranks))

    def check_revoked(self) -> None:
        """Raise :class:`~repro.errors.CollectiveAbortedError` if this
        communicator has been revoked — new operations must move to a
        shrunk communicator."""
        fs = self._rt.failstop
        if fs is not None and fs.is_revoked(self._comm_id):
            failed = fs.revoked_failures(self._comm_id)
            raise CollectiveAbortedError(
                f"rank {self._grank}: communicator {self._comm_id} is "
                f"revoked (failed ranks {sorted(failed)})",
                failed_ranks=failed)

    def agree_failures(self):
        """ULFM ``MPI_Comm_agree`` on the failed set (generator
        subroutine): every survivor of this communicator returns the
        *same* tuple of dead global ranks.

        Protocol: leader (lowest surviving rank) gathers each
        survivor's failure snapshot, unions them, records the decision,
        and replies with the decided set.  Round ``k`` is keyed (via
        tags) by the snapshot size, which only grows — so rounds cannot
        cross-match, and any wait that observes a *new* death restarts
        at the bigger snapshot, re-aligning all participants.  A reply
        from an older round is still a valid agreement (a death it
        misses is found by the next recovery cycle, as in ULFM); the
        decision board covers the window where a deciding leader dies
        mid-reply-distribution.
        """
        rt = self._rt
        fs = rt.failstop
        if fs is None:
            return ()
        board = rt.agreed_failures(self._comm_id)
        if board is not None:
            return board
        pending: dict = {}  # round key -> pending reply Request
        while True:
            snapshot = tuple(sorted(g for g in self._group
                                    if fs.is_dead(g)))
            key = len(snapshot)
            survivors = [r for r in range(self.size)
                         if self._group[r] not in snapshot]
            watch = [g for g in self._group if g not in snapshot]
            leader = survivors[0]
            try:
                if self.rank == leader:
                    views = set(snapshot)
                    for peer in survivors[1:]:
                        req = self.irecv(peer, _AGREE_TAG + key)
                        view = yield from self._agree_wait(
                            rt, fs, req.completion_event(), watch, pending)
                        views.update(view)
                    decided = tuple(sorted(views))
                    # Board first: the decision survives even if this
                    # leader dies while distributing the replies.
                    rt.record_agreement(self._comm_id, decided)
                    for peer in survivors[1:]:
                        self.isend(decided, peer, _AGREE_REPLY_TAG + key)
                    return decided
                yield from self.send(snapshot, leader, _AGREE_TAG + key)
                if key not in pending:
                    pending[key] = self.irecv(
                        leader, _AGREE_REPLY_TAG + key)
                yield from self._agree_wait(rt, fs, None, watch, pending)
                raise _AgreementRestart()  # no reply, no death: re-poll
            except _AgreementRestart:
                continue
            except _AgreementDecided as done:
                return done.decided

    def _agree_wait(self, rt, fs, ev, watch, pending):
        """One guarded agreement wait.  Returns ``ev``'s value; raises
        :class:`_AgreementDecided` when a decision arrives by any other
        path, :class:`_AgreementRestart` when a watched member dies
        first."""
        # Purge reply requests whose round collapsed (leader died).
        for k in [k for k, r in pending.items()
                  if r.done and r._failed is not None]:
            del pending[k]
        reply_evs = {k: r.completion_event() for k, r in pending.items()}
        deaths = [fs.death_event(g) for g in watch]
        race = ([ev] if ev is not None else []) \
            + list(reply_evs.values()) + deaths
        try:
            yield self.sim.any_of(race)
        except RankFailedError:
            raise _AgreementRestart()
        for k in sorted(reply_evs, reverse=True):
            e = reply_evs[k]
            if e.triggered and e.ok:
                raise _AgreementDecided(tuple(e.value))
        if any(d.triggered for d in deaths):
            board = rt.agreed_failures(self._comm_id)
            if board is not None:
                raise _AgreementDecided(board)
            raise _AgreementRestart()
        if ev is not None and ev.triggered and ev.ok:
            return ev.value
        raise _AgreementRestart()

    def shrink(self):
        """ULFM ``MPI_Comm_shrink`` (generator subroutine): agree on
        the failed set and derive a fresh, re-ranked communicator over
        the survivors.  Every survivor must call it; all get the same
        group and a new ``comm_id`` (so the revoked communicator's
        traffic can never leak into the new one)."""
        failed = yield from self.agree_failures()
        new_group = tuple(g for g in self._group if g not in failed)
        return self._rt.derive_comm(self._grank, new_group)

    def subset(self, granks) -> "Communicator":
        """Derive (non-collectively, host-side) a communicator over
        global ranks ``granks`` — the deterministic constructor used by
        failure-free reference runs to mirror a shrunk communicator."""
        group = tuple(granks)
        if self._grank not in group:
            raise MpiError(
                f"rank {self._grank} is not in subset group {group}")
        return self._rt.derive_comm(self._grank, group)

    # -- application checkpoint/restart --------------------------------------------
    def checkpoint(self, step: int, state) -> None:
        """Store this rank's application state for ``step`` (host-side
        bookkeeping: zero simulated time, zero spans).  Callers own the
        copy-on-write discipline — pass a snapshot, not a live buffer."""
        self._rt.store_checkpoint(self._grank, step, state)

    def restore(self, step=None):
        """``(step, state)`` checkpoint of this rank — the latest one,
        or a specific ``step`` (so survivors can roll back to an agreed
        common step after a failure).  None when absent."""
        return self._rt.load_checkpoint(self._grank, step)

    def should_checkpoint(self, step: int) -> bool:
        """True when the cluster's ``checkpoint_every`` cadence says
        step ``step`` (0-based) should end with a checkpoint."""
        n = self._rt.checkpoint_every
        return bool(n) and (step + 1) % n == 0

    # -- collectives --------------------------------------------------------------
    def bcast(self, data, root: int = 0):
        """Binomial-tree broadcast (generator subroutine).  Returns the
        broadcast data on every rank."""
        result = yield from _coll.bcast(self, data, root)
        return result

    def allgather(self, data):
        """Ring allgather; returns a list of every rank's contribution."""
        result = yield from _coll.allgather(self, data)
        return result

    def gather(self, data, root: int = 0):
        result = yield from _coll.gather(self, data, root)
        return result

    def scatter(self, chunks, root: int = 0):
        result = yield from _coll.scatter(self, chunks, root)
        return result

    def reduce(self, data, root: int = 0, op=None):
        result = yield from _coll.reduce(self, data, root, op)
        return result

    def allreduce(self, data, op=None, algorithm=None):
        """Allreduce via ``algorithm``: ``"ring"`` (reduce-scatter +
        allgather, any size), ``"recursive_doubling"`` (power-of-two
        sizes) or ``"reduce_bcast"``; ``None`` picks recursive doubling
        for power-of-two sizes and the ring otherwise."""
        result = yield from _coll.allreduce(self, data, op, algorithm)
        return result

    def alltoall(self, chunks):
        result = yield from _coll.alltoall(self, chunks)
        return result

    def barrier(self):
        yield from _coll.barrier(self)
