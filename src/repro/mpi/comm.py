"""Communicator: point-to-point primitives and collective methods.

Point-to-point follows MVAPICH2's two protocols:

**Eager** (below :data:`EAGER_THRESHOLD`): envelope + payload travel
together; no handshake, no compression (small messages never cross the
compression threshold anyway).

**Rendezvous** (paper Figures 3-4):

1. sender (optionally) compresses — :meth:`CompressionEngine.sender_prepare`;
2. RTS carries the piggybacked compression header to the receiver;
3. receiver matches the RTS, obtains its temporary device buffer, and
   answers CTS;
4. sender pushes the (compressed) payload across the topology;
5. receiver decompresses into the user buffer and completes.

All primitives are generator subroutines (``yield from comm.send(...)``)
except ``isend``/``irecv``, which spawn a protocol process and return a
:class:`~repro.mpi.request.Request`.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import MpiError
from repro.mpi import collectives as _coll
from repro.mpi.matching import ANY
from repro.mpi.message import Packet, PacketKind
from repro.mpi.request import Request
from repro.sim.trace import trace_scope
from repro.utils.units import KiB

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG", "EAGER_THRESHOLD",
           "PIPELINE_STEPS"]

ANY_SOURCE = ANY
ANY_TAG = ANY

#: eager/rendezvous protocol switch point (MVAPICH2-GDR GPU default scale)
EAGER_THRESHOLD = 16 * KiB

#: CPU-side software overhead charged per point-to-point operation
SETUP_TIME = 1.0e-6

#: The rendezvous pipeline's step spans (category ``"pipeline"``), in
#: protocol order across both sides — Figure 4's seven stages.  Sender
#: records sender_prepare / rts / wire_transfer / sender_release;
#: receiver records receiver_prepare / cts / receiver_complete.
PIPELINE_STEPS = (
    "sender_prepare",      # steps 1-3: decide, buffers, kernels, size, combine
    "rts",                 # step 4a: RTS carrying the piggybacked header
    "receiver_prepare",    # step 4b: receiver's temporary device buffer
    "cts",                 # step 5: clear-to-send back to the sender
    "wire_transfer",       # step 6: (compressed) payload crosses the fabric
    "receiver_complete",   # step 7: decompression kernels + restore
    "sender_release",      # post-send: return pooled buffers / temporaries
)


class Communicator:
    """An MPI communicator bound to one rank of a running job."""

    def __init__(self, runtime, rank: int, size: int):
        self._rt = runtime
        self.rank = rank
        self.size = size

    # -- introspection ------------------------------------------------------
    @property
    def sim(self):
        return self._rt.sim

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._rt.sim.now

    def device(self):
        """This rank's GPU."""
        return self._rt.device_of(self.rank)

    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MpiError(f"{what} rank {peer} out of range [0, {self.size})")

    # -- nonblocking point-to-point ----------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Start a nonblocking send of ``data`` (a numpy array resident
        on this rank's GPU) to ``dest``."""
        self._check_peer(dest, "destination")
        req = Request(self.sim, kind=f"isend->{dest}")
        self.sim.process(self._send_proc(data, dest, tag, req), name=f"isend{self.rank}->{dest}")
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Start a nonblocking receive.  The request's value is the
        received array."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        req = Request(self.sim, kind=f"irecv<-{source}")
        self.sim.process(self._recv_proc(source, tag, req), name=f"irecv{self.rank}<-{source}")
        return req

    # -- blocking wrappers ------------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0):
        """Blocking send (generator subroutine)."""
        req = self.isend(data, dest, tag)
        yield from req.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator subroutine); returns the data."""
        req = self.irecv(source, tag)
        data = yield from req.wait()
        return data

    def sendrecv(self, senddata: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Concurrent send+receive; returns the received data."""
        sreq = self.isend(senddata, dest, sendtag)
        rreq = self.irecv(source, recvtag)
        data = yield from rreq.wait()
        yield from sreq.wait()
        return data

    # -- protocol processes ------------------------------------------------------
    def _payload_nbytes(self, data: Any) -> int:
        if isinstance(data, np.ndarray):
            return int(data.nbytes)
        return len(data)

    def _count_send(self, protocol: str) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.metrics.inc("mpi.sends", protocol=protocol)

    def _send_proc(self, data: Any, dest: int, tag: int, req: Request):
        rt = self._rt
        try:
            yield self.sim.timeout(SETUP_TIME)
            seq = rt.next_seq()
            nbytes = self._payload_nbytes(data)
            if dest == self.rank:
                # Self-send: no wire, deliver the envelope directly.
                pkt = Packet(PacketKind.EAGER, self.rank, dest, tag, seq,
                             payload=data, wire_nbytes=nbytes)
                rt.matching_of(dest).deliver_envelope(pkt)
                self._count_send("self")
                req.complete()
                return

            if nbytes < EAGER_THRESHOLD:
                pkt = Packet(PacketKind.EAGER, self.rank, dest, tag, seq,
                             payload=data, wire_nbytes=nbytes)
                yield from rt.transfer(self.rank, dest, nbytes + pkt.control_bytes(),
                                       label="eager")
                rt.matching_of(dest).deliver_envelope(pkt)
                self._count_send("eager")
                req.complete()
                return

            # Rendezvous with on-the-fly compression.
            engine = rt.engine_of(self.rank)
            if engine.config.enabled and engine.config.pipeline:
                with trace_scope(self.sim, "pipeline", "sender_prepare",
                                 rank=self.rank, nbytes=nbytes, seq=seq):
                    pplan = yield from engine.sender_prepare_pipelined(
                        data, path_bandwidth=rt.path_bandwidth(self.rank, dest)
                    )
                if pplan is not None:
                    yield from self._send_pipelined(rt, dest, tag, seq, pplan)
                    self._count_send("rndv_pipelined")
                    req.complete()
                    return
            with trace_scope(self.sim, "pipeline", "sender_prepare",
                             rank=self.rank, nbytes=nbytes, seq=seq):
                plan = yield from engine.sender_prepare(
                    data, path_bandwidth=rt.path_bandwidth(self.rank, dest)
                )
            rts = Packet(PacketKind.RTS, self.rank, dest, tag, seq,
                         header=plan.header, wire_nbytes=plan.wire_nbytes)
            with trace_scope(self.sim, "pipeline", "rts", rank=self.rank,
                             seq=seq, dst=dest):
                yield from rt.control_delay(self.rank, dest, rts.control_bytes())
                cts_ev = rt.matching_of(self.rank).expect_cts(seq)
                rt.matching_of(dest).deliver_envelope(rts)
            yield cts_ev
            with trace_scope(self.sim, "pipeline", "wire_transfer",
                             rank=self.rank, seq=seq,
                             nbytes=plan.wire_nbytes, dst=dest):
                yield from rt.transfer(self.rank, dest, plan.wire_nbytes,
                                       label="rndv_data")
            data_pkt = Packet(PacketKind.DATA, self.rank, dest, tag, seq,
                              payload=plan.payload, wire_nbytes=plan.wire_nbytes)
            rt.matching_of(dest).deliver_data(data_pkt)
            with trace_scope(self.sim, "pipeline", "sender_release",
                             rank=self.rank, seq=seq):
                yield from engine.sender_release(plan)
            self._count_send("rndv")
            req.complete()
        except BaseException as exc:  # surfaced via the request
            req.fail(exc)

    def _send_pipelined(self, rt, dest: int, tag: int, seq: int, pplan):
        """Stream each partition as its compression kernel completes."""
        engine = rt.engine_of(self.rank)
        total = pplan.header.wire_bytes
        rts = Packet(PacketKind.RTS, self.rank, dest, tag, seq,
                     header=pplan.header, wire_nbytes=total)
        with trace_scope(self.sim, "pipeline", "rts", rank=self.rank,
                         seq=seq, dst=dest):
            yield from rt.control_delay(self.rank, dest, rts.control_bytes())
            cts_ev = rt.matching_of(self.rank).expect_cts(seq)
            rt.matching_of(dest).deliver_envelope(rts)
        yield cts_ev

        def part_sender(i):
            yield from pplan.kernel_run(i)
            comp = pplan.comps[i]
            with trace_scope(self.sim, "pipeline", "wire_transfer",
                             rank=self.rank, seq=seq, part=i,
                             nbytes=comp.nbytes, dst=dest):
                yield from rt.transfer(self.rank, dest, comp.nbytes,
                                       label="pipe_data")
            rt.matching_of(dest).deliver_data(
                Packet(PacketKind.DATA, self.rank, dest, tag, seq,
                       payload=comp.payload, wire_nbytes=comp.nbytes, part=i)
            )

        procs = [
            self.sim.process(part_sender(i), name=f"pipe-send{i}")
            for i in range(pplan.n_parts)
        ]
        yield self.sim.all_of(procs)
        with trace_scope(self.sim, "pipeline", "sender_release",
                         rank=self.rank, seq=seq):
            yield from engine.pipelined_release(pplan)

    def _recv_pipelined(self, rt, pkt, req: Request):
        """Decompress each partition as it lands."""
        engine = rt.engine_of(self.rank)
        header = pkt.header
        with trace_scope(self.sim, "pipeline", "receiver_prepare",
                         rank=self.rank, seq=pkt.seq):
            resources = yield from engine.receiver_prepare(header)
        data_evs = [
            rt.matching_of(self.rank).expect_data(pkt.seq, part=i)
            for i in range(header.n_partitions)
        ]
        cts = Packet(PacketKind.CTS, self.rank, pkt.src, pkt.tag, pkt.seq)
        with trace_scope(self.sim, "pipeline", "cts", rank=self.rank,
                         seq=pkt.seq, dst=pkt.src):
            yield from rt.control_delay(self.rank, pkt.src, cts.control_bytes())
            rt.matching_of(pkt.src).deliver_cts(cts)

        def part_receiver(i):
            data_pkt = yield data_evs[i]
            with trace_scope(self.sim, "pipeline", "receiver_complete",
                             rank=self.rank, seq=pkt.seq, part=i):
                out = yield from engine.pipelined_receive_part(
                    header, i, data_pkt.payload
                )
            return out

        procs = [
            self.sim.process(part_receiver(i), name=f"pipe-recv{i}")
            for i in range(header.n_partitions)
        ]
        results = yield self.sim.all_of(procs)
        parts = [results[i] for i in range(header.n_partitions)]
        yield from engine._release(resources)
        req.complete(np.concatenate(parts))

    def _recv_proc(self, source: int, tag: int, req: Request):
        rt = self._rt
        try:
            yield self.sim.timeout(SETUP_TIME)
            match_ev = rt.matching_of(self.rank).post_recv(source, tag)
            pkt = yield match_ev
            if pkt.kind == PacketKind.EAGER:
                req.complete(pkt.payload)
                return
            if pkt.kind != PacketKind.RTS:
                raise MpiError(f"unexpected envelope {pkt!r}")
            if pkt.header is not None and pkt.header.pipelined:
                yield from self._recv_pipelined(rt, pkt, req)
                return
            engine = rt.engine_of(self.rank)
            with trace_scope(self.sim, "pipeline", "receiver_prepare",
                             rank=self.rank, seq=pkt.seq):
                resources = yield from engine.receiver_prepare(pkt.header)
            data_ev = rt.matching_of(self.rank).expect_data(pkt.seq)
            cts = Packet(PacketKind.CTS, self.rank, pkt.src, tag, pkt.seq)
            with trace_scope(self.sim, "pipeline", "cts", rank=self.rank,
                             seq=pkt.seq, dst=pkt.src):
                yield from rt.control_delay(self.rank, pkt.src, cts.control_bytes())
                rt.matching_of(pkt.src).deliver_cts(cts)
            data_pkt = yield data_ev
            with trace_scope(self.sim, "pipeline", "receiver_complete",
                             rank=self.rank, seq=pkt.seq):
                data = yield from engine.receiver_complete(
                    pkt.header, data_pkt.payload, resources
                )
            req.complete(data)
        except BaseException as exc:
            req.fail(exc)

    # -- collectives --------------------------------------------------------------
    def bcast(self, data, root: int = 0):
        """Binomial-tree broadcast (generator subroutine).  Returns the
        broadcast data on every rank."""
        result = yield from _coll.bcast(self, data, root)
        return result

    def allgather(self, data):
        """Ring allgather; returns a list of every rank's contribution."""
        result = yield from _coll.allgather(self, data)
        return result

    def gather(self, data, root: int = 0):
        result = yield from _coll.gather(self, data, root)
        return result

    def scatter(self, chunks, root: int = 0):
        result = yield from _coll.scatter(self, chunks, root)
        return result

    def reduce(self, data, root: int = 0, op=None):
        result = yield from _coll.reduce(self, data, root, op)
        return result

    def allreduce(self, data, op=None):
        result = yield from _coll.allreduce(self, data, op)
        return result

    def alltoall(self, chunks):
        result = yield from _coll.alltoall(self, chunks)
        return result

    def barrier(self):
        yield from _coll.barrier(self)
