"""Fail-stop rank failures and their detection substrate.

A :class:`FailStopManager` is created by :class:`~repro.mpi.cluster.Cluster`
only when the fault plan carries :attr:`~repro.faults.plan.FaultPlan.
rank_failures` — a zero-failure plan allocates nothing here, keeping
the trace-identity invariant of the fault plane.

The manager owns the liveness ground truth:

* a **dead registry** — ``global rank -> (incarnation, killed_at)``,
  consulted by every survivor's failure detector;
* a per-rank **death event** — a pending simulator event that succeeds
  the instant the rank is killed; blocking protocol waits race it via
  ``any_of`` so a survivor stuck on a dead peer wakes up without
  polling (and without arming per-wait timers that would perturb
  fault-free timelines);
* a **revoked set** of communicator ids — ULFM semantics: a revoked
  communicator stays revoked; recovery derives a fresh communicator
  (fresh id) over the survivors via ``Comm.shrink()``.

Kill mechanics: every simulated process is registered under its
(global) rank.  ``at_time`` kills run off a timebomb process; on
``after_sends`` kills the dying rank raises :class:`RankKilled` in its
own frame (a running process cannot interrupt itself).  Either way all
the rank's other live processes get :class:`~repro.sim.engine.Interrupt`
with a :class:`KillCause` — and are defused, since a dying rank's
protocol helpers unwinding is the *expected* outcome, not a simulation
bug to re-raise at end of run.  The rank's *main* process is wrapped by
the cluster supervisor, which converts the kill into a :data:`KILLED`
sentinel return value so the run completes normally on the survivors.
"""

from __future__ import annotations

__all__ = ["FailStopManager", "KillCause", "RevokeCause", "RankKilled",
           "KILLED", "KilledRank"]


class RankKilled(BaseException):
    """Raised *inside* a rank's own frame when it hits its fail-stop
    trigger mid-send.  Derives from ``BaseException`` so application
    code catching ``Exception`` cannot accidentally survive its own
    death; only the cluster supervisor absorbs it."""

    def __init__(self, rank: int, incarnation: int = 0):
        super().__init__(f"rank {rank} suffered a fail-stop failure")
        self.rank = rank
        self.incarnation = incarnation


class KillCause:
    """``Interrupt.cause`` delivered to every process of a dying rank."""

    __slots__ = ("rank", "incarnation")

    def __init__(self, rank: int, incarnation: int = 0):
        self.rank = rank
        self.incarnation = incarnation

    def __repr__(self) -> str:
        return f"<KillCause rank={self.rank} inc={self.incarnation}>"


class RevokeCause:
    """``Interrupt.cause`` delivered to survivors blocked inside a
    collective on a revoked communicator."""

    __slots__ = ("failed_ranks", "comm_id")

    def __init__(self, failed_ranks: tuple, comm_id: int = 0):
        self.failed_ranks = tuple(failed_ranks)
        self.comm_id = comm_id

    def __repr__(self) -> str:
        return f"<RevokeCause failed={self.failed_ranks} comm={self.comm_id}>"


class KilledRank:
    """Sentinel return value of a killed rank's main process."""

    __slots__ = ("rank", "incarnation", "killed_at")

    def __init__(self, rank: int, incarnation: int, killed_at: float):
        self.rank = rank
        self.incarnation = incarnation
        self.killed_at = killed_at

    def __repr__(self) -> str:
        return (f"<KilledRank rank={self.rank} inc={self.incarnation} "
                f"at t={self.killed_at:.9f}>")


#: class-level marker tests can use with ``isinstance``
KILLED = KilledRank


class FailStopManager:
    """Tracks rank liveness and executes the plan's kill specs."""

    def __init__(self, sim, n_ranks: int, injector=None):
        self.sim = sim
        self.n_ranks = n_ranks
        self.injector = injector
        #: global rank -> (incarnation, killed_at)
        self.dead: dict[int, tuple[int, float]] = {}
        #: global rank -> pending death event (succeeds on kill)
        self._death_events: dict[int, object] = {}
        #: global rank -> pending kill specs (after_sends countdowns)
        self._send_bombs: dict[int, object] = {}
        self._send_counts: dict[int, int] = {}
        #: global rank -> list of live Process objects owned by it
        self._procs: dict[int, list] = {r: [] for r in range(n_ranks)}
        #: (global rank, comm id) -> main Process inside a collective
        self._in_collective: dict[tuple, object] = {}
        #: comm id -> failed ranks it was revoked over (revoked stays revoked)
        self._revoked: dict[int, tuple] = {}
        self._timebombs: list = []

    # -- plan execution -------------------------------------------------
    def install(self, rank_failures) -> None:
        """Arm the plan's kill specs (called once by the cluster)."""
        for spec in rank_failures:
            if spec.rank >= self.n_ranks:
                # Out-of-range kills for this topology are inert: the
                # plan validated shape, the cluster decides scale.
                continue
            if spec.at_time is not None:
                self._timebombs.append(self.sim.process(
                    self._timebomb(spec), name=f"kill-rank{spec.rank}"))
            else:
                self._send_bombs[spec.rank] = spec
                self._send_counts[spec.rank] = 0

    def _timebomb(self, spec):
        yield self.sim.timeout(spec.at_time)
        if spec.rank not in self.dead:
            self.kill(spec.rank, spec.incarnation)

    # -- liveness -------------------------------------------------------
    def is_dead(self, rank: int) -> bool:
        return rank in self.dead

    def death_event(self, rank: int):
        """The pending event that fires when ``rank`` dies.  Callers
        must treat it as shared — never fail or defuse it."""
        ev = self._death_events.get(rank)
        if ev is None:
            ev = self.sim.event()
            self._death_events[rank] = ev
        return ev

    # -- process registry -----------------------------------------------
    def adopt(self, rank: int, proc) -> None:
        """Register a process as belonging to ``rank`` so a kill can
        interrupt it.  Dead ranks spawn nothing."""
        self._procs.setdefault(rank, []).append(proc)

    def enter_collective(self, rank: int, comm_id: int, proc) -> None:
        self._in_collective[(rank, comm_id)] = proc

    def exit_collective(self, rank: int, comm_id: int) -> None:
        self._in_collective.pop((rank, comm_id), None)

    # -- the kill itself ------------------------------------------------
    def note_send(self, rank: int) -> None:
        """Count one message send by ``rank``; trips an ``after_sends``
        bomb by raising :class:`RankKilled` in the caller's own frame."""
        spec = self._send_bombs.get(rank)
        if spec is None or rank in self.dead:
            return
        self._send_counts[rank] += 1
        if self._send_counts[rank] >= spec.after_sends:
            del self._send_bombs[rank]
            self.kill(rank, spec.incarnation, self_inflicted=True)
            raise RankKilled(rank, spec.incarnation)

    def kill(self, rank: int, incarnation: int = 0,
             self_inflicted: bool = False) -> None:
        """Mark ``rank`` dead now and interrupt everything it runs."""
        if rank in self.dead:
            return
        now = self.sim.now
        self.dead[rank] = (incarnation, now)
        if self.injector is not None:
            self.injector.emit("rank_kill", rank=rank,
                               incarnation=incarnation)
        cause = KillCause(rank, incarnation)
        active = self.sim.active_process
        for proc in self._procs.get(rank, ()):
            if proc.is_alive and proc is not active:
                proc.interrupt(cause)
                # A helper with no try/except dies with the Interrupt;
                # that is the kill working as intended, not a stray
                # failure for the simulator to re-raise at end of run.
                proc.defuse()
        ev = self._death_events.get(rank)
        if ev is None:
            ev = self.sim.event()
            self._death_events[rank] = ev
        if not ev.triggered:
            ev.succeed(cause)

    # -- revocation -----------------------------------------------------
    def revoke(self, comm_id: int, failed_ranks: tuple) -> None:
        """Revoke communicator ``comm_id``: interrupt every survivor
        still blocked inside a collective on it.  Idempotent."""
        if comm_id in self._revoked:
            return
        self._revoked[comm_id] = tuple(failed_ranks)
        if self.injector is not None:
            self.injector.emit("comm_revoke", comm_id=comm_id,
                               failed=tuple(failed_ranks))
        cause = RevokeCause(failed_ranks, comm_id)
        active = self.sim.active_process
        for (rank, cid), proc in list(self._in_collective.items()):
            if cid != comm_id or rank in self.dead:
                continue
            if proc.is_alive and proc is not active:
                proc.interrupt(cause)

    def is_revoked(self, comm_id: int) -> bool:
        return comm_id in self._revoked

    def revoked_failures(self, comm_id: int) -> tuple:
        return self._revoked.get(comm_id, ())

    def failed_set(self) -> tuple:
        """The currently-known dead ranks, sorted (agreement input)."""
        return tuple(sorted(self.dead))

    def __repr__(self) -> str:
        return (f"<FailStopManager dead={sorted(self.dead)} "
                f"of {self.n_ranks} ranks>")
