"""Tag matching: posted receives vs. unexpected messages.

MPI matching semantics per receiver rank: a receive matches the first
arrived (FIFO) message whose ``(source, tag)`` agrees, with wildcards
``ANY_SOURCE``/``ANY_TAG``.  Envelope packets (EAGER or RTS) go
through matching; CTS and DATA packets are routed by sequence number
to the operation that is waiting for them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import MpiError
from repro.mpi.message import Packet
from repro.sim import Event, Simulator

__all__ = ["MatchingEngine", "ANY"]

ANY = -1


@dataclass
class _PostedRecv:
    source: int
    tag: int
    event: Event


def _matches(post_src: int, post_tag: int, pkt: Packet) -> bool:
    return (post_src == ANY or post_src == pkt.src) and (
        post_tag == ANY or post_tag == pkt.tag
    )


class MatchingEngine:
    """Per-rank matching state."""

    def __init__(self, sim: Simulator, rank: int, on_deliver=None):
        self.sim = sim
        self.rank = rank
        self._posted: deque[_PostedRecv] = deque()
        self._unexpected: deque[Packet] = deque()
        self._cts_waiters: dict[int, Event] = {}
        self._data_waiters: dict[int, Event] = {}
        self._early: dict[tuple[str, int], Packet] = {}
        #: optional ``fn(pkt)`` observer invoked on every delivered
        #: packet — the failure detector's last-heard bookkeeping.
        self._on_deliver = on_deliver

    def _metrics(self):
        tracer = self.sim.tracer
        return tracer.metrics if tracer is not None else None

    def _note_wildcard_match(self, post_src: int, post_tag: int,
                             pkt: Packet) -> None:
        """Record an instantaneous ``wildcard_match`` span when a
        wildcard-source post matched — the anchor the happens-before
        message-race detector keys on.  Exact-source matches are fully
        determined by MPI ordering and are not recorded."""
        if post_src != ANY:
            return
        tracer = self.sim.tracer
        if tracer is None:
            return
        now = self.sim.now
        tracer.span(now, now, "matching", "wildcard_match", rank=self.rank,
                    track="main", seq=pkt.seq, src=pkt.src, tag=pkt.tag,
                    posted_tag=post_tag)

    # -- envelope path ------------------------------------------------------
    def post_recv(self, source: int, tag: int) -> Event:
        """Post a receive; the returned event fires with the matching
        envelope packet (EAGER or RTS)."""
        for i, pkt in enumerate(self._unexpected):
            if _matches(source, tag, pkt):
                del self._unexpected[i]
                self._note_wildcard_match(source, tag, pkt)
                ev = self.sim.event()
                ev.succeed(pkt)
                return ev
        ev = self.sim.event()
        self._posted.append(_PostedRecv(source, tag, ev))
        m = self._metrics()
        if m is not None:
            m.observe("matching.posted_depth", len(self._posted), rank=self.rank)
        return ev

    def deliver_envelope(self, pkt: Packet) -> None:
        """An EAGER or RTS packet arrived."""
        if self._on_deliver is not None:
            self._on_deliver(pkt)
        for i, post in enumerate(self._posted):
            if _matches(post.source, post.tag, pkt):
                del self._posted[i]
                self._note_wildcard_match(post.source, post.tag, pkt)
                post.event.succeed(pkt)
                return
        self._unexpected.append(pkt)
        m = self._metrics()
        if m is not None:
            m.inc("matching.unexpected", rank=self.rank)
            m.observe("matching.unexpected_depth", len(self._unexpected),
                      rank=self.rank)

    # -- seq-routed path ------------------------------------------------------
    def expect_cts(self, seq: int) -> Event:
        return self._expect("cts", (seq, 0), self._cts_waiters)

    def expect_data(self, seq: int, part: int = 0, attempt: int = 0) -> Event:
        """Wait for a DATA packet.  ``attempt`` keys retransmissions so
        a late original delivery cannot satisfy a retry's waiter."""
        return self._expect("data", (seq, part, attempt), self._data_waiters)

    def _expect(self, kind: str, key: tuple, table: dict[tuple, Event]) -> Event:
        early = self._early.pop((kind, key), None)
        ev = self.sim.event()
        if early is not None:
            ev.succeed(early)
            return ev
        if key in table:
            raise MpiError(f"duplicate {kind} waiter for {key}")
        table[key] = ev
        return ev

    def deliver_cts(self, pkt: Packet) -> None:
        if self._on_deliver is not None:
            self._on_deliver(pkt)
        self._route("cts", (pkt.seq, 0), pkt, self._cts_waiters)

    def deliver_data(self, pkt: Packet) -> None:
        if self._on_deliver is not None:
            self._on_deliver(pkt)
        self._route("data", (pkt.seq, pkt.part, pkt.attempt), pkt,
                    self._data_waiters)

    def _route(self, kind: str, key: tuple, pkt: Packet,
               table: dict[tuple, Event]) -> None:
        ev = table.pop(key, None)
        if ev is not None:
            ev.succeed(pkt)
        else:
            self._early[(kind, key)] = pkt

    # -- diagnostics ------------------------------------------------------------
    @property
    def pending_recvs(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    @property
    def idle(self) -> bool:
        """True when no receive, envelope, or in-flight handshake is
        outstanding on this rank."""
        return not (self._posted or self._unexpected or self._cts_waiters
                    or self._data_waiters or self._early)

    def outstanding_seqs(self) -> dict[str, list]:
        """Summary of in-flight handshake waiters, for liveness triage."""
        return {
            "cts": sorted(k[0] for k in self._cts_waiters),
            "data": sorted(self._data_waiters),
        }

    def diagnostics(self, last_heard=None) -> str:
        """Multi-line dump of the matching state, used to explain hangs
        (:class:`~repro.errors.DeadlockError`) and rendezvous timeouts.

        ``last_heard`` optionally maps ``peer rank -> sim time`` of the
        last packet this rank received from that peer (the failure
        detector's table), so a dead peer is visible in the dump.
        """
        def name(v: int) -> str:
            return "ANY" if v == ANY else str(v)

        lines = []
        for post in self._posted:
            lines.append(
                f"  posted recv: source={name(post.source)} tag={name(post.tag)}")
        for pkt in self._unexpected:
            lines.append(f"  unexpected envelope: {pkt!r}")
        if self._cts_waiters:
            lines.append(
                f"  outstanding CTS waits for seq(s) "
                f"{sorted(k[0] for k in self._cts_waiters)}")
        if self._data_waiters:
            lines.append(
                "  outstanding DATA waits for (seq, part, attempt) "
                f"{sorted(self._data_waiters)}")
        if self._early:
            lines.append(
                f"  early packets never claimed: {sorted(self._early)}")
        if not lines:
            lines.append("  idle (no posted receives or pending packets)")
        if last_heard:
            for peer in sorted(last_heard):
                t = last_heard[peer]
                heard = "never" if t is None else f"t={t:.9f}"
                lines.append(f"  last heard from rank {peer}: {heard}")
        return f"rank {self.rank}:\n" + "\n".join(lines)
