"""Protocol packets.

Four packet kinds implement the two MVAPICH2 protocols:

* ``EAGER`` — header + payload in one shot, for small messages.
* ``RTS`` — Request-To-Send, carrying the piggybacked compression
  header (paper Figure 3: "we piggyback the compression-related header
  information into the RTS packet to avoid extra message exchanges").
* ``CTS`` — Clear-To-Send, from receiver once its buffers are ready.
* ``DATA`` — the (possibly compressed) payload transfer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.header import CompressionHeader

__all__ = ["PacketKind", "Packet", "CONTROL_PACKET_BYTES"]

#: base size of a control packet (RTS/CTS) before the piggybacked header
CONTROL_PACKET_BYTES = 64


class PacketKind(enum.Enum):
    EAGER = "eager"
    RTS = "rts"
    CTS = "cts"
    DATA = "data"


@dataclass
class Packet:
    """One protocol message between two ranks."""

    kind: PacketKind
    src: int
    dst: int
    tag: int
    seq: int
    header: Optional[CompressionHeader] = None
    payload: Any = None
    wire_nbytes: int = 0
    #: partition index for pipelined DATA packets (0 otherwise)
    part: int = 0
    #: CRC32 the delivered (decompressed) data must match, carried on
    #: RTS/DATA packets when integrity checking is on.  Rides existing
    #: control fields, so it does not change control_bytes()/wire time.
    crc: Optional[int] = None
    #: retransmission attempt this DATA packet answers (0 = original)
    attempt: int = 0
    #: CRC32 of the wire bytes themselves (the compressed image), used
    #: by keep-compressed relays to verify their own hop *without*
    #: decompressing.  Rides the same control fields as ``crc``.
    wire_crc: Optional[int] = None
    #: for relayed (keep-compressed) hops: the seq assigned when the
    #: wire image was originally packed at the root/leaf
    origin_seq: Optional[int] = None

    def control_bytes(self) -> int:
        """Bytes this packet occupies as a control message."""
        extra = self.header.nbytes if self.header is not None else 0
        return CONTROL_PACKET_BYTES + extra

    def __repr__(self) -> str:
        return (
            f"<Packet {self.kind.value} {self.src}->{self.dst} "
            f"tag={self.tag} seq={self.seq}>"
        )
