"""Nonblocking communication requests.

``isend``/``irecv`` return a :class:`Request`; ``yield from
request.wait()`` blocks the calling rank until completion.  Multiple
processes may wait on the same request.
"""

from __future__ import annotations

from typing import Any

from repro.errors import MpiError
from repro.sim import Simulator

__all__ = ["Request", "waitall"]


class Request:
    """Completion handle for a nonblocking operation."""

    def __init__(self, sim: Simulator, kind: str = ""):
        self.sim = sim
        self.kind = kind
        self.data: Any = None
        self._done = False
        self._failed: BaseException | None = None
        self._waiters: list = []

    @property
    def done(self) -> bool:
        return self._done

    def complete(self, data: Any = None) -> None:
        if self._done:
            raise MpiError(f"request {self.kind!r} completed twice")
        self._done = True
        self.data = data
        for ev in self._waiters:
            ev.succeed(data)
        self._waiters.clear()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise MpiError(f"request {self.kind!r} failed after completion")
        self._done = True
        self._failed = exc
        for ev in self._waiters:
            ev.fail(exc)
            ev.defuse()
        self._waiters.clear()

    def test(self) -> bool:
        """Nonblocking completion check."""
        if self._failed is not None:
            raise self._failed
        return self._done

    def wait(self):
        """Generator subroutine: block until complete, return the data
        (received array for irecv, None for isend)."""
        if self._failed is not None:
            raise self._failed
        if self._done:
            return self.data
        ev = self.sim.event()
        self._waiters.append(ev)
        result = yield ev
        return result

    def completion_event(self):
        """An event that triggers when (or if already) the request
        completes — raced against peer-death events by the failure
        detector, which needs ``any_of`` composition rather than the
        blocking :meth:`wait`."""
        ev = self.sim.event()
        if self._done:
            if self._failed is not None:
                ev.fail(self._failed)
                ev.defuse()
            else:
                ev.succeed(self.data)
        else:
            self._waiters.append(ev)
        return ev


def waitall(requests):
    """Generator subroutine: wait on every request, return their data
    in order."""
    out = []
    for r in requests:
        val = yield from r.wait()
        out.append(val)
    return out
