"""Rendezvous resilience: retry policy, timeouts, and circuit breakers.

The protocol layer (:mod:`repro.mpi.comm`) consults a
:class:`ResilienceConfig` for how hard to fight back when the fault
plane (:mod:`repro.faults`) misbehaves:

* **Integrity** — every rendezvous message carries a CRC32 of the data
  the receiver should end up with (the clean decompression round-trip
  for compressed sends, the raw bytes otherwise), verified after
  decompression.
* **Retransmission** — on a CRC mismatch, a decode failure, or a data
  timeout the receiver NACKs and the sender retransmits, with
  exponential backoff + jitter drawn from a run-seeded RNG on the
  simulated clock.
* **Timeouts** — optional rendezvous handshake and data-delivery
  timeouts convert silent stalls into a diagnosable
  :class:`~repro.errors.RendezvousTimeoutError`.  They default to off so
  an unmatched send still surfaces as the classic
  :class:`~repro.errors.DeadlockError`.
* **Circuit breaker** — per ``(sender, receiver)`` pair, N consecutive
  compressor/integrity failures trip the breaker and sends fall back to
  uncompressed wire payloads (generalizing the CR >= 1 fallback); after a
  cool-down the breaker half-opens and lets a trial compression
  through.

Everything here is host-side bookkeeping except the backoff sleeps —
with no faults firing, none of it consumes simulated time or emits
spans, which is what keeps a zero-rate fault plan trace-identical to no
fault plane at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

__all__ = ["ResilienceConfig", "CircuitBreaker"]

#: generous defaults (simulated seconds), only enabled when a plan can
#: actually lose data.  The data timeout is per delivery attempt; the
#: handshake timeout must cover a receiver still draining a *backlog*
#: of earlier recoveries (each up to ``max_retries`` data timeouts), so
#: it sits orders of magnitude higher — on a microsecond-scale fabric,
#: ten simulated seconds without a CTS means the peer is gone, and
#: simulated seconds cost nothing to wait through.
DEFAULT_HANDSHAKE_TIMEOUT = 10.0
DEFAULT_DATA_TIMEOUT = 0.25
#: grace period between a peer's death event firing and the detector
#: declaring it (models a heartbeat round-trip; simulated seconds)
DEFAULT_DETECT_TIMEOUT = 1e-3


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient rendezvous pipeline."""

    #: stamp + verify CRC32 integrity checksums on rendezvous messages
    integrity: bool = True
    #: retransmissions allowed per message before giving up
    max_retries: int = 8
    #: exponential backoff: ``base * factor**(attempt-1)``, capped
    backoff_base: float = 20e-6
    backoff_factor: float = 2.0
    backoff_max: float = 5e-3
    #: uniform jitter fraction added on top of the backoff (0..1)
    jitter: float = 0.25
    #: RTS->CTS handshake timeout (None = wait forever)
    handshake_timeout: Optional[float] = None
    #: CTS->DATA delivery timeout (None = wait forever)
    data_timeout: Optional[float] = None
    #: grace period before declaring a dead peer failed (fail-stop
    #: detection latency; None = failure detector disabled)
    detect_timeout: Optional[float] = None
    #: consecutive failures that trip a peer's compression breaker
    #: (0 disables the breaker)
    breaker_threshold: int = 3
    #: simulated seconds an open breaker waits before half-opening
    breaker_cooldown: float = 2e-3
    #: seed of the jitter RNG
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base <= 0 or self.backoff_factor < 1.0 or self.backoff_max <= 0:
            raise ConfigError("backoff parameters must be positive (factor >= 1)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        for name in ("handshake_timeout", "data_timeout", "detect_timeout"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ConfigError(f"{name} must be positive or None, got {v}")
        if self.breaker_threshold < 0 or self.breaker_cooldown < 0:
            raise ConfigError("breaker parameters must be >= 0")

    @classmethod
    def for_plan(cls, plan) -> "ResilienceConfig":
        """The policy matching a fault plan: timeouts are armed only
        when the plan can actually lose data, so fault-free (and
        zero-rate) runs keep their exact deadlock semantics."""
        if plan is None or plan.is_zero:
            return cls()
        detect = DEFAULT_DETECT_TIMEOUT if plan.has_rank_failures else None
        if not plan.can_lose_data:
            return cls(detect_timeout=detect)
        return cls(handshake_timeout=DEFAULT_HANDSHAKE_TIMEOUT,
                   data_timeout=DEFAULT_DATA_TIMEOUT,
                   detect_timeout=detect)

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retransmission ``attempt`` (1-based), with
        jitter drawn from the run's dedicated RNG."""
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))
        return base * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Per-peer compression circuit breaker (CLOSED/OPEN/HALF_OPEN).

    CLOSED counts consecutive failures; at ``threshold`` it OPENs and
    :meth:`allow` vetoes compression until ``cooldown`` simulated
    seconds pass, then HALF_OPEN admits a trial — success closes the
    breaker, failure re-opens it (and restarts the cool-down).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int, cooldown: float, on_transition=None):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._on_transition = on_transition

    def _move(self, state: str, now: float) -> None:
        if state != self.state:
            old, self.state = self.state, state
            if self._on_transition is not None:
                self._on_transition(old, state, now)

    def allow(self, now: float) -> bool:
        """May the next send attempt compression?"""
        if self.threshold <= 0:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cooldown:
                self._move(self.HALF_OPEN, now)
                return True
            return False
        return True  # CLOSED or HALF_OPEN (trial in flight)

    def record_failure(self, now: float) -> None:
        if self.threshold <= 0:
            return
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.threshold:
            self.opened_at = now
            self._move(self.OPEN, now)

    def record_success(self, now: float) -> None:
        self.failures = 0
        if self.state != self.CLOSED:
            self._move(self.CLOSED, now)

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} failures={self.failures}>"
