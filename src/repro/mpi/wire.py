"""Keep-compressed wire images for compression-aware collectives.

The naive collective path decompresses and recompresses the payload at
every hop of the algorithm's communication graph.  gZCCL/ZCCL-style
keep-compressed forwarding packs the payload *once* at the originating
rank, relays the resulting :class:`WireImage` — header, compressed
bytes, and both CRC stamps — across intermediate ranks untouched, and
decompresses *once* at each rank that actually consumes the data.

Two CRCs travel with the image:

``crc``
    CRC32 of the data the final consumer must reconstruct (the same
    post-decompression stamp point-to-point rendezvous uses).
``wire_crc``
    CRC32 of the compressed wire bytes themselves, so an intermediate
    relay can verify its own hop — and NACK its immediate upstream for
    a retransmission — without paying a decompression kernel.

``origin_seq`` is the protocol sequence number assigned when the image
was packed; every relayed hop carries it in its trace spans so the
trace sanitizer can tie the hop back to the originating compression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.header import CompressionHeader

__all__ = ["WireImage"]


@dataclass
class WireImage:
    """One packed message as it travels between ranks."""

    header: CompressionHeader
    #: bytes that go on the wire: a uint8 array for compressed images,
    #: the raw user array when the pack fell back to uncompressed
    payload: Any
    wire_nbytes: int
    #: CRC32 of the decoded (post-decompression) data, or ``None`` when
    #: integrity checking is off
    crc: Optional[int] = None
    #: CRC32 of ``payload``'s bytes as they ride the wire
    wire_crc: Optional[int] = None
    #: seq assigned at pack time at the originating rank
    origin_seq: int = 0

    @property
    def compressed(self) -> bool:
        return self.header.compressed

    def __repr__(self) -> str:
        state = "compressed" if self.compressed else "raw"
        return (f"<WireImage {state} {self.wire_nbytes}B "
                f"origin_seq={self.origin_seq}>")
