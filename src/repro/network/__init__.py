"""Interconnect models and cluster topologies.

Links are latency+bandwidth pipes with per-direction contention;
topologies wire GPUs inside nodes (NVLink or PCIe) and nodes to each
other (InfiniBand).  The disparity these models encode — ~75 GB/s
NVLink vs. 12.5 GB/s IB EDR vs. 6.8 GB/s IB FDR — is the paper's
motivating Figure 1.
"""

from repro.network.links import Link, LinkSpec
from repro.network.presets import (
    IB_EDR,
    IB_FDR,
    IB_HDR,
    NVLINK2,
    NVLINK3,
    PCIE3_X16,
    PCIE4_X8,
    XBUS,
    MachinePreset,
    machine_preset,
)
from repro.network.topology import Topology

__all__ = [
    "Link",
    "LinkSpec",
    "Topology",
    "MachinePreset",
    "machine_preset",
    "IB_EDR",
    "IB_FDR",
    "IB_HDR",
    "NVLINK2",
    "NVLINK3",
    "PCIE3_X16",
    "PCIE4_X8",
    "XBUS",
]
