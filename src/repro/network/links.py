"""Point-to-point link model.

A link is a unidirectional latency+bandwidth pipe.  Transfers hold the
link for their serialization time, so concurrent messages through the
same link (e.g. several ranks behind one InfiniBand HCA) queue — the
contention that shapes collective and application performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, NetworkError
from repro.sim import Resource, Simulator

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Static link description.

    Attributes
    ----------
    name:
        Human-readable technology name ("IB-EDR", "NVLink-3", ...).
    latency:
        One-way propagation + switching latency (seconds).
    bandwidth:
        Peak unidirectional bandwidth (bytes/second).
    lanes:
        Number of transfers that can be in flight concurrently without
        queueing (each gets ``bandwidth / lanes``... kept at 1 for the
        serializing model used throughout the paper's fabrics).
    """

    name: str
    latency: float
    bandwidth: float
    lanes: int = 1

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ConfigError(
                f"link {self.name!r}: bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ConfigError(
                f"link {self.name!r}: latency must be >= 0, got {self.latency}")
        if self.lanes < 1:
            raise ConfigError(
                f"link {self.name!r}: lanes must be >= 1, got {self.lanes}")

    def serialization_time(self, nbytes: int) -> float:
        """Time for ``nbytes`` to cross the wire, excluding queueing."""
        return self.latency + nbytes / self.bandwidth


class Link:
    """A live (contended) instance of a :class:`LinkSpec`."""

    def __init__(self, sim: Simulator, spec: LinkSpec, label: str = ""):
        self.sim = sim
        self.spec = spec
        self.label = label or spec.name
        self._res = Resource(sim, capacity=spec.lanes)

    @property
    def queued(self) -> int:
        return self._res.queued

    def transfer(self, nbytes: int, label: str = ""):
        """Move ``nbytes`` across the link (generator subroutine).

        Queues behind in-flight transfers, then holds the link for the
        serialization time.
        """
        if nbytes < 0:
            raise NetworkError(f"negative transfer size: {nbytes}")
        req = self._res.request()
        t0 = self.sim.now
        try:
            yield req
            t0 = self.sim.now
            duration = self.spec.serialization_time(nbytes)
            faults = self.sim.faults
            if faults is not None:
                # Flap outages and degradation stretch the time the
                # transfer holds the link (queueing everything behind it).
                duration += faults.extra_wire_delay((self.label,), duration)
            yield self.sim.timeout(duration)
        finally:
            # cancel() == release() once the slot was granted, and also
            # covers unwinding while still queued (an interrupted
            # process must not strand a slot other ranks share).
            self._res.cancel(req)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.span(
                t0, self.sim.now, "network", label or self.label,
                track=f"link:{self.label}",
                nbytes=nbytes, link=self.label, links=(self.label,),
            )
            m = tracer.metrics
            m.inc("wire.bytes", nbytes, link=self.label)
            m.inc("wire.transfers", 1, link=self.label)
            m.inc("wire.busy_seconds", self.sim.now - t0, link=self.label)

    def __repr__(self) -> str:
        return f"<Link {self.label} {self.spec.bandwidth / 1e9:.1f}GB/s>"
