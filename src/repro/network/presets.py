"""Link and machine presets.

Bandwidths follow the paper's Figure 1 and Section VI testbed
descriptions; latencies are typical published values for the
technologies.

==============  ==========  =====================================
link            bandwidth   source
==============  ==========  =====================================
IB EDR          12.5 GB/s   paper Sec. VI ("IB-EDR one way 100Gb/s")
IB FDR           6.8 GB/s   56 Gb/s signalling, Frontera Liquid
IB HDR          25.0 GB/s   paper Sec. I
NVLink 3-lane   75.0 GB/s   paper Fig. 1 (Sierra/Longhorn/Lassen)
X-Bus           64.0 GB/s   paper Fig. 1
PCIe3 x16       16.0 GB/s   paper Fig. 1 (8-lane Gen4 = 16 GB/s);
                            ~12 GB/s effective used for payloads
==============  ==========  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.spec import RTX5000, V100, DeviceSpec
from repro.network.links import LinkSpec
from repro.utils.units import GBps, us

__all__ = [
    "IB_EDR", "IB_FDR", "IB_HDR", "IB_HDR_TRUNK", "DF_GLOBAL", "NVLINK2",
    "NVLINK3", "PCIE3_X16", "PCIE4_X8",
    "XBUS", "MachinePreset", "machine_preset", "MACHINES",
]

IB_EDR = LinkSpec(name="IB-EDR", latency=us(1.5), bandwidth=GBps(12.5))
IB_FDR = LinkSpec(name="IB-FDR", latency=us(1.9), bandwidth=GBps(6.8))
IB_HDR = LinkSpec(name="IB-HDR", latency=us(1.3), bandwidth=GBps(25.0))
NVLINK2 = LinkSpec(name="NVLink-2lane", latency=us(2.0), bandwidth=GBps(50.0))
NVLINK3 = LinkSpec(name="NVLink-3lane", latency=us(2.0), bandwidth=GBps(75.0))
PCIE3_X16 = LinkSpec(name="PCIe3-x16", latency=us(4.0), bandwidth=GBps(12.0))
PCIE4_X8 = LinkSpec(name="PCIe4-x8", latency=us(3.0), bandwidth=GBps(16.0))
XBUS = LinkSpec(name="X-Bus", latency=us(1.0), bandwidth=GBps(64.0))

#: Fat-tree leaf->spine trunk: a 4x IB-HDR LAG per group switch, so 16
#: nodes share 100 GB/s of uplink (2:1 taper vs 16x25 GB/s of HCAs).
IB_HDR_TRUNK = LinkSpec(name="IB-HDR-trunk", latency=us(1.1), bandwidth=GBps(100.0))

#: Dragonfly optical global link between two groups (2x HDR per ordered
#: pair; longer flight time than an electrical in-group hop).
DF_GLOBAL = LinkSpec(name="DF-global", latency=us(2.6), bandwidth=GBps(50.0))


@dataclass(frozen=True)
class MachinePreset:
    """One of the paper's testbeds.

    Attributes
    ----------
    device:
        GPU model installed per node.
    intra_link:
        GPU<->GPU link within a node.
    intra_shared:
        True when the intra-node fabric is a shared bus (PCIe through
        the host bridge); False for dedicated point-to-point NVLink.
    inter_link:
        Per-node InfiniBand uplink (the inter-node bottleneck).
    max_gpus_per_node:
        Physical GPU count per node.
    topology_kind:
        ``"flat"`` (single ideal switch — all the paper's testbeds),
        ``"fat-tree"`` (2-level: per-group leaf switches under a
        spine), or ``"dragonfly"`` (per-group routers, a dedicated
        global link per ordered group pair).
    nodes_per_group:
        Nodes behind one leaf switch / group router; 0 on flat presets.
    group_link:
        Trunk (fat-tree) or global (dragonfly) link spec; None on flat
        presets.
    """

    name: str
    device: DeviceSpec
    intra_link: LinkSpec
    intra_shared: bool
    inter_link: LinkSpec
    max_gpus_per_node: int
    topology_kind: str = "flat"
    nodes_per_group: int = 0
    group_link: Optional[LinkSpec] = None

    def description(self) -> str:
        base = (
            f"{self.name}: {self.max_gpus_per_node}x {self.device.name}/node, "
            f"intra {self.intra_link.name} ({self.intra_link.bandwidth / 1e9:.1f} GB/s), "
            f"inter {self.inter_link.name} ({self.inter_link.bandwidth / 1e9:.1f} GB/s)"
        )
        if self.topology_kind != "flat":
            base += (
                f", {self.topology_kind} ({self.nodes_per_group} nodes/group, "
                f"{self.group_link.name} {self.group_link.bandwidth / 1e9:.1f} GB/s)"
            )
        return base


#: TACC Longhorn: 4x V100 per POWER9 node, NVLink, IB EDR.
LONGHORN = MachinePreset(
    name="longhorn", device=V100, intra_link=NVLINK3, intra_shared=False,
    inter_link=IB_EDR, max_gpus_per_node=4,
)

#: TACC Frontera Liquid subsystem: 4x Quadro RTX 5000, PCIe, IB FDR.
FRONTERA_LIQUID = MachinePreset(
    name="frontera-liquid", device=RTX5000, intra_link=PCIE3_X16, intra_shared=True,
    inter_link=IB_FDR, max_gpus_per_node=4,
)

#: LLNL Lassen: 4x V100 per POWER9 node, NVLink, IB EDR.
LASSEN = MachinePreset(
    name="lassen", device=V100, intra_link=NVLINK3, intra_shared=False,
    inter_link=IB_EDR, max_gpus_per_node=4,
)

#: OSU RI2: 1x V100 per Broadwell node over the PCIe host bridge, IB EDR.
RI2 = MachinePreset(
    name="ri2", device=V100, intra_link=PCIE3_X16, intra_shared=True,
    inter_link=IB_EDR, max_gpus_per_node=1,
)

#: LLNL Sierra (Fig. 1): 4x V100, 3-lane NVLink, IB EDR.
SIERRA = MachinePreset(
    name="sierra", device=V100, intra_link=NVLINK3, intra_shared=False,
    inter_link=IB_EDR, max_gpus_per_node=4,
)

#: Hypothetical 2-level fat-tree at Lassen-class node specs: 16 nodes
#: per leaf switch, 4x HDR trunk per leaf to the spine.  The preset
#: that makes 1024-rank collectives realistic (256 nodes = 16 groups).
FAT_TREE = MachinePreset(
    name="fat-tree", device=V100, intra_link=NVLINK3, intra_shared=False,
    inter_link=IB_HDR, max_gpus_per_node=4,
    topology_kind="fat-tree", nodes_per_group=16, group_link=IB_HDR_TRUNK,
)

#: Hypothetical dragonfly at the same node specs: 8-node groups, one
#: optical global link per ordered group pair (1024 nodes = 128
#: groups for the 4096-rank weak-scaling point).
DRAGONFLY = MachinePreset(
    name="dragonfly", device=V100, intra_link=NVLINK3, intra_shared=False,
    inter_link=IB_HDR, max_gpus_per_node=4,
    topology_kind="dragonfly", nodes_per_group=8, group_link=DF_GLOBAL,
)

MACHINES = {
    "longhorn": LONGHORN,
    "frontera-liquid": FRONTERA_LIQUID,
    "lassen": LASSEN,
    "ri2": RI2,
    "sierra": SIERRA,
    "fat-tree": FAT_TREE,
    "dragonfly": DRAGONFLY,
}


def machine_preset(name: str) -> MachinePreset:
    """Look up a machine preset by case-insensitive name."""
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
