"""Cluster topology: GPUs, nodes, groups and the links between them.

A :class:`Topology` instantiates live :class:`~repro.network.links.Link`
objects from a :class:`~repro.network.presets.MachinePreset`:

* intra-node — either dedicated per-direction GPU pair links (NVLink)
  or a shared per-node, per-direction bus (PCIe host bridge);
* inter-node — one uplink and one downlink per node to its switch, so
  the node's HCA is the contention point, matching the single-HCA
  testbeds of the paper;
* inter-group (hierarchical presets only) — a 2-level **fat-tree**
  routes cross-group traffic through per-group trunk links to a spine
  switch, while a **dragonfly** connects every ordered group pair with
  a dedicated global link.  Flat presets keep the single ideal
  (full-bisection) switch.

``transfer(src, dst, nbytes)`` resolves the route and moves the bytes,
charging end-to-end latency plus serialization at the bottleneck while
holding every traversed link.  A networkx graph of the topology is
available for inspection and for tooling built on top.

Route resolution is cached: ``node_of`` is a precomputed array lookup
and ``route()``/``path_*()`` memoize per ``(src, dst)`` pair, so the
per-message cost at 1k+ ranks is two dict probes instead of repeated
division and list building.  Caches are bounded and cleared wholesale
on overflow, which keeps behaviour deterministic.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import NetworkError
from repro.faults.injector import DROPPED
from repro.network.links import Link
from repro.network.presets import MachinePreset
from repro.sim import Simulator

__all__ = ["Topology"]

# Bound on the memoization caches; on overflow the cache is cleared
# wholesale (deterministic, O(1) amortized) rather than LRU-evicted.
_CACHE_MAX = 1 << 17


class Topology:
    """Physical layout of a simulated GPU cluster."""

    def __init__(self, sim: Simulator, preset: MachinePreset, nodes: int, gpus_per_node: int):
        if nodes < 1:
            raise NetworkError(f"need >= 1 node, got {nodes}")
        if not (1 <= gpus_per_node <= preset.max_gpus_per_node):
            raise NetworkError(
                f"{preset.name} supports 1..{preset.max_gpus_per_node} GPUs/node, "
                f"got {gpus_per_node}"
            )
        self.sim = sim
        self.preset = preset
        self.nodes = nodes
        self.gpus_per_node = gpus_per_node

        # Precomputed GPU -> node map: a vectorized numpy array for
        # bulk consumers plus its plain-list view, which is faster for
        # the scalar lookups the hot path makes.
        self.node_of_array = np.arange(nodes * gpus_per_node) // gpus_per_node
        self._node_of = self.node_of_array.tolist()

        # Hierarchy (empty for flat presets).
        self.kind = preset.topology_kind
        if self.kind not in ("flat", "fat-tree", "dragonfly"):
            raise NetworkError(f"unknown topology kind {self.kind!r}")
        if self.kind != "flat":
            if preset.nodes_per_group < 1 or preset.group_link is None:
                raise NetworkError(
                    f"{preset.name}: hierarchical preset needs nodes_per_group >= 1 "
                    "and a group_link"
                )
            self.nodes_per_group = preset.nodes_per_group
            self.n_groups = -(-nodes // preset.nodes_per_group)
        else:
            self.nodes_per_group = nodes
            self.n_groups = 1

        # Inter-node: per-node uplink/downlink to its (leaf) switch.
        self._uplink = [Link(sim, preset.inter_link, f"node{n}-up") for n in range(nodes)]
        self._downlink = [Link(sim, preset.inter_link, f"node{n}-down") for n in range(nodes)]

        # Inter-group fabric.
        if self.kind == "fat-tree":
            # Per-group trunk to the spine, one link per direction.
            self._group_up = [Link(sim, preset.group_link, f"group{g}-up")
                              for g in range(self.n_groups)]
            self._group_down = [Link(sim, preset.group_link, f"group{g}-down")
                                for g in range(self.n_groups)]
        self._global: dict = {}  # dragonfly ordered group pair -> Link, lazy

        # Intra-node fabric.
        self._intra: dict = {}
        if preset.intra_shared:
            # One shared bus per node per direction.
            for n in range(nodes):
                self._intra[n] = Link(sim, preset.intra_link, f"node{n}-{preset.intra_link.name}")
        else:
            # Dedicated ordered-pair links, created lazily.
            pass

        self._route_cache: dict = {}
        self._path_cache: dict = {}

    # -- structure ---------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    def node_of(self, gpu: int) -> int:
        if not (0 <= gpu < self.n_gpus):
            raise NetworkError(f"gpu {gpu} out of range (have {self.n_gpus})")
        return self._node_of[gpu]

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def group_of(self, node: int) -> int:
        """The group a node belongs to (always 0 on flat presets)."""
        return node // self.nodes_per_group

    def _intra_link(self, src: int, dst: int) -> Link:
        preset = self.preset
        if preset.intra_shared:
            return self._intra[self.node_of(src)]
        key = (src, dst)
        if key not in self._intra:
            self._intra[key] = Link(
                self.sim, preset.intra_link, f"{preset.intra_link.name}:{src}->{dst}"
            )
        return self._intra[key]

    def _global_link(self, src_group: int, dst_group: int) -> Link:
        """Dragonfly per-ordered-group-pair global link, created lazily
        (a 128-group machine has 16k ordered pairs; a run touches few)."""
        key = (src_group, dst_group)
        link = self._global.get(key)
        if link is None:
            link = self._global[key] = Link(
                self.sim, self.preset.group_link, f"g{src_group}->g{dst_group}"
            )
        return link

    def _compute_route(self, src: int, dst: int) -> list[Link]:
        """Uncached route resolution; ``route()`` memoizes this."""
        if src == dst:
            return []
        if self.same_node(src, dst):
            return [self._intra_link(src, dst)]
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        if self.kind != "flat":
            src_group = src_node // self.nodes_per_group
            dst_group = dst_node // self.nodes_per_group
            if src_group != dst_group:
                if self.kind == "fat-tree":
                    return [self._uplink[src_node],
                            self._group_up[src_group], self._group_down[dst_group],
                            self._downlink[dst_node]]
                return [self._uplink[src_node],
                        self._global_link(src_group, dst_group),
                        self._downlink[dst_node]]
        return [self._uplink[src_node], self._downlink[dst_node]]

    def route(self, src: int, dst: int) -> list[Link]:
        """The ordered links a message from ``src`` to ``dst`` crosses.

        Memoized per (src, dst); callers must treat the list as
        read-only."""
        key = (src, dst)
        links = self._route_cache.get(key)
        if links is None:
            if len(self._route_cache) >= _CACHE_MAX:
                self._route_cache.clear()
            links = self._route_cache[key] = self._compute_route(src, dst)
        return links

    def _path(self, src: int, dst: int) -> tuple[float, float]:
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            links = self.route(src, dst)
            if links:
                bw = min(l.spec.bandwidth for l in links)
                lat = sum(l.spec.latency for l in links)
            else:
                bw, lat = float("inf"), 0.0
            if len(self._path_cache) >= _CACHE_MAX:
                self._path_cache.clear()
            cached = self._path_cache[key] = (bw, lat)
        return cached

    def path_bandwidth(self, src: int, dst: int) -> float:
        return self._path(src, dst)[0]

    def path_latency(self, src: int, dst: int) -> float:
        return self._path(src, dst)[1]

    # -- data movement ------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int, label: str = "",
                 payload=None):
        """Move ``nbytes`` from GPU ``src`` to GPU ``dst`` (generator
        subroutine).

        Same-GPU transfers are free; same-node transfers cross the
        intra link; inter-node transfers hold every link on the route
        for the bottleneck serialization time (cut-through, not
        store-and-forward) — two HCA links within a group, plus the
        trunk/global hops across groups on hierarchical presets.

        When ``payload`` is given, the wire may fault it: the return
        value is the delivered payload — the original object, a
        bit-corrupted copy, or the :data:`~repro.faults.injector.DROPPED`
        sentinel when the packet was lost (wire time is still charged:
        the bytes were sent, they just did not survive).  Without a
        payload the return value is ``None``.
        """
        links = self.route(src, dst)
        if links:
            if len(links) == 1:
                yield from links[0].transfer(nbytes, label=label)
            else:
                yield from self._cut_through(links, src, dst, nbytes, label)
        return self._deliver(src, dst, nbytes, payload)

    def _cut_through(self, links, src: int, dst: int, nbytes: int, label: str):
        # Cut-through across the whole route: hold every link together
        # for total-latency + bottleneck-serialization.
        bw, lat = self._path(src, dst)
        reqs = [l._res.request() for l in links]
        t0 = self.sim.now
        try:
            for r in reqs:
                yield r
            t0 = self.sim.now
            duration = lat + nbytes / bw
            faults = self.sim.faults
            if faults is not None:
                duration += faults.extra_wire_delay(
                    tuple(l.label for l in links), duration)
            yield self.sim.timeout(duration)
        finally:
            # cancel() == release() for granted slots and withdraws
            # still-queued requests, so an interrupted (killed) sender
            # cannot strand the HCA links survivors share.
            for l, r in zip(links, reqs):
                l._res.cancel(r)
        tracer = self.sim.tracer
        if tracer is not None:
            route = "+".join(l.label for l in links)
            tracer.span(
                t0, self.sim.now, "network", label or f"{src}->{dst}",
                track=f"link:{route}",
                nbytes=nbytes, src=src, dst=dst,
                link=route, links=tuple(l.label for l in links),
            )
            m = tracer.metrics
            for l in links:
                m.inc("wire.bytes", nbytes, link=l.label)
                m.inc("wire.transfers", 1, link=l.label)
                m.inc("wire.busy_seconds", self.sim.now - t0, link=l.label)

    def _deliver(self, src: int, dst: int, nbytes: int, payload):
        """Apply wire faults to a payload at its delivery point."""
        if payload is None:
            return None
        faults = self.sim.faults
        if faults is None or src == dst:
            return payload
        outcome = faults.transfer_outcome(src, dst, nbytes)
        if outcome == "drop":
            return DROPPED
        if outcome == "corrupt":
            return faults.corrupt_payload(payload)
        return payload

    # -- inspection -----------------------------------------------------------
    def graph(self) -> "nx.DiGraph":
        """A networkx digraph of GPUs, node switches and the switching
        fabric, annotated with link specs (Figure 1 style).

        Flat presets keep the single core ``switch``; fat-tree adds
        per-group leaf switches under a ``spine``; dragonfly adds
        per-group routers with direct group-to-group edges.
        """
        g = nx.DiGraph()
        if self.kind == "flat":
            switch_of = {n: "switch" for n in range(self.nodes)}
            g.add_node("switch", kind="switch")
        else:
            gl = self.preset.group_link
            switch_of = {}
            for grp in range(self.n_groups):
                g.add_node(f"group{grp}", kind="switch", group=grp)
            for n in range(self.nodes):
                switch_of[n] = f"group{self.group_of(n)}"
            if self.kind == "fat-tree":
                g.add_node("spine", kind="switch")
                for grp in range(self.n_groups):
                    g.add_edge(f"group{grp}", "spine", spec=gl, bandwidth=gl.bandwidth)
                    g.add_edge("spine", f"group{grp}", spec=gl, bandwidth=gl.bandwidth)
            else:
                for a in range(self.n_groups):
                    for b in range(self.n_groups):
                        if a != b:
                            g.add_edge(f"group{a}", f"group{b}",
                                       spec=gl, bandwidth=gl.bandwidth)
        for n in range(self.nodes):
            hub = f"node{n}"
            g.add_node(hub, kind="node")
            up, down = self.preset.inter_link, self.preset.inter_link
            g.add_edge(hub, switch_of[n], spec=up, bandwidth=up.bandwidth)
            g.add_edge(switch_of[n], hub, spec=down, bandwidth=down.bandwidth)
            for k in range(self.gpus_per_node):
                gpu = n * self.gpus_per_node + k
                g.add_node(f"gpu{gpu}", kind="gpu", device=self.preset.device.name)
                il = self.preset.intra_link
                g.add_edge(f"gpu{gpu}", hub, spec=il, bandwidth=il.bandwidth)
                g.add_edge(hub, f"gpu{gpu}", spec=il, bandwidth=il.bandwidth)
        return g

    def __repr__(self) -> str:
        return (
            f"<Topology {self.preset.name} {self.nodes}x{self.gpus_per_node} "
            f"({self.n_gpus} GPUs)>"
        )
