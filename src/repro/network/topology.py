"""Cluster topology: GPUs, nodes, and the links between them.

A :class:`Topology` instantiates live :class:`~repro.network.links.Link`
objects from a :class:`~repro.network.presets.MachinePreset`:

* intra-node — either dedicated per-direction GPU pair links (NVLink)
  or a shared per-node, per-direction bus (PCIe host bridge);
* inter-node — one uplink and one downlink per node to an ideal
  (full-bisection) switch, so the node's HCA is the contention point,
  matching the single-HCA testbeds of the paper.

``transfer(src, dst, nbytes)`` resolves the route and moves the bytes,
charging end-to-end latency plus serialization at the bottleneck while
holding every traversed link.  A networkx graph of the topology is
available for inspection and for tooling built on top.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import NetworkError
from repro.faults.injector import DROPPED
from repro.network.links import Link
from repro.network.presets import MachinePreset
from repro.sim import Simulator

__all__ = ["Topology"]


class Topology:
    """Physical layout of a simulated GPU cluster."""

    def __init__(self, sim: Simulator, preset: MachinePreset, nodes: int, gpus_per_node: int):
        if nodes < 1:
            raise NetworkError(f"need >= 1 node, got {nodes}")
        if not (1 <= gpus_per_node <= preset.max_gpus_per_node):
            raise NetworkError(
                f"{preset.name} supports 1..{preset.max_gpus_per_node} GPUs/node, "
                f"got {gpus_per_node}"
            )
        self.sim = sim
        self.preset = preset
        self.nodes = nodes
        self.gpus_per_node = gpus_per_node

        # Inter-node: per-node uplink/downlink to an ideal switch.
        self._uplink = [Link(sim, preset.inter_link, f"node{n}-up") for n in range(nodes)]
        self._downlink = [Link(sim, preset.inter_link, f"node{n}-down") for n in range(nodes)]

        # Intra-node fabric.
        self._intra: dict = {}
        if preset.intra_shared:
            # One shared bus per node per direction.
            for n in range(nodes):
                self._intra[n] = Link(sim, preset.intra_link, f"node{n}-{preset.intra_link.name}")
        else:
            # Dedicated ordered-pair links, created lazily.
            pass

    # -- structure ---------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    def node_of(self, gpu: int) -> int:
        if not (0 <= gpu < self.n_gpus):
            raise NetworkError(f"gpu {gpu} out of range (have {self.n_gpus})")
        return gpu // self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def _intra_link(self, src: int, dst: int) -> Link:
        preset = self.preset
        if preset.intra_shared:
            return self._intra[self.node_of(src)]
        key = (src, dst)
        if key not in self._intra:
            self._intra[key] = Link(
                self.sim, preset.intra_link, f"{preset.intra_link.name}:{src}->{dst}"
            )
        return self._intra[key]

    def route(self, src: int, dst: int) -> list[Link]:
        """The ordered links a message from ``src`` to ``dst`` crosses."""
        if src == dst:
            return []
        if self.same_node(src, dst):
            return [self._intra_link(src, dst)]
        return [self._uplink[self.node_of(src)], self._downlink[self.node_of(dst)]]

    def path_bandwidth(self, src: int, dst: int) -> float:
        links = self.route(src, dst)
        if not links:
            return float("inf")
        return min(l.spec.bandwidth for l in links)

    def path_latency(self, src: int, dst: int) -> float:
        return sum(l.spec.latency for l in self.route(src, dst))

    # -- data movement ------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int, label: str = "",
                 payload=None):
        """Move ``nbytes`` from GPU ``src`` to GPU ``dst`` (generator
        subroutine).

        Same-GPU transfers are free; same-node transfers cross the
        intra link; inter-node transfers hold both HCA links for the
        bottleneck serialization time (cut-through, not
        store-and-forward).

        When ``payload`` is given, the wire may fault it: the return
        value is the delivered payload — the original object, a
        bit-corrupted copy, or the :data:`~repro.faults.injector.DROPPED`
        sentinel when the packet was lost (wire time is still charged:
        the bytes were sent, they just did not survive).  Without a
        payload the return value is ``None``.
        """
        links = self.route(src, dst)
        if links:
            if len(links) == 1:
                yield from links[0].transfer(nbytes, label=label)
            else:
                yield from self._cut_through(links, src, dst, nbytes, label)
        return self._deliver(src, dst, nbytes, payload)

    def _cut_through(self, links, src: int, dst: int, nbytes: int, label: str):
        # Cut-through across both HCAs: hold them together for
        # total-latency + bottleneck-serialization.
        bw = min(l.spec.bandwidth for l in links)
        lat = sum(l.spec.latency for l in links)
        reqs = [l._res.request() for l in links]
        t0 = self.sim.now
        try:
            for r in reqs:
                yield r
            t0 = self.sim.now
            duration = lat + nbytes / bw
            faults = self.sim.faults
            if faults is not None:
                duration += faults.extra_wire_delay(
                    tuple(l.label for l in links), duration)
            yield self.sim.timeout(duration)
        finally:
            # cancel() == release() for granted slots and withdraws
            # still-queued requests, so an interrupted (killed) sender
            # cannot strand the HCA links survivors share.
            for l, r in zip(links, reqs):
                l._res.cancel(r)
        tracer = self.sim.tracer
        if tracer is not None:
            route = "+".join(l.label for l in links)
            tracer.span(
                t0, self.sim.now, "network", label or f"{src}->{dst}",
                track=f"link:{route}",
                nbytes=nbytes, src=src, dst=dst,
                link=route, links=tuple(l.label for l in links),
            )
            m = tracer.metrics
            for l in links:
                m.inc("wire.bytes", nbytes, link=l.label)
                m.inc("wire.transfers", 1, link=l.label)
                m.inc("wire.busy_seconds", self.sim.now - t0, link=l.label)

    def _deliver(self, src: int, dst: int, nbytes: int, payload):
        """Apply wire faults to a payload at its delivery point."""
        if payload is None:
            return None
        faults = self.sim.faults
        if faults is None or src == dst:
            return payload
        outcome = faults.transfer_outcome(src, dst, nbytes)
        if outcome == "drop":
            return DROPPED
        if outcome == "corrupt":
            return faults.corrupt_payload(payload)
        return payload

    # -- inspection -----------------------------------------------------------
    def graph(self) -> "nx.DiGraph":
        """A networkx digraph of GPUs, node switches and the core
        switch, annotated with link specs (Figure 1 style)."""
        g = nx.DiGraph()
        g.add_node("switch", kind="switch")
        for n in range(self.nodes):
            hub = f"node{n}"
            g.add_node(hub, kind="node")
            up, down = self.preset.inter_link, self.preset.inter_link
            g.add_edge(hub, "switch", spec=up, bandwidth=up.bandwidth)
            g.add_edge("switch", hub, spec=down, bandwidth=down.bandwidth)
            for k in range(self.gpus_per_node):
                gpu = n * self.gpus_per_node + k
                g.add_node(f"gpu{gpu}", kind="gpu", device=self.preset.device.name)
                il = self.preset.intra_link
                g.add_edge(f"gpu{gpu}", hub, spec=il, bandwidth=il.bandwidth)
                g.add_edge(hub, f"gpu{gpu}", spec=il, bandwidth=il.bandwidth)
        return g

    def __repr__(self) -> str:
        return (
            f"<Topology {self.preset.name} {self.nodes}x{self.gpus_per_node} "
            f"({self.n_gpus} GPUs)>"
        )
