"""OSU-Micro-Benchmark-style harnesses on the simulated cluster.

``osu_latency`` / ``osu_bw`` mirror the OMB point-to-point benchmarks
(Figures 5, 9, 10); ``osu_bcast`` / ``osu_allgather`` (and the
future-work ``osu_alltoall`` / ``osu_allreduce``) mirror the
collective benchmarks, including the paper's modification to transmit
*real dataset* contents instead of the dummy fill (Figure 11).

Because the simulation is deterministic, a single timed iteration
yields the exact latency; ``warmup`` iterations still run first so
one-time effects (device-attribute caching, pool growth) are excluded,
like OMB's 100 warm-up runs.
"""

from repro.omb.payload import make_payload
from repro.omb.pt2pt import osu_bw, osu_latency
from repro.omb.collective import osu_allgather, osu_allreduce, osu_alltoall, osu_bcast

__all__ = [
    "make_payload",
    "osu_latency",
    "osu_bw",
    "osu_bcast",
    "osu_allgather",
    "osu_alltoall",
    "osu_allreduce",
]
