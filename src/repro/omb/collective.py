"""osu_bcast / osu_allgather / osu_alltoall / osu_allreduce.

Figure 11 runs the collectives on 8 nodes x 2 ppn with payloads drawn
from the Table III datasets ("we modified OMB to transfer data from
real datasets").  Each harness returns the max-over-ranks latency of
one collective invocation after a warm-up, OMB-style.

``osu_allreduce`` additionally accepts the allreduce ``algorithm``
(``ring`` / ``recursive_doubling`` / ``reduce_bcast``; see
:func:`repro.mpi.collectives.allreduce`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload

__all__ = ["CollectiveRow", "osu_bcast", "osu_allgather", "osu_alltoall", "osu_allreduce"]


@dataclass
class CollectiveRow:
    """One collective measurement."""

    op: str
    nbytes: int
    payload: str
    latency: float  # seconds, max across ranks
    breakdown: dict
    #: allreduce algorithm (None for non-reduction collectives)
    algorithm: Optional[str] = None

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6


def _collective_rank(comm, op: str, data, warmup: int, algorithm):
    for _ in range(warmup):
        yield from _run_op(comm, op, data, algorithm)
    yield from comm.barrier()
    t0 = comm.now
    yield from _run_op(comm, op, data, algorithm)
    return comm.now - t0


def _run_op(comm, op: str, data, algorithm=None):
    if op == "bcast":
        yield from comm.bcast(data, root=0)
    elif op == "allgather":
        yield from comm.allgather(data)
    elif op == "alltoall":
        chunks = np.array_split(data, comm.size)
        yield from comm.alltoall(chunks)
    elif op == "allreduce":
        yield from comm.allreduce(data, algorithm=algorithm)
    else:  # pragma: no cover - guarded by the public wrappers
        raise ValueError(op)


def _run_collective(
    op: str,
    machine: str,
    nodes: int,
    ppn: int,
    nbytes: int,
    payload: str,
    config: Optional[CompressionConfig],
    warmup: int = 1,
    algorithm: Optional[str] = None,
    trace: bool = True,
) -> CollectiveRow:
    config = config or CompressionConfig.disabled()
    cluster = Cluster(machine_preset(machine), nodes=nodes, gpus_per_node=ppn)
    data = make_payload(payload, nbytes)
    res = cluster.run(_collective_rank, config=config,
                      args=(op, data, warmup, algorithm), trace=trace)
    return CollectiveRow(
        op=op, nbytes=nbytes, payload=payload,
        latency=max(res.values), breakdown=res.breakdown(),
        algorithm=algorithm,
    )


def osu_bcast(machine: str = "frontera-liquid", nodes: int = 8, ppn: int = 2,
              nbytes: int = 1 << 20, payload: str = "omb",
              config: Optional[CompressionConfig] = None) -> CollectiveRow:
    """MPI_Bcast latency (Figure 11a)."""
    return _run_collective("bcast", machine, nodes, ppn, nbytes, payload, config)


def osu_allgather(machine: str = "frontera-liquid", nodes: int = 8, ppn: int = 2,
                  nbytes: int = 1 << 20, payload: str = "omb",
                  config: Optional[CompressionConfig] = None,
                  warmup: int = 1, trace: bool = True) -> CollectiveRow:
    """MPI_Allgather latency (Figure 11b).

    ``warmup=0, trace=False`` is the scale-run mode: a 1024-rank ring
    allgather is ~1M rendezvous messages, so the extra warm-up
    invocation and span recording are what separate minutes from
    hours of host time."""
    return _run_collective("allgather", machine, nodes, ppn, nbytes, payload,
                           config, warmup=warmup, trace=trace)


def osu_alltoall(machine: str = "frontera-liquid", nodes: int = 8, ppn: int = 2,
                 nbytes: int = 1 << 20, payload: str = "omb",
                 config: Optional[CompressionConfig] = None) -> CollectiveRow:
    """MPI_Alltoall latency — the paper's future-work pattern."""
    return _run_collective("alltoall", machine, nodes, ppn, nbytes, payload, config)


def osu_allreduce(machine: str = "frontera-liquid", nodes: int = 8, ppn: int = 2,
                  nbytes: int = 1 << 20, payload: str = "omb",
                  config: Optional[CompressionConfig] = None,
                  algorithm: Optional[str] = None) -> CollectiveRow:
    """MPI_Allreduce latency with a selectable algorithm."""
    return _run_collective("allreduce", machine, nodes, ppn, nbytes, payload,
                           config, algorithm=algorithm)
