"""Benchmark payload generation.

Three payload families, selected by name:

* ``"omb"`` — OSU's classic constant fill.  Compresses extremely well
  with MPC (the paper's Fig 10a discussion notes "the high compression
  ratio on dummy data").
* ``"random"`` — incompressible white noise (MPC's worst case).
* ``"wave"`` — smooth synthetic field (MPC ratio ~1.5-3, like
  mid-simulation HPC data).
* ``"dataset:<name>"`` — a slice of one of the Table III synthetic
  datasets (the paper's modified OMB for Figure 11).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import generate
from repro.datasets.synthetic import bitwalk
from repro.errors import ConfigError

__all__ = ["make_payload"]


def make_payload(kind: str, nbytes: int, seed: int = 0) -> np.ndarray:
    """Build a float32 payload of exactly ``nbytes`` bytes."""
    if nbytes % 4:
        raise ConfigError(f"payload bytes must be a multiple of 4, got {nbytes}")
    n = nbytes // 4
    rng = np.random.default_rng(seed)
    if kind == "omb":
        return np.full(n, np.float32(1.0))
    if kind == "random":
        return rng.standard_normal(n).astype(np.float32)
    if kind == "wave":
        return bitwalk(n, 10, rng)
    if kind.startswith("dataset:"):
        name = kind.split(":", 1)[1]
        from repro.datasets.catalog import get_spec

        # Generate only as much of the dataset as the payload needs.
        scale = nbytes / (get_spec(name).size_mb * 1e6) * 1.02 + 1e-6
        data = generate(name, scale=scale, seed=seed)
        if data.size < n:
            reps = -(-n // data.size)
            data = np.tile(data, reps)
        return data[:n].copy()
    raise ConfigError(
        f"unknown payload kind {kind!r}; use 'omb', 'random', 'wave' or 'dataset:<name>'"
    )
