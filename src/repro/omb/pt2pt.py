"""osu_latency / osu_bw analogues.

``osu_latency`` runs the classic two-rank ping-pong and reports
one-way latency per message size; ``osu_bw`` posts a window of
back-to-back nonblocking sends and reports achieved bandwidth.

Rank placement controls the fabric under test: ``inter_node=True``
puts the two ranks on different nodes (IB), ``False`` on the same node
(NVLink/PCIe) — Figure 9's four panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.mpi.request import waitall
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload

__all__ = ["LatencyRow", "osu_latency", "osu_bw"]


@dataclass
class LatencyRow:
    """One line of osu_latency output."""

    nbytes: int
    latency: float  # one-way seconds
    breakdown: dict

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6


def _make_cluster(machine: str, inter_node: bool) -> Cluster:
    preset = machine_preset(machine)
    if inter_node:
        return Cluster(preset, nodes=2, gpus_per_node=1)
    return Cluster(preset, nodes=1, gpus_per_node=2)


def _pingpong(comm, data, iterations: int, warmup: int):
    peer = 1 - comm.rank
    t_start = None
    for it in range(warmup + iterations):
        if it == warmup:
            yield from comm.barrier()
            t_start = comm.now
        if comm.rank == 0:
            yield from comm.send(data, peer, tag=1)
            yield from comm.recv(peer, tag=2)
        else:
            got = yield from comm.recv(peer, tag=1)
            yield from comm.send(got, peer, tag=2)
    return (comm.now - t_start) / (2 * iterations)


def osu_latency(
    machine: str = "longhorn",
    sizes=(256 << 10, 1 << 20, 4 << 20),
    config: Optional[CompressionConfig] = None,
    payload: str = "omb",
    inter_node: bool = True,
    iterations: int = 1,
    warmup: int = 1,
) -> list[LatencyRow]:
    """One-way D-D latency per message size (Figures 5 and 9)."""
    config = config or CompressionConfig.disabled()
    cluster = _make_cluster(machine, inter_node)
    rows = []
    for nbytes in sizes:
        data = make_payload(payload, nbytes)
        res = cluster.run(_pingpong, config=config, args=(data, iterations, warmup))
        rows.append(LatencyRow(nbytes=nbytes, latency=res.values[0],
                               breakdown=res.breakdown()))
    return rows


def _bw_ranks(comm, data, window: int, iterations: int, warmup: int):
    peer = 1 - comm.rank
    t_start = None
    for it in range(warmup + iterations):
        if it == warmup:
            yield from comm.barrier()
            t_start = comm.now
        if comm.rank == 0:
            reqs = [comm.isend(data, peer, tag=100 + w) for w in range(window)]
            yield from waitall(reqs)
            yield from comm.recv(peer, tag=999)  # ack
        else:
            reqs = [comm.irecv(peer, tag=100 + w) for w in range(window)]
            yield from waitall(reqs)
            yield from comm.send(data[:1], peer, tag=999)
    elapsed = comm.now - t_start
    return data.nbytes * window * iterations / elapsed if elapsed else 0.0


def osu_bw(
    machine: str = "longhorn",
    sizes=(1 << 20, 4 << 20),
    config: Optional[CompressionConfig] = None,
    payload: str = "omb",
    inter_node: bool = True,
    window: int = 8,
    iterations: int = 1,
    warmup: int = 1,
) -> list[LatencyRow]:
    """Streaming bandwidth (osu_bw): a window of back-to-back isends
    per iteration.

    Each returned row's ``breakdown['bandwidth']`` carries the achieved
    bytes/s (the quantity Figure 2a plots); ``latency`` holds the
    per-window wall time for reference."""
    config = config or CompressionConfig.disabled()
    cluster = _make_cluster(machine, inter_node)
    rows = []
    for nbytes in sizes:
        data = make_payload(payload, nbytes)
        res = cluster.run(_bw_ranks, config=config, args=(data, window, iterations, warmup))
        bw = res.values[0]
        rows.append(LatencyRow(nbytes=nbytes, latency=nbytes * window / bw if bw else 0.0,
                               breakdown={"bandwidth": bw}))
    return rows
