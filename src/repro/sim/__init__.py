"""Deterministic discrete-event simulation engine.

A small, dependency-free kernel in the spirit of SimPy: a
:class:`~repro.sim.engine.Simulator` owns a time-ordered event heap;
*processes* are Python generators that ``yield`` events (timeouts, other
processes, resource requests) and are resumed when those events trigger.

Everything in the repro stack — GPU kernels, DMA copies, wire transfers,
MPI protocol state machines — advances this single clock, which makes
every experiment bit-for-bit deterministic and independent of host speed.
"""

from repro.sim.engine import Simulator, Event, Timeout, Process, AllOf, AnyOf, Interrupt
from repro.sim.resources import Resource, Store, TokenPool
from repro.sim.trace import SpanHandle, Tracer, TraceRecord, trace_scope

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Store",
    "TokenPool",
    "Tracer",
    "TraceRecord",
    "SpanHandle",
    "trace_scope",
]
