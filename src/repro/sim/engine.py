"""Core event loop: simulator, events, timeouts and processes.

Time is a ``float`` in **seconds**.  Ties are broken by insertion order,
so a run is fully deterministic for a given program.

The generator protocol: a process function is a generator that yields
:class:`Event` instances.  When the yielded event triggers, the process
resumes; the event's value is sent into the generator (or its exception
is thrown in).  A process is itself an :class:`Event` that triggers when
the generator returns, carrying the return value.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf", "Interrupt"]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    an arbitrary payload describing why it was interrupted.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*; it is *triggered* exactly once, either
    via :meth:`succeed` (carrying a value) or :meth:`fail` (carrying an
    exception).  Callbacks registered before triggering run, in order,
    when the simulator pops the event off the schedule.
    """

    __slots__ = ("sim", "callbacks", "_cb1", "_value", "_ok", "_defused",
                 "_cancelled", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # The overwhelmingly common case is a single waiter, so the
        # first callback lives in ``_cb1`` and the list is only
        # allocated when a second one arrives.
        self._cb1: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (even if callbacks
        have not run yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True for success, False for failure, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.  If
        nothing ever waits on a failed event the failure would be lost,
        so the simulator raises it at the end of the run unless the
        event is :meth:`defused <defuse>`.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self)
        self.sim._failed_events.append(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator will not
        re-raise its exception at the end of the run."""
        self._defused = True

    def cancel(self) -> None:
        """Discard a scheduled-but-unprocessed event.

        A cancelled event is silently dropped from the schedule:
        its callbacks never run and — crucially — popping it does *not*
        advance the clock, so an unused guard timer (e.g. a rendezvous
        timeout that never fired) leaves the timeline bit-identical to a
        run that never created it.  Cancelling an event something still
        waits on would strand that waiter; only cancel events whose
        outcome is no longer needed.
        """
        self._cancelled = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.  If the event
        has already been processed the callback runs immediately."""
        if self._processed:
            fn(self)
        elif self.callbacks is not None:
            self.callbacks.append(fn)
        elif self._cb1 is None:
            self._cb1 = fn
        else:
            self.callbacks = [self._cb1, fn]
            self._cb1 = None

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, delay=self.delay)


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process triggers (as an event) when the generator returns; the
    StopIteration value becomes the event value.  Unhandled exceptions in
    the generator fail the process event, propagating to any waiter.
    """

    __slots__ = ("gen", "name", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime instead of a
        # fresh allocation at every yield.
        self._resume_cb = self._resume
        # Kick off on the next scheduling round at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init._cb1 = self._resume_cb
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is not None and not self._processed:
            # Detach from whatever it was waiting on.
            tgt = self._target
            if tgt._cb1 is self._resume_cb:
                tgt._cb1 = None
            elif tgt.callbacks is not None and self._resume_cb in tgt.callbacks:
                tgt.callbacks.remove(self._resume_cb)
            if tgt._cb1 is None and not tgt.callbacks:
                # Nobody is left to observe the target; if it later
                # fails (e.g. a peer process crashing) the failure must
                # not be re-raised at end of run on behalf of a waiter
                # that was deliberately interrupted away from it.
                tgt._defused = True
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke._defused = True
        poke._cb1 = self._resume_cb
        self.sim._schedule(poke)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            if event._ok:
                target = self.gen.send(event._value)
            else:
                event._defused = True
                target = self.gen.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to a different Simulator")
        self._target = target
        target.add_callback(self._resume_cb)


class _Condition(Event):
    """Shared machinery for AllOf / AnyOf."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {i: ev._value for i, ev in enumerate(self.events) if ev.triggered and ev._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* child events have triggered successfully.

    The value is a dict mapping the child's index to its value.  A child
    failure fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                # The condition already resolved (possibly by another
                # child's failure); this late failure has been raced
                # away and has no other observer.
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the *first* child event triggers.

    The value is a dict of every child already triggered at that moment.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """Event loop and clock.

    Usage::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(hello(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        self._failed_events: list[Event] = []
        self.tracer = None  # attached by repro.sim.trace.Tracer
        self.faults = None  # attached by repro.faults.FaultInjector
        self.asan = None  # attached by repro.check.asan.BufferSanitizer
        self.failstop = None  # attached by repro.mpi.failstop.FailStopManager

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        if self.tracer is not None:
            # Spawned work inherits the spawner's open span as its
            # parent, keeping kernel/partition workers inside the
            # pipeline step that launched them.
            self.tracer._on_process_spawn(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), event))

    def _drain_cancelled(self) -> None:
        """Drop cancelled events from the head of the schedule without
        touching the clock."""
        while self._heap and self._heap[0][2]._cancelled:
            heapq.heappop(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        self._drain_cancelled()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        self._drain_cancelled()
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        t, _, event = heapq.heappop(self._heap)
        self._now = t
        event._processed = True
        if self.tracer is not None:
            self.tracer._on_event(t, event)
        cb = event._cb1
        if cb is not None:
            event._cb1 = None
            cb(event)
        elif event.callbacks is not None:
            callbacks, event.callbacks = event.callbacks, None
            for cb in callbacks:
                cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule empties, or until time ``until``.

        Raises any un-defused failure once the loop exits, so a crashed
        process cannot be silently dropped.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        # Inlined step(): this loop processes every event of a run, so
        # the per-event function-call and re-drain overhead is paid
        # millions of times in a long simulation.
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if heap[0][2]._cancelled:
                pop(heap)
                continue
            if until is not None and heap[0][0] > until:
                self._now = until
                break
            t, _, event = pop(heap)
            self._now = t
            event._processed = True
            if self.tracer is not None:
                self.tracer._on_event(t, event)
            cb = event._cb1
            if cb is not None:
                event._cb1 = None
                cb(event)
            elif event.callbacks is not None:
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
        for ev in self._failed_events:
            if not ev._defused:
                raise ev._value
        self._failed_events.clear()

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run to completion, return its value.

        Raises :class:`DeadlockError` if the schedule empties while the
        process is still waiting (e.g. an unmatched receive).
        """
        proc = self.process(gen, name=name)
        self.run()
        if not proc.triggered:
            raise DeadlockError(
                f"simulation ran out of events while process {proc.name!r} was still waiting"
            )
        if not proc._ok:
            raise proc._value
        return proc._value
