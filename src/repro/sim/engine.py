"""Core event loop: simulator, events, timeouts and processes.

Time is a ``float`` in **seconds**.  Ties are broken by insertion order,
so a run is fully deterministic for a given program.

The generator protocol: a process function is a generator that yields
:class:`Event` instances.  When the yielded event triggers, the process
resumes; the event's value is sent into the generator (or its exception
is thrown in).  A process is itself an :class:`Event` that triggers when
the generator returns, carrying the return value.

Scheduling is a **calendar of per-instant buckets**: every distinct
timestamp owns a plain list of events in insertion order, and a small
heap orders only the distinct timestamps.  Popping therefore costs one
heap operation per *instant* instead of one per *event* — a collective
round where 1k ranks all wake at the same time is a single heap pop
followed by a flat list sweep.  The documented tie-break (insertion
order within one timestamp) is exactly the append order of the bucket,
so traces are byte-identical to the classic single-heap scheduler.

``run()`` selects one of two loop variants at entry: a *bare* loop when
``tracer``/``faults``/``asan``/``failstop`` are all ``None``, and the
*instrumented* loop otherwise.  Instrumentation must be attached before
``run()`` is entered; both variants dispatch events identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf", "Interrupt"]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    an arbitrary payload describing why it was interrupted.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*; it is *triggered* exactly once, either
    via :meth:`succeed` (carrying a value) or :meth:`fail` (carrying an
    exception).  Callbacks registered before triggering run, in order,
    when the simulator pops the event off the schedule.
    """

    __slots__ = ("sim", "callbacks", "_cb1", "_value", "_ok", "_defused",
                 "_cancelled", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # The overwhelmingly common case is a single waiter, so the
        # first callback lives in ``_cb1`` and the list is only
        # allocated when a second one arrives.
        self._cb1: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list[Optional[Callable[["Event"], None]]]] = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (even if callbacks
        have not run yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True for success, False for failure, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined _schedule(self): succeed() fires once per process
        # completion and once per condition/gate, so the extra call
        # frame shows up at rank counts in the thousands.
        sim = self.sim
        t = sim._now
        bucket = sim._buckets.get(t)
        if bucket is None:
            sim._buckets[t] = [self]
            heapq.heappush(sim._times, t)
        else:
            bucket.append(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.  If
        nothing ever waits on a failed event the failure would be lost,
        so the simulator raises it at the end of the run unless the
        event is :meth:`defused <defuse>`.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self)
        self.sim._failed_events.append(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator will not
        re-raise its exception at the end of the run."""
        self._defused = True

    def cancel(self) -> None:
        """Discard a scheduled-but-unprocessed event.

        A cancelled event is silently dropped from the schedule:
        its callbacks never run and — crucially — popping it does *not*
        advance the clock, so an unused guard timer (e.g. a rendezvous
        timeout that never fired) leaves the timeline bit-identical to a
        run that never created it.  Cancelling an event something still
        waits on would strand that waiter; only cancel events whose
        outcome is no longer needed.
        """
        self._cancelled = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.  If the event
        has already been processed the callback runs immediately."""
        if self._processed:
            fn(self)
        elif self.callbacks is not None:
            self.callbacks.append(fn)
        elif self._cb1 is None:
            self._cb1 = fn
        else:
            self.callbacks = [self._cb1, fn]
            self._cb1 = None

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class _MicroEvent(Event):
    """A pooled event for the init/poke one-shot wakeups that every
    process spawn and interrupt allocates.

    Micro events are never exposed to user code: exactly one callback is
    attached before scheduling, nothing else ever holds a reference, and
    the run loop returns each one to the simulator's freelist right
    after dispatch.  The next spawn/interrupt reuses the object instead
    of paying allocation plus slot initialisation.
    """

    __slots__ = ()


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + _schedule: a timeout is the most
        # frequently created event of a large run, so the two extra
        # call frames are measurable at 1k+ ranks.
        self.sim = sim
        self._cb1 = None
        self.callbacks = None
        self._ok = True
        self._value = value
        self._defused = False
        self._cancelled = False
        self._processed = False
        d = self.delay = float(delay)
        t = sim._now + d
        bucket = sim._buckets.get(t)
        if bucket is None:
            sim._buckets[t] = [self]
            heapq.heappush(sim._times, t)
        else:
            bucket.append(self)


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process triggers (as an event) when the generator returns; the
    StopIteration value becomes the event value.  Unhandled exceptions in
    the generator fail the process event, propagating to any waiter.
    """

    __slots__ = ("gen", "name", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        # Flattened Event.__init__ plus the init-event acquire and
        # schedule: spawn storms create thousands of processes per
        # simulated collective round, so every call frame counts here.
        self.sim = sim
        self._cb1 = None
        self.callbacks = None
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._cancelled = False
        self._processed = False
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime instead of a
        # fresh allocation at every yield.
        self._resume_cb = rc = self._resume
        # Kick off on the next scheduling round at the current time,
        # reusing a pooled micro event when one is available.
        free = sim._micro_free
        if free:
            init = free.pop()
            init._processed = False
            init._defused = False
            init._cancelled = False
        else:
            init = _MicroEvent(sim)
        init._ok = True
        init._value = None
        init._cb1 = rc
        t = sim._now
        bucket = sim._buckets.get(t)
        if bucket is None:
            sim._buckets[t] = [init]
            heapq.heappush(sim._times, t)
        else:
            bucket.append(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is not None and not self._processed:
            # Detach from whatever it was waiting on.  The multi-waiter
            # path tombstones the slot (dispatch skips None) instead of
            # list.remove(), which would shift every later waiter and go
            # quadratic under interrupt storms on popular events.
            tgt = self._target
            cbs = tgt.callbacks
            if tgt._cb1 is self._resume_cb:
                tgt._cb1 = None
            elif cbs is not None:
                try:
                    cbs[cbs.index(self._resume_cb)] = None
                except ValueError:
                    pass
            if tgt._cb1 is None and (cbs is None or not any(cbs)):
                # Nobody is left to observe the target; if it later
                # fails (e.g. a peer process crashing) the failure must
                # not be re-raised at end of run on behalf of a waiter
                # that was deliberately interrupted away from it.
                tgt._defused = True
        poke = self.sim._micro_event()
        poke._ok = False
        poke._value = Interrupt(cause)
        poke._defused = True
        poke._cb1 = self._resume_cb
        self.sim._schedule(poke)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # Stale wakeup: the process already finished.  This happens
            # when it was interrupted to death before its first resume —
            # the detach in interrupt() ran while no target was attached
            # yet, so the target it picked up afterwards still points
            # here.  The dead generator has nothing to resume, and a
            # failed waker has no other observer, so defuse it.
            if not event._ok:
                event._defused = True
            return
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                target = self.gen.send(event._value)
            else:
                event._defused = True
                target = self.gen.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.sim is not sim:
            raise SimulationError("yielded event belongs to a different Simulator")
        self._target = target
        target.add_callback(self._resume_cb)


class _Condition(Event):
    """Shared machinery for AllOf / AnyOf."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        # Flattened Event.__init__; conditions gate every collective
        # round, one per rank.
        self.sim = sim
        self._cb1 = None
        self.callbacks = None
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._cancelled = False
        self._processed = False
        evs = self.events = list(events)
        self._n_done = 0
        if not evs:
            self.succeed({})
            return
        check = self._check
        for ev in evs:
            ev.add_callback(check)

    def _collect(self) -> dict:
        return {i: ev._value for i, ev in enumerate(self.events) if ev.triggered and ev._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* child events have triggered successfully.

    The value is a dict mapping the child's index to its value.  A child
    failure fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                # The condition already resolved (possibly by another
                # child's failure); this late failure has been raced
                # away and has no other observer.
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the *first* child event triggers.

    The value is a dict of every child already triggered at that moment.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


# Cap on the micro-event freelist: enough to absorb any realistic spawn
# burst, small enough that a pathological one-off storm cannot pin
# memory for the rest of the run.
_MICRO_POOL_MAX = 4096


class Simulator:
    """Event loop and clock.

    Usage::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(hello(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"

    The schedule is a calendar: ``_buckets`` maps each pending timestamp
    to the list of events scheduled for that instant (in insertion
    order), and ``_times`` is a min-heap over the distinct timestamps.
    A timestamp is pushed onto the heap exactly once per bucket
    creation; the bucket being swept is popped out of the dict first, so
    a same-instant schedule during the sweep opens a fresh bucket (and
    re-pushes the timestamp), which the loop then drains before moving
    on — identical ordering to the classic (time, counter) heap.
    """

    def __init__(self):
        self._now = 0.0
        self._buckets: dict[float, list[Event]] = {}
        self._times: list[float] = []
        # The bucket currently being swept (or staged by peek()), plus
        # the cursor position and its timestamp.
        self._active_batch: Optional[list[Event]] = None
        self._active_pos = 0
        self._active_t = 0.0
        self._micro_free: list[_MicroEvent] = []
        self._active_process: Optional[Process] = None
        self._failed_events: list[Event] = []
        self.tracer = None  # attached by repro.sim.trace.Tracer
        self.faults = None  # attached by repro.faults.FaultInjector
        self.asan = None  # attached by repro.check.asan.BufferSanitizer
        self.failstop = None  # attached by repro.mpi.failstop.FailStopManager

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        if self.tracer is not None:
            # Spawned work inherits the spawner's open span as its
            # parent, keeping kernel/partition workers inside the
            # pipeline step that launched them.
            self.tracer._on_process_spawn(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        t = self._now + delay
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [event]
            heapq.heappush(self._times, t)
        else:
            bucket.append(event)

    def _micro_event(self) -> _MicroEvent:
        """Pop a recycled micro event off the freelist (or allocate).

        The caller owns setting ``_ok``/``_value``/``_cb1``; the pool
        only resets the lifecycle flags the previous dispatch left
        behind."""
        free = self._micro_free
        if free:
            ev = free.pop()
            ev._value = _PENDING
            ev._ok = None
            ev._processed = False
            ev._defused = False
            ev._cancelled = False
            return ev
        return _MicroEvent(self)

    def _refill(self) -> bool:
        """Stage the next bucket holding at least one live event as the
        active batch.  Returns False when the schedule is exhausted.
        Does not advance the clock (cancelled-only instants are dropped
        without the timeline ever observing them)."""
        batch = self._active_batch
        pos = self._active_pos
        buckets = self._buckets
        times = self._times
        while True:
            if batch is not None:
                for i in range(pos, len(batch)):
                    if not batch[i]._cancelled:
                        self._active_batch = batch
                        self._active_pos = i
                        return True
                batch = None
                self._active_batch = None
            if not times:
                return False
            t = heapq.heappop(times)
            batch = buckets.pop(t)
            pos = 0
            self._active_t = t

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._active_t if self._refill() else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._refill():
            raise SimulationError("step() on an empty schedule")
        batch = self._active_batch
        event = batch[self._active_pos]
        self._active_pos += 1
        self._now = self._active_t
        event._processed = True
        if self.tracer is not None:
            self.tracer._on_event(self._now, event)
        cb = event._cb1
        if cb is not None:
            event._cb1 = None
            cb(event)
        elif event.callbacks is not None:
            callbacks, event.callbacks = event.callbacks, None
            for cb in callbacks:
                if cb is not None:
                    cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule empties, or until time ``until``.

        Raises any un-defused failure once the loop exits, so a crashed
        process cannot be silently dropped.

        The loop body is selected here, once per call: the bare variant
        carries no instrumentation checks at all, so a run with no
        tracer/faults/asan/failstop attached pays zero per-event cost
        for the ability to attach them.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        if (self.tracer is None and self.faults is None
                and self.asan is None and self.failstop is None):
            self._run_bare(until)
        else:
            self._run_instrumented(until)
        for ev in self._failed_events:
            if not ev._defused:
                raise ev._value
        self._failed_events.clear()

    def _run_bare(self, until: Optional[float]) -> None:
        # Inlined hot loop: this processes every event of a run, so the
        # per-event attribute and function-call overhead is paid
        # millions of times in a long simulation.  The batch cursor
        # lives in locals; the finally block re-publishes it so an
        # exception escaping a callback leaves the schedule resumable.
        buckets = self._buckets
        times = self._times
        pop_time = heapq.heappop
        micro_free = self._micro_free
        batch = self._active_batch
        pos = self._active_pos
        self._active_batch = None
        try:
            while True:
                while batch is None:
                    if not times:
                        return
                    t = pop_time(times)
                    cand = buckets.pop(t)
                    for i in range(len(cand)):
                        if not cand[i]._cancelled:
                            batch = cand
                            pos = i
                            self._active_t = t
                            break
                    # else: every event at t was cancelled — drop the
                    # bucket without advancing the clock.
                if until is not None and self._active_t > until:
                    self._now = until
                    return
                self._now = self._active_t
                n = len(batch)
                while pos < n:
                    event = batch[pos]
                    pos += 1
                    if event._cancelled:
                        continue
                    event._processed = True
                    cb = event._cb1
                    if cb is not None:
                        event._cb1 = None
                        cb(event)
                    elif event.callbacks is not None:
                        callbacks, event.callbacks = event.callbacks, None
                        for cb in callbacks:
                            if cb is not None:
                                cb(event)
                    if event.__class__ is _MicroEvent:
                        if len(micro_free) < _MICRO_POOL_MAX:
                            micro_free.append(event)
                    # Callbacks may have scheduled at the current
                    # instant, growing the live batch.
                    n = len(batch)
                batch = None
        finally:
            if batch is not None:
                self._active_batch = batch
                self._active_pos = pos

    def _run_instrumented(self, until: Optional[float]) -> None:
        # Identical dispatch to _run_bare plus the tracer hook.  The
        # tracer is re-read per event because fault machinery may swap
        # it mid-run; the other planes (faults/asan/failstop) hook the
        # MPI/buffer layers, not the loop, so their mere presence only
        # selects this variant.
        buckets = self._buckets
        times = self._times
        pop_time = heapq.heappop
        micro_free = self._micro_free
        batch = self._active_batch
        pos = self._active_pos
        self._active_batch = None
        try:
            while True:
                while batch is None:
                    if not times:
                        return
                    t = pop_time(times)
                    cand = buckets.pop(t)
                    for i in range(len(cand)):
                        if not cand[i]._cancelled:
                            batch = cand
                            pos = i
                            self._active_t = t
                            break
                if until is not None and self._active_t > until:
                    self._now = until
                    return
                self._now = self._active_t
                n = len(batch)
                while pos < n:
                    event = batch[pos]
                    pos += 1
                    if event._cancelled:
                        continue
                    event._processed = True
                    tracer = self.tracer
                    if tracer is not None:
                        tracer._on_event(self._now, event)
                    cb = event._cb1
                    if cb is not None:
                        event._cb1 = None
                        cb(event)
                    elif event.callbacks is not None:
                        callbacks, event.callbacks = event.callbacks, None
                        for cb in callbacks:
                            if cb is not None:
                                cb(event)
                    if event.__class__ is _MicroEvent:
                        if len(micro_free) < _MICRO_POOL_MAX:
                            micro_free.append(event)
                    n = len(batch)
                batch = None
        finally:
            if batch is not None:
                self._active_batch = batch
                self._active_pos = pos

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run to completion, return its value.

        Raises :class:`DeadlockError` if the schedule empties while the
        process is still waiting (e.g. an unmatched receive).
        """
        proc = self.process(gen, name=name)
        self.run()
        if not proc.triggered:
            raise DeadlockError(
                f"simulation ran out of events while process {proc.name!r} was still waiting"
            )
        if not proc._ok:
            raise proc._value
        return proc._value
