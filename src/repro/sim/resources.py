"""Shared-resource primitives for simulation processes.

:class:`Resource`
    A counted resource (capacity *n*): link lanes, DMA engines, SM
    quota.  ``request()`` returns an event that triggers when a slot is
    granted; ``release()`` frees it.

:class:`Store`
    An unbounded (or bounded) FIFO of Python objects with blocking
    ``get``.  Used for mailboxes and packet queues.

:class:`TokenPool`
    A counted pool of fungible tokens with blocking multi-token
    acquire, used e.g. to model SM occupancy where a kernel grabs *k*
    SMs at once.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["Resource", "Store", "TokenPool"]


class _Request(Event):
    """Event granted when the resource/pool admits the request."""

    __slots__ = ("amount",)

    def __init__(self, sim: Simulator, amount: int = 1):
        super().__init__(sim)
        self.amount = amount


class Resource:
    """Counted resource with FIFO admission.

    Example::

        link = Resource(sim, capacity=1)

        def sender(sim, link):
            req = link.request()
            yield req
            try:
                yield sim.timeout(wire_time)
            finally:
                link.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> _Request:
        req = _Request(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(self)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Optional[_Request] = None) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, req: _Request) -> None:
        """Withdraw a request whose owner will never consume it (the
        owning process was interrupted, e.g. by a fail-stop rank kill).

        A still-queued request is removed from the admission queue; a
        request whose slot was already granted releases it — either way
        the slot cannot leak to a dead waiter and stall survivors
        sharing the resource.
        """
        if req in self._queue:
            self._queue.remove(req)
        elif req.triggered:
            self.release(req)


class Store:
    """FIFO object store with blocking get and (optionally) bounded put.

    ``put`` returns an event (already triggered when capacity allows);
    ``get`` returns an event that triggers with the next item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self._items.append(item)
                putter.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class TokenPool:
    """A pool of ``capacity`` fungible tokens with multi-token acquire.

    Unlike :class:`Resource`, a single acquire may take several tokens
    at once.  Admission is FIFO: a large request at the head blocks
    smaller ones behind it (no starvation).
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"TokenPool capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._available = capacity
        self._queue: Deque[_Request] = deque()

    @property
    def available(self) -> int:
        return self._available

    def acquire(self, amount: int = 1) -> _Request:
        if amount < 1 or amount > self.capacity:
            raise SimulationError(
                f"acquire({amount}) out of range for pool of capacity {self.capacity}"
            )
        req = _Request(self.sim, amount)
        if not self._queue and self._available >= amount:
            self._available -= amount
            req.succeed(self)
        else:
            self._queue.append(req)
        return req

    def release(self, amount: int = 1) -> None:
        self._available += amount
        if self._available > self.capacity:
            raise SimulationError("TokenPool over-released")
        while self._queue and self._available >= self._queue[0].amount:
            req = self._queue.popleft()
            self._available -= req.amount
            req.succeed(self)
