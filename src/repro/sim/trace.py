"""Lightweight tracing of simulation activity.

A :class:`Tracer` attaches to a :class:`~repro.sim.engine.Simulator` and
records *spans* — named intervals with a category — that the rest of the
stack uses to produce latency breakdowns (compression kernel time, wire
time, memory allocation time, ...), mirroring the paper's Figures 6, 8
and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """A closed span on the simulation timeline."""

    t_start: float
    t_end: float
    category: str
    label: str
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Collects :class:`TraceRecord` spans and aggregates by category.

    Spans may overlap (e.g. concurrent kernels on different streams);
    :meth:`total` sums raw durations while :meth:`busy` merges
    overlapping spans of one category into wall-clock occupancy.
    """

    def __init__(self, sim=None):
        self.records: list[TraceRecord] = []
        self._event_count = 0
        if sim is not None:
            sim.tracer = self

    # Called by Simulator.step for every processed event.
    def _on_event(self, t: float, event: Any) -> None:
        self._event_count += 1

    @property
    def event_count(self) -> int:
        return self._event_count

    def span(self, t_start: float, t_end: float, category: str, label: str = "", **meta) -> None:
        """Record a closed interval."""
        if t_end < t_start:
            raise ValueError(f"span ends before it starts: [{t_start}, {t_end}]")
        self.records.append(TraceRecord(t_start, t_end, category, label, meta))

    def total(self, category: Optional[str] = None) -> float:
        """Sum of span durations, optionally filtered by category."""
        return sum(
            r.duration for r in self.records if category is None or r.category == category
        )

    def busy(self, category: str) -> float:
        """Wall-clock time during which >= 1 span of ``category`` was open."""
        spans = sorted(
            ((r.t_start, r.t_end) for r in self.records if r.category == category)
        )
        out = 0.0
        cur_s: Optional[float] = None
        cur_e = 0.0
        for s, e in spans:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                out += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            out += cur_e - cur_s
        return out

    def categories(self) -> list[str]:
        return sorted({r.category for r in self.records})

    def breakdown(self) -> dict[str, float]:
        """Category -> summed duration, for latency breakdown figures."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.category] = out.get(r.category, 0.0) + r.duration
        return out

    def clear(self) -> None:
        self.records.clear()
        self._event_count = 0
