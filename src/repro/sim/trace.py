"""Structured tracing of simulation activity.

A :class:`Tracer` attaches to a :class:`~repro.sim.engine.Simulator` and
records *spans* — named intervals with a category — that the rest of the
stack uses to produce latency breakdowns (compression kernel time, wire
time, memory allocation time, ...), mirroring the paper's Figures 6, 8
and 10.

Spans are **attributed and hierarchical**:

* ``rank`` — which simulated MPI rank (== GPU) the activity belongs to;
* ``track`` — the lane within that rank ("main" for protocol/CPU work,
  "gpu" for driver/memory operations, "stream<k>" for kernels) or, for
  wire activity, ``"link:<label>"``;
* ``span_id`` / ``parent_id`` — every span knows which open span
  enclosed it, so a trace is a forest per rank: a ``pipeline`` step
  contains the kernels, copies and pool operations it caused.

Parenting is inferred from a *span stack per simulated process*: the
currently-open span of the active :class:`~repro.sim.engine.Process` is
the parent of anything recorded while it is open.  Processes spawned
while a span is open inherit it as their base parent (a compression
kernel launched on a worker process still nests under the
``sender_prepare`` step that launched it).

Two APIs coexist:

* ``begin()`` / ``end()`` (or the ``open_span()`` context manager) for
  hierarchical steps that enclose other work across ``yield``\\ s;
* ``span(t0, t1, ...)`` for retroactive leaf records — the pattern used
  throughout the device and network layers.

A :class:`~repro.analysis.metrics.MetricsRegistry` rides along on
``tracer.metrics``; instrumentation sites update both from the same
measurements, so metrics are provably consistent with the spans (the
property tests assert exactly that).
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TraceRecord", "Tracer", "SpanHandle", "trace_scope",
           "group_lanes", "group_by_seq"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A closed span on the simulation timeline."""

    t_start: float
    t_end: float
    category: str
    label: str
    meta: dict = field(default_factory=dict)
    rank: Optional[int] = None
    track: Optional[str] = None
    span_id: int = 0
    parent_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def key(self) -> tuple:
        """Fully-ordered structural identity (for determinism tests)."""
        return (
            self.t_start, self.t_end, self.category, self.label,
            self.rank, self.track, self.span_id, self.parent_id,
            tuple(sorted((k, repr(v)) for k, v in self.meta.items())),
        )


class SpanHandle:
    """An open (not yet recorded) span returned by :meth:`Tracer.begin`."""

    __slots__ = ("span_id", "t_start", "category", "label", "rank", "track",
                 "meta", "parent_id", "open", "_ctx")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return (f"<SpanHandle #{self.span_id} {self.category}/{self.label} "
                f"{state} from t={self.t_start:.9f}>")


class Tracer:
    """Collects :class:`TraceRecord` spans and aggregates by category.

    Spans may overlap (e.g. concurrent kernels on different streams);
    :meth:`total` sums raw durations while :meth:`busy` merges
    overlapping spans of one category into wall-clock occupancy.
    """

    def __init__(self, sim=None):
        from repro.analysis.metrics import MetricsRegistry  # avoid import cycle

        self.records: list[TraceRecord] = []
        self.metrics = MetricsRegistry()
        self._event_count = 0
        self._sim = sim
        self._ids = itertools.count(1)
        self._stacks: dict[Any, list[SpanHandle]] = {}
        self._inherited: dict[Any, SpanHandle] = {}
        if sim is not None:
            sim.tracer = self

    # Called by Simulator.step for every processed event.
    def _on_event(self, t: float, event: Any) -> None:
        self._event_count += 1

    @property
    def event_count(self) -> int:
        return self._event_count

    # -- hierarchy machinery ------------------------------------------------
    def _ctx(self):
        """The parenting context: the active simulated process."""
        if self._sim is not None:
            return self._sim._active_process
        return None

    def current_span(self) -> Optional[SpanHandle]:
        """The innermost open span of the active process (or its
        inherited parent), if any."""
        return self._parent_for(self._ctx())

    def _on_process_spawn(self, proc) -> None:
        """Called by :meth:`Simulator.process`: a process spawned while a
        span is open inherits that span as its base parent."""
        parent = self.current_span()
        if parent is not None:
            self._inherited[proc] = parent

    def _time(self, t: Optional[float]) -> float:
        if t is not None:
            return t
        if self._sim is None:
            raise ValueError("Tracer is not attached to a Simulator; pass t explicitly")
        return self._sim.now

    def _parent_for(self, ctx) -> Optional[SpanHandle]:
        stack = self._stacks.get(ctx)
        if stack:
            for h in reversed(stack):
                if h.open:
                    return h
        inherited = self._inherited.get(ctx)
        if inherited is not None and inherited.open:
            return inherited
        return None

    def begin(self, category: str, label: str = "", *, rank: Optional[int] = None,
              track: Optional[str] = None, t: Optional[float] = None,
              **meta) -> SpanHandle:
        """Open a hierarchical span starting now (or at ``t``)."""
        ctx = self._ctx()
        h = SpanHandle()
        h.span_id = next(self._ids)
        h.t_start = self._time(t)
        h.category = category
        h.label = label
        h.rank = rank
        h.track = track
        h.meta = meta
        parent = self._parent_for(ctx)
        h.parent_id = parent.span_id if parent is not None else None
        h.open = True
        h._ctx = ctx
        stack = self._stacks.get(ctx)
        if stack is None:
            self._stacks[ctx] = [h]
        else:
            stack.append(h)
        return h

    def end(self, handle: Optional[SpanHandle], t: Optional[float] = None,
            **extra_meta) -> Optional[TraceRecord]:
        """Close a span opened with :meth:`begin` and record it.

        ``None`` handles are accepted and ignored so call sites can stay
        unconditional when no tracer was attached at begin time.
        """
        if handle is None:
            return None
        if not handle.open:
            raise ValueError(f"span {handle.span_id} already ended")
        t_end = self._time(t)
        if t_end < handle.t_start:
            raise ValueError(
                f"span ends before it starts: [{handle.t_start}, {t_end}]")
        handle.open = False
        stack = self._stacks.get(handle._ctx)
        if stack:
            # Spans almost always close LIFO; fall back to a scan only
            # for out-of-order closes.
            if stack[-1] is handle:
                stack.pop()
            elif handle in stack:
                stack.remove(handle)
        # The handle owns its meta dict (built fresh in begin()), so the
        # closed record can take it without a defensive copy.
        meta = handle.meta
        if extra_meta:
            meta.update(extra_meta)
        rec = TraceRecord(handle.t_start, t_end, handle.category, handle.label,
                          meta, handle.rank, handle.track, handle.span_id,
                          handle.parent_id)
        self.records.append(rec)
        return rec

    def open_span(self, category: str, label: str = "", **kw):
        """``with tracer.open_span("pipeline", "rts", rank=0): ...``"""
        return _SpanCtx(self, category, label, kw)

    def span(self, t_start: float, t_end: float, category: str, label: str = "",
             *, rank: Optional[int] = None, track: Optional[str] = None,
             **meta) -> TraceRecord:
        """Record a closed interval (leaf span).  The parent is the
        innermost span still open in the current process."""
        if t_end < t_start:
            raise ValueError(f"span ends before it starts: [{t_start}, {t_end}]")
        parent = self.current_span()
        rec = TraceRecord(t_start, t_end, category, label, meta, rank, track,
                          next(self._ids), parent.span_id if parent else None)
        self.records.append(rec)
        return rec

    # -- aggregation --------------------------------------------------------
    def total(self, category: Optional[str] = None) -> float:
        """Sum of span durations, optionally filtered by category."""
        return sum(
            r.duration for r in self.records if category is None or r.category == category
        )

    def busy(self, category: str) -> float:
        """Wall-clock time during which >= 1 span of ``category`` was open."""
        spans = sorted(
            ((r.t_start, r.t_end) for r in self.records if r.category == category)
        )
        out = 0.0
        cur_s: Optional[float] = None
        cur_e = 0.0
        for s, e in spans:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                out += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            out += cur_e - cur_s
        return out

    def categories(self) -> list[str]:
        return sorted({r.category for r in self.records})

    def breakdown(self) -> dict[str, float]:
        """Category -> summed duration, for latency breakdown figures."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.category] = out.get(r.category, 0.0) + r.duration
        return out

    def by_id(self) -> dict[int, TraceRecord]:
        """span_id -> record, for walking the hierarchy."""
        return {r.span_id: r for r in self.records}

    def children_of(self, span_id: int) -> list[TraceRecord]:
        return [r for r in self.records if r.parent_id == span_id]

    # -- DAG accessors (used by repro.analysis.critpath) --------------------
    def children_index(self) -> dict[Optional[int], list[TraceRecord]]:
        """parent_id -> children, one pass over the records.  Roots are
        keyed under ``None``.  O(n) versus O(n) *per call* for
        :meth:`children_of` — the critical-path analyzer walks the whole
        forest and needs the index form."""
        out: dict[Optional[int], list[TraceRecord]] = {}
        for r in self.records:
            out.setdefault(r.parent_id, []).append(r)
        return out

    def roots(self) -> list[TraceRecord]:
        """Records with no parent (top of each per-rank span tree)."""
        return [r for r in self.records if r.parent_id is None]

    def descendants_of(self, span_id: int,
                       index: Optional[dict] = None) -> list[TraceRecord]:
        """Transitive closure of :meth:`children_of` (excluding the span
        itself), in deterministic preorder.  Pass a prebuilt
        :meth:`children_index` when calling repeatedly."""
        index = index if index is not None else self.children_index()
        out: list[TraceRecord] = []
        stack = list(reversed(index.get(span_id, [])))
        while stack:
            rec = stack.pop()
            out.append(rec)
            stack.extend(reversed(index.get(rec.span_id, [])))
        return out

    def ancestors_of(self, span_id: int,
                     by_id: Optional[dict] = None) -> list[TraceRecord]:
        """Chain of enclosing spans, innermost first."""
        by_id = by_id if by_id is not None else self.by_id()
        out: list[TraceRecord] = []
        rec = by_id.get(span_id)
        while rec is not None and rec.parent_id is not None:
            rec = by_id.get(rec.parent_id)
            if rec is None:
                break
            out.append(rec)
        return out

    def lanes(self) -> dict:
        """(rank, track) -> spans on that lane (see :func:`group_lanes`)."""
        return group_lanes(self.records)

    def by_seq(self) -> dict:
        """seq -> that message's pipeline spans (see :func:`group_by_seq`)."""
        return group_by_seq(self.records)

    def clear(self) -> None:
        self.records.clear()
        self._event_count = 0
        self._stacks.clear()
        self._inherited.clear()
        self.metrics.clear()


class _SpanCtx:
    """Lightweight context manager behind :meth:`Tracer.open_span` —
    the generator-based ``@contextmanager`` costs a generator plus two
    protocol calls per span, which adds up on the hot pipeline path."""

    __slots__ = ("_tracer", "_category", "_label", "_kw", "handle")

    def __init__(self, tracer: Tracer, category: str, label: str, kw: dict):
        self._tracer = tracer
        self._category = category
        self._label = label
        self._kw = kw
        self.handle: Optional[SpanHandle] = None

    def __enter__(self) -> SpanHandle:
        self.handle = self._tracer.begin(self._category, self._label, **self._kw)
        return self.handle

    def __exit__(self, exc_type, exc, tb):
        h = self.handle
        if h is not None and h.open:
            self._tracer.end(h)
        return False


def group_lanes(records) -> dict:
    """``(rank, track) -> spans`` on that lane, each list time-sorted.

    A *lane* is one timeline in the trace UI: a rank's ``main``/``gpu``/
    ``stream<k>`` thread, or a fabric link.  Link lanes are shared
    across ranks and key as ``(None, "link:<label>")``.  The trace
    sanitizer's serial-lane check consumes exactly this grouping.
    """
    out: dict = {}
    for r in records:
        track = r.track or "main"
        key = (None, track) if track.startswith("link:") else (r.rank, track)
        out.setdefault(key, []).append(r)
    for spans in out.values():
        spans.sort(key=lambda r: (r.t_start, r.t_end, r.span_id))
    return out


def group_by_seq(records) -> dict:
    """``seq -> pipeline spans`` of that rendezvous message, each list
    time-sorted — both protocol sides of the seven-step handshake."""
    out: dict = {}
    for r in records:
        if r.category == "pipeline" and "seq" in r.meta:
            out.setdefault(int(r.meta["seq"]), []).append(r)
    for spans in out.values():
        spans.sort(key=lambda r: (r.t_start, r.t_end, r.span_id))
    return out


def trace_scope(sim, category: str, label: str = "", **kw):
    """Context manager opening a span on ``sim``'s tracer, or a no-op
    when no tracer is attached — the one-liner instrumentation sites use.
    """
    tracer = getattr(sim, "tracer", None)
    if tracer is None:
        return _NO_TRACER
    return tracer.open_span(category, label, **kw)


#: shared no-op context for untraced sims (nullcontext is reentrant).
_NO_TRACER = nullcontext(None)
