"""Shared helpers: unit conversion, bit manipulation, table formatting."""

from repro.utils.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    Gbps,
    GBps,
    us,
    fmt_bytes,
    fmt_time,
    parse_size,
)
from repro.utils.tables import format_table

__all__ = [
    "GB",
    "GiB",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "Gbps",
    "GBps",
    "us",
    "fmt_bytes",
    "fmt_time",
    "parse_size",
    "format_table",
]
