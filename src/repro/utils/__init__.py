"""Shared helpers: unit conversion, bit manipulation, table formatting."""

from repro.utils.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    Gbps,
    GBps,
    us,
    fmt_bytes,
    fmt_time,
    parse_size,
)
from repro.utils.integrity import flip_bit, payload_crc32
from repro.utils.tables import format_table

__all__ = [
    "flip_bit",
    "payload_crc32",
    "GB",
    "GiB",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "Gbps",
    "GBps",
    "us",
    "fmt_bytes",
    "fmt_time",
    "parse_size",
    "format_table",
]
