"""Payload integrity helpers: CRC32 checksums and deterministic bit flips.

Shared by the resilience layer (which stamps and verifies checksums)
and the fault injector (which corrupts payloads).  Both operate on the
raw byte image of a payload, so the checks are dtype-agnostic and a
single flipped bit anywhere is always detected.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np

__all__ = ["payload_crc32", "flip_bit"]


def _raw_bytes(payload: Any) -> bytes:
    if isinstance(payload, np.ndarray):
        return np.ascontiguousarray(payload).tobytes()
    return bytes(payload)


def payload_crc32(payload: Any) -> int:
    """CRC32 of a payload's byte image (ndarray or bytes-like)."""
    if isinstance(payload, np.ndarray):
        # zlib consumes the buffer directly; a contiguous uint8 view
        # avoids materializing a bytes copy of the whole payload.
        return zlib.crc32(np.ascontiguousarray(payload).view(np.uint8)) & 0xFFFFFFFF
    return zlib.crc32(bytes(payload)) & 0xFFFFFFFF


def flip_bit(payload: Any, bit_index: int):
    """Return a copy of ``payload`` with one bit flipped.

    ``bit_index`` is taken modulo the payload's bit length; an ndarray
    keeps its dtype and shape so the corrupted copy is indistinguishable
    from the original at the type level (as a wire-level flip would be).
    """
    raw = bytearray(_raw_bytes(payload))
    if not raw:
        return payload
    bit = bit_index % (len(raw) * 8)
    raw[bit // 8] ^= 1 << (bit % 8)
    if isinstance(payload, np.ndarray):
        return np.frombuffer(bytes(raw), dtype=payload.dtype).reshape(payload.shape)
    return bytes(raw)
