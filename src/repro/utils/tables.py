"""Plain-text table rendering for benchmark harness output.

The benchmark suite prints the same rows/series the paper's tables and
figures report; this module renders them as aligned monospace tables.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table"]


def _cell(v: Any, floatfmt: str) -> str:
    if isinstance(v, float):
        return format(v, floatfmt)
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    floatfmt: str = ".2f",
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ----
    1  2.50
    """
    srows = [[_cell(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
