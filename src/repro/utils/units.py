"""Unit constants and formatting.

Internal convention throughout the package:

* time: **seconds** (float)
* sizes: **bytes** (int)
* bandwidth: **bytes/second** (float)

The constants below convert the units used by the paper (GB/s for
links, Gb/s for compressor throughput, microseconds for overheads) into
the internal convention.
"""

from __future__ import annotations

import re

__all__ = [
    "KB", "MB", "GB", "KiB", "MiB", "GiB",
    "Gbps", "GBps", "us",
    "fmt_bytes", "fmt_time", "parse_size",
]

# Decimal sizes (network vendors quote decimal).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary sizes (message-size sweeps use powers of two).
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30


def GBps(x: float) -> float:
    """Gigabytes/second -> bytes/second."""
    return x * 1e9


def Gbps(x: float) -> float:
    """Gigabits/second -> bytes/second."""
    return x * 1e9 / 8.0


def us(x: float) -> float:
    """Microseconds -> seconds."""
    return x * 1e-6


_SIZE_RE = re.compile(r"^\s*([\d.]+)\s*([KMG]i?)?B?\s*$", re.IGNORECASE)
_SIZE_MULT = {
    None: 1,
    "K": KB, "M": MB, "G": GB,
    "KI": KiB, "MI": MiB, "GI": GiB,
}


def parse_size(text: str | int) -> int:
    """Parse '4M', '256Ki', '512KiB', 4096 -> bytes.

    Bare K/M/G suffixes are interpreted as *binary* multiples to match
    OSU-benchmark conventions ('4M' message = 4 MiB), while explicit
    'KiB'/'MiB' are binary and digits-only strings are literal bytes.
    """
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    num = float(m.group(1))
    suffix = m.group(2)
    if suffix is None:
        return int(num)
    suffix = suffix.upper()
    if len(suffix) == 1:
        # OSU convention: bare suffix means binary.
        mult = {"K": KiB, "M": MiB, "G": GiB}[suffix]
    else:
        mult = _SIZE_MULT[suffix]
    return int(num * mult)


def fmt_bytes(n: int) -> str:
    """Format a byte count the way OSU benchmarks label message sizes."""
    if n >= GiB and n % GiB == 0:
        return f"{n // GiB}G"
    if n >= MiB and n % MiB == 0:
        return f"{n // MiB}M"
    if n >= KiB and n % KiB == 0:
        return f"{n // KiB}K"
    return str(n)


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
