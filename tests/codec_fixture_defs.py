"""Shared definitions for the codec bitstream fixtures.

The fixtures pin every codec's *exact* compressed byte stream (and, for
lossy codecs, the exact decoded array) across a representative matrix of
datasets, dtypes and rates.  They were captured from the implementations
*before* the vectorized bit-assembly rewrite, so any rewrite of a codec
hot path must keep producing byte-identical streams or the fixture test
fails.

Regenerate deliberately (only when a codec's stream format is *meant*
to change) with::

    PYTHONPATH=src python tests/make_codec_fixtures.py

Inputs are not stored: they are re-derived deterministically from the
case descriptor (the seed is a CRC32 of the descriptor string, never
``hash()``).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

from repro.compression.fpc import FpcCompressor
from repro.compression.gfc import GfcCompressor
from repro.compression.mpc import MpcCompressor
from repro.compression.sz import SzCompressor
from repro.compression.zfp import ZfpCompressor
from repro.compression.zfp2d import Zfp2dCompressor

FIXTURE_DIR = Path(__file__).parent / "data" / "codec_streams"
NPZ_PATH = FIXTURE_DIR / "streams.npz"
MANIFEST_PATH = FIXTURE_DIR / "manifest.json"

#: codecs whose decoded output must also match bit-for-bit (lossy codecs
#: have no round-trip identity to fall back on)
LOSSY = ("zfp", "zfp2d", "sz")


def _seed_for(desc: str) -> int:
    return zlib.crc32(desc.encode())


def make_data(kind: str, n, dtype: str, seed: int) -> np.ndarray:
    """Deterministic dataset families covering the codec edge cases."""
    rng = np.random.default_rng(seed)
    if kind == "smooth2d" or kind == "rough2d":
        rows, cols = n
        if kind == "smooth2d":
            y, x = np.mgrid[0:rows, 0:cols]
            data = np.sin(x / 9.0) * np.cos(y / 7.0) + 0.05 * x
        else:
            data = rng.standard_normal((rows, cols)) * 100.0
        return data.astype(dtype)
    if kind == "smooth":
        x = np.arange(n)
        data = np.sin(x / 17.0) * 3.0 + x / 500.0
    elif kind == "rough":
        data = rng.standard_normal(n) * 1e4
    elif kind == "sparse":
        data = np.zeros(n)
        idx = rng.choice(n, size=max(1, n // 16), replace=False)
        data[idx] = rng.standard_normal(idx.size) * 7.0
    elif kind == "walk":
        data = np.cumsum(rng.standard_normal(n) * 0.01) + 42.0
    elif kind == "interleaved3":
        m = -(-n // 3)
        x = np.arange(m)
        fields = np.stack([np.sin(x / 13.0), np.cos(x / 29.0) * 2.0, x / 99.0])
        data = fields.T.reshape(-1)[:n]
    else:  # pragma: no cover - guarded by the case table
        raise ValueError(f"unknown dataset kind {kind!r}")
    return data.astype(dtype)


def _codec_for(name: str, params: dict):
    cls = {"zfp": ZfpCompressor, "zfp2d": Zfp2dCompressor,
           "mpc": MpcCompressor, "fpc": FpcCompressor,
           "gfc": GfcCompressor, "sz": SzCompressor}[name]
    return cls(**params)


def cases() -> list[dict]:
    """The curated fixture matrix (name/params/dataset per case)."""
    out: list[dict] = []

    def add(codec, params, kind, n, dtype):
        out.append({"codec": codec, "params": params, "kind": kind,
                    "n": n, "dtype": dtype})

    for rate in (3, 4, 7, 8, 13, 16, 27, 32):
        add("zfp", {"rate": rate}, "smooth", 1021, "float32")
        add("zfp", {"rate": rate}, "sparse", 512, "float32")
    for rate in (4, 16, 31, 64):
        add("zfp", {"rate": rate}, "smooth", 1021, "float64")
        add("zfp", {"rate": rate}, "walk", 510, "float64")
    for rate in (1, 4, 8, 13, 32):
        add("zfp2d", {"rate": rate}, "smooth2d", (17, 23), "float32")
        add("zfp2d", {"rate": rate}, "rough2d", (32, 64), "float32")
    for dim in (1, 3):
        for dtype in ("float32", "float64"):
            add("mpc", {"dimensionality": dim}, "interleaved3", 1000, dtype)
            add("mpc", {"dimensionality": dim}, "walk", 777, dtype)
    for dtype in ("float32", "float64"):
        add("fpc", {}, "walk", 777, dtype)
        add("fpc", {}, "rough", 512, dtype)
    for kind, n in (("walk", 777), ("smooth", 1021), ("rough", 512)):
        add("gfc", {}, kind, n, "float64")
    for eb in (1e-3, 1e-1):
        for dtype in ("float32", "float64"):
            add("sz", {"error_bound": eb}, "smooth", 1021, dtype)
            add("sz", {"error_bound": eb}, "rough", 512, dtype)
    return out


def case_desc(case: dict) -> str:
    """Stable one-line descriptor (doubles as the RNG seed source)."""
    p = ",".join(f"{k}={v}" for k, v in sorted(case["params"].items()))
    return (f"{case['codec']}({p})/{case['kind']}"
            f"/n={case['n']}/{case['dtype']}")


def run_case(case: dict):
    """(payload bytes, decoded array) for one case, using the live code."""
    desc = case_desc(case)
    data = make_data(case["kind"], case["n"], case["dtype"], _seed_for(desc))
    codec = _codec_for(case["codec"], case["params"])
    comp = codec.compress(data)
    out = codec.decompress(comp)
    return comp.payload, out


def build_fixtures() -> dict:
    """Run every case and write the npz + manifest.  Returns the manifest."""
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    manifest = []
    for i, case in enumerate(cases()):
        payload, out = run_case(case)
        arrays[f"p{i}"] = payload
        entry = dict(case, index=i, desc=case_desc(case),
                     payload_bytes=int(payload.nbytes),
                     payload_crc32=zlib.crc32(payload.tobytes()))
        if case["codec"] in LOSSY:
            arrays[f"o{i}"] = out
            entry["output_crc32"] = zlib.crc32(np.ascontiguousarray(out).tobytes())
        manifest.append(entry)
    np.savez_compressed(NPZ_PATH, **arrays)
    doc = {"n_cases": len(manifest), "cases": manifest}
    with open(MANIFEST_PATH, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc
