"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.gpu.spec import V100
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.sim import Simulator, Tracer


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def traced_sim():
    s = Simulator()
    Tracer(s)
    return s


@pytest.fixture
def device(traced_sim):
    return Device(traced_sim, V100, device_id=0)


@pytest.fixture
def two_node_cluster():
    """Two single-GPU nodes over IB EDR (Longhorn-style)."""
    return Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)


@pytest.fixture
def intra_node_cluster():
    """One node with two GPUs over NVLink."""
    return Cluster(machine_preset("longhorn"), nodes=1, gpus_per_node=2)


@pytest.fixture
def small_grid_cluster():
    """Four single-GPU Frontera-style nodes (FDR)."""
    return Cluster(machine_preset("frontera-liquid"), nodes=4, gpus_per_node=1)


def smooth_f32(n: int, seed: int = 0) -> np.ndarray:
    """A compressible float32 signal."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.standard_normal(n).astype(np.float32) * 1e-3).astype(np.float32)


@pytest.fixture
def smooth_signal():
    return smooth_f32(100_000)
