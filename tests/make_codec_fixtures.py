"""Regenerate the codec bitstream fixtures (tests/data/codec_streams/).

Only run this deliberately, when a codec's *stream format* is meant to
change; the whole point of the fixtures is that performance rewrites
must NOT change the bytes.  Usage::

    PYTHONPATH=src python tests/make_codec_fixtures.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from codec_fixture_defs import NPZ_PATH, build_fixtures  # noqa: E402

if __name__ == "__main__":
    doc = build_fixtures()
    total = sum(c["payload_bytes"] for c in doc["cases"])
    print(f"wrote {NPZ_PATH}: {doc['n_cases']} cases, "
          f"{total} payload bytes pinned")
