"""Regenerate tests/data/golden_trace_mpc.json.

Run after an *intentional* change to instrumentation::

    PYTHONPATH=src python tests/make_golden_trace.py
"""

import json
from pathlib import Path

from test_trace_export import GOLDEN, export_golden_doc


def main() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    doc = export_golden_doc()
    GOLDEN.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    n = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
    print(f"wrote {GOLDEN} ({n} spans)")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).parent))
    main()
