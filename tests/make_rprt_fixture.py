"""Regenerate tests/data/golden_trace_mpc.rprt.

The fixture is the committed golden Chrome trace converted into a v1
RPRT container, so it exercises the on-disk format (not the current
writer's code path at export time).  Regenerate only after an
*intentional* format revision::

    PYTHONPATH=src python tests/make_rprt_fixture.py
"""

from pathlib import Path

from repro.analysis.traceio import convert

GOLDEN_JSON = Path(__file__).parent / "data" / "golden_trace_mpc.json"
GOLDEN_RPRT = Path(__file__).parent / "data" / "golden_trace_mpc.rprt"


def main() -> None:
    stats = convert(GOLDEN_JSON, GOLDEN_RPRT, to="rprt")
    print(f"wrote {GOLDEN_RPRT}: {stats['stored_bytes']} bytes stored "
          f"({stats['raw_bytes']} raw, {stats['ratio']:.2f}x)")


if __name__ == "__main__":
    main()
