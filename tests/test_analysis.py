"""Reporting helpers."""

import pytest

from repro.analysis import ExperimentRecord, comparison_table, reduction_pct


def test_reduction_pct():
    assert reduction_pct(100.0, 37.5) == pytest.approx(62.5)
    assert reduction_pct(100.0, 100.0) == 0.0
    assert reduction_pct(100.0, 150.0) == pytest.approx(-50.0)
    assert reduction_pct(0.0, 5.0) == 0.0


def test_record_row():
    r = ExperimentRecord("fig9a", "32M/MPC-OPT", "reduction%", 55.0, 62.5, "shape ok")
    row = r.row()
    assert row[0] == "fig9a"
    assert row[3] == 55.0 and row[4] == 62.5


def test_record_without_paper_value():
    r = ExperimentRecord("ext", "alltoall", "us", 12.0)
    assert r.row()[4] == "-"


def test_comparison_table_renders():
    recs = [
        ExperimentRecord("table3", "msg_bt", "CR-MPC", 1.333, 1.339),
        ExperimentRecord("fig14", "8 workers", "speedup", 1.2, 1.18),
    ]
    text = comparison_table(recs, title="check")
    assert "msg_bt" in text and "1.339" in text
    assert text.splitlines()[0] == "check"
