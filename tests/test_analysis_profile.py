"""INAM-style CommProfile tests."""

import numpy as np
import pytest

from repro.analysis import CommProfile
from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.utils.units import MiB


def run_traffic(config=None, nodes=2, ppn=2):
    cluster = Cluster(machine_preset("longhorn"), nodes=nodes, gpus_per_node=ppn)
    data = np.cumsum(np.ones((2 * MiB) // 4, dtype=np.float32))

    def rank_fn(comm):
        out = yield from comm.allgather(data)
        return len(out)

    return cluster.run(rank_fn, config=config or CompressionConfig.disabled())


def test_profile_totals_match_tracer():
    res = run_traffic()
    prof = CommProfile.from_result(res)
    assert prof.elapsed == res.elapsed
    assert prof.category_time["network"] == pytest.approx(
        res.tracer.total("network"))
    assert prof.n_messages > 0
    assert prof.total_wire_bytes > 0


def test_profile_links_and_busiest():
    res = run_traffic()
    prof = CommProfile.from_result(res)
    assert len(prof.links) >= 2  # uplinks/downlinks + NVLink pairs
    busiest = prof.busiest_link
    assert busiest is not None
    assert 0 < busiest.utilization(prof.elapsed) <= 1.0


def test_profile_histogram_buckets():
    res = run_traffic()
    prof = CommProfile.from_result(res)
    assert sum(prof.size_histogram.values()) == prof.n_messages
    # 2 MiB payloads -> a bucket at or near 2^21
    assert any(b >= 20 for b in prof.size_histogram)


def test_profile_compression_shrinks_wire_bytes():
    base = CommProfile.from_result(run_traffic())
    comp = CommProfile.from_result(run_traffic(CompressionConfig.mpc_opt()))
    assert comp.total_wire_bytes < base.total_wire_bytes / 2


def test_profile_report_renders():
    prof = CommProfile.from_result(run_traffic(CompressionConfig.mpc_opt()))
    text = prof.report()
    assert "time by category" in text
    assert "link activity" in text
    assert "wire-size histogram" in text
    assert "compression_kernel" in text


def test_profile_all_link_utilizations_bounded():
    """Per-link busy time can never exceed elapsed — in particular the
    multi-hop cut-through spans must be attributed per constituent
    link, not double-counted onto one."""
    for cfg in (None, CompressionConfig.mpc_opt()):
        prof = CommProfile.from_result(run_traffic(cfg))
        for st in prof.links.values():
            assert 0.0 <= st.utilization(prof.elapsed) <= 1.0


def test_profile_bytes_match_trace():
    res = run_traffic(CompressionConfig.mpc_opt())
    prof = CommProfile.from_result(res)
    wire = [r for r in res.tracer.records
            if (r.track or "").startswith("link:")]
    # total_wire_bytes counts each wire span once ...
    assert prof.total_wire_bytes == sum(int(r.meta["nbytes"]) for r in wire)
    assert prof.n_messages == len(wire)
    # ... per-link bytes_moved attributes a span to each link it holds.
    per_link = sum(st.bytes_moved for st in prof.links.values())
    assert per_link == sum(
        int(r.meta["nbytes"]) * len(r.meta["links"]) for r in wire)
    assert per_link == res.tracer.metrics.counter_total("wire.bytes")


def test_profile_histogram_consistent_with_links():
    prof = CommProfile.from_result(run_traffic())
    assert sum(prof.size_histogram.values()) == prof.n_messages
    assert sum(st.transfers for st in prof.links.values()) >= prof.n_messages
    assert all(n > 0 for n in prof.size_histogram.values())


def test_profile_rank_pipeline_time():
    res = run_traffic(CompressionConfig.mpc_opt())
    prof = CommProfile.from_result(res)
    assert prof.rank_pipeline_time
    assert set(prof.rank_pipeline_time) <= set(range(4))
    for t in prof.rank_pipeline_time.values():
        assert t > 0
    assert "pipeline time by rank" in prof.report()


def test_profile_from_empty_tracer():
    from repro.sim import Tracer

    prof = CommProfile.from_tracer(Tracer(), elapsed=0.0)
    assert prof.n_messages == 0
    assert prof.total_wire_bytes == 0
    assert prof.links == {} and prof.size_histogram == {}
    assert prof.busiest_link is None
    assert "0 wire transfers" in prof.report()  # renders without dividing by 0


def test_profile_empty_run():
    cluster = Cluster(machine_preset("ri2"), nodes=1, gpus_per_node=1)

    def rank_fn(comm):
        yield comm.sim.timeout(1e-6)

    res = cluster.run(rank_fn)
    prof = CommProfile.from_result(res)
    assert prof.n_messages == 0
    assert prof.busiest_link is None
    assert "0 wire transfers" in prof.report()


def test_profile_codec_cache_counters():
    from repro.compression.cache import GLOBAL_CODEC_CACHE

    GLOBAL_CODEC_CACHE.clear()
    res = run_traffic(CompressionConfig.mpc_opt())
    # The run's delta is recorded on the result and flows into the
    # profile; a 4-rank allgather re-compresses the same buffers, so a
    # fresh cache must see both misses and hits.
    assert res.codec_cache["misses"] > 0
    assert res.codec_cache["hits"] > 0
    assert res.codec_cache["bytes_saved"] > 0
    prof = CommProfile.from_result(res)
    assert prof.codec_cache == res.codec_cache
    assert prof.as_dict()["codec_cache"] == res.codec_cache
    assert "codec cache (host-side):" in prof.report()
    # A second identical run hits where the first missed: the delta is
    # per-run, not cumulative.
    res2 = run_traffic(CompressionConfig.mpc_opt())
    assert res2.codec_cache["hits"] >= res.codec_cache["hits"]
    assert res2.codec_cache["misses"] == 0


def test_profile_codec_cache_absent_without_compression():
    prof = CommProfile.from_result(run_traffic())
    # Disabled compression never touches the codec cache.
    assert prof.codec_cache["hits"] == 0
    assert prof.codec_cache["misses"] == 0
