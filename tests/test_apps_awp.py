"""AWP mini-app: grid, solver numerics, runner metrics."""

import numpy as np
import pytest

from repro.apps.awp import ProcessGrid, WaveSolver, run_awp, weak_scaling
from repro.apps.awp.solver import HALO
from repro.apps.awp.surrogate import SurrogateSolver
from repro.core import CompressionConfig
from repro.errors import ConfigError


# -- grid ---------------------------------------------------------------------

def test_grid_factorization():
    assert ProcessGrid.for_size(1) == ProcessGrid(1, 1)
    assert ProcessGrid.for_size(4) == ProcessGrid(2, 2)
    assert ProcessGrid.for_size(8) == ProcessGrid(2, 4)
    assert ProcessGrid.for_size(12) == ProcessGrid(3, 4)
    assert ProcessGrid.for_size(7) == ProcessGrid(1, 7)


def test_grid_coords_roundtrip():
    g = ProcessGrid(3, 4)
    for r in range(g.size):
        ix, iy = g.coords(r)
        assert g.rank_of(ix, iy) == r


def test_grid_neighbors_interior():
    g = ProcessGrid(3, 3)
    n = g.neighbors(4)  # centre
    assert n == {"-x": 3, "+x": 5, "-y": 1, "+y": 7}


def test_grid_neighbors_boundary():
    g = ProcessGrid(3, 3)
    n = g.neighbors(0)
    assert n["-x"] is None and n["-y"] is None
    assert n["+x"] == 1 and n["+y"] == 3


def test_grid_invalid():
    with pytest.raises(ConfigError):
        ProcessGrid(0, 1)
    with pytest.raises(ConfigError):
        ProcessGrid(2, 2).coords(4)


# -- solver -----------------------------------------------------------------------

def make_solver(shape=(16, 16, 16)):
    return WaveSolver(shape, rank=0, grid=ProcessGrid(1, 1))


def test_solver_shape_validation():
    with pytest.raises(ConfigError):
        WaveSolver((2, 16, 16), 0, ProcessGrid(1, 1))
    with pytest.raises(ConfigError):
        WaveSolver((16, 16, 16), 0, ProcessGrid(1, 1), dt=1.0)


def test_faces_have_expected_size():
    s = make_solver((8, 12, 16))
    assert s.face_to_send("-x").size == HALO * 12 * 16
    assert s.face_to_send("+y").size == HALO * 8 * 16
    assert s.face_nbytes("-x") == HALO * 12 * 16 * 4


def test_face_roundtrip_between_solvers():
    """What one solver sends lands correctly in its neighbour's halo."""
    g = ProcessGrid(2, 1)
    left = WaveSolver((8, 8, 8), 0, g)
    right = WaveSolver((8, 8, 8), 1, g)
    left.u[:] = 1.0
    right.apply_received("-x", left.face_to_send("+x"))
    assert np.all(right.u[0:HALO, HALO:-HALO, HALO:-HALO] == 1.0)


def test_bad_direction():
    s = make_solver()
    with pytest.raises(ConfigError):
        s.face_to_send("+z")
    with pytest.raises(ConfigError):
        s.apply_received("?", np.zeros(1, np.float32))


def test_source_injection_center_rank_only():
    g = ProcessGrid(2, 2)
    owners = []
    for r in range(4):
        s = WaveSolver((8, 8, 8), r, g)
        s.inject_source()
        owners.append(s.energy() > 0)
    assert sum(owners) == 1


def test_wave_propagates_outward():
    s = make_solver((24, 24, 24))
    s.inject_source()
    e0 = s.energy()
    for _ in range(10):
        s.apply_physical_boundaries(ProcessGrid(1, 1).neighbors(0))
        s.inject_source()
        s.step_compute()
    # Energy has been injected and the field spread beyond the centre.
    assert s.energy() > e0
    interior = s.interior()
    c = interior[12, 12, 12]
    assert np.count_nonzero(np.abs(interior) > 1e-9) > 100


def test_stability_over_many_steps():
    s = make_solver((16, 16, 16))
    s.inject_source()
    nbrs = ProcessGrid(1, 1).neighbors(0)
    for _ in range(50):
        s.apply_physical_boundaries(nbrs)
        s.inject_source()
        s.step_compute()
    assert np.isfinite(s.interior()).all()
    assert s.energy() < 1e6  # no blow-up


def test_flops_metric():
    s = make_solver((10, 10, 10))
    assert s.interior_points == 1000
    assert s.flops_per_step == pytest.approx(1000 * 33.0)


# -- surrogate ---------------------------------------------------------------------

def test_surrogate_faces_match_real_sizes():
    g = ProcessGrid(2, 2)
    real = WaveSolver((16, 16, 32), 0, g)
    sur = SurrogateSolver((16, 16, 32), 0, g)
    for d in ("-x", "+x", "-y", "+y"):
        assert sur.face_to_send(d).nbytes == real.face_to_send(d).nbytes
        assert sur.face_nbytes(d) == real.face_nbytes(d)


def test_surrogate_faces_compressible():
    from repro.compression import MpcCompressor

    sur = SurrogateSolver((32, 32, 64), 0, ProcessGrid(1, 1))
    face = sur.face_to_send("+x")
    assert MpcCompressor(1).compress(face).ratio > 2.0


def test_surrogate_faces_evolve():
    sur = SurrogateSolver((16, 16, 16), 0, ProcessGrid(1, 1))
    f1 = sur.face_to_send("+x").copy()
    sur.step_compute()
    f2 = sur.face_to_send("+x")
    assert not np.array_equal(f1, f2)
    # but correlated (smooth evolution)
    assert np.abs(f1 - f2).max() < np.abs(f1).max()


# -- runner --------------------------------------------------------------------------

def test_run_awp_baseline_metrics():
    r = run_awp("frontera-liquid", gpus=4, gpus_per_node=4,
                local_shape=(16, 16, 32), steps=3)
    assert r.n_ranks == 4 and r.steps == 3
    assert r.elapsed > 0
    assert r.gflops > 0
    assert 0 < r.comm_fraction < 1
    assert r.time_per_step == pytest.approx(r.elapsed / 3)


def test_run_awp_requires_divisible_gpus():
    with pytest.raises(ConfigError):
        run_awp(gpus=6, gpus_per_node=4)


def test_awp_lossless_compression_identical_physics():
    # Faces must exceed the 16 KiB eager threshold so the rendezvous
    # (compression) path actually runs: 2*32*128*4 = 32 KiB.
    kw = dict(machine="frontera-liquid", gpus=4, gpus_per_node=2,
              local_shape=(32, 32, 128), steps=3)
    base = run_awp(**kw, config=CompressionConfig.disabled())
    mpc = run_awp(**kw, config=CompressionConfig.mpc_opt(threshold=20 * 1024))
    assert mpc.energy == pytest.approx(base.energy, rel=1e-12)
    assert mpc.energy > 0


def test_awp_zfp16_small_error_zfp4_large_error():
    """The paper's accuracy observation: rate 16 tolerable, rate 4
    'would generate incorrect output'."""
    kw = dict(machine="frontera-liquid", gpus=4, gpus_per_node=2,
              local_shape=(32, 32, 128), steps=6)
    base = run_awp(**kw, config=CompressionConfig.disabled())
    z16 = run_awp(**kw, config=CompressionConfig.zfp_opt(16, threshold=20 * 1024))
    z4 = run_awp(**kw, config=CompressionConfig.zfp_opt(4, threshold=20 * 1024))
    err16 = abs(z16.energy - base.energy) / (abs(base.energy) + 1e-30)
    err4 = abs(z4.energy - base.energy) / (abs(base.energy) + 1e-30)
    assert err16 < 1e-2
    assert err4 > 10 * err16


def test_weak_scaling_returns_grid():
    res = weak_scaling(
        "frontera-liquid", gpu_counts=[2, 4], gpus_per_node=2,
        configs=[CompressionConfig.disabled()],
        local_shape=(16, 16, 32), steps=2,
    )
    assert len(res) == 2
    assert res[0].n_ranks == 2 and res[1].n_ranks == 4


def test_surrogate_runner_large_scale():
    r = run_awp("lassen", gpus=16, gpus_per_node=4,
                local_shape=(16, 16, 64), steps=2, surrogate=True)
    assert r.gflops > 0
    assert r.energy == 0.0  # surrogate has no field
