"""Dask-lite: chunk geometry, placement, distributed transpose-sum."""

import numpy as np
import pytest

from repro.apps.dasklite import ChunkGrid, DistArray, transpose_sum_benchmark
from repro.apps.dasklite.ops import elementwise_add, transpose_sum
from repro.core import CompressionConfig
from repro.errors import ConfigError
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset


# -- geometry -----------------------------------------------------------------

def test_chunk_grid_counts():
    g = ChunkGrid(1000, 1000, 250)
    assert g.n_chunk_rows == g.n_chunk_cols == 4
    assert g.n_chunks == 16


def test_chunk_grid_ragged_edge():
    g = ChunkGrid(1000, 900, 256)
    assert g.n_chunk_rows == 4 and g.n_chunk_cols == 4
    assert g.chunk_shape(3, 3) == (1000 - 3 * 256, 900 - 3 * 256)


def test_chunk_grid_invalid():
    with pytest.raises(ConfigError):
        ChunkGrid(0, 10, 5)
    with pytest.raises(ConfigError):
        ChunkGrid(10, 10, 5).chunk_shape(9, 0)


def test_round_robin_placement_balanced():
    g = ChunkGrid(1024, 1024, 128)  # 64 chunks
    counts = [len(list(g.chunks_of(w, 4))) for w in range(4)]
    assert counts == [16, 16, 16, 16]


def test_every_chunk_owned_once():
    g = ChunkGrid(512, 512, 128)
    seen = set()
    for w in range(3):
        for ij in g.chunks_of(w, 3):
            assert ij not in seen
            seen.add(ij)
    assert len(seen) == g.n_chunks


# -- local arrays --------------------------------------------------------------------

def test_create_random_owns_only_assigned():
    g = ChunkGrid(512, 512, 128)
    arr = DistArray.create_random(g, worker=1, n_workers=4, seed=7)
    assert set(arr.owned()) == set(g.chunks_of(1, 4))
    for (i, j), c in arr.chunks.items():
        assert c.shape == g.chunk_shape(i, j)
        assert c.dtype == np.float32


def test_create_random_deterministic_across_workers():
    """Chunk content depends only on chunk index — two workers agree on
    what any chunk holds (needed for cross-checking the math)."""
    g = ChunkGrid(256, 256, 128)
    a0 = DistArray.create_random(g, 0, 1, seed=3)  # owns all
    a1 = DistArray.create_random(g, 1, 2, seed=3)
    for ij in a1.owned():
        assert np.array_equal(a0.chunks[ij], a1.chunks[ij])


# -- distributed op correctness ---------------------------------------------------------

def reference_transpose_sum(grid: ChunkGrid, seed: int) -> np.ndarray:
    full = DistArray.create_random(grid, 0, 1, seed=seed)
    n = grid.rows
    x = np.zeros((n, n), dtype=np.float32)
    for (i, j), c in full.chunks.items():
        x[i * grid.chunk:(i) * grid.chunk + c.shape[0],
          j * grid.chunk:(j) * grid.chunk + c.shape[1]] = c
    return x + x.T


@pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
def test_transpose_sum_matches_reference(n_workers):
    grid = ChunkGrid(256, 256, 64)
    cluster = Cluster(machine_preset("ri2"), nodes=max(1, n_workers), gpus_per_node=1)

    def worker(comm):
        x = DistArray.create_random(grid, comm.rank, comm.size, seed=11)
        y = yield from transpose_sum(comm, x)
        return y.chunks

    res = cluster.run(worker, nprocs=n_workers)
    ref = reference_transpose_sum(grid, seed=11)
    for chunks in res.values:
        for (i, j), c in chunks.items():
            expect = ref[i * 64:i * 64 + c.shape[0], j * 64:j * 64 + c.shape[1]]
            assert np.allclose(c, expect, atol=1e-5), (i, j)


def test_transpose_sum_with_zfp_within_tolerance():
    grid = ChunkGrid(512, 512, 256)
    cluster = Cluster(machine_preset("ri2"), nodes=2, gpus_per_node=1)

    def worker(comm):
        x = DistArray.create_random(grid, comm.rank, comm.size, seed=2)
        y = yield from transpose_sum(comm, x)
        return y.checksum()

    base = cluster.run(worker, config=CompressionConfig.disabled())
    z16 = cluster.run(worker, config=CompressionConfig.zfp_opt(16))
    total_b = sum(base.values)
    total_z = sum(z16.values)
    assert total_z == pytest.approx(total_b, rel=1e-2)


def test_elementwise_add_no_comm():
    grid = ChunkGrid(128, 128, 64)
    cluster = Cluster(machine_preset("ri2"), nodes=2, gpus_per_node=1)

    def worker(comm):
        a = DistArray.create_random(grid, comm.rank, comm.size, seed=1)
        out = yield from elementwise_add(comm, a, a)
        return out.checksum(), a.checksum()

    res = cluster.run(worker)
    for total, single in res.values:
        assert total == pytest.approx(2 * single)
    # no network spans at all
    assert res.tracer.total("network") == 0.0


# -- benchmark harness -------------------------------------------------------------------

def test_benchmark_metrics():
    r = transpose_sum_benchmark(n_workers=2, dims=512, chunk=128)
    assert r.execution_time > 0
    assert r.aggregate_throughput > 0
    assert r.bytes_on_wire > 0
    assert r.n_workers == 2


def test_benchmark_compression_helps_fig14():
    base = transpose_sum_benchmark(n_workers=4, dims=2048, chunk=512)
    z8 = transpose_sum_benchmark(n_workers=4, dims=2048, chunk=512,
                                 config=CompressionConfig.zfp_opt(8))
    speedup = base.execution_time / z8.execution_time
    assert speedup > 1.0  # paper: avg 1.18x at rate 8
    assert z8.aggregate_throughput > base.aggregate_throughput


def test_benchmark_single_worker_no_wire():
    r = transpose_sum_benchmark(n_workers=1, dims=256, chunk=128)
    assert r.bytes_on_wire == 0
