"""Benchmark trajectory: deterministic snapshots, the CLI round trip,
and zero-tolerance regression gating (ISSUE 3 acceptance criteria).
"""

import json
import os

import pytest

from repro.analysis import bench
from repro.analysis.metrics import HistogramStat
from repro.gpu.spec import DeviceSpec


# -- histogram percentiles (satellite: p50/p95/p99) -------------------------

def test_histogram_percentiles_deterministic():
    def build():
        h = HistogramStat()
        for v in [1, 2, 3, 100, 200, 300, 5000]:
            h.observe(v)
        return h

    a, b = build(), build()
    assert (a.p50, a.p95, a.p99) == (b.p50, b.p95, b.p99)
    assert a.as_dict() == b.as_dict()
    for key in ("p50", "p95", "p99"):
        assert key in a.as_dict()
    assert a.min <= a.p50 <= a.p95 <= a.p99 <= a.max


def test_histogram_percentile_edges():
    h = HistogramStat()
    assert h.p50 == 0.0  # empty histogram
    h.observe(42.0)
    assert h.p50 == 42.0 == h.p99  # single value: clamped to [min, max]
    with pytest.raises(ValueError):
        h.percentile(0.0)
    with pytest.raises(ValueError):
        h.percentile(1.5)


# -- snapshot collection ----------------------------------------------------

def test_scenario_matrix_shape():
    names = [s.name for s in bench.scenario_matrix(quick=True)]
    assert len(names) == len(set(names))
    kinds = {s.kind for s in bench.scenario_matrix(quick=True)}
    assert kinds == {"pt2pt", "collective", "awp", "chaos"}
    for cfg in bench.PT2PT_CONFIGS:
        assert f"pt2pt/{cfg}" in names


def test_sweep_sizes_shared_with_benchmarks():
    # benchmarks/_common.py must read its sweep from here (one source
    # of truth); sanity-check the canonical values
    assert bench.sweep_sizes(full=False)[0] == 256 * 1024
    assert bench.sweep_sizes(full=True)[-1] == 32 * 1024 * 1024
    assert set(bench.QUICK_SIZES) <= set(bench.sweep_sizes(full=False))


def test_named_config_vocabulary():
    for name in bench.CONFIG_NAMES:
        cfg = bench.named_config(name)
        assert cfg is not None
    with pytest.raises(KeyError):
        bench.named_config("nope")


@pytest.fixture(scope="module")
def quick_doc():
    return bench.collect(quick=True, label="test",
                         only="pt2pt/naive-mpc")


def test_collect_byte_identical(quick_doc):
    again = bench.collect(quick=True, label="test",
                          only="pt2pt/naive-mpc")
    assert bench.dumps(quick_doc) == bench.dumps(again)


def test_snapshot_schema(quick_doc):
    assert quick_doc["schema_version"] == bench.SCHEMA_VERSION
    sc = quick_doc["scenarios"]["pt2pt/naive-mpc"]
    assert sc["kind"] == "pt2pt"
    assert all(k.startswith("latency_us[") for k in sc["metrics"])
    assert sc["attribution"].keys() == {
        "compression", "communication", "decompression", "other"}
    assert sc["counters"]["mpi.sends"] > 0
    assert sc["counters"]["compression_ratio"] > 1
    assert "compress.kernel_us.p50" in sc["counters"]
    # no wall-clock section unless explicitly requested
    assert "wall" not in sc


def test_self_compare_ok(quick_doc):
    cmp = bench.compare(quick_doc, quick_doc)
    assert cmp.ok and cmp.checked > 0
    assert "OK" in cmp.report()


def test_synthetic_slowdown_detected(quick_doc, monkeypatch):
    """Doubling the cudaMemcpy cost must trip the gate: naive-mpc uses
    memcpy_d2h for the compressed-size retrieval, so its simulated
    latency moves, and zero tolerance flags it."""
    orig = DeviceSpec.memcpy_time
    monkeypatch.setattr(DeviceSpec, "memcpy_time",
                        lambda self, nbytes: 2.0 * orig(self, nbytes))
    slowed = bench.collect(quick=True, label="test",
                           only="pt2pt/naive-mpc")
    cmp = bench.compare(slowed, quick_doc)
    assert not cmp.ok
    assert any("latency_us" in d.metric and not d.advisory
               for d in cmp.drifts)
    assert "DRIFT" in cmp.report()


def test_compare_missing_scenario_gates(quick_doc):
    empty = {"schema_version": bench.SCHEMA_VERSION, "label": "x",
             "mode": "quick", "scenarios": {}}
    assert not bench.compare(empty, quick_doc).ok      # scenario vanished
    assert bench.compare(quick_doc, empty).ok          # new coverage only


def test_compare_wall_is_advisory(quick_doc):
    base = json.loads(bench.dumps(quick_doc))
    cur = json.loads(bench.dumps(quick_doc))
    base["scenarios"]["pt2pt/naive-mpc"]["wall"] = {"seconds": 1.0}
    cur["scenarios"]["pt2pt/naive-mpc"]["wall"] = {"seconds": 10.0}
    cmp = bench.compare(cur, base)
    assert cmp.ok  # wall drift never gates
    assert any(d.advisory and d.metric == "wall.seconds" for d in cmp.drifts)


def test_label_excluded_from_comparison(quick_doc):
    relabeled = json.loads(bench.dumps(quick_doc))
    relabeled["label"] = "other"
    assert bench.compare(relabeled, quick_doc).ok


def test_load_rejects_wrong_schema(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(ValueError):
        bench.load(p)


# -- CLI round trip ---------------------------------------------------------

def _main(argv):
    from repro.__main__ import main

    return main(argv)


def test_cli_bench_out_and_self_compare(tmp_path, capsys):
    out = tmp_path / "BENCH_pr3.json"
    rc = _main(["bench", "--quick", "--label", "pr3",
                "--scenario", "pt2pt/naive-mpc", "--out", str(out)])
    assert rc == 0 and out.exists()
    doc = bench.load(out)
    assert doc["scenarios"]
    # --against + --compare on its own output: exit 0, no re-run
    rc = _main(["bench", "--against", str(out), "--compare", str(out)])
    assert rc == 0
    assert "OK" in capsys.readouterr().out


def test_cli_bench_compare_fails_on_slowdown(tmp_path, monkeypatch, capsys):
    out = tmp_path / "BENCH_base.json"
    assert _main(["bench", "--quick", "--scenario", "pt2pt/naive-mpc",
                  "--out", str(out)]) == 0
    orig = DeviceSpec.memcpy_time
    monkeypatch.setattr(DeviceSpec, "memcpy_time",
                        lambda self, nbytes: 2.0 * orig(self, nbytes))
    slow = tmp_path / "BENCH_slow.json"
    with pytest.raises(SystemExit) as exc:
        _main(["bench", "--quick", "--scenario", "pt2pt/naive-mpc",
               "--out", str(slow), "--compare", str(out)])
    assert exc.value.code == 1
    assert "DRIFT" in capsys.readouterr().out


def test_committed_baseline_matches(capsys):
    """The checked-in CI baseline must match a fresh run bit-for-bit —
    regenerate tests/data/BENCH_baseline.json when the performance
    model changes on purpose (python -m repro bench --quick --label
    baseline --out tests/data/BENCH_baseline.json)."""
    path = os.path.join(os.path.dirname(__file__), "data",
                        "BENCH_baseline.json")
    baseline = bench.load(path)
    current = bench.collect(quick=True, label="baseline")
    cmp = bench.compare(current, baseline)
    assert cmp.ok, cmp.report()
    assert bench.dumps(current) == open(path).read()


# -- scale matrix (1k+-rank hierarchical runs) -------------------------------

def test_scale_matrix_shape():
    scs = bench.scale_matrix()
    names = [s.name for s in scs]
    assert names == ["scale/allgather-64/fat-tree",
                     "scale/allgather-1024/fat-tree",
                     "scale/awp-4096/dragonfly"]
    for s in scs:
        # Scale points run untraced; the collectives also skip warm-up.
        assert s.params.get("trace") is False
        if s.kind == "collective":
            assert s.params["warmup"] == 0
    big = scs[1].params
    assert big["nodes"] * big["ppn"] == 1024
    awp = scs[2].params
    assert awp["gpus"] == 4096 and awp["surrogate"] is True


def test_scale_collect_deterministic_and_marked():
    a = bench.collect(scale=True, label="t", only="allgather-64")
    b = bench.collect(scale=True, label="t", only="allgather-64")
    assert a["mode"] == "scale"
    assert list(a["scenarios"]) == ["scale/allgather-64/fat-tree"]
    assert bench.dumps(a) == bench.dumps(b)


def test_scale_mode_mismatch_gates(tmp_path):
    quick = {"schema_version": bench.SCHEMA_VERSION, "label": "x",
             "mode": "quick", "scenarios": {}}
    scale = {"schema_version": bench.SCHEMA_VERSION, "label": "x",
             "mode": "scale", "scenarios": {}}
    assert not bench.compare(quick, scale).ok


def test_committed_scale_baseline_64_point_matches():
    """The small scale point must match the committed scale baseline
    bit-for-bit (regenerate tests/data/BENCH_scale_baseline.json with
    python -m repro bench --scale --label scale_baseline --out ... when
    the performance model changes on purpose).  The 1024/4096-rank
    points are exercised by CI's scale-smoke job, not here."""
    path = os.path.join(os.path.dirname(__file__), "data",
                        "BENCH_scale_baseline.json")
    baseline = bench.load(path)
    assert baseline["mode"] == "scale"
    assert set(baseline["scenarios"]) == {
        "scale/allgather-64/fat-tree", "scale/allgather-1024/fat-tree",
        "scale/awp-4096/dragonfly"}
    current = bench.collect(scale=True, label="scale_baseline",
                            only="allgather-64")
    name = "scale/allgather-64/fat-tree"
    assert current["scenarios"][name] == baseline["scenarios"][name]
