"""Buffer sanitizer (repro.check.asan) tests, including the pool
edge-case satellite: double release, use-after-free and leaks each
raise a distinct error type."""

import numpy as np
import pytest

from repro.analysis.bench import named_config
from repro.check.asan import BufferSanitizer, asan_default, asan_scope
from repro.check.fixtures import (run_double_release, run_leak,
                                  run_use_after_free)
from repro.errors import (BufferLeakError, BufferSanitizerError,
                          DoubleReleaseError, GpuError, UseAfterFreeError)
from repro.gpu.device import Device
from repro.gpu.pool import BufferPool, SizeClassBufferPool
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload
from repro.sim.engine import Simulator


def make_device(asan=True):
    sim = Simulator()
    sim.asan = BufferSanitizer() if asan else None
    return Device(sim, machine_preset("longhorn").device, device_id=0)


# -- the three distinct failure modes ---------------------------------------

def test_double_release_raises_distinct_error():
    with pytest.raises(DoubleReleaseError):
        run_double_release()


def test_use_after_free_raises_distinct_error():
    with pytest.raises(UseAfterFreeError):
        run_use_after_free()


def test_leak_raises_distinct_error():
    with pytest.raises(BufferLeakError):
        run_leak()


def test_all_are_buffer_sanitizer_errors():
    for exc in (DoubleReleaseError, UseAfterFreeError, BufferLeakError):
        assert issubclass(exc, BufferSanitizerError)
        assert issubclass(exc, GpuError)


# -- lifecycle details -------------------------------------------------------

def test_clean_pool_cycle_is_clean():
    device = make_device()
    pool = BufferPool(device, 2048, count=2)

    def proc():
        a = yield from pool.acquire(100, label="a")
        b = yield from pool.acquire(200, label="b")
        a.write(np.zeros(4, dtype=np.float32))
        a.read()
        yield from pool.release(a)
        yield from pool.release(b)

    device.sim.run_process(proc())
    device.sim.asan.assert_clean()
    stats = device.sim.asan.stats()
    assert stats["buffers"] == 2
    assert stats["states"] == {"pool_free": 2}


def test_double_cuda_free_detected_before_generic_error():
    device = make_device()

    def proc():
        buf = yield from device.malloc(512, label="x")
        yield from device.free(buf)
        yield from device.free(buf)

    with pytest.raises(DoubleReleaseError):
        device.sim.run_process(proc())


def test_write_after_cuda_free_detected():
    device = make_device()

    def proc():
        buf = yield from device.malloc(512, label="x")
        yield from device.free(buf)
        buf.write(np.zeros(2, dtype=np.float32))

    with pytest.raises(UseAfterFreeError):
        device.sim.run_process(proc())


def test_release_to_size_class_pool_tracked():
    device = make_device()
    pool = SizeClassBufferPool(device, min_bytes=1 << 10, max_bytes=1 << 12,
                               count_per_class=1)

    def proc():
        buf = yield from pool.acquire(1 << 10, label="x")
        yield from pool.release(buf)
        yield from pool.release(buf)

    with pytest.raises(DoubleReleaseError):
        device.sim.run_process(proc())


def test_disabled_sanitizer_keeps_legacy_behavior():
    device = make_device(asan=False)

    def proc():
        buf = yield from device.malloc(512, label="x")
        yield from device.free(buf)
        yield from device.free(buf)

    with pytest.raises(GpuError, match="double free"):
        device.sim.run_process(proc())


# -- enablement plumbing -----------------------------------------------------

def test_asan_scope_flips_default():
    assert asan_default() is False
    with asan_scope():
        assert asan_default() is True
        with asan_scope(False):
            assert asan_default() is False
    assert asan_default() is False


def _pingpong(comm, data):
    if comm.rank == 0:
        yield from comm.send(data, dest=1, tag=1)
        got = yield from comm.recv(source=1, tag=2)
    else:
        got = yield from comm.recv(source=0, tag=1)
        yield from comm.send(got, dest=0, tag=2)
    return got.nbytes


@pytest.mark.parametrize("config_name", ["mpc-opt", "zfp8-pipe"])
def test_cluster_run_clean_under_asan(config_name):
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 20, seed=1)
    res = cluster.run(_pingpong, config=named_config(config_name),
                      args=(data,), asan=True)
    assert res.asan is not None
    assert res.asan.leaks() == []
    assert res.asan.stats()["events"] > 0


def test_cluster_run_respects_scope_default():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 20, seed=1)
    with asan_scope():
        res = cluster.run(_pingpong, config=named_config("mpc-opt"),
                          args=(data,))
    assert res.asan is not None
    res2 = cluster.run(_pingpong, config=named_config("mpc-opt"),
                       args=(data,))
    assert res2.asan is None


def test_sanitized_run_is_bit_identical():
    """asan is pure bookkeeping: traces match span for span."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 20, seed=1)
    plain = cluster.run(_pingpong, config=named_config("zfp8-pipe"),
                        args=(data,), asan=False)
    checked = cluster.run(_pingpong, config=named_config("zfp8-pipe"),
                          args=(data,), asan=True)
    assert plain.elapsed == checked.elapsed
    assert ([r.key() for r in plain.tracer.records]
            == [r.key() for r in checked.tracer.records])
