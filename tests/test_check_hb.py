"""Happens-before engine + detectors (repro.check.hb) tests.

Covers the PR 9 acceptance criteria: the vector-clock relation itself
(lane / tree / rendezvous / collective-barrier / fail-stop edges, the
time guard, cycle reporting), each of the four detectors on its
known-bad fixture, the clean in-process smoke, and identical findings
across both committed golden trace formats.
"""

from pathlib import Path

import pytest

from repro.check import fixtures
from repro.check.hb import HappensBefore, HBChecker
from repro.errors import BufferRaceError
from repro.sim.trace import TraceRecord

DATA = Path(__file__).parent / "data"
GOLDEN_JSON = DATA / "golden_trace_mpc.json"
GOLDEN_RPRT = DATA / "golden_trace_mpc.rprt"


def _rec(t0, t1, category, label, meta=None, rank=0, track="main",
         span_id=0, parent_id=None):
    return TraceRecord(t0, t1, category, label, meta or {}, rank, track,
                       span_id, parent_id)


# -- the relation ------------------------------------------------------------

def test_serial_lane_program_order():
    hb = HappensBefore([
        _rec(0.0, 1e-6, "compression_kernel", "k0", track="stream0",
             span_id=1),
        _rec(2e-6, 3e-6, "compression_kernel", "k1", track="stream0",
             span_id=2),
    ])
    assert hb.hb_span(1, 2)
    assert not hb.hb_span(2, 1)
    assert not hb.concurrent_spans(1, 2)


def test_parallel_tracks_are_concurrent():
    hb = HappensBefore([
        _rec(0.0, 1e-6, "compression_kernel", "k0", track="stream0",
             span_id=1),
        _rec(2e-6, 3e-6, "compression_kernel", "k1", track="stream1",
             span_id=2),
    ])
    # later in time but on an independent lane: no ordering either way
    assert hb.concurrent_spans(1, 2)


def test_main_track_is_not_a_serial_lane():
    # two processes interleave on "main" freely; time alone is no edge
    hb = HappensBefore([
        _rec(0.0, 1e-6, "compute", "a", span_id=1),
        _rec(2e-6, 3e-6, "compute", "b", span_id=2),
    ])
    assert hb.concurrent_spans(1, 2)


def test_rendezvous_orders_sender_before_receiver():
    seq = {"seq": 4}
    hb = HappensBefore([
        _rec(0.0, 1e-6, "pipeline", "sender_prepare", dict(seq), span_id=1),
        _rec(1e-6, 1.2e-6, "pipeline", "rts", dict(seq, dst=1, tag=0),
             span_id=2),
        _rec(1.3e-6, 1.5e-6, "pipeline", "cts", dict(seq, dst=0), rank=1,
             span_id=3),
        _rec(1.6e-6, 2e-6, "pipeline", "wire_transfer",
             dict(seq, nbytes=64), span_id=4),
        _rec(2e-6, 2.5e-6, "pipeline", "receiver_complete", dict(seq),
             rank=1, span_id=5),
    ])
    # the full chain is ordered end to end, across ranks
    assert hb.hb_span(1, 5)
    assert hb.hb_span(2, 5)
    assert not hb.hb_span(5, 1)


def test_time_guard_drops_acausal_meta_edges():
    # the acausal fixture (cts before rts, wire before cts ends) must
    # not create a cycle: contradictory edges are dropped, not fatal
    hb = HappensBefore(fixtures.acausal_records())
    assert hb.cyclic_nodes == []
    assert hb.cycle_violations() == []


def test_instantaneous_contradiction_is_a_cycle_finding():
    # two zero-width spans at the same instant whose lane order and
    # rendezvous order disagree: the time guard cannot break the tie,
    # so the cycle is reported and the spans stay unordered
    hb = HappensBefore([
        _rec(0.0, 0.0, "pipeline", "cts", {"seq": 5}, track="stream0",
             span_id=1),
        _rec(0.0, 0.0, "pipeline", "rts", {"seq": 5}, track="stream0",
             span_id=2),
    ])
    assert hb.cyclic_nodes
    (v,) = hb.cycle_violations()
    assert v.check == "hb-cycle"
    assert v.span_ids == (1, 2)
    assert hb.concurrent_spans(1, 2)


def test_collective_barrier_needs_instance_meta():
    def records(meta):
        return [
            _rec(0.0, 5e-6, "collective", "allreduce",
                 dict(meta, size=2), rank=0, span_id=1),
            _rec(2e-6, 3e-6, "collective", "allreduce",
                 dict(meta, size=2), rank=1, span_id=2),
        ]

    hb = HappensBefore(records({"comm": 1, "coll_seq": 0}))
    a0 = next(r for r in hb.records if r.rank == 0)
    a1 = next(r for r in hb.records if r.rank == 1)
    # nobody exits before everybody entered: S(rank1) -> E(rank0)
    assert hb.hb_node(hb._s(a1), hb._e(a0))
    assert hb.hb_node(hb._s(a0), hb._e(a1))

    # pre-PR-9 traces without (comm, coll_seq) get no barrier
    hb = HappensBefore(records({}))
    a0 = next(r for r in hb.records if r.rank == 0)
    a1 = next(r for r in hb.records if r.rank == 1)
    assert not hb.hb_node(hb._s(a1), hb._e(a0))


def test_rooted_collectives_get_no_barrier():
    hb = HappensBefore([
        _rec(0.0, 5e-6, "collective", "bcast",
             {"comm": 1, "coll_seq": 0}, rank=0, span_id=1),
        _rec(2e-6, 3e-6, "collective", "bcast",
             {"comm": 1, "coll_seq": 0}, rank=1, span_id=2),
    ])
    a0 = next(r for r in hb.records if r.rank == 0)
    a1 = next(r for r in hb.records if r.rank == 1)
    assert not hb.hb_node(hb._s(a1), hb._e(a0))


def test_failstop_orders_kill_before_detection():
    hb = HappensBefore([
        _rec(2e-6, 2e-6, "faults", "rank_kill", {"incarnation": 0},
             rank=1, track="faults", span_id=1),
        _rec(3e-6, 3e-6, "resilience", "rank_failed", {"peer": 1},
             rank=0, track="faults", span_id=2),
        _rec(3e-6, 3e-6, "resilience", "rank_failed", {"peer": 2},
             rank=0, track="faults", span_id=3),
    ])
    assert hb.hb_span(1, 2)       # names the victim: ordered after kill
    assert hb.concurrent_spans(1, 3)  # names somebody else: unrelated


def test_parent_child_tree_edges():
    hb = HappensBefore([
        _rec(0.0, 5e-6, "compute", "parent", span_id=1),
        _rec(1e-6, 2e-6, "compute", "child", span_id=2, parent_id=1),
        _rec(6e-6, 7e-6, "compute", "after", track="stream0", span_id=3),
    ])
    # S(parent) -> S(child) and E(child) -> E(parent) order the pair's
    # nodes, but neither span fully precedes the other
    assert not hb.hb_span(1, 2) and not hb.hb_span(2, 1)
    p = next(r for r in hb.records if r.span_id == 1)
    c = next(r for r in hb.records if r.span_id == 2)
    assert hb.hb_node(hb._s(p), hb._s(c))
    assert hb.hb_node(hb._e(c), hb._e(p))


# -- buffer races ------------------------------------------------------------

def test_buffer_race_fixture_raises():
    with pytest.raises(BufferRaceError):
        fixtures.run_buffer_race()


def test_same_process_writes_are_program_ordered():
    import numpy as np

    from repro.sim.trace import Tracer

    sim, pool = fixtures._pool_sim()
    sim.asan.record_accesses = True
    tracer = Tracer(sim)

    def proc():
        buf = yield from pool.acquire(1024, label="mine")
        with tracer.open_span("compute", "w1", rank=0, track="main"):
            buf.write(np.arange(8, dtype=np.float32))
        with tracer.open_span("compute", "w2", rank=0, track="main"):
            buf.write(np.arange(8, dtype=np.float32))
        yield from pool.release(buf)

    sim.run_process(proc())
    checker = HBChecker.from_tracer(tracer, access_log=sim.asan.access_log)
    assert checker.check_races() == []
    checker.assert_race_free()  # must not raise


def test_no_access_log_means_no_race_findings():
    checker = HBChecker(fixtures.message_race_records())
    assert checker.check_races() == []


# -- message races -----------------------------------------------------------

def test_message_race_fixture_detected():
    (v,) = HBChecker(fixtures.message_race_records()).check_message_races()
    assert v.check == "message-race"
    assert set(v.span_ids) == {1, 2, 3}
    assert "timing-dependent" in v.message


def test_same_sender_rival_is_exempt():
    recs = [r for r in fixtures.message_race_records()]
    # rival now comes from the same rank as the matched send: MPI
    # non-overtaking orders them, no race
    recs[1] = _rec(0.0, 1e-6, "pipeline", "rts",
                   {"seq": 12, "dst": 1, "tag": 5}, rank=0, span_id=2)
    assert HBChecker(recs).check_message_races() == []


def test_tag_incompatible_rival_is_exempt():
    recs = [
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 11, "dst": 1, "tag": 5}, rank=0, span_id=1),
        _rec(0.0, 1e-6, "pipeline", "rts",
             {"seq": 12, "dst": 1, "tag": 6}, rank=2, span_id=2),
        # the receive posted tag 5 explicitly: the tag-6 send from rank
        # 2 never qualified
        _rec(2e-6, 2e-6, "matching", "wildcard_match",
             {"seq": 11, "src": 0, "tag": 5, "posted_tag": 5},
             rank=1, span_id=3),
    ]
    assert HBChecker(recs).check_message_races() == []


def test_eager_match_without_rts_is_skipped():
    recs = [
        _rec(2e-6, 2e-6, "matching", "wildcard_match",
             {"seq": 11, "src": 0, "tag": 5, "posted_tag": -1},
             rank=1, span_id=1),
    ]
    assert HBChecker(recs).check_message_races() == []


# -- deadlock cycles ---------------------------------------------------------

def test_deadlock_fixture_explained_as_cycle():
    (v,) = HBChecker(fixtures.deadlock_records()).check_deadlock()
    assert v.check == "deadlock-cycle"
    assert "[0 -> 1 -> 2 -> 0]" in v.message
    assert len(v.span_ids) == 3


def test_completed_handshake_is_not_a_deadlock():
    seq = {"seq": 1}
    recs = [
        _rec(0.0, 1e-6, "pipeline", "rts", dict(seq, dst=1, tag=0),
             rank=0, span_id=1),
        _rec(1e-6, 2e-6, "pipeline", "cts", dict(seq, dst=0), rank=1,
             span_id=2),
        _rec(2e-6, 3e-6, "pipeline", "receiver_complete", dict(seq),
             rank=1, span_id=3),
    ]
    assert HBChecker(recs).check_deadlock() == []


def test_two_rank_mutual_rts_cycle():
    recs = [
        _rec(0.0, 1e-6, "pipeline", "rts", {"seq": 1, "dst": 1, "tag": 0},
             rank=0, span_id=1),
        _rec(0.0, 1e-6, "pipeline", "rts", {"seq": 2, "dst": 0, "tag": 0},
             rank=1, span_id=2),
    ]
    (v,) = HBChecker(recs).check_deadlock()
    assert "[0 -> 1 -> 0]" in v.message


# -- typestate ---------------------------------------------------------------

def test_wire_typestate_fixture_detected():
    vs = HBChecker(fixtures.bad_wire_records()).check_typestate()
    checks = {v.check for v in vs}
    assert {"wire-typestate", "revoked-comm"} <= checks
    assert len(vs) >= 3


def test_clean_wire_lifecycle_passes():
    recs = [
        _rec(0.0, 1e-6, "pipeline", "pack_wire",
             {"origin_seq": 40, "nbytes": 64}, span_id=1),
        _rec(2e-6, 3e-6, "pipeline", "unpack_wire",
             {"origin_seq": 40, "nbytes": 64}, rank=1, span_id=2),
    ]
    assert HBChecker(recs).check_typestate() == []


def test_unpack_before_seal_detected():
    recs = [
        _rec(1e-6, 3e-6, "pipeline", "pack_wire",
             {"origin_seq": 40, "nbytes": 64}, span_id=1),
        _rec(2e-6, 4e-6, "pipeline", "unpack_wire",
             {"origin_seq": 40, "nbytes": 64}, rank=1, span_id=2),
    ]
    (v,) = HBChecker(recs).check_typestate()
    assert v.check == "wire-typestate"
    assert "before its pack" in v.message


def test_double_mint_detected():
    recs = [
        _rec(0.0, 1e-6, "pipeline", "pack_wire",
             {"origin_seq": 40, "nbytes": 64}, span_id=1),
        _rec(0.0, 1e-6, "pipeline", "reduce_wire",
             {"origin_seq": 40, "nbytes": 64}, rank=1, span_id=2),
    ]
    (v,) = HBChecker(recs).check_typestate()
    assert "minted 2 times" in v.message


def test_post_shrink_communicator_is_exempt():
    recs = [
        _rec(3e-6, 3e-6, "faults", "comm_revoke",
             {"comm_id": 7, "failed": [1]}, rank=None, track="faults",
             span_id=1),
        # the shrunk communicator has a fresh id: not a violation
        _rec(4e-6, 5e-6, "collective", "allreduce",
             {"comm": 8, "coll_seq": 0, "size": 1}, span_id=2),
    ]
    assert HBChecker(recs).check_typestate() == []


# -- end to end --------------------------------------------------------------

def test_clean_pt2pt_smoke_has_no_findings():
    from repro.check.cli import _smoke_run

    res = _smoke_run("mpc-opt", asan="record")
    checker = HBChecker.from_result(res)
    assert checker.access_log  # the sanitizer really recorded accesses
    assert checker.check_all() == []


def test_golden_traces_clean_and_identical_across_formats():
    by_json = HBChecker.from_trace_file(GOLDEN_JSON)
    by_rprt = HBChecker.from_trace_file(GOLDEN_RPRT)
    assert len(by_json.records) == len(by_rprt.records) > 0
    fj = [v.as_dict() for v in by_json.check_all()]
    fr = [v.as_dict() for v in by_rprt.check_all()]
    assert fj == fr == []


def test_selftest_pass_is_ok():
    from repro.check.cli import _pass_selftest

    result = _pass_selftest()
    assert result["ok"], result["lines"]
