"""Determinism linter (repro.check.lint) tests."""

import pytest

from repro.check.fixtures import BAD_LINT_SOURCE
from repro.check.lint import RULES, Violation, lint_paths, lint_source


def codes(source):
    return [v.code for v in lint_source(source)]


# -- individual rules -------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "import time\nt = time.time()\n",
    "import time\nt = time.monotonic()\n",
    "import time\nt = time.perf_counter_ns()\n",
    "from datetime import datetime\nd = datetime.now()\n",
    "import datetime\nd = datetime.datetime.utcnow()\n",
])
def test_rpr001_wall_clock(snippet):
    assert codes(snippet) == ["RPR001"]


@pytest.mark.parametrize("snippet", [
    "import random\nx = random.random()\n",
    "import random\nx = random.randint(0, 9)\n",
    "import numpy as np\nx = np.random.rand(3)\n",
    "import numpy\nx = numpy.random.normal()\n",
])
def test_rpr002_unseeded_rng(snippet):
    assert codes(snippet) == ["RPR002"]


@pytest.mark.parametrize("snippet", [
    "import random\nrng = random.Random(42)\nx = rng.random()\n",
    "import numpy as np\nrng = np.random.default_rng(7)\n",
    "import numpy as np\nrng = np.random.RandomState(7)\n",
])
def test_rpr002_seeded_constructions_allowed(snippet):
    assert codes(snippet) == []


def test_rpr003_hash():
    assert codes("h = hash('x')\n") == ["RPR003"]
    # zero-arg hash() is not the builtin-on-data pattern
    assert codes("class A:\n    def hash(self):\n        return 1\n") == []


def test_rpr004_id_in_ordering_contexts():
    assert codes("d = {}\nd[id(x)] = 1\n") == ["RPR004"]
    assert codes("k = sorted(items, key=lambda o: id(o))\n") == ["RPR004"]
    assert codes("d = {id(x): 1}\n") == ["RPR004"]
    # id() for identity comparison or printing is fine
    assert codes("same = id(a) == id(b)\n") == []
    assert codes("print(id(a))\n") == []


def test_rpr005_environ_reads():
    assert codes("import os\nv = os.environ.get('X')\n") == ["RPR005"]
    assert codes("import os\nv = os.environ['X']\n") == ["RPR005"]
    assert codes("import os\nv = os.getenv('X')\n") == ["RPR005"]
    # one finding per read site, not per nested AST node
    assert len(codes("import os\nv = os.environ.get('X', '1')\n")) == 1


def test_rpr006_set_iteration():
    assert codes("for x in {1, 2, 3}:\n    pass\n") == ["RPR006"]
    assert codes("out = [x for x in set(items)]\n") == ["RPR006"]
    assert codes("frozen = list({a, b})\n") == ["RPR006"]
    # sorted() launders the order
    assert codes("for x in sorted({1, 2, 3}):\n    pass\n") == []
    # membership tests and set algebra are fine
    assert codes("ok = x in {1, 2, 3}\n") == []


def test_rpr007_assert_statement():
    assert codes("assert x > 0\n") == ["RPR007"]
    assert codes("assert table, 'empty table'\n") == ["RPR007"]
    # raising is the durable spelling — clean
    assert codes("if not x:\n    raise ValueError('x')\n") == []
    # pragma works on asserts too
    assert codes("assert x  # repro: allow-RPR007\n") == []


@pytest.mark.parametrize("snippet", [
    "from numpy.random import shuffle\nshuffle(xs)\n",
    "from numpy.random import rand as r\nx = r(3)\n",
    "from numpy import random\nx = random.normal()\n",
    "from numpy import random as npr\nx = npr.rand(3)\n",
    "import numpy.random as npr\nx = npr.permutation(9)\n",
])
def test_rpr008_numpy_random_import_bindings(snippet):
    assert codes(snippet) == ["RPR008"]


@pytest.mark.parametrize("snippet", [
    # seeded constructors through any aliased binding stay clean
    "from numpy.random import default_rng\nrng = default_rng(7)\n",
    "from numpy import random\nrng = random.default_rng(7)\n",
    "import numpy.random as npr\nrng = npr.RandomState(7)\n",
    # an unrelated name called shuffle is not numpy's
    "def shuffle(xs):\n    return xs\nshuffle([1])\n",
])
def test_rpr008_seeded_or_unrelated_allowed(snippet):
    assert codes(snippet) == []


def test_rpr008_does_not_double_report_as_rpr002():
    # the aliased-module form is RPR008's, not RPR002's
    assert codes("from numpy import random\nx = random.rand(2)\n") \
        == ["RPR008"]


# -- pragmas ----------------------------------------------------------------

def test_pragma_suppresses_named_code():
    src = "import time\nt = time.time()  # repro: allow-RPR001\n"
    assert lint_source(src) == []


def test_pragma_is_per_code():
    src = "import time\nt = time.time()  # repro: allow-RPR003\n"
    assert codes(src) == ["RPR001"]


def test_pragma_multiple_codes():
    src = ("import time, os\n"
           "t = (time.time(), os.getenv('X'))"
           "  # repro: allow-RPR001,RPR005\n")
    assert lint_source(src) == []


def test_pragma_only_applies_to_its_line():
    src = ("import time\n"
           "a = time.time()  # repro: allow-RPR001\n"
           "b = time.time()\n")
    vs = lint_source(src)
    assert [v.line for v in vs] == [3]


# -- fixtures, files, output ------------------------------------------------

def test_bad_fixture_trips_every_rule():
    assert {v.code for v in lint_source(BAD_LINT_SOURCE)} == set(RULES)


def test_syntax_error_reported_not_raised():
    vs = lint_source("def broken(:\n")
    assert [v.code for v in vs] == ["RPR000"]


def test_violation_shapes():
    v = lint_source("h = hash('x')\n", path="mod.py")[0]
    assert isinstance(v, Violation)
    assert v.describe().startswith("mod.py:1:")
    assert v.as_dict()["code"] == "RPR003"


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("h = hash('x')\n")
    (tmp_path / "pkg" / "b.txt").write_text("hash('not python')\n")
    vs = lint_paths([tmp_path])
    assert [v.code for v in vs] == ["RPR003"]
    assert vs[0].path.endswith("a.py")


def test_repro_package_is_clean():
    """The satellite guarantee: `repro check --lint` exits 0 on main."""
    import repro
    from pathlib import Path

    assert lint_paths([Path(repro.__file__).parent]) == []
