"""Trace sanitizer (repro.check.sanitize) tests."""

import json
from pathlib import Path

import pytest

from repro.analysis.bench import named_config
from repro.analysis.export import to_chrome_trace
from repro.check.fixtures import (acausal_records, bad_collective_records,
                                  overlap_records)
from repro.check.sanitize import TraceSanitizer, TraceViolation
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload
from repro.sim.trace import TraceRecord

GOLDEN = Path(__file__).parent / "data" / "golden_trace_mpc.json"


def _rec(t0, t1, category, label, meta=None, rank=0, track="main",
         span_id=1, parent_id=None):
    return TraceRecord(t0, t1, category, label, meta or {}, rank, track,
                       span_id, parent_id)


def _pingpong_result(config_name, nbytes=1 << 20):
    data = make_payload("omb", nbytes, seed=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=1)
            got = yield from comm.recv(source=1, tag=2)
        else:
            got = yield from comm.recv(source=0, tag=1)
            yield from comm.send(got, dest=0, tag=2)
        return got.nbytes

    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    return cluster.run(rank_fn, config=named_config(config_name), args=())


# -- real traces are clean --------------------------------------------------

@pytest.mark.parametrize("config_name",
                         ["baseline", "mpc-opt", "zfp8", "zfp8-pipe"])
def test_real_traces_pass_all_checks(config_name):
    res = _pingpong_result(config_name)
    assert TraceSanitizer.from_tracer(res.tracer).check_all() == []


def test_chrome_roundtrip_is_clean():
    res = _pingpong_result("zfp8-pipe")
    doc = to_chrome_trace(res.tracer, elapsed=res.elapsed)
    ts = TraceSanitizer.from_chrome_trace(json.dumps(doc))
    assert len(ts.records) == len(res.tracer.records)
    assert ts.check_all() == []


def test_golden_trace_is_clean():
    ts = TraceSanitizer.from_chrome_trace(GOLDEN)
    assert ts.records, "golden trace should contain spans"
    assert ts.check_all() == []


# -- serial-lane race detection ---------------------------------------------

def test_overlap_on_stream_lane_detected():
    vs = TraceSanitizer(overlap_records()).check_serial_lanes()
    assert len(vs) == 1
    v = vs[0]
    assert v.check == "serial-lane"
    assert v.span_ids == (1, 2)
    assert "stream0" in v.message


def test_overlap_on_link_lane_detected():
    recs = [
        _rec(0.0, 2e-6, "network", "data", track="link:ib0", span_id=1),
        _rec(1e-6, 3e-6, "network", "data", track="link:ib0", span_id=2),
    ]
    assert len(TraceSanitizer(recs).check_serial_lanes()) == 1


def test_main_lane_overlap_is_allowed():
    # Concurrent isend/irecv legitimately overlap on "main".
    recs = [
        _rec(0.0, 2e-6, "pipeline", "wire_transfer", span_id=1),
        _rec(1e-6, 3e-6, "pipeline", "wire_transfer", span_id=2),
    ]
    assert TraceSanitizer(recs).check_serial_lanes() == []


def test_back_to_back_spans_are_not_a_race():
    recs = [
        _rec(0.0, 1e-6, "compression_kernel", "a", track="stream0", span_id=1),
        _rec(1e-6, 2e-6, "compression_kernel", "b", track="stream0", span_id=2),
    ]
    assert TraceSanitizer(recs).check_serial_lanes() == []


def test_same_stream_name_on_other_rank_is_another_lane():
    recs = [
        _rec(0.0, 2e-6, "k", "a", rank=0, track="stream0", span_id=1),
        _rec(1e-6, 3e-6, "k", "b", rank=1, track="stream0", span_id=2),
    ]
    assert TraceSanitizer(recs).check_serial_lanes() == []


# -- containment ------------------------------------------------------------

def test_child_starting_before_parent_detected():
    recs = [
        _rec(1e-6, 5e-6, "pipeline", "sender_prepare", span_id=1),
        _rec(0.5e-6, 2e-6, "compression_kernel", "k", track="gpu",
             span_id=2, parent_id=1),
    ]
    vs = TraceSanitizer(recs).check_containment()
    assert [v.check for v in vs] == ["containment"]
    assert vs[0].span_ids == (2, 1)


def test_dangling_parent_detected():
    recs = [_rec(0.0, 1e-6, "pool", "hit", span_id=2, parent_id=77)]
    vs = TraceSanitizer(recs).check_containment()
    assert len(vs) == 1
    assert "missing parent 77" in vs[0].message


def test_child_outliving_inherited_parent_is_allowed():
    # Part senders spawned under sender_prepare outlive it by design.
    recs = [
        _rec(0.0, 1e-6, "pipeline", "sender_prepare", span_id=1),
        _rec(0.5e-6, 9e-6, "pipeline", "wire_transfer", span_id=2, parent_id=1),
    ]
    assert TraceSanitizer(recs).check_containment() == []


# -- causality --------------------------------------------------------------

def test_acausal_fixture_detected():
    vs = TraceSanitizer(acausal_records()).check_causality()
    messages = " | ".join(v.message for v in vs)
    assert "cts sent before rts" in messages
    assert "wire_transfer started before cts completed" in messages


def test_receiver_complete_before_wire_detected():
    recs = [
        _rec(0e-6, 1e-6, "pipeline", "rts", {"seq": 2}, span_id=1),
        _rec(1e-6, 2e-6, "pipeline", "cts", {"seq": 2}, rank=1, span_id=2),
        _rec(2e-6, 6e-6, "pipeline", "wire_transfer",
             {"seq": 2, "nbytes": 8}, span_id=3),
        _rec(3e-6, 4e-6, "pipeline", "receiver_complete", {"seq": 2},
             rank=1, span_id=4),
    ]
    vs = TraceSanitizer(recs).check_causality()
    assert len(vs) == 1
    assert "receiver_complete" in vs[0].message


def test_part_matched_wires():
    # receiver_complete of part 1 may start before part 0's (longer)
    # wire finishes; it only has to follow its *own* part.
    recs = [
        _rec(0.0, 1e-6, "pipeline", "cts", {"seq": 3}, rank=1, span_id=1),
        _rec(1e-6, 9e-6, "pipeline", "wire_transfer",
             {"seq": 3, "part": 0, "nbytes": 8}, span_id=2),
        _rec(1e-6, 2e-6, "pipeline", "wire_transfer",
             {"seq": 3, "part": 1, "nbytes": 8}, span_id=3),
        _rec(2e-6, 3e-6, "pipeline", "receiver_complete",
             {"seq": 3, "part": 1}, rank=1, span_id=4),
    ]
    assert TraceSanitizer(recs).check_causality() == []


# -- tiling -----------------------------------------------------------------

def test_tiling_holds_on_real_messages():
    res = _pingpong_result("mpc-opt")
    ts = TraceSanitizer.from_tracer(res.tracer)
    assert ts.by_seq(), "expected rendezvous messages"
    assert ts.check_tiling() == []


# -- collective causality ---------------------------------------------------

def _collective_result(op, config_name="mpc-opt", faults=None):
    data = make_payload("dataset:msg_sppm", 1 << 20, seed=1)

    def rank_fn(comm):
        if op == "bcast":
            out = yield from comm.bcast(data if comm.rank == 0 else None,
                                        root=0)
        elif op == "allgather":
            out = yield from comm.allgather(data)
            return len(out)
        else:
            out = yield from comm.allreduce(data, algorithm=op)
        return out.nbytes

    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    return cluster.run(rank_fn, config=named_config(config_name), args=(),
                       faults=faults)


@pytest.mark.parametrize("op", ["bcast", "allgather", "ring",
                                "recursive_doubling"])
def test_collective_traces_pass_all_checks(op):
    res = _collective_result(op)
    assert TraceSanitizer.from_tracer(res.tracer).check_all() == []


def test_faulty_collective_trace_is_clean():
    """Retransmitted relay hops (attempt-stamped spans outliving the
    collective span) must not trip the containment rule."""
    from repro.faults import FaultPlan

    res = _collective_result(
        "bcast", faults=FaultPlan(seed=3, corrupt_rate=0.25, drop_rate=0.1))
    assert res.tracer.metrics.counter_total("resilience.retransmit") > 0
    assert TraceSanitizer.from_tracer(res.tracer).check_all() == []


def test_bad_collective_fixture_detected():
    viols = TraceSanitizer(bad_collective_records()).check_collectives()
    msgs = " | ".join(v.message for v in viols)
    assert len(viols) == 3
    assert "dropped the originating seq" in msgs
    assert "outside every collective span" in msgs
    assert "no pack_wire/reduce_wire span minted it" in msgs
    assert all(v.check == "collective" for v in viols)


def test_collective_check_ignores_pt2pt_traces():
    res = _pingpong_result("mpc-opt")
    assert TraceSanitizer.from_tracer(res.tracer).check_collectives() == []


def test_violation_shapes():
    v = TraceViolation("serial-lane", "boom", span_ids=(1, 2), t=0.5)
    assert "boom" in v.describe()
    assert v.as_dict()["span_ids"] == [1, 2]


def test_lanes_and_by_seq_accessors():
    res = _pingpong_result("mpc-opt")
    lanes = res.tracer.lanes()
    assert any(track == "main" for _, track in lanes)
    assert any(track.startswith("link:") for _, track in lanes)
    by_seq = res.tracer.by_seq()
    assert by_seq
    for spans in by_seq.values():
        assert {r.category for r in spans} == {"pipeline"}
