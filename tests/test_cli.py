"""CLI entry-point tests."""

from pathlib import Path

import pytest

from repro.__main__ import main


def test_machines(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "longhorn" in out and "IB-EDR" in out


def test_codecs(capsys):
    assert main(["codecs"]) == 0
    out = capsys.readouterr().out
    assert "Proposed MPC-OPT" in out


def test_latency(capsys):
    assert main(["latency", "--sizes", "256K", "--config", "mpc-opt"]) == 0
    assert "osu_latency" in capsys.readouterr().out


def test_latency_intra(capsys):
    assert main(["latency", "--sizes", "256K", "--intra"]) == 0


def test_bcast(capsys):
    assert main(["bcast", "--nodes", "2", "--ppn", "1", "--size", "256K",
                 "--dataset", "msg_sp", "--config", "baseline"]) == 0
    assert "bcast msg_sp" in capsys.readouterr().out


def test_awp(capsys):
    assert main(["awp", "--gpus", "4", "--ppn", "2", "--steps", "2",
                 "--config", "baseline"]) == 0
    assert "GFLOP/s" in capsys.readouterr().out


def test_dask(capsys):
    assert main(["dask", "--workers", "2", "--dims", "512", "--chunk", "128"]) == 0
    assert "aggregate" in capsys.readouterr().out


def test_table3(capsys):
    assert main(["table3", "--scale", "0.01"]) == 0
    assert "msg_sppm" in capsys.readouterr().out


def test_unknown_config():
    with pytest.raises(SystemExit):
        main(["latency", "--config", "zstd"])


def test_profile(capsys):
    assert main(["profile", "--nodes", "2", "--ppn", "1", "--size", "512K"]) == 0
    out = capsys.readouterr().out
    assert "link activity" in out and "time by category" in out


def test_profile_json_out(tmp_path, capsys):
    import json

    out = tmp_path / "profile.json"
    assert main(["profile", "--nodes", "2", "--ppn", "1", "--size", "512K",
                 "--format", "json", "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["elapsed_us"] > 0
    assert doc["links"] and doc["category_time_us"]


def test_profile_json_stdout(capsys):
    import json

    assert main(["profile", "--nodes", "2", "--ppn", "1", "--size", "512K",
                 "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["n_messages"] > 0


def test_explain(capsys):
    assert main(["explain", "--codec", "mpc", "--size", "512K"]) == 0
    out = capsys.readouterr().out
    assert "critical-path attribution" in out
    assert "rank 0 -> 1" in out


def test_trace_latency(tmp_path, capsys):
    import json

    from repro.mpi.comm import PIPELINE_STEPS

    out = tmp_path / "t.json"
    assert main(["trace", "latency", "--codec", "mpc", "--size", "512K",
                 "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert set(PIPELINE_STEPS) <= names
    assert doc["otherData"]["metrics"]["counters"]


def test_trace_collective(tmp_path):
    import json

    out = tmp_path / "t.json"
    assert main(["trace", "allgather", "--codec", "none", "--size", "256K",
                 "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "collective" in cats


def test_trace_unknown_codec():
    with pytest.raises(SystemExit):
        main(["trace", "latency", "--codec", "lz4"])


def test_chaos(capsys):
    assert main(["chaos", "--sizes", "256K", "--iters", "2",
                 "--corrupt-rate", "0.2", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out and "all payloads verified" in out


def test_chaos_with_drops(capsys):
    assert main(["chaos", "--sizes", "256K", "--iters", "2", "--seed", "2",
                 "--corrupt-rate", "0.1", "--drop-rate", "0.1",
                 "--config", "zfp8"]) == 0
    assert "all payloads verified" in capsys.readouterr().out


def test_check_lint_clean(capsys):
    assert main(["check", "--lint"]) == 0
    out = capsys.readouterr().out
    assert "[ok] lint" in out and "check: clean" in out


def test_check_lint_flags_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    with pytest.raises(SystemExit) as exc:
        main(["check", "--lint", "--path", str(bad)])
    assert exc.value.code == 1
    assert "RPR001" in capsys.readouterr().out


def test_check_trace_files(tmp_path, capsys):
    import json
    from pathlib import Path

    golden = Path(__file__).parent / "data" / "golden_trace_mpc.json"
    assert main(["check", "--trace", str(golden), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert [p["pass"] for p in doc["passes"]] == ["trace"]


def test_check_fresh_export_sanitizes_clean(tmp_path, capsys):
    out = tmp_path / "t.json"
    assert main(["trace", "latency", "--codec", "zfp", "--size", "512K",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    assert main(["check", "--trace", str(out)]) == 0
    assert "[ok] trace" in capsys.readouterr().out


def test_check_asan_smoke(capsys):
    assert main(["check", "--asan"]) == 0
    out = capsys.readouterr().out
    assert "[ok] asan" in out and "clean:" in out


def test_check_selftest(capsys):
    assert main(["check", "--selftest"]) == 0
    assert "all known-bad fixtures detected" in capsys.readouterr().out


def test_bench_asan_flag(tmp_path, capsys):
    out = tmp_path / "B.json"
    assert main(["bench", "--quick", "--scenario", "pt2pt_mpc-opt",
                 "--asan", "--out", str(out)]) == 0
    assert out.exists()


# -- RPRT telemetry container ------------------------------------------------

GOLDEN_RPRT = Path(__file__).parent / "data" / "golden_trace_mpc.rprt"


def test_trace_rprt_export(tmp_path, capsys):
    from repro.analysis.rprt import RprtReader, is_rprt

    out = tmp_path / "t.rprt"
    assert main(["trace", "latency", "--codec", "mpc", "--size", "512K",
                 "--out", str(out)]) == 0  # format inferred from extension
    assert "[rprt]" in capsys.readouterr().out
    assert is_rprt(out)
    with RprtReader(out) as r:
        assert r.n_spans > 0
        assert "telemetry.rprt_bytes_written" in r.metrics()["counters"]


def test_trace_format_flag_overrides_extension(tmp_path, capsys):
    from repro.analysis.rprt import is_rprt

    out = tmp_path / "t.trace"
    assert main(["trace", "latency", "--codec", "none", "--size", "256K",
                 "--format", "rprt", "--out", str(out)]) == 0
    assert is_rprt(out)


def test_trace_convert_cli(tmp_path, capsys):
    golden = Path(__file__).parent / "data" / "golden_trace_mpc.json"
    rprt = tmp_path / "t.rprt"
    back = tmp_path / "back.json"
    assert main(["trace", "convert", str(golden), str(rprt)]) == 0
    assert main(["trace", "convert", str(rprt), str(back)]) == 0
    assert "[json]" in capsys.readouterr().out
    assert back.read_bytes() == golden.read_bytes()


def test_trace_convert_usage_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "convert", "only-one-arg"])
    with pytest.raises(SystemExit):
        main(["trace", "convert", str(tmp_path / "missing.json"),
              str(tmp_path / "out.rprt")])
    with pytest.raises(SystemExit):  # stray positionals on a workload
        main(["trace", "latency", "stray.json"])


def test_check_trace_accepts_rprt(capsys):
    import json

    assert main(["check", "--trace", str(GOLDEN_RPRT),
                 "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True


def test_explain_trace_file_parity(capsys):
    golden = Path(__file__).parent / "data" / "golden_trace_mpc.json"
    assert main(["explain", "--trace", str(GOLDEN_RPRT)]) == 0
    from_rprt = capsys.readouterr().out
    assert main(["explain", "--trace", str(golden)]) == 0
    assert capsys.readouterr().out == from_rprt
    assert "slowest" in from_rprt or from_rprt.strip()


def test_profile_trace_file(capsys):
    assert main(["profile", "--trace", str(GOLDEN_RPRT)]) == 0
    out = capsys.readouterr().out
    assert "link activity" in out and "telemetry container:" not in out


def test_profile_trace_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["profile", "--trace", str(tmp_path / "missing.rprt")])
