"""Bit-identity of every codec against the pre-rewrite stream fixtures.

The fixtures in ``tests/data/codec_streams/`` were captured from the
codec implementations *before* the vectorized bit-assembly rewrite.
Every compressed stream (and, for lossy codecs, every decoded array)
must stay byte-identical: the rewrites are allowed to change host
wall-clock only, never a single output bit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from tests.codec_fixture_defs import (
    LOSSY, MANIFEST_PATH, NPZ_PATH, case_desc, cases, run_case,
)


@pytest.fixture(scope="module")
def fixture_arrays():
    if not NPZ_PATH.exists():  # pragma: no cover - regeneration guard
        pytest.fail(
            f"{NPZ_PATH} missing; regenerate with "
            "`PYTHONPATH=src python tests/make_codec_fixtures.py`")
    with np.load(NPZ_PATH) as npz:
        return {k: npz[k] for k in npz.files}


def test_manifest_matches_case_table():
    """The committed manifest and the in-code case table must agree —
    otherwise the npz indices no longer line up with ``cases()``."""
    with open(MANIFEST_PATH) as fh:
        doc = json.load(fh)
    live = cases()
    assert doc["n_cases"] == len(live)
    for entry, case in zip(doc["cases"], live):
        assert entry["desc"] == case_desc(case)


@pytest.mark.parametrize(
    "index,case", list(enumerate(cases())),
    ids=[case_desc(c) for c in cases()])
def test_stream_bit_identical(index, case, fixture_arrays):
    payload, out = run_case(case)
    expected = fixture_arrays[f"p{index}"]
    assert payload.dtype == np.uint8
    assert payload.tobytes() == expected.tobytes(), (
        f"{case_desc(case)}: compressed stream changed "
        f"({payload.nbytes} vs {expected.nbytes} bytes)")
    if case["codec"] in LOSSY:
        exp_out = fixture_arrays[f"o{index}"]
        assert out.dtype == exp_out.dtype
        assert out.shape == exp_out.shape
        assert np.ascontiguousarray(out).tobytes() == exp_out.tobytes(), (
            f"{case_desc(case)}: decoded array changed")
