"""Property battery: every transport codec x collective x op x size.

The keep-compressed collectives (ISSUE 6) must deliver the same bytes
as the plain per-hop path for every codec the registry can put on the
wire.  Lossless codecs must be bit-exact; lossy codecs must stay
inside a per-hop error budget.  Rank counts include non-powers of two
so the ring fallback and remainder chunk geometry are exercised.
"""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.compression import ZfpCompressor
from repro.mpi.cluster import Cluster
from repro.mpi.collectives import ALLREDUCE_ALGORITHMS
from repro.network.presets import machine_preset
from repro.utils.units import KiB

# Every algorithm CompressionConfig accepts as a transport codec
# (zfp2d is registry-only: it has no wire-header support).
TRANSPORT_CODECS = ("mpc", "zfp", "sz", "gfc", "fpc", "null")
LOSSLESS = ("mpc", "gfc", "fpc", "null")
LOSSY = ("zfp", "sz")

# Element counts: one below the eager threshold, one that forces
# rendezvous (and spans multiple kernel partitions for mpc).
SIZES = (1024, 6144)

RANKS = (4, 5)  # power of two + non-power-of-two


def _dtype(algo):
    # GFC and FPC are double-precision designs (Table I).
    return np.float64 if algo in ("gfc", "fpc") else np.float32


def _payload(algo, n, seed=0):
    rng = np.random.default_rng(seed)
    # Smooth-ish signal: compressible for every codec family.
    return np.cumsum(rng.standard_normal(n)).astype(_dtype(algo))


def _config(algo, keep=True):
    return CompressionConfig(enabled=True, algorithm=algo, threshold=2 * KiB,
                             keep_compressed=keep)


def _bound(algo, config, data, hops):
    """Worst-case absolute error after ``hops`` compression stages."""
    if algo == "zfp":
        per_hop = ZfpCompressor(config.zfp_rate).max_abs_error_bound(data)
    elif algo == "sz":
        per_hop = config.sz_error_bound
    else:
        return 0.0
    return per_hop * hops


def _run(nprocs, rank_fn, config, ppn=2):
    nodes = -(-nprocs // ppn)
    cluster = Cluster(machine_preset("frontera-liquid"), nodes=nodes,
                      gpus_per_node=ppn)
    return cluster.run(rank_fn, nprocs=nprocs, config=config)


def _assert_close(algo, got, want, bound):
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape
    assert got.dtype == want.dtype
    if algo in LOSSLESS:
        assert np.array_equal(got, want)
    else:
        assert np.abs(got.astype(np.float64)
                      - want.astype(np.float64)).max() <= bound


# ---------------------------------------------------------------- bcast

@pytest.mark.parametrize("algo", TRANSPORT_CODECS)
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("nprocs", RANKS)
def test_bcast_every_codec(algo, n, nprocs):
    payload = _payload(algo, n)
    config = _config(algo)

    def rank_fn(comm):
        data = payload if comm.rank == 0 else None
        out = yield from comm.bcast(data, root=0)
        return np.asarray(out)

    res = _run(nprocs, rank_fn, config)
    bound = _bound(algo, config, payload, hops=nprocs)
    for got in res.values:
        _assert_close(algo, got, payload, bound)


# ------------------------------------------------------------ allgather

@pytest.mark.parametrize("algo", TRANSPORT_CODECS)
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("nprocs", RANKS)
def test_allgather_every_codec(algo, n, nprocs):
    config = _config(algo)
    payloads = [_payload(algo, n, seed=r) for r in range(nprocs)]

    def rank_fn(comm):
        out = yield from comm.allgather(payloads[comm.rank])
        return [np.asarray(c) for c in out]

    res = _run(nprocs, rank_fn, config)
    bound = _bound(algo, config, payloads[0], hops=nprocs)
    for got in res.values:
        assert len(got) == nprocs
        for r in range(nprocs):
            _assert_close(algo, got[r], payloads[r], bound)


# -------------------------------------------------------------- scatter

@pytest.mark.parametrize("algo", TRANSPORT_CODECS)
@pytest.mark.parametrize("nprocs", RANKS)
def test_scatter_every_codec(algo, nprocs):
    config = _config(algo)
    chunks = [_payload(algo, 4096, seed=r) for r in range(nprocs)]

    def rank_fn(comm):
        mine = chunks if comm.rank == 0 else None
        got = yield from comm.scatter(mine, root=0)
        return np.asarray(got)

    res = _run(nprocs, rank_fn, config)
    bound = _bound(algo, config, chunks[0], hops=2)
    for r, got in enumerate(res.values):
        _assert_close(algo, got, chunks[r], bound)


# ------------------------------------------------------------- alltoall

@pytest.mark.parametrize("algo", TRANSPORT_CODECS)
@pytest.mark.parametrize("nprocs", RANKS)
def test_alltoall_every_codec(algo, nprocs):
    config = _config(algo)
    mats = [[_payload(algo, 3072, seed=100 * s + d) for d in range(nprocs)]
            for s in range(nprocs)]

    def rank_fn(comm):
        out = yield from comm.alltoall(mats[comm.rank])
        return [np.asarray(c) for c in out]

    res = _run(nprocs, rank_fn, config)
    bound = _bound(algo, config, mats[0][0], hops=2)
    for d, got in enumerate(res.values):
        for s in range(nprocs):
            _assert_close(algo, got[s], mats[s][d], bound)


# ------------------------------------------------------------ allreduce

def _allreduce_cases():
    for algo in TRANSPORT_CODECS:
        for algorithm in ALLREDUCE_ALGORITHMS:
            for nprocs in RANKS:
                if algorithm == "recursive_doubling" and nprocs & (nprocs - 1):
                    continue
                yield algo, algorithm, nprocs


@pytest.mark.parametrize("algo,algorithm,nprocs", list(_allreduce_cases()))
def test_allreduce_every_codec(algo, algorithm, nprocs):
    """Compression transparency: the same algorithm with a lossless
    transport must equal the uncompressed run BITWISE (the reduction
    order is pinned to op(acc, incoming) on every path); lossy
    transports must stay inside the accumulated error budget."""
    config = _config(algo)
    n = 6144
    payloads = [_payload(algo, n, seed=r) for r in range(nprocs)]

    def rank_fn(comm):
        out = yield from comm.allreduce(payloads[comm.rank],
                                        algorithm=algorithm)
        return np.asarray(out)

    res = _run(nprocs, rank_fn, config)
    ref = _run(nprocs, rank_fn, CompressionConfig.disabled())
    # Reduction of `nprocs` lossy-coded operands over up to `nprocs`
    # hops: errors add, so budget nprocs per-hop bounds per operand.
    bound = _bound(algo, config, ref.values[0], hops=nprocs * nprocs)
    for got, want in zip(res.values, ref.values):
        _assert_close(algo, got, want, bound)


@pytest.mark.parametrize("algo", ("mpc", "null"))
@pytest.mark.parametrize("nprocs", RANKS)
def test_allreduce_custom_op_every_codec(algo, nprocs):
    """Non-add ops must bypass the compressed-domain reduction and
    still come back exact for lossless transports."""
    config = _config(algo)
    payloads = [_payload(algo, 4096, seed=r) for r in range(nprocs)]
    expected = np.maximum.reduce(payloads)

    def rank_fn(comm):
        out = yield from comm.allreduce(payloads[comm.rank], op=np.maximum)
        return np.asarray(out)

    res = _run(nprocs, rank_fn, config)
    for got in res.values:
        assert np.array_equal(np.asarray(got), expected)


# ----------------------------------------- keep-compressed == per-hop

@pytest.mark.parametrize("algo", LOSSLESS)
@pytest.mark.parametrize("op", ("bcast", "allgather", "allreduce"))
def test_keep_equals_rehop(algo, op):
    """For lossless transports the keep-compressed relay must produce
    bit-identical results to decode+re-encode at every hop."""
    nprocs = 5
    payloads = [_payload(algo, 6144, seed=r) for r in range(nprocs)]

    def rank_fn(comm):
        if op == "bcast":
            data = payloads[0] if comm.rank == 0 else None
            out = yield from comm.bcast(data, root=0)
            return np.asarray(out).tobytes()
        if op == "allgather":
            out = yield from comm.allgather(payloads[comm.rank])
            return b"".join(np.asarray(c).tobytes() for c in out)
        out = yield from comm.allreduce(payloads[comm.rank])
        return np.asarray(out).tobytes()

    keep = _run(nprocs, rank_fn, _config(algo, keep=True))
    rehop = _run(nprocs, rank_fn, _config(algo, keep=False))
    assert keep.values == rehop.values


# --------------------------------------------- keep-compressed is faster

@pytest.mark.parametrize("op", ("bcast", "allgather"))
def test_keep_compressed_is_faster(op):
    """Acceptance: on a multi-hop topology the relayed wire image beats
    per-hop recompression outright (it skips every intermediate
    decode+encode kernel pair)."""
    data = np.cumsum(np.ones(262144, dtype=np.float32))

    def rank_fn(comm):
        if op == "bcast":
            payload = data if comm.rank == 0 else None
            yield from comm.bcast(payload, root=0)
        else:
            yield from comm.allgather(data)
        return comm.now

    base = CompressionConfig.mpc_opt()
    keep = _run(8, rank_fn, base.with_(keep_compressed=True))
    rehop = _run(8, rank_fn, base.with_(keep_compressed=False))
    assert keep.elapsed < rehop.elapsed


# ---------------------------------- regression: algorithms agree (ISSUE 6.4)

@pytest.mark.parametrize("nprocs", (4, 8))
def test_allreduce_algorithms_agree_bitwise(nprocs):
    """Ring, recursive doubling and reduce+bcast must produce EQUAL
    arrays for exactly-representable payloads — pins the fix for the
    old non-power-of-two fallback divergence."""
    payload_of = lambda r: np.arange(2048, dtype=np.float32) + float(r)

    outs = {}
    for algorithm in ALLREDUCE_ALGORITHMS:
        def rank_fn(comm, algorithm=algorithm):
            out = yield from comm.allreduce(payload_of(comm.rank),
                                            algorithm=algorithm)
            return np.asarray(out).tobytes()

        res = _run(nprocs, rank_fn, _config("mpc"))
        outs[algorithm] = res.values

    assert outs["ring"] == outs["recursive_doubling"] == outs["reduce_bcast"]


def test_allreduce_non_power_of_two_default_is_ring():
    """The non-power-of-two default must be the ring (not the old
    reduce+bcast fallback) and must match it numerically."""
    nprocs = 6
    payload_of = lambda r: np.arange(2048, dtype=np.float32) * float(r + 1)

    def run(algorithm):
        def rank_fn(comm):
            out = yield from comm.allreduce(payload_of(comm.rank),
                                            algorithm=algorithm)
            return np.asarray(out).tobytes()
        return _run(nprocs, rank_fn, _config("mpc"))

    default = run(None)
    ring = run("ring")
    fallback = run("reduce_bcast")
    assert default.values == ring.values == fallback.values
    # and the ring is what the default actually dispatched to
    assert default.elapsed == ring.elapsed


def test_recursive_doubling_rejects_non_power_of_two():
    from repro.errors import MpiError

    def rank_fn(comm):
        yield from comm.allreduce(np.ones(64, np.float32),
                                  algorithm="recursive_doubling")

    with pytest.raises(MpiError):
        _run(3, rank_fn, _config("null"))
